"""Shared helpers for the benchmark harness.

Every benchmark prints the table/figure rows it regenerates (visible with
``pytest benchmarks/ --benchmark-only -s`` and summarised in
EXPERIMENTS.md) and times the generating computation with
pytest-benchmark.
"""

import pytest


def emit(title: str, text: str) -> None:
    print(f"\n===== {title} =====")
    print(text)
