"""Shared helpers for the benchmark harness.

Every benchmark prints the table/figure rows it regenerates (visible with
``pytest benchmarks/ --benchmark-only -s`` and summarised in
EXPERIMENTS.md) and times the generating computation with
pytest-benchmark.
"""

import pathlib
import sys

import pytest

# Make `repro` importable when the package is not installed and
# PYTHONPATH=src was not set (e.g. `python -m pytest benchmarks/...`).
_SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def emit(title: str, text: str) -> None:
    print(f"\n===== {title} =====")
    print(text)
