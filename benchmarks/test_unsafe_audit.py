"""Interior-unsafe audit benchmarks → ``BENCH_unsafe.json``.

Three claims from the §5 unsafe-provenance design, measured on the
evaluation corpus:

* **Determinism** — the audit report is byte-identical at every worker
  count (the provenance fixpoint and report ordering are
  schedule-independent).
* **Audit cost** — wall-clock for a cold whole-corpus audit, plus the
  number of function summaries solved to produce it (the audit rides
  the same interprocedural engine as the detectors, so its cost is the
  summary fixpoint, not a second pass).
* **Warm delta** — with a summary cache, a repeat audit re-solves no
  summaries and is served entirely from cache, and still renders the
  identical report.
"""

import json
import os
import pathlib
import time

import pytest

from conftest import emit

from repro import obs
from repro.analysis.config import AnalysisConfig
from repro.api import audit_unsafe
from repro.corpus import generate_corpus

BENCH_UNSAFE_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_unsafe.json"

SEED = 0
SCALE = 1
JOBS_SWEEP = (1, 2, 4)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(seed=SEED, scale=SCALE)


def _audit(sources, config):
    with obs.collecting() as collector:
        start = time.perf_counter()
        report = audit_unsafe(sources, config=config)
        seconds = round(time.perf_counter() - start, 4)
    return report, seconds, dict(collector.counters)


def test_unsafe_audit_bench(corpus, tmp_path):
    sources = [(f.name, f.text) for f in corpus.files]

    # Cold sweep over worker counts: identical bytes everywhere.
    timings = {}
    payloads = {}
    for jobs in JOBS_SWEEP:
        report, seconds, _ = _audit(sources, AnalysisConfig(jobs=jobs))
        timings[jobs] = seconds
        payloads[jobs] = json.dumps(report.to_dict(), sort_keys=False)
    for jobs in JOBS_SWEEP[1:]:
        assert payloads[jobs] == payloads[1], \
            f"audit differs between jobs=1 and jobs={jobs}"

    # Cold vs warm against a summary cache.
    config = AnalysisConfig(cache_dir=str(tmp_path))
    cold_report, cold_seconds, cold = _audit(sources, config)
    warm_report, warm_seconds, warm = _audit(sources, config)

    solved_cold = cold.get("analysis.executor.solved_functions", 0)
    solved_warm = warm.get("analysis.executor.solved_functions", 0)
    assert solved_cold > 0
    assert solved_warm == 0, "warm audit must re-solve nothing"
    assert warm["analysis.cache.hit"] == cold["analysis.cache.miss"]
    assert json.dumps(warm_report.to_dict()) == \
        json.dumps(cold_report.to_dict())
    assert json.dumps(cold_report.to_dict(), sort_keys=False) == payloads[1]

    breakdown = cold_report.breakdown
    assert cold_report.total == sum(breakdown.values())
    assert cold_report.total > 0

    cpu_count = os.cpu_count() or 1
    payload = {
        "schema_version": "1.0",
        "host": {"cpu_count": cpu_count},
        "corpus": {
            "seed": SEED, "scale": SCALE,
            "files": len(corpus.files), "loc": corpus.total_loc,
        },
        "audit": {
            "seconds_by_jobs": {str(j): timings[j] for j in JOBS_SWEEP},
            "report_identical_across_jobs": True,
            "interior_unsafe_functions": cold_report.total,
            "breakdown": breakdown,
        },
        "summaries": {
            "solved_functions_cold": solved_cold,
            "solved_functions_warm": solved_warm,
            "cache": {
                "cold_miss": cold.get("analysis.cache.miss", 0),
                "cold_store": cold.get("analysis.cache.store", 0),
                "warm_hit": warm.get("analysis.cache.hit", 0),
            },
            "seconds_cold": cold_seconds,
            "seconds_warm": warm_seconds,
            "warm_delta_seconds": round(cold_seconds - warm_seconds, 4),
        },
    }
    BENCH_UNSAFE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    round_trip = json.loads(BENCH_UNSAFE_PATH.read_text())
    assert round_trip["summaries"]["solved_functions_warm"] == 0

    emit("interior-unsafe audit",
         f"audit seconds by jobs: {payload['audit']['seconds_by_jobs']}"
         f" (cpus: {cpu_count})\n"
         f"interior-unsafe fns: {cold_report.total} — "
         + ", ".join(f"{k}: {v}" for k, v in sorted(breakdown.items()))
         + f"\ncold: {solved_cold} summaries solved in {cold_seconds}s; "
           f"warm: 0 solved in {warm_seconds}s")
