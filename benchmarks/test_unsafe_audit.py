"""Interior-unsafe audit benchmarks → ``BENCH_unsafe.json``.

Three claims from the §5 unsafe-provenance design, measured on the
evaluation corpus:

* **Determinism** — the audit report is byte-identical at every worker
  count (the provenance fixpoint and report ordering are
  schedule-independent).
* **Audit cost** — wall-clock for a cold whole-corpus audit, plus the
  number of function summaries solved to produce it (the audit rides
  the same interprocedural engine as the detectors, so its cost is the
  summary fixpoint, not a second pass).
* **Warm delta** — with a cache directory, a repeat audit re-solves no
  summaries and is served entirely from cache, and still renders the
  identical report.  Two warm tiers are measured separately: the
  summary tier alone (``report_cache=False`` — summaries served from
  wave shards, files still recompiled) and the full stack (whole-file
  report tier — no compile, no solve).  The full warm audit must be at
  least 2× faster than cold; ``bench-diff`` enforces the recorded
  ``warm_speedup`` even under ``--warn``.
"""

import json
import os
import pathlib
import time

import pytest

from conftest import emit

from repro import obs
from repro.analysis.config import AnalysisConfig
from repro.api import audit_unsafe
from repro.corpus import generate_corpus

BENCH_UNSAFE_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_unsafe.json"

SEED = 0
SCALE = 1
JOBS_SWEEP = (1, 2, 4)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(seed=SEED, scale=SCALE)


def _audit(sources, config):
    with obs.collecting() as collector:
        start = time.perf_counter()
        report = audit_unsafe(sources, config=config)
        seconds = round(time.perf_counter() - start, 4)
    return report, seconds, dict(collector.counters)


def test_unsafe_audit_bench(corpus, tmp_path):
    sources = [(f.name, f.text) for f in corpus.files]

    # Cold sweep over worker counts: identical bytes everywhere.
    timings = {}
    payloads = {}
    for jobs in JOBS_SWEEP:
        report, seconds, _ = _audit(sources, AnalysisConfig(jobs=jobs))
        timings[jobs] = seconds
        payloads[jobs] = json.dumps(report.to_dict(), sort_keys=False)
    for jobs in JOBS_SWEEP[1:]:
        assert payloads[jobs] == payloads[1], \
            f"audit differs between jobs=1 and jobs={jobs}"

    # Cold vs warm against a cache directory.  The warm path is
    # measured twice: summary tier only, then the full report tier.
    config = AnalysisConfig(cache_dir=str(tmp_path))
    cold_report, cold_seconds, cold = _audit(sources, config)
    summary_report, summary_seconds, summary_warm = _audit(
        sources, config.with_(report_cache=False))
    warm_report, warm_seconds, warm = _audit(sources, config)

    solved_cold = cold.get("analysis.executor.solved_functions", 0)
    assert solved_cold > 0
    # Summary tier: every component served from wave shards, zero
    # re-solves, one shard read per wave rather than one per entry.
    assert summary_warm.get("analysis.executor.solved_functions", 0) == 0
    assert summary_warm["analysis.cache.hit"] == \
        cold["analysis.cache.miss"]
    assert 0 < summary_warm["analysis.cache.shard_read"] < \
        summary_warm["analysis.cache.hit"]
    # Report tier: one hit per file, neither compile nor solve runs.
    assert warm["analysis.report_cache.hit"] == len(sources)
    assert warm.get("analysis.report_cache.miss", 0) == 0
    assert warm.get("analysis.executor.solved_functions", 0) == 0
    assert "analysis.cache.hit" not in warm
    for other in (summary_report, warm_report):
        assert json.dumps(other.to_dict()) == \
            json.dumps(cold_report.to_dict())
    assert json.dumps(cold_report.to_dict(), sort_keys=False) == payloads[1]

    # The ISSUE contract: a warm audit is at least 2× faster than cold.
    warm_speedup = round(cold_seconds / max(warm_seconds, 1e-9), 2)
    assert warm_speedup >= 2.0, \
        f"warm audit only {warm_speedup}x faster than cold"

    breakdown = cold_report.breakdown
    assert cold_report.total == sum(breakdown.values())
    assert cold_report.total > 0

    cpu_count = os.cpu_count() or 1
    payload = {
        "schema_version": "1.0",
        "host": {"cpu_count": cpu_count},
        "corpus": {
            "seed": SEED, "scale": SCALE,
            "files": len(corpus.files), "loc": corpus.total_loc,
        },
        "audit": {
            "seconds_by_jobs": {str(j): timings[j] for j in JOBS_SWEEP},
            "report_identical_across_jobs": True,
            "interior_unsafe_functions": cold_report.total,
            "breakdown": breakdown,
        },
        "summaries": {
            "solved_functions_cold": solved_cold,
            "solved_functions_warm": 0,
            "cache": {
                "cold_miss": cold.get("analysis.cache.miss", 0),
                "cold_store": cold.get("analysis.cache.store", 0),
                "warm_hit": summary_warm.get("analysis.cache.hit", 0),
                "warm_shard_reads": summary_warm.get(
                    "analysis.cache.shard_read", 0),
                "warm_report_hits": warm.get(
                    "analysis.report_cache.hit", 0),
            },
            "seconds_cold": cold_seconds,
            "seconds_warm_summary_tier": summary_seconds,
            "seconds_warm": warm_seconds,
            # warm_speedup (cold/warm, higher is better) replaces the
            # old warm_delta_seconds, whose "seconds" suffix made
            # bench-diff read a *bigger* saving as a regression.
            # Enforced by bench-diff even under --warn.
            "warm_speedup": warm_speedup,
        },
    }
    BENCH_UNSAFE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    round_trip = json.loads(BENCH_UNSAFE_PATH.read_text())
    assert round_trip["summaries"]["solved_functions_warm"] == 0
    assert round_trip["summaries"]["warm_speedup"] >= 2.0

    emit("interior-unsafe audit",
         f"audit seconds by jobs: {payload['audit']['seconds_by_jobs']}"
         f" (cpus: {cpu_count})\n"
         f"interior-unsafe fns: {cold_report.total} — "
         + ", ".join(f"{k}: {v}" for k, v in sorted(breakdown.items()))
         + f"\ncold: {solved_cold} summaries solved in {cold_seconds}s; "
           f"warm (summary tier): {summary_seconds}s; "
           f"warm (report tier): {warm_seconds}s "
           f"({warm_speedup}x vs cold)")
