"""§7 detector evaluation benchmark.

The paper: "our [use-after-free] detector found four previously unknown
bugs [with] three false positives" and "our [double-lock] detector has
identified six previously unknown double-lock bugs [with] no false
positives".  Here the ground truth is the injected-bug corpus, so we can
report exact recall and false-positive counts per detector — the *shape*
to preserve is both paper detectors finding real bugs, and the double-lock
detector staying FP-free.
"""

import pytest

from conftest import emit

from repro.corpus import evaluate_detectors, generate_corpus
from repro.detectors.double_lock import DoubleLockDetector
from repro.detectors.use_after_free import UseAfterFreeDetector


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(seed=0, scale=1)


def test_full_detector_suite(benchmark, corpus):
    result = benchmark(evaluate_detectors, corpus)
    rows = ["detector                  injected found FP  recall"]
    for name, injected, found, fps, recall in result.summary_rows():
        rows.append(f"{name:25} {injected:>8} {found:>5} {fps:>3} "
                    f"{recall:>6}")
    emit("§7 detector evaluation on the injected-bug corpus "
         f"({result.files} files, {result.loc} LOC)", "\n".join(rows))
    for name, score in result.scores.items():
        assert score.found == score.injected, f"{name}: {score.missed}"
        assert score.false_positives == 0, name


def test_uaf_detector_alone(benchmark, corpus):
    result = benchmark(evaluate_detectors, corpus,
                       [UseAfterFreeDetector()])
    score = result.scores["use-after-free"]
    emit("§7.1 use-after-free detector (paper: 4 new bugs, 3 FPs)",
         f"injected {score.injected}, found {score.found}, "
         f"false positives {score.false_positives}")
    assert score.found == score.injected


def test_double_lock_detector_alone(benchmark, corpus):
    result = benchmark(evaluate_detectors, corpus, [DoubleLockDetector()])
    score = result.scores["double-lock"]
    emit("§7.2 double-lock detector (paper: 6 new bugs, 0 FPs)",
         f"injected {score.injected}, found {score.found}, "
         f"false positives {score.false_positives}")
    assert score.found == score.injected
    assert score.false_positives == 0
