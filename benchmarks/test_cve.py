"""CVE-class detector benchmarks → ``BENCH_cve.json``.

Three claims about the unwind-aware panic model, measured on the
``cve_like`` corpus profile (the RUSTSEC-advisory bug mix):

* **Unwind cost** — lowering unwind successor edges and landing pads
  into every may-panic CFG is cheap, and on the full combined corpus
  the end-to-end analysis wall with ``unwind_edges=True`` stays within
  **1.25×** of the ablated run (the ``unwind_wall_ratio`` contract; the
  same metric name is enforced by ``bench-diff`` against the committed
  baseline).
* **Determinism** — findings over the cve corpus are byte-identical at
  ``jobs`` 1/2/4 and across all three executor backends: unwind
  lowering happens before anything scans, fingerprints or ships a body,
  so the panic model cannot leak schedule or address-space detail.
* **Recall floor** — the profile injects one of each CVE-class template
  (panic-safety, bad-drop, uninit-exposure); the run must report
  exactly those, with zero findings on benign files.
"""

import itertools
import json
import os
import pathlib
import time

import pytest

from conftest import emit

from repro.analysis.config import AnalysisConfig
from repro.analysis.panic import ensure_unwind_edges
from repro.api import AnalysisSession
from repro.corpus import generate_corpus
from repro.corpus.generator import APP_PROFILES
from repro.detectors.registry import run_detectors
from repro.driver import compile_source

BENCH_CVE_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_cve.json"

SEED = 0
SCALE = 1
JOBS_SWEEP = (1, 2, 4)
BACKENDS = AnalysisConfig.EXECUTOR_BACKENDS
#: The unwind model's wall-overhead contract: analysing with unwind
#: edges and landing pads must cost at most this multiple of the
#: ablated (--no-unwind-edges) analysis.
MAX_UNWIND_WALL_RATIO = 1.25
WALL_REPS = 3


@pytest.fixture(scope="module")
def corpus():
    """The cve_like profile alone — the labelled workload for the
    determinism sweep and the recall floor."""
    return generate_corpus(
        seed=SEED, scale=SCALE,
        profiles={"cve_like": APP_PROFILES["cve_like"]})


@pytest.fixture(scope="module")
def full_corpus_source():
    """All profiles combined — the wall-ratio contract is measured on a
    workload big enough that fixed per-run overhead cancels out."""
    return generate_corpus(seed=SEED, scale=SCALE).combined_source()


def _findings_payload(corpus, config):
    """Corpus-wide findings as one canonical JSON string."""
    with AnalysisSession(config) as session:
        reports = session.analyze_sources(
            [(f.name, f.text) for f in corpus.files])
    return json.dumps([r.to_dict() for r in reports], sort_keys=False)


def _analysis_wall(source, unwind_edges):
    """Best-of-N wall for a full fresh analysis (summaries + all
    detectors).  Each reading compiles a fresh program: unwind lowering
    mutates bodies in place, so a reused program would make the ablated
    config analyse an already-lowered CFG."""
    config = AnalysisConfig(unwind_edges=unwind_edges)
    best = None
    for _ in range(WALL_REPS):
        program = compile_source(source, name="cve_corpus").program
        start = time.perf_counter()
        run_detectors(program, config=config)
        wall = time.perf_counter() - start
        best = wall if best is None else min(best, wall)
    return best


def test_cve_bench(benchmark, corpus, full_corpus_source):
    source = corpus.combined_source()

    # -- unwind lowering cost over the whole-corpus program --------------
    program = compile_source(source, name="cve_corpus").program
    start = time.perf_counter()
    for body in program.functions.values():
        ensure_unwind_edges(body)
    lowering_seconds = round(time.perf_counter() - start, 4)
    cleanup_blocks = sum(1 for body in program.functions.values()
                         for block in body.blocks if block.cleanup)
    unwind_edges = sum(
        1 for body in program.functions.values() for block in body.blocks
        if block.terminator is not None
        and block.terminator.unwind is not None)
    assert cleanup_blocks > 0 and unwind_edges > 0

    # -- wall-overhead contract: unwind on vs ablated --------------------
    def measure_walls():
        return (_analysis_wall(full_corpus_source, True),
                _analysis_wall(full_corpus_source, False))

    wall_on, wall_off = benchmark(measure_walls)
    unwind_wall_ratio = round(wall_on / wall_off, 3)
    assert unwind_wall_ratio <= MAX_UNWIND_WALL_RATIO, (
        f"unwind_edges=True costs {unwind_wall_ratio}x the ablated "
        f"analysis (contract: <= {MAX_UNWIND_WALL_RATIO}x)")

    # -- determinism sweep: jobs × backends ------------------------------
    timings = {}
    payloads = {}
    for jobs, backend in itertools.product(JOBS_SWEEP, BACKENDS):
        config = AnalysisConfig(jobs=jobs, executor_backend=backend)
        start = time.perf_counter()
        payloads[(jobs, backend)] = _findings_payload(corpus, config)
        timings[(jobs, backend)] = round(time.perf_counter() - start, 4)
    reference = payloads[(1, "process")]
    for key, payload in payloads.items():
        assert payload == reference, \
            f"cve findings differ at jobs={key[0]} backend={key[1]}"

    # -- recall floor / zero-FP over the labelled corpus -----------------
    reports = json.loads(reference)
    found = []
    for file, report in zip(corpus.files, reports):
        if file.injected:
            expected = {bug.template.detector for bug in file.injected}
            hits = [f for f in report["findings"]
                    if f["detector"] in expected]
            extras = [f for f in report["findings"]
                      if f["detector"] not in expected]
            assert hits and not extras, (file.name, report["findings"])
            found.extend(hits)
        else:
            assert not report["findings"], (file.name, report["findings"])
    injected = corpus.injected
    detectors_hit = sorted(f["detector"] for f in found)
    assert len(found) == len(injected) == 3, (detectors_hit, len(injected))
    assert detectors_hit == ["bad-drop", "panic-safety", "uninit-exposure"]

    payload = {
        "schema_version": "1.0",
        "host": {"cpu_count": os.cpu_count() or 1},
        "corpus": {
            "seed": SEED, "scale": SCALE, "profile": "cve_like",
            "files": len(corpus.files), "loc": corpus.total_loc,
        },
        "unwind_lowering": {
            "bodies": len(program.functions),
            "cleanup_blocks": cleanup_blocks,
            "unwind_edges": unwind_edges,
            "lowering_seconds": lowering_seconds,
        },
        "analysis": {
            "wall_workload": "combined corpus, all profiles",
            "wall_unwind_on_seconds": round(wall_on, 4),
            "wall_unwind_off_seconds": round(wall_off, 4),
            # `bench-diff` enforces any *wall_ratio* metric (direction:
            # lower) even in --warn mode; the in-test assert above pins
            # the absolute 1.25x contract.
            "unwind_wall_ratio": unwind_wall_ratio,
            "max_unwind_wall_ratio": MAX_UNWIND_WALL_RATIO,
        },
        "detector": {
            "findings": len(found),
            "injected": len(injected),
            "recall": 1.0,
            "false_positives": 0,
            "seconds_by_jobs_backend": {
                f"{j}/{b}": timings[(j, b)]
                for j, b in itertools.product(JOBS_SWEEP, BACKENDS)},
            "identical_across_jobs_and_backends": True,
        },
    }
    BENCH_CVE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    round_trip = json.loads(BENCH_CVE_PATH.read_text())
    assert round_trip["detector"]["recall"] == 1.0
    assert round_trip["detector"]["false_positives"] == 0

    emit("cve-class detectors on the unwind-aware CFG",
         f"unwind lowering: {cleanup_blocks} landing pads, "
         f"{unwind_edges} unwind edges over {len(program.functions)} "
         f"bodies in {lowering_seconds}s\n"
         f"analysis wall: {round(wall_on, 4)}s with unwind edges vs "
         f"{round(wall_off, 4)}s ablated "
         f"(ratio {unwind_wall_ratio}, contract <= "
         f"{MAX_UNWIND_WALL_RATIO})\n"
         f"findings: {len(found)}/{len(injected)} injected recalled, "
         f"0 false positives; byte-identical across jobs "
         f"{list(JOBS_SWEEP)} x backends {list(BACKENDS)}")
