"""Benchmarks regenerating Figures 1 and 2."""

from conftest import emit

from repro.study import dataset, figures, tables


def test_fig1_rust_history(benchmark):
    releases = benchmark(figures.fig1_rust_history)
    rows = [[r.version, r.date.isoformat(), r.feature_changes, r.kloc]
            for r in releases]
    emit("Figure 1. Rust History (feature changes per release, total KLOC)",
         tables.render_table(["Version", "Date", "Feature changes", "KLOC"],
                             rows))
    # The paper's envelope: churn collapses after Jan 2016, LOC grows.
    before = [r.feature_changes for r in releases
              if r.date < figures.STABLE_SINCE]
    after = [r.feature_changes for r in releases
             if r.date >= figures.STABLE_SINCE]
    assert min(before) > max(after)
    kloc = [r.kloc for r in releases]
    assert kloc == sorted(kloc)


def _rebuild_timeline():
    records = dataset._build_all()
    return figures.fig2_bug_fix_timeline(records)


def test_fig2_bug_fix_timeline(benchmark):
    timeline = benchmark(_rebuild_timeline)
    lines = []
    for project, series in sorted(timeline.items()):
        pretty = " ".join(f"{quarter}:{count}"
                          for quarter, count in series.items())
        lines.append(f"{project:12} {pretty}")
    emit("Figure 2. Time of Studied Bugs (fixes per quarter per project)",
         "\n".join(lines))
    total = sum(sum(s.values()) for s in timeline.values())
    assert total == 170
    assert figures.fig2_fixed_after_2016() == 145   # paper: "145 of 170"
