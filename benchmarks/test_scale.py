"""Parameter sweep: pipeline cost vs corpus scale.

The workload-generator sweep the deliverables require: how compile+detect
time grows with corpus size (the paper ran its detectors over whole
applications; linear-ish scaling is the property that makes that viable).
"""

import pytest

from conftest import emit

from repro.corpus import evaluate_detectors, generate_corpus


@pytest.mark.parametrize("scale", [1, 2, 4])
def test_detector_pipeline_scale(benchmark, scale):
    corpus = generate_corpus(seed=0, scale=scale)
    result = benchmark.pedantic(evaluate_detectors, args=(corpus,),
                                rounds=1, iterations=1)
    emit(f"scale={scale}",
         f"{len(corpus.files)} files, {corpus.total_loc} LOC, "
         f"{len(corpus.injected)} injections, "
         f"{result.total_findings} findings")
    for name, score in result.scores.items():
        assert score.found == score.injected, (scale, name, score.missed)
        assert score.false_positives == 0, (scale, name)
