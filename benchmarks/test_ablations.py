"""Ablation benchmarks for the design choices DESIGN.md calls out.

* double-lock intra-procedural only vs inter-procedural (recall);
* use-after-free with vs without the interprocedural return summaries
  (the Figure 7 case needs them);
* schedule exploration: how many seeds manifest an injected deadlock
  dynamically (the Miri-style "needs a triggering input" limitation the
  paper describes for dynamic tools).
"""

import pytest

from conftest import emit

from repro.analysis.config import AnalysisConfig
from repro.corpus import evaluate_detectors, generate_corpus
from repro.detectors.base import AnalysisContext
from repro.detectors.double_lock import DoubleLockDetector
from repro.detectors.use_after_free import UseAfterFreeDetector
from repro.driver import compile_source
from repro.mir.interp import ScheduleConfig, explore_schedules, run_program


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(seed=0, scale=1)


@pytest.mark.benchmark(group="double-lock-ablation")
def test_double_lock_interprocedural(benchmark, corpus):
    result = benchmark(evaluate_detectors, corpus,
                       [DoubleLockDetector(interprocedural=True)])
    score = result.scores["double-lock"]
    emit("double-lock, inter-procedural",
         f"found {score.found}/{score.injected}")
    assert score.found == score.injected


@pytest.mark.benchmark(group="double-lock-ablation")
def test_double_lock_intraprocedural_only(benchmark, corpus):
    result = benchmark(evaluate_detectors, corpus,
                       [DoubleLockDetector(interprocedural=False)])
    score = result.scores["double-lock"]
    emit("double-lock, intra-procedural only",
         f"found {score.found}/{score.injected} "
         f"(misses the callee-locks cases: {score.missed})")
    # The inter-procedural cases are missed without summaries.
    assert score.found < score.injected


FIG7 = """
struct BioSlice { v: i32 }
impl BioSlice {
    fn new(data: i32) -> BioSlice { BioSlice { v: data } }
    fn as_ptr(&self) -> *const BioSlice {
        &self.v as *const i32 as *const BioSlice
    }
}
fn sign(data: Option<i32>) {
    let p = match data {
        Some(d) => BioSlice::new(d).as_ptr(),
        None => ptr::null_mut(),
    };
    unsafe { let cms = CMS_sign(p); }
}
"""


@pytest.mark.benchmark(group="uaf-ablation")
def test_uaf_with_return_summaries(benchmark):
    def run():
        compiled = compile_source(FIG7)
        ctx = AnalysisContext(compiled.program)
        return UseAfterFreeDetector().run(ctx)
    findings = benchmark(run)
    emit("use-after-free with interprocedural return summaries (Figure 7)",
         f"findings: {len(findings)}")
    assert findings


@pytest.mark.benchmark(group="uaf-ablation")
def test_uaf_without_return_summaries(benchmark):
    def run():
        compiled = compile_source(FIG7)
        ctx = AnalysisContext(compiled.program,
                              AnalysisConfig(interprocedural=False))
        return UseAfterFreeDetector().run(ctx)
    findings = benchmark(run)
    emit("use-after-free without return summaries",
         f"findings: {len(findings)} (Figure 7 needs the summary to see "
         f"that as_ptr() aliases its receiver)")
    assert not findings


RACE_PRONE = """
struct Inner { m: i32 }
fn connect(m: i32) -> Result<i32, i32> { Ok(m) }
fn main() {
    let client = RwLock::new(Inner { m: 5 });
    match connect(client.read().unwrap().m) {
        Ok(x) => {
            let mut inner = client.write().unwrap();
            inner.m = x;
        }
        Err(e) => {}
    };
}
"""


def test_schedule_exploration_manifests_deadlock(benchmark):
    """Dynamic checking à la Miri: the bug manifests only when executed.
    Here the self-deadlock manifests under *every* schedule (it is not
    interleaving-dependent), illustrating the static detector's advantage
    of not needing an input at all."""
    program = compile_source(RACE_PRONE).program
    results = benchmark(explore_schedules, program, "main", list(range(4)),
                        3)
    outcomes = [r.outcome for r in results]
    emit("schedule exploration over Figure 8",
         f"outcomes across seeds: {outcomes}")
    assert all(o == "deadlock" for o in outcomes)


def test_static_vs_dynamic_cost(benchmark):
    """The paper's pitch for static checking: one pass over MIR versus one
    execution per (input, schedule) pair."""
    compiled = compile_source(RACE_PRONE)

    def static_pass():
        ctx = AnalysisContext(compiled.program)
        return DoubleLockDetector().run(ctx)

    findings = benchmark(static_pass)
    assert findings
