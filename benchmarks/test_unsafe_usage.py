"""§4 unsafe-usage benchmarks: the published statistics plus the same
pipeline run live over the synthetic corpus."""

from conftest import emit

from repro.corpus import generate_corpus
from repro.study import tables
from repro.study.taxonomy import UnsafeOpKind
from repro.study.unsafe_scan import scan_sources


def test_section4_published_statistics(benchmark):
    stats = benchmark(tables.section4_unsafe_usage)
    emit("§4 unsafe usages (paper: 4990 total = 3665 blocks + 1302 fns + "
         "23 traits; std: 1581/861/12)",
         f"apps: {stats['apps_total']} = {stats['apps_blocks']} blocks + "
         f"{stats['apps_fns']} fns + {stats['apps_traits']} traits; "
         f"std: {stats['std_blocks']}/{stats['std_fns']}/"
         f"{stats['std_traits']}")
    emit("§4.1 operations (paper: 66% memory / 29% unsafe calls)",
         str(stats["operations_pct"]))
    emit("§4.1 purposes (paper: 42% reuse / 22% perf / 14% sharing)",
         str(stats["purposes_pct"]))
    assert stats["operations_pct"]["unsafe memory operation"] == 66
    assert stats["purposes_pct"]["reuse existing code"] == 42


def test_section4_removals(benchmark):
    removals = benchmark(tables.section4_removals)
    emit("§4.2 unsafe removals (paper: 130 cases, 61%/24%/10%/3%/2%; "
         "43 to safe, 48+29+10 to interior unsafe)", str(removals))
    assert removals["reasons_pct"]["improve memory safety"] == 61
    assert removals["to_safe"] == 43


def test_section4_interior_audit(benchmark):
    audit = benchmark(tables.section4_interior_unsafe)
    emit("§4.3 interior-unsafe audit (paper: 58% rely on inputs/"
         "environment, 19 improperly encapsulated)", str(audit))
    assert audit["checks_pct"]["correct inputs / environment"] == 58
    assert audit["improper"] == 19


def _scan_corpus():
    corpus = generate_corpus(seed=0, scale=1)
    return scan_sources((f.name, f.text) for f in corpus.files), corpus


def test_corpus_unsafe_scan(benchmark):
    """The §4 pipeline end-to-end on generated code: unsafe blocks are the
    dominant marker and memory operations dominate unsafe statements, the
    same shape as the paper's Table-less §4 numbers."""
    result, corpus = benchmark(_scan_corpus)
    shares = result.operation_shares()
    emit("§4 live scan over the synthetic corpus",
         f"{corpus.total_loc} LOC, counts: {result.counts}, "
         f"operation shares: { {k: round(v, 2) for k, v in shares.items()} }, "
         f"interior-unsafe fns: {len(result.interior_unsafe_fns)}, "
         f"improperly encapsulated: {len(result.improperly_encapsulated)}")
    assert result.counts.blocks > result.counts.functions
    mem = shares.get(UnsafeOpKind.MEMORY_OPERATION.value, 0.0)
    calls = shares.get(UnsafeOpKind.UNSAFE_CALL.value, 0.0)
    other = shares.get(UnsafeOpKind.OTHER.value, 0.0)
    assert mem > other            # paper: memory ops dominate (66%)
    assert mem + calls > 0.8      # paper: 66% + 29% = 95%
