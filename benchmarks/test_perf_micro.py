"""§4.1 performance micro-benchmarks: the cost of safety checks.

The paper measures real Rust ("unsafe memory access with
slice::get_unchecked() is 4-5x faster than safe access with boundary
checking"; "unsafe memory copy with ptr::copy_nonoverlapping() is 23%
faster").  Our substrate is an interpreter, so absolute numbers differ;
the *mechanism* — the safe path executes a bounds/validity check per
access that the unsafe path skips — is identical, and the benchmarks
document the measured gap plus the executed-check counters that explain
it.
"""

import json
import pathlib

import pytest

from conftest import emit

from repro import obs
from repro.driver import compile_source, run_all_detectors
from repro.mir.interp import Interpreter, ScheduleConfig

N = 512

CHECKED_SUM = f"""
fn main() {{
    let v = vec![1; {N}];
    let mut total = 0;
    for i in 0..{N} {{
        total += v[i];
    }}
    println!("{{}}", total);
}}
"""

UNCHECKED_SUM = f"""
fn main() {{
    let v = vec![1; {N}];
    let mut total = 0;
    for i in 0..{N} {{
        unsafe {{ total += *v.get_unchecked(i); }}
    }}
    println!("{{}}", total);
}}
"""

CHECKED_COPY = f"""
fn main() {{
    let src = vec![7u8; {N}];
    let mut dst = vec![0u8; {N}];
    dst.copy_from_slice(&src);
    println!("{{}}", dst[{N} - 1]);
}}
"""

UNCHECKED_COPY = f"""
fn main() {{
    let src = vec![7u8; {N}];
    let mut dst = vec![0u8; {N}];
    unsafe {{
        ptr::copy_nonoverlapping(src.as_ptr(), dst.as_mut_ptr(), {N});
    }}
    println!("{{}}", dst[{N} - 1]);
}}
"""


def _run(program, disable_bounds=False):
    interp = Interpreter(program, schedule=ScheduleConfig(max_steps=10_000_000))
    if disable_bounds:
        interp.enable_bounds_checks = False
    result = interp.run()
    assert result.ok, result.error
    return interp


@pytest.fixture(scope="module")
def programs():
    out = {name: compile_source(src).program for name, src in [
        ("checked_sum", CHECKED_SUM), ("unchecked_sum", UNCHECKED_SUM),
        ("checked_copy", CHECKED_COPY), ("unchecked_copy", UNCHECKED_COPY),
    ]}
    # The "unsafe build": identical source, bounds checks not compiled in.
    out["uncompiled_checks"] = compile_source(
        CHECKED_SUM, emit_bounds_checks=False).program
    return out


@pytest.mark.benchmark(group="indexed-access")
def test_safe_indexing_with_bounds_checks(benchmark, programs):
    interp = benchmark(_run, programs["checked_sum"])
    emit("§4.1 safe indexing",
         f"bounds checks executed: {interp.bounds_checks} "
         f"(one per access, paper: 4-5x slowdown mechanism)")
    assert interp.bounds_checks >= N


@pytest.mark.benchmark(group="indexed-access")
def test_unsafe_get_unchecked(benchmark, programs):
    interp = benchmark(_run, programs["unchecked_sum"])
    emit("§4.1 get_unchecked",
         f"unchecked accesses: {interp.unchecked_accesses}, "
         f"bounds checks on the access path: 0")
    assert interp.unchecked_accesses >= N


@pytest.mark.benchmark(group="memcpy")
def test_safe_copy_from_slice(benchmark, programs):
    benchmark(_run, programs["checked_copy"])


@pytest.mark.benchmark(group="memcpy")
def test_unsafe_copy_nonoverlapping(benchmark, programs):
    benchmark(_run, programs["unchecked_copy"])


@pytest.mark.benchmark(group="bounds-ablation")
def test_ablation_bounds_checks_on(benchmark, programs):
    benchmark(_run, programs["checked_sum"])


@pytest.mark.benchmark(group="bounds-ablation")
def test_ablation_bounds_checks_off(benchmark, programs):
    """Same source compiled *without* the Len/Lt/Assert sequence — the
    faithful §4.1 comparison (rustc's unchecked access also simply lacks
    the check code).  Executed-step counts make the gap deterministic."""
    interp = benchmark(_run, programs["uncompiled_checks"])
    assert interp.bounds_checks == 0


def test_bounds_check_work_is_deterministic(benchmark, programs):
    """Deterministic form of the §4.1 claim: the checked build executes
    strictly more MIR steps per element than the unchecked build."""
    from repro.mir.interp import Interpreter

    def run_checked():
        checked = Interpreter(programs["checked_sum"],
                              schedule=ScheduleConfig(max_steps=10_000_000))
        return checked.run()

    checked_result = benchmark(run_checked)
    unchecked = Interpreter(programs["uncompiled_checks"],
                            schedule=ScheduleConfig(max_steps=10_000_000))
    unchecked_result = unchecked.run()
    assert checked_result.ok and unchecked_result.ok
    emit("§4.1 deterministic work comparison",
         f"checked build: {checked_result.steps} steps; unchecked build: "
         f"{unchecked_result.steps} steps; ratio "
         f"{checked_result.steps / unchecked_result.steps:.2f}x "
         f"(paper: 4-5x wall-clock on real hardware)")
    assert checked_result.steps > unchecked_result.steps


BENCH_OBS_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_obs.json"


def _full_pipeline():
    compiled = compile_source(CHECKED_SUM, name="bench://checked_sum")
    report = run_all_detectors(compiled)
    interp = Interpreter(compiled.program,
                         schedule=ScheduleConfig(max_steps=10_000_000))
    return report, interp.run()


def test_obs_trajectory_artifact():
    """Run the whole pipeline (compile → detectors → interpret) under the
    obs collector and write ``BENCH_obs.json`` — the per-phase timing
    trajectory compared between PRs (see EXPERIMENTS.md).

    The artifact also records what observation itself costs: the same
    pipeline timed with *no* collector installed (the tier-1 fast path)
    next to the collected run, so a PR that bloats the instrumentation
    fast path shows up in bench-diff as a rising overhead fraction.
    """
    from time import perf_counter

    assert obs.get_collector() is None
    started = perf_counter()
    _full_pipeline()
    no_collector_wall = perf_counter() - started

    started = perf_counter()
    with obs.collecting("bench-obs") as collector:
        report, result = _full_pipeline()
    with_collector_wall = perf_counter() - started
    assert result.ok, result.error

    payload = obs.write_json(collector, str(BENCH_OBS_PATH))
    payload["overhead"] = {
        "no_collector_wall_s": no_collector_wall,
        "with_collector_wall_s": with_collector_wall,
        # (with - without) / without; noisy on shared hosts, so the
        # assertion is existence/shape only — bench-diff watches trends.
        "collector_overhead_fraction":
            (with_collector_wall - no_collector_wall) / no_collector_wall
            if no_collector_wall > 0 else 0.0,
    }
    BENCH_OBS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    assert payload["overhead"]["no_collector_wall_s"] > 0.0
    assert payload["overhead"]["with_collector_wall_s"] > 0.0
    phases = payload["phases"]
    # The artifact must carry every front-end phase, the detector pass,
    # and the interpreter — the floors future perf PRs optimise against.
    for phase in ("compile", "compile.lex", "compile.parse",
                  "compile.hir-table", "compile.mir-lower", "detectors",
                  "interp.run"):
        assert phase in phases, f"missing phase {phase}"
        assert phases[phase] >= 0.0
    assert payload["counters"]["interp.steps"] == result.steps
    assert not report.findings, "benchmark program must be clean"

    round_trip = json.loads(BENCH_OBS_PATH.read_text())
    assert round_trip["phases"]["compile"] == phases["compile"]
    emit("obs trajectory",
         f"BENCH_obs.json: {len(phases)} phases, "
         f"compile {phases['compile'] * 1e3:.2f}ms, "
         f"detectors {phases['detectors'] * 1e3:.2f}ms, "
         f"interp {phases['interp.run'] * 1e3:.2f}ms")


BENCH_SUMMARIES_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_summaries.json"


def test_summary_engine_artifact(monkeypatch):
    """Compare the two interprocedural *schedules* over the corpus and
    write ``BENCH_summaries.json``.

    Both arms produce the identical product — the full
    :class:`FunctionSummary` lattice plus one detector-facing points-to
    per body — so the wall comparison is apples-to-apples:

    * **engine** — the production schedule: bottom-up over call-graph
      SCCs, worklist per component with early-exit re-queueing, so each
      acyclic function is summarised exactly once.
    * **legacy** — the pre-engine schedule (what
      ``compute_return_summaries`` still does for its one fact family):
      global Gauss-Seidel rounds over *all* functions until no summary
      changes, with no SCC ordering and no change tracking.

    (The benchmark originally timed ``compute_return_summaries`` itself
    as the legacy arm; that compared the engine's six summary families
    against legacy's one-and-a-half and mostly measured the product gap,
    not the schedule.)

    Each arm compiles its own fresh corpus: derived per-body state
    (scans, constraint skeletons) is cached on the MIR bodies, so a
    shared corpus would hand whichever arm runs second the first arm's
    warm caches.  Points-to constructions are counted by patching the
    shared entry point, making the schedule gap deterministic; the
    reference ``compute_return_summaries`` numbers are recorded as
    context.
    """
    import time

    from repro.analysis import engine as engine_mod
    from repro.analysis import points_to as points_to_mod
    from repro.analysis.engine import SummaryEngine
    from repro.analysis.panic import ensure_unwind_edges
    from repro.corpus.generator import generate_corpus

    corpus = generate_corpus(seed=0, scale=1)

    def fresh_programs():
        # Unwind lowering is a CFG pre-pass every schedule pays
        # identically (the engine constructor runs it idempotently);
        # doing it here keeps the timed region a pure scheduling
        # comparison instead of diluting the gap with a shared constant.
        programs = [compile_source(f.text, name=f.name).program
                    for f in corpus.files]
        for program in programs:
            for body in program.functions.values():
                ensure_unwind_edges(body)
        return programs

    total_functions = sum(len(p.functions) for p in fresh_programs())

    counter = {"n": 0}
    real_compute = points_to_mod.compute_points_to

    def counting_compute(*args, **kwargs):
        counter["n"] += 1
        return real_compute(*args, **kwargs)

    monkeypatch.setattr(points_to_mod, "compute_points_to",
                        counting_compute)
    monkeypatch.setattr(engine_mod, "compute_points_to", counting_compute)

    def measure(runs, trials=3):
        # Trials are interleaved across arms: the host's speed drifts on
        # multi-second scales (CPU quota replenishment, noisy
        # neighbours), so timing one arm's trials back-to-back hands
        # whichever arm runs first the slow phase and lets ordering
        # decide an enforcing comparison.  Round-robin sampling puts
        # every arm in every noise phase; per-round walls are kept so
        # callers can form *paired* ratios (same round, adjacent in
        # time), which cancel the drift far better than a ratio of
        # bests.  Compute counts are deterministic, so one trial's count
        # is every trial's count.
        import gc

        best = [None] * len(runs)
        walls = [[] for _ in runs]
        for _ in range(trials):
            for slot, run in enumerate(runs):
                programs = fresh_programs()
                # The previous arm's corpus (bodies, scans, summaries —
                # full of reference cycles) is garbage by now; collect
                # it OUTSIDE the timed window so its gen-2 pause doesn't
                # land inside whichever arm allocates next.
                gc.collect()
                counter["n"] = 0
                start = time.perf_counter()
                out = run(programs)
                wall = time.perf_counter() - start
                walls[slot].append(wall)
                if best[slot] is None or wall < best[slot][1]:
                    best[slot] = (counter["n"], wall, out)
        return best, walls

    def run_engine(programs):
        result = {}
        for program in programs:
            engine = SummaryEngine(program)
            for key in program.functions:
                engine.summary(key)
            for body in program.functions.values():
                engine.points_to(body)
            result.update(engine.return_summaries())
        return result

    def run_legacy_schedule(programs):
        from repro.analysis.summaries import FunctionSummary
        result = {}
        max_rounds = 0
        for program in programs:
            engine = SummaryEngine(program)
            engine._solved = True        # scheduling is done by hand here
            keys = list(program.functions)
            rounds = 0
            changed = True
            while changed:
                rounds += 1
                assert rounds <= 30, "naive schedule failed to converge"
                changed = False
                for key in keys:
                    body = program.functions[key]
                    pt = engine_mod.compute_points_to(body, engine._view)
                    engine._points_to[key] = pt
                    new = engine._summarize(body, pt, frozenset())
                    if new != engine._summaries.get(key):
                        engine._summaries[key] = new
                        changed = True
            max_rounds = max(max_rounds, rounds)
            for key in keys:
                engine.summary(key)
            for body in program.functions.values():
                engine.points_to(body)
            result.update(engine.return_summaries())
        return result, max_rounds

    def run_reference(programs):
        from repro.analysis.callgraph import build_call_graph
        for program in programs:
            summaries = points_to_mod.compute_return_summaries(program)
            build_call_graph(program).lock_summaries
            for body in program.functions.values():
                counting_compute(body, summaries)

    ((engine_computes, engine_wall, engine_returns),
     (legacy_computes, legacy_wall, (legacy_returns, legacy_rounds)),
     (ref_computes, ref_wall, _)), walls = measure(
        [run_engine, run_legacy_schedule, run_reference])

    # Same products: both schedules converge to the same fixpoint.
    assert engine_returns == legacy_returns
    assert engine_computes < legacy_computes, \
        (engine_computes, legacy_computes)
    assert engine_computes >= total_functions

    # Wall contract.  The load-bearing scheduling claim is the
    # deterministic compute-count gap above; the wall check guards
    # against a gross scheduling regression, not a photo finish.  On a
    # cold process the engine runs ~20% faster, but the scan/intern
    # memos of earlier PRs make the naive schedule's repeat rounds
    # nearly free once caches are warm (e.g. mid-suite), so the arms
    # converge toward parity there.  The contract is therefore a band
    # on the *median paired* ratio — each round's arms run adjacent in
    # time, cancelling the multi-second speed drift of a shared 1-CPU
    # host that a ratio of per-arm bests still sees.
    paired = sorted(e / l for e, l in zip(walls[0], walls[1]))
    wall_ratio = paired[len(paired) // 2]
    assert wall_ratio <= 1.25, (wall_ratio, walls[0], walls[1])

    payload = {
        "corpus": {"files": len(corpus.files), "loc": corpus.total_loc,
                   "functions": total_functions},
        "engine": {"points_to_computes": engine_computes,
                   "wall_s": round(engine_wall, 6)},
        "legacy": {"points_to_computes": legacy_computes,
                   "wall_s": round(legacy_wall, 6),
                   "rounds": legacy_rounds},
        "computes_ratio": round(legacy_computes / engine_computes, 3),
        "wall_ratio": round(wall_ratio, 3),
        "max_wall_ratio": 1.25,
        "return_summary_reference": {
            "points_to_computes": ref_computes,
            "wall_s": round(ref_wall, 6)},
    }
    BENCH_SUMMARIES_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    round_trip = json.loads(BENCH_SUMMARIES_PATH.read_text())
    assert round_trip["engine"]["points_to_computes"] == engine_computes
    emit("summary engine vs legacy schedule",
         f"corpus: {len(corpus.files)} files / {total_functions} fns; "
         f"points-to computes: engine {engine_computes}, legacy "
         f"{legacy_computes} ({payload['computes_ratio']}x); wall: engine "
         f"{engine_wall * 1e3:.1f}ms, legacy {legacy_wall * 1e3:.1f}ms, "
         f"paired ratio {wall_ratio:.3f} ({legacy_rounds} naive rounds)")


def test_intern_table_micro():
    """Intern-table micro-benchmark (tentpole satellite): summary atoms
    recur heavily across a program's summaries, so the per-analysis
    :class:`Interner` must collapse them to canonical objects — that
    identity is what makes the engine's per-iteration summary
    comparisons shortcut instead of re-hashing deep tuple trees.

    Measured facts land in an ``intern`` section of
    ``BENCH_summaries.json``: table size vs. atoms seen (the dedup
    factor) and the hit/miss split from a full corpus-file solve.
    """
    from repro.analysis.engine import SummaryEngine
    from repro.analysis.intern import Interner
    from repro.corpus.generator import generate_corpus

    # Direct table semantics: equal atoms in, one object out.
    table = Interner()
    atoms = [("static", f"LOCK_{i % 8}", (), "mutex") for i in range(256)]
    canon = [table.intern(tuple(a)) for a in atoms]
    assert len(table) == 8
    assert table.misses == 8 and table.hits == 248
    for i in range(8, 256):
        assert canon[i] is canon[i % 8]
    # Interned sets canonicalise as a whole (locksets repeat heavily).
    assert table.intern_set(atoms[:8]) is table.intern_set(atoms[:8])

    # Engine-level: the whole corpus solved as one program.  Hits must
    # dominate misses — the whole point is that atoms recur.
    corpus = generate_corpus(seed=0, scale=1)
    program = compile_source(corpus.combined_source(),
                             name="combined.rs").program
    with obs.collecting() as col:
        engine = SummaryEngine(program)
        for key in program.functions:
            engine.summary(key)
    hits = col.counters["analysis.intern.hits"]
    misses = col.counters["analysis.intern.misses"]
    size = col.gauges["analysis.intern.size"]
    assert misses > 0 and size == misses
    assert hits > misses, (hits, misses)

    # Every shared-access atom handed out by the solved summaries is
    # the canonical object: re-interning it is a pure identity hit.
    check = engine._intern
    before = check.hits
    for summary in engine._summaries.values():
        for access in summary.shared_accesses:
            assert check.intern(access) is access
    assert check.misses == size

    if BENCH_SUMMARIES_PATH.exists():
        payload = json.loads(BENCH_SUMMARIES_PATH.read_text())
        payload["intern"] = {
            "atoms_seen": hits + misses,
            "table_size": int(size),
            "hit_fraction": round(hits / (hits + misses), 4),
        }
        BENCH_SUMMARIES_PATH.write_text(
            json.dumps(payload, indent=2) + "\n")

    emit("intern table",
         f"combined corpus: {hits + misses} atoms interned -> "
         f"{int(size)} canonical ({hits} hits, "
         f"{hits / (hits + misses):.1%} hit rate)")


BENCH_RACE_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_race.json"


def test_race_detector_artifact():
    """Time the lockset data-race detector over the corpus and write
    ``BENCH_race.json`` — wall time plus finding counts, the floor a
    future detector-perf PR optimises against.

    The detector runs twice per file: alone (its marginal cost, the
    interesting number) and as part of the full suite (the share of the
    pipeline it occupies in practice).
    """
    import time

    from repro.corpus.generator import generate_corpus
    from repro.detectors.registry import detector_by_name, run_detectors

    corpus = generate_corpus(seed=0, scale=1)
    compiled = [compile_source(f.text, name=f.name) for f in corpus.files]
    race_detector = detector_by_name("data-race")()

    start = time.perf_counter()
    race_findings = 0
    files_with_races = 0
    for c in compiled:
        report = run_detectors(c.program, detectors=[race_detector],
                               source=c.source)
        if report.findings:
            files_with_races += 1
        race_findings += len(report.findings)
    race_wall = time.perf_counter() - start

    start = time.perf_counter()
    total_findings = 0
    for c in compiled:
        total_findings += len(run_detectors(c.program,
                                            source=c.source).findings)
    suite_wall = time.perf_counter() - start

    injected_races = sum(1 for bug in corpus.injected
                         if bug.template.detector == "data-race")
    assert race_findings >= injected_races, \
        (race_findings, injected_races)

    payload = {
        "corpus": {"files": len(corpus.files), "loc": corpus.total_loc,
                   "injected_races": injected_races},
        "race_detector": {"wall_s": round(race_wall, 6),
                          "findings": race_findings,
                          "files_with_findings": files_with_races},
        "full_suite": {"wall_s": round(suite_wall, 6),
                       "findings": total_findings},
    }
    BENCH_RACE_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    round_trip = json.loads(BENCH_RACE_PATH.read_text())
    assert round_trip["race_detector"]["findings"] == race_findings
    emit("lockset race detector over the corpus",
         f"BENCH_race.json: {race_findings} findings "
         f"({injected_races} injected) in {len(corpus.files)} files; "
         f"detector alone {race_wall * 1e3:.1f}ms, full suite "
         f"{suite_wall * 1e3:.1f}ms")
