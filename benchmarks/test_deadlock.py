"""Cross-thread deadlock engine benchmarks → ``BENCH_deadlock.json``.

Three claims about the lock-graph deadlock engine, measured on the
evaluation corpus:

* **Graph cost** — building the cross-thread lock graph over the whole
  corpus as one compilation unit (summaries already solved; the graph
  pass itself is the marginal cost) and searching it for bounded
  elementary cycles are both cheap relative to the summary fixpoint.
* **Determinism** — deadlock findings over the corpus are byte-identical
  at ``jobs`` 1/2/4 and across all three executor backends (process /
  persistent / thread): the graph is built from converged summaries, so
  schedule and address space cannot leak into it.
* **Recall floor** — the corpus carries one injection of each deadlock
  template (ABBA across threads, condvar-hold, channel-recv); the run
  must report at least those, with zero findings on benign files.
"""

import itertools
import json
import os
import pathlib
import time

import pytest

from conftest import emit

from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import SummaryEngine
from repro.api import AnalysisSession
from repro.corpus import generate_corpus
from repro.driver import compile_source

BENCH_DEADLOCK_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_deadlock.json"

SEED = 0
SCALE = 1
JOBS_SWEEP = (1, 2, 4)
BACKENDS = AnalysisConfig.EXECUTOR_BACKENDS


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(seed=SEED, scale=SCALE)


def _deadlock_payload(corpus, config):
    """Corpus-wide deadlock findings as one canonical JSON string."""
    with AnalysisSession(config) as session:
        reports = session.analyze_sources(
            [(f.name, f.text) for f in corpus.files])
    return json.dumps([r.to_dict() for r in reports], sort_keys=False)


def test_deadlock_bench(benchmark, corpus):
    # -- lock-graph build + cycle search on the whole-corpus program ----
    compiled = compile_source(corpus.combined_source(), name="corpus")
    engine = SummaryEngine(compiled.program, AnalysisConfig())
    engine.summaries_map()          # solve outside the timed region

    start = time.perf_counter()
    graph = engine.lock_graph()
    build_seconds = round(time.perf_counter() - start, 4)

    def search():
        return graph.deadlock_cycles(4)

    cycles = benchmark(search)
    start = time.perf_counter()
    graph.deadlock_cycles(4)
    search_seconds = round(time.perf_counter() - start, 4)
    # The corpus injects exactly one cross-thread ABBA; the same-thread
    # lock_order_pair cycle must NOT appear (its edges share one root).
    assert len(cycles) == 1, [c for c, _w in cycles]

    # -- determinism sweep: jobs × backends ------------------------------
    detector_config = AnalysisConfig(detectors=("deadlock",))
    timings = {}
    payloads = {}
    for jobs, backend in itertools.product(JOBS_SWEEP, BACKENDS):
        config = detector_config.with_(jobs=jobs, executor_backend=backend)
        start = time.perf_counter()
        payloads[(jobs, backend)] = _deadlock_payload(corpus, config)
        timings[(jobs, backend)] = round(time.perf_counter() - start, 4)
    reference = payloads[(1, "process")]
    for key, payload in payloads.items():
        assert payload == reference, \
            f"deadlock findings differ at jobs={key[0]} backend={key[1]}"

    # -- recall floor / zero-FP over the labelled corpus -----------------
    reports = json.loads(reference)
    found = []
    for file, report in zip(corpus.files, reports):
        findings = [f for f in report["findings"]
                    if f["detector"] == "deadlock"]
        if file.injected:
            found.extend(findings)
        else:
            assert not findings, (file.name, findings)
    injected = [b for b in corpus.injected
                if b.template.detector == "deadlock"]
    kinds = sorted(f["kind"] for f in found)
    assert len(found) == len(injected) == 3, (kinds, len(injected))
    assert kinds == ["condvar-hold-lock", "deadlock-cycle",
                     "recv-deadlock"]

    payload = {
        "schema_version": "1.0",
        "host": {"cpu_count": os.cpu_count() or 1},
        "corpus": {
            "seed": SEED, "scale": SCALE,
            "files": len(corpus.files), "loc": corpus.total_loc,
        },
        "lock_graph": {
            "nodes": len(graph.nodes),
            "edges": len(graph.edges),
            "thread_roots": len(graph.roots),
            "build_seconds": build_seconds,
            "cycle_search_seconds": search_seconds,
            "deadlock_cycles": len(cycles),
        },
        "detector": {
            "findings": len(found),
            "injected": len(injected),
            "recall": 1.0,
            "false_positives": 0,
            "seconds_by_jobs_backend": {
                f"{j}/{b}": timings[(j, b)]
                for j, b in itertools.product(JOBS_SWEEP, BACKENDS)},
            "identical_across_jobs_and_backends": True,
        },
    }
    BENCH_DEADLOCK_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    round_trip = json.loads(BENCH_DEADLOCK_PATH.read_text())
    assert round_trip["detector"]["recall"] == 1.0
    assert round_trip["detector"]["false_positives"] == 0

    emit("cross-thread deadlock engine",
         f"lock graph: {len(graph.nodes)} nodes, {len(graph.edges)} "
         f"edges, {len(graph.roots)} thread roots "
         f"(build {build_seconds}s, cycle search {search_seconds}s)\n"
         f"findings: {len(found)}/{len(injected)} injected recalled, "
         f"0 false positives; byte-identical across jobs "
         f"{list(JOBS_SWEEP)} x backends {list(BACKENDS)}")
