"""Static detectors vs Miri-style dynamic checking (paper §2.4 / §7).

The paper positions its static detectors against Miri: "The two dynamic
detectors rely on user-provided inputs that can trigger memory bugs."
Here both run over the same injected memory-bug templates: the static
suite sees them from MIR alone; the dynamic checker needs a driver
`main` that reaches the bug.  Both should agree on every template —
and the benchmark times the two pipelines.
"""

import pytest

from conftest import emit

from repro.corpus.inject import BUG_TEMPLATES
from repro.detectors.registry import run_detectors
from repro.driver import compile_source
from repro.mir.interp import ScheduleConfig, run_program

# (template, driver main reaching the bug, expected dynamic outcome)
CASES = [
    ("uaf_drop_deref", "fn main() { bug_X(); }", {"ub"}),
    ("uninit_read", "fn main() { unsafe { let v = bug_X(); } }", {"ub"}),
    ("invalid_free_assign", "fn main() { unsafe { bug_X(); } }", {"ub"}),
    ("double_free_ptr_read",
     "fn main() { bug_X(vec![1, 2, 3]); }", {"ub"}),
    ("overflow_unchecked", "fn main() { let b = bug_X(); }", {"ub"}),
    ("null_deref", "fn main() { bug_X(); }", {"ub"}),
    ("double_lock_match", """
fn main() {
    let inner = RwLock::new(InnerX { m: 1 });
    bug_X(&inner);
}""", {"deadlock"}),
    ("double_lock_if", """
fn main() {
    let m = Mutex::new(1);
    bug_X(&m);
}""", {"deadlock"}),
    ("condvar_no_notify", "fn main() { bug_X(); }", {"deadlock"}),
    ("once_recursion", "fn main() { bug_X(); }", {"deadlock"}),
    # The panic-path double free: statically a `panic-safety` finding,
    # dynamically UB *during unwinding* (the landing pad drops the value
    # `ptr::read` already duplicated).
    ("panic_between_read_and_write",
     "fn main() { bug_X(true); }", {"ub"}),
]

#: §6.1's "send on a full bounded channel" bug: the static channel
#: detector does not model buffer capacities, so only the dynamic
#: checker catches it — the honest converse of the static suite's
#: no-input advantage.
DYNAMIC_ONLY_SRC = """
fn main() {
    let (tx, rx) = sync_channel(1);
    tx.send(1);
    tx.send(2);
}
"""


def _sources():
    out = []
    for name, driver, expected in CASES:
        template = BUG_TEMPLATES[name]
        src = template.render("X") + driver.replace("bug_X", "bug_X")
        out.append((name, template, src, expected))
    return out


@pytest.fixture(scope="module")
def compiled_cases():
    return [(name, template, compile_source(src), expected)
            for name, template, src, expected in _sources()]


def test_static_suite_flags_every_template(benchmark, compiled_cases):
    def run_static():
        results = {}
        for name, template, compiled, _expected in compiled_cases:
            report = run_detectors(compiled.program)
            results[name] = {f.detector for f in report.findings}
        return results
    results = benchmark(run_static)
    rows = []
    for name, template, _c, _e in compiled_cases:
        hit = template.detector in results[name]
        rows.append(f"{name:22} static[{template.detector}]: "
                    f"{'HIT' if hit else 'MISS'}")
        assert hit, (name, results[name])
    emit("static detectors over the template suite", "\n".join(rows))


def test_dynamic_checker_agrees(benchmark, compiled_cases):
    def run_dynamic():
        outcomes = {}
        for name, _t, compiled, _e in compiled_cases:
            result = run_program(compiled.program,
                                 schedule=ScheduleConfig(max_steps=300_000))
            outcomes[name] = result.outcome
        return outcomes
    outcomes = benchmark(run_dynamic)
    rows = []
    for name, _t, _c, expected in compiled_cases:
        rows.append(f"{name:22} dynamic: {outcomes[name]} "
                    f"(expected {'/'.join(sorted(expected))})")
        assert outcomes[name] in expected, (name, outcomes[name])
    emit("Miri-style dynamic checking over the same templates "
         "(needs a driver input; static needed none)", "\n".join(rows))


#: Race templates cross-validated separately: the static lockset
#: detector's reports must be *dynamically manifestable* — some
#: interleaving of the same program, driven by the schedule seed, makes
#: the vector-clock race monitor fire on the same shared data.  A
#: statically-reported race no schedule can manifest would go in
#: ``RACE_WHITELIST`` with a justification; today it is empty.
RACE_CASES = ["race_unsync_counter", "race_arc_interior_mut",
              "race_lock_wrong_mutex"]
RACE_SEEDS = range(6)
RACE_WHITELIST: dict = {}


@pytest.fixture(scope="module")
def compiled_race_cases():
    out = []
    for name in RACE_CASES:
        template = BUG_TEMPLATES[name]
        src = template.render("X") + "\nfn main() { bug_X(); }\n"
        out.append((name, template, compile_source(src)))
    return out


def test_static_races_are_dynamically_manifestable(benchmark,
                                                   compiled_race_cases):
    """Every static data-race report on the deterministic templates is
    confirmed by the dynamic race monitor under some schedule seed (or
    is whitelisted as a known over-approximation)."""
    def run_both():
        rows = {}
        for name, _t, compiled in compiled_race_cases:
            report = run_detectors(compiled.program)
            static_hits = [f for f in report.findings
                           if f.detector == "data-race"]
            seeds_hit = []
            for seed in RACE_SEEDS:
                result = run_program(
                    compiled.program,
                    schedule=ScheduleConfig(seed=seed, quantum=2,
                                            max_steps=400_000),
                    detect_races=True)
                if result.races:
                    seeds_hit.append(seed)
            rows[name] = (len(static_hits), seeds_hit)
        return rows
    rows = benchmark(run_both)
    lines = []
    for name, _t, _c in compiled_race_cases:
        static_hits, seeds_hit = rows[name]
        lines.append(f"{name:24} static: {static_hits}  "
                     f"dynamic seeds: {seeds_hit or 'none'}")
        assert static_hits >= 1, f"{name}: static detector missed"
        if name not in RACE_WHITELIST:
            assert seeds_hit, \
                f"{name}: static race never manifested dynamically"
    emit("lockset detector vs vector-clock monitor on the race "
         "templates", "\n".join(lines))


#: Deadlock templates cross-validated like the races: every cycle /
#: blocking shape the lock-graph engine reports statically must
#: *manifest* under some interpreter schedule — a seed (and thread
#: quantum) whose interleaving parks every thread.  The channel shape
#: needs a coarser quantum than the ABBA (the sender must win the lock
#: race only after the receiver has it), hence the (seed, quantum) grid.
DEADLOCK_CASES = ["deadlock_abba_two_threads", "deadlock_condvar_hold",
                  "deadlock_channel_recv"]
DEADLOCK_SCHEDULES = [(seed, quantum)
                      for seed in range(6) for quantum in (2, 5)]


@pytest.fixture(scope="module")
def compiled_deadlock_cases():
    out = []
    for name in DEADLOCK_CASES:
        template = BUG_TEMPLATES[name]
        assert template.dynamic_entry
        src = template.render("X") + "\nfn main() { bug_X(); }\n"
        out.append((name, template, compile_source(src)))
    return out


def test_static_deadlocks_are_dynamically_manifestable(
        benchmark, compiled_deadlock_cases):
    """Each statically-reported deadlock is confirmed by the interpreter:
    some schedule drives the program into the all-threads-blocked
    outcome the finding predicts."""
    def run_both():
        rows = {}
        for name, _t, compiled in compiled_deadlock_cases:
            report = run_detectors(compiled.program)
            static_hits = [f for f in report.findings
                           if f.detector == "deadlock"]
            schedules_hit = []
            for seed, quantum in DEADLOCK_SCHEDULES:
                result = run_program(
                    compiled.program,
                    schedule=ScheduleConfig(seed=seed, quantum=quantum,
                                            max_steps=400_000))
                if result.outcome == "deadlock":
                    schedules_hit.append((seed, quantum))
            rows[name] = (static_hits, schedules_hit)
        return rows
    rows = benchmark(run_both)
    lines = []
    for name, _t, _c in compiled_deadlock_cases:
        static_hits, schedules_hit = rows[name]
        lines.append(f"{name:26} static: {len(static_hits)}  "
                     f"deadlocking schedules: {len(schedules_hit)}"
                     f"/{len(DEADLOCK_SCHEDULES)}")
        assert len(static_hits) == 1, \
            (name, [(f.detector, f.kind) for f in static_hits])
        assert schedules_hit, \
            f"{name}: static deadlock never manifested dynamically"
    emit("lock-graph deadlock engine vs interpreter schedules on the "
         "deadlock templates", "\n".join(lines))


def test_lock_protected_negative_clean_both_ways(benchmark):
    """The lock-protected counterpart is clean statically *and*
    dynamically — the detectors agree on the negative too."""
    from repro.corpus.benign import BENIGN_TEMPLATES
    src = BENIGN_TEMPLATES["locked_shared"]("X") \
        + "\nfn main() { run_guarded_X(); }\n"
    compiled = compile_source(src)
    report = run_detectors(compiled.program)
    assert not report.findings, [f.kind for f in report.findings]

    def run_dynamic():
        races = []
        for seed in RACE_SEEDS:
            result = run_program(
                compiled.program,
                schedule=ScheduleConfig(seed=seed, quantum=2,
                                        max_steps=400_000),
                detect_races=True)
            assert result.ok, result.error
            races.extend(result.races)
        return races
    races = benchmark(run_dynamic)
    emit("lock-protected negative: static findings 0, dynamic races "
         f"{len(races)} across seeds {list(RACE_SEEDS)}", "")
    assert not races


def test_panic_safety_cross_validation(benchmark):
    """The unwind model, validated in both directions.  The buggy
    template's static `panic-safety` finding manifests dynamically: the
    panicking driver reaches UB *during unwinding* (the landing pad
    frees what `ptr::read` duplicated), while the non-panicking driver
    is clean.  The guard-restores twin is clean both ways — its panic
    unwinds without UB and leaks nothing, because the duplication window
    closed before the panic."""
    from repro.corpus.benign import BENIGN_TEMPLATES
    buggy = BUG_TEMPLATES["panic_between_read_and_write"].render("X")
    benign = BENIGN_TEMPLATES["panic_guard_restores"]("X")
    programs = {
        ("buggy", True): compile_source(
            buggy + "\nfn main() { bug_X(true); }\n"),
        ("buggy", False): compile_source(
            buggy + "\nfn main() { bug_X(false); }\n"),
        ("benign", True): compile_source(
            benign + "\nfn main() { guarded_update_X(true); }\n"),
        ("benign", False): compile_source(
            benign + "\nfn main() { guarded_update_X(false); }\n"),
    }

    static = {key: run_detectors(compiled.program)
              for key, compiled in programs.items()}
    for key in (("buggy", True), ("buggy", False)):
        assert any(f.detector == "panic-safety"
                   for f in static[key].findings), key
    for key in (("benign", True), ("benign", False)):
        assert not static[key].findings, \
            [(f.detector, f.kind) for f in static[key].findings]

    def run_dynamic():
        return {key: run_program(compiled.program,
                                 schedule=ScheduleConfig(max_steps=100_000))
                for key, compiled in programs.items()}
    dynamic = benchmark(run_dynamic)
    assert dynamic[("buggy", True)].outcome == "ub", \
        dynamic[("buggy", True)].error
    assert dynamic[("buggy", False)].outcome == "ok"
    assert dynamic[("benign", True)].outcome == "panic", \
        dynamic[("benign", True)].error
    assert dynamic[("benign", True)].leaked == 0
    assert dynamic[("benign", False)].outcome == "ok"
    emit("panic-safety cross-validation",
         "buggy(panic):  static panic-safety HIT, dynamic "
         f"{dynamic[('buggy', True)].outcome} during unwind\n"
         "buggy(clean):  static panic-safety HIT (no input needed), "
         f"dynamic {dynamic[('buggy', False)].outcome}\n"
         "benign(panic): static 0 findings, dynamic "
         f"{dynamic[('benign', True)].outcome} "
         f"(leaked {dynamic[('benign', True)].leaked})\n"
         "benign(clean): static 0 findings, dynamic "
         f"{dynamic[('benign', False)].outcome}")


def test_dynamic_only_bounded_channel(benchmark):
    compiled = compile_source(DYNAMIC_ONLY_SRC)
    static_report = run_detectors(compiled.program)
    result = benchmark(run_program, compiled.program,
                       schedule=ScheduleConfig(max_steps=100_000))
    emit("dynamic-only case: send on a full bounded channel",
         f"static findings: {len(static_report.errors)} (expected 0 — "
         f"capacity is a runtime property); dynamic outcome: "
         f"{result.outcome}")
    assert result.outcome == "deadlock"
    assert not static_report.by_kind("send-full")
