"""Parallel + incremental executor benchmarks → ``BENCH_parallel.json``.

Three claims from the executor design, measured on the evaluation
corpus (the synthetic stand-in for the paper's five applications):

* **Determinism** — findings are byte-identical at every worker count
  and under every executor backend (process, persistent, thread).
* **Cold scaling** — wall-clock for ``jobs=1`` vs ``jobs=N`` whole-file
  fan-out.  The speedup assertion (>= 1.5x at ``jobs=4``) is gated on
  ``os.cpu_count()``: a single-core CI runner records the timings but
  cannot physically show a parallel win (the artifact says so
  explicitly via ``host.cpu_count`` and ``speedup_asserted``).
* **Serialization cost** — the persistent fork-server backend ships the
  compiled program to each worker once, so its per-run
  ``executor.pickle_bytes`` must undercut the per-task shipping of the
  plain process backend.  Byte counts are deterministic, so bench-diff
  enforces them even under ``--warn``.
* **Warm incrementality** — with a summary cache, an unchanged re-run
  re-solves nothing, and a *single-function edit* re-solves <10% of
  function summaries (the edited component plus summary-changed
  dependents only).
"""

import json
import os
import pathlib
import time

import pytest

from conftest import emit

from repro import obs
from repro.analysis.config import AnalysisConfig
from repro.api import AnalysisSession, analyze
from repro.corpus import generate_corpus

BENCH_PARALLEL_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_parallel.json"

SEED = 0
SCALE = 1
JOBS_SWEEP = (1, 2, 4)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(seed=SEED, scale=SCALE)


def _timed_sweep(corpus):
    """Cold-analyze the corpus at each worker count; returns
    ``(timings, reports_by_jobs)``."""
    sources = [(f.name, f.text) for f in corpus.files]
    timings = {}
    payloads = {}
    for jobs in JOBS_SWEEP:
        with AnalysisSession(AnalysisConfig(jobs=jobs)) as session:
            start = time.perf_counter()
            reports = session.analyze_sources(sources)
            timings[jobs] = round(time.perf_counter() - start, 4)
        payloads[jobs] = [json.dumps(r.to_dict(), sort_keys=False)
                          for r in reports]
    return timings, payloads


def _incremental_run(corpus, tmp_path):
    """Cold + warm + single-edit runs over the corpus as one combined
    program (one call graph, one summary cache)."""
    config = AnalysisConfig(cache_dir=str(tmp_path))
    # ``bench_tail`` sits at the very end so editing it shifts no other
    # function's spans — the honest single-function-edit scenario.
    base = corpus.combined_source() + "\nfn bench_tail() -> i32 { 1 }\n"
    edited = base.replace("fn bench_tail() -> i32 { 1 }",
                          "fn bench_tail() -> i32 { 2 }")

    def run(src):
        with obs.collecting() as collector:
            report = analyze(src, name="combined.rs", config=config)
        return report, dict(collector.counters)

    cold_report, cold = run(base)
    warm_report, warm = run(base)
    edit_report, edit = run(edited)
    return {
        "cold": cold, "warm": warm, "edit": edit,
        "reports": (cold_report, warm_report, edit_report),
    }


def _backend_fanout(corpus, jobs):
    """Solve the whole corpus as one combined program under each
    executor backend; returns ``(payloads_by_backend, counters)``."""
    src = corpus.combined_source()
    payloads = {}
    counters = {}
    for backend in ("process", "persistent", "thread"):
        config = AnalysisConfig(jobs=jobs, executor_backend=backend)
        with obs.collecting() as collector:
            report = analyze(src, name="combined.rs", config=config)
        payloads[backend] = json.dumps(report.to_dict(), sort_keys=False)
        counters[backend] = dict(collector.counters)
    return payloads, counters


def test_parallel_bench(corpus, tmp_path):
    timings, payloads = _timed_sweep(corpus)
    for jobs in JOBS_SWEEP[1:]:
        assert payloads[jobs] == payloads[1], \
            f"findings differ between jobs=1 and jobs={jobs}"

    inc = _incremental_run(corpus, tmp_path)
    cold, warm, edit = inc["cold"], inc["warm"], inc["edit"]
    cold_report, warm_report, edit_report = inc["reports"]

    total_components = cold["analysis.cache.miss"]
    total_functions = cold["analysis.executor.solved_functions"]
    assert cold.get("analysis.cache.hit", 0) == 0

    # Unchanged warm re-run: everything served from cache.
    assert warm.get("analysis.executor.solved_functions", 0) == 0
    assert warm["analysis.cache.hit"] == total_components
    assert json.dumps(warm_report.to_dict()) == \
        json.dumps(cold_report.to_dict())

    # Single-function edit: the <10% acceptance criterion.
    resolved = edit.get("analysis.executor.solved_functions", 0)
    resolve_fraction = resolved / total_functions
    assert 0 < resolved, "edited function must re-solve"
    assert resolve_fraction < 0.10, \
        f"re-solved {resolved}/{total_functions} summaries after a " \
        f"single-function edit"
    # The edit is behaviour-neutral, so findings match the base run.
    assert json.dumps(edit_report.to_dict()) == \
        json.dumps(cold_report.to_dict())

    cpu_count = os.cpu_count() or 1
    best_jobs = max(JOBS_SWEEP)
    speedup = round(timings[1] / timings[best_jobs], 3) \
        if timings[best_jobs] else None
    # A real assertion where the host can honour it: with >= 4 cores,
    # jobs=4 must beat jobs=1 by at least 1.5x on the whole-file
    # fan-out.  Single-core runners record the ratio but cannot
    # physically parallelise, so the artifact marks it unasserted.
    speedup_asserted = cpu_count >= best_jobs
    if speedup_asserted:
        assert speedup >= 1.5, \
            f"jobs={best_jobs} only {speedup}x faster on " \
            f"{cpu_count} cores"

    # Executor backends: identical findings, cheaper serialization for
    # the persistent fork-server (program shipped once, not per task).
    backend_payloads, backend_counters = _backend_fanout(corpus, best_jobs)
    assert backend_payloads["persistent"] == backend_payloads["process"]
    assert backend_payloads["thread"] == backend_payloads["process"]
    process_bytes = backend_counters["process"].get(
        "executor.pickle_bytes", 0)
    persistent_bytes = backend_counters["persistent"].get(
        "executor.pickle_bytes", 0)
    pool_used = process_bytes > 0 and persistent_bytes > 0
    if pool_used:
        assert persistent_bytes < process_bytes, \
            "persistent backend must pickle less than per-task shipping"
    assert backend_counters["thread"].get("executor.pickle_bytes", 0) == 0

    payload = {
        "schema_version": "1.0",
        "host": {"cpu_count": cpu_count},
        "corpus": {
            "seed": SEED, "scale": SCALE,
            "files": len(corpus.files), "loc": corpus.total_loc,
        },
        "cold_file_fanout": {
            "seconds_by_jobs": {str(j): timings[j] for j in JOBS_SWEEP},
            "speedup_at_max_jobs": speedup,
            "speedup_asserted": speedup_asserted,
            "speedup_floor": 1.5,
            "findings_identical_across_jobs": True,
        },
        "executor_backends": {
            "jobs": best_jobs,
            "findings_identical_across_backends": True,
            "pool_used": pool_used,
            # Deterministic byte counts — enforced by bench-diff.
            "process": {"pickle_bytes": process_bytes,
                        "tasks": backend_counters["process"].get(
                            "executor.tasks", 0)},
            "persistent": {"pickle_bytes": persistent_bytes,
                           "tasks": backend_counters["persistent"].get(
                               "executor.tasks", 0)},
        },
        "warm_incremental": {
            "combined_functions": total_functions,
            "combined_components": total_components,
            "cold": {
                "cache_miss": cold.get("analysis.cache.miss", 0),
                "cache_store": cold.get("analysis.cache.store", 0),
            },
            "warm_unchanged": {
                "cache_hit": warm.get("analysis.cache.hit", 0),
                "solved_functions":
                    warm.get("analysis.executor.solved_functions", 0),
            },
            "warm_single_edit": {
                "cache_miss": edit.get("analysis.cache.miss", 0),
                "cache_hit": edit.get("analysis.cache.hit", 0),
                "solved_functions": resolved,
                "resolve_fraction": round(resolve_fraction, 5),
            },
        },
    }
    BENCH_PARALLEL_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    round_trip = json.loads(BENCH_PARALLEL_PATH.read_text())
    assert round_trip["warm_incremental"]["warm_single_edit"][
        "resolve_fraction"] < 0.10

    emit("parallel + incremental executor",
         f"cold seconds by jobs: {payload['cold_file_fanout']['seconds_by_jobs']}"
         f" (cpus: {cpu_count})\n"
         f"warm unchanged: {warm.get('analysis.cache.hit', 0)} hits, "
         f"0 re-solved\n"
         f"single edit: {resolved}/{total_functions} summaries re-solved "
         f"({resolve_fraction:.2%}, target <10%)\n"
         f"backend pickle bytes at jobs={best_jobs}: "
         f"process {process_bytes}, persistent {persistent_bytes}")
