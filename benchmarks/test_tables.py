"""Benchmarks regenerating Tables 1-4 and the §5/§6 statistics.

Each benchmark rebuilds the full record set from scratch (the paper's
"aggregate the labelled bugs" step) and prints the table the paper prints.
Paper-vs-measured values are recorded in EXPERIMENTS.md; the tests in
tests/test_study.py assert exact equality with the published numbers.
"""

from conftest import emit

from repro.study import dataset, tables


def _rebuild_and_table1():
    records = dataset._build_all()
    return tables.table1_studied_software(records), \
        tables.table1_totals(records)


def test_table1_studied_software(benchmark):
    rows, totals = benchmark(_rebuild_and_table1)
    body = [[r["software"], r["start"], r["stars"], r["commits"], r["loc_k"],
             r["mem"], r["blk"], r["nblk"]] for r in rows]
    emit("Table 1. Studied Applications and Libraries",
         tables.render_table(
             ["Software", "Start", "Stars", "Commits", "KLOC", "Mem", "Blk",
              "NBlk"], body))
    emit("Totals (paper: 70 memory / 59 blocking / 41 non-blocking)",
         str(totals))
    assert totals["memory"] == 70
    assert totals["blocking"] == 59
    assert totals["non_blocking"] == 41


def _rebuild_and_table2():
    records = dataset._build_all()
    memory = [b for b in records if b.kind.value == "memory"]
    return tables.table2_memory_categories(memory)


def test_table2_memory_categories(benchmark):
    rows = benchmark(_rebuild_and_table2)
    headers = ["Category"] + [e.value for e in tables.TABLE2_EFFECT_ORDER] \
        + ["Total"]
    body = []
    for r in rows:
        body.append([r["category"]] +
                    [f"{r[e.value][0]} ({r[e.value][1]})"
                     for e in tables.TABLE2_EFFECT_ORDER] + [r["total"]])
    emit("Table 2. Memory Bugs Category "
         "(cells: count (count in interior-unsafe fn))",
         tables.render_table(headers, body))
    totals = {r["category"]: r["total"] for r in rows}
    assert totals == {"safe": 1, "unsafe": 23, "safe -> unsafe": 31,
                      "unsafe -> safe": 15}


def test_section5_fix_strategies(benchmark):
    fixes = benchmark(tables.section5_fix_strategies)
    emit("§5.2 Memory-bug fix strategies "
         "(paper: 30 / 22 / 9 / 9)", str(fixes))
    assert fixes["conditionally skip code"] == 30
    assert fixes["adjust lifetime"] == 22


def test_table3_blocking_sync(benchmark):
    rows = benchmark(tables.table3_blocking_sync)
    headers = ["Software"] + [c.value for c in tables.TABLE3_COLUMNS] + \
        ["Total"]
    body = [[r["software"]] + [r[c.value] for c in tables.TABLE3_COLUMNS] +
            [r["total"]] for r in rows]
    emit("Table 3. Types of Synchronization in Blocking Bugs",
         tables.render_table(headers, body))
    total = rows[-1]
    assert total["Mutex&Rwlock"] == 38 and total["total"] == 59


def test_section6_blocking(benchmark):
    def both():
        return (tables.section6_blocking_causes(),
                tables.section6_blocking_fixes())
    causes, fixes = benchmark(both)
    emit("§6.1 Blocking-bug causes (paper: 30 double lock / 7 order / ...)",
         str(causes["causes"]))
    emit("§6.1 Fixes (paper: 51/59 adjusted synchronisation, "
         "21 guard-lifetime)", str(fixes))
    assert causes["causes"]["double lock"] == 30
    assert fixes["adjusted synchronisation (total)"] == 51


def test_table4_data_sharing(benchmark):
    rows = benchmark(tables.table4_data_sharing)
    headers = ["Software"] + [c.value for c in tables.TABLE4_COLUMN_ORDER] \
        + ["Total"]
    body = [[r["software"]] + [r[c.value]
                               for c in tables.TABLE4_COLUMN_ORDER] +
            [r["total"]] for r in rows]
    emit("Table 4. How Threads Communicate", tables.render_table(headers,
                                                                 body))
    total = rows[-1]
    assert (total["Global"], total["Pointer"], total["Sync"], total["O.H."],
            total["Atomic"], total["Mutex"], total["MSG"]) == \
        (3, 12, 3, 5, 5, 10, 3)


def test_section6_nonblocking(benchmark):
    stats = benchmark(tables.section6_nonblocking_stats)
    emit("§6.2 Non-blocking stats (paper: 23 unsafe-shared / 15 safe / "
         "17 unsynchronised / 25 in safe code / 13 interior mutability)",
         str(stats))
    assert stats["share_via_unsafe"] == 23
    assert stats["in_safe_code"] == 25
