"""Memory-safety scan of OS-style code (the paper's §5, Redox-flavoured).

Redox contributed 20 of the 70 studied memory bugs, including Figure 6's
invalid free in relibc's ``_fdopen``.  This example builds a miniature
libc-style file layer containing three of the study's §5.1 patterns
(invalid free, uninitialised read, ptr::read double free), cross-checks
every static finding dynamically with the Miri-style interpreter, and
shows the §5.2 fixes.

Run with::

    python examples/os_memory_scan.py
"""

from repro import compile_source, run_all_detectors
from repro.mir.interp import run_program

FILE_LAYER = """
struct FileHandle { buf: Vec<u8>, fd: i32 }

// Figure 6: `*f = ...` drops the uninitialised old value.
unsafe fn fdopen(fd: i32) -> *mut FileHandle {
    let f = alloc(128) as *mut FileHandle;
    *f = FileHandle { buf: vec![0u8; 128], fd: fd };
    f
}

// §5.1 "reading uninitialized memory".
unsafe fn stat_inode() -> i32 {
    let meta = alloc(32) as *mut i32;
    let size = *meta;
    size
}

// §5.1 double free: ptr::read duplicates ownership.
fn clone_handle(h: FileHandle) {
    let original = h;
    unsafe {
        let duplicate = ptr::read(&original);
        drop(duplicate);
    }
}
"""

FILE_LAYER_FIXED = """
struct FileHandle { buf: Vec<u8>, fd: i32 }

// Fixed as in the paper: ptr::write does not drop the old value.
unsafe fn fdopen(fd: i32) -> *mut FileHandle {
    let f = alloc(128) as *mut FileHandle;
    ptr::write(f, FileHandle { buf: vec![0u8; 128], fd: fd });
    f
}

// Initialise before reading.
unsafe fn stat_inode() -> i32 {
    let meta = alloc(32) as *mut i32;
    ptr::write(meta, 0);
    let size = *meta;
    size
}

// Keep single ownership: forget the original after duplicating.
fn clone_handle(h: FileHandle) {
    let original = h;
    unsafe {
        let duplicate = ptr::read(&original);
        mem::forget(original);
        drop(duplicate);
    }
}
"""

DRIVERS = {
    "fdopen": 'fn main() { unsafe { let f = fdopen(3); } }',
    "stat_inode": 'fn main() { unsafe { let s = stat_inode(); print(s); } }',
    "clone_handle": """
fn main() {
    let h = FileHandle { buf: vec![1u8; 4], fd: 1 };
    clone_handle(h);
}""",
}


def scan(title: str, library: str) -> None:
    print(f"\n==== {title} " + "=" * max(0, 60 - len(title)))
    compiled = compile_source(library, name="file_layer.rs")
    report = run_all_detectors(compiled)
    print("static findings:")
    print("  " + report.render().replace("\n", "\n  "))

    print("dynamic confirmation (one interpreter run per entry point):")
    for fn_name, driver in DRIVERS.items():
        program = compile_source(library + driver).program
        result = run_program(program)
        detail = f" ({result.error})" if result.error else ""
        print(f"  {fn_name:14} -> {result.outcome}{detail}")


def main() -> None:
    scan("buggy file layer (Figure 6 + two §5.1 siblings)", FILE_LAYER)
    scan("fixed file layer (§5.2 strategies applied)", FILE_LAYER_FIXED)


if __name__ == "__main__":
    main()
