"""Regenerate the paper's full evaluation: Tables 1-4, Figures 1-2, the
§4/§5/§6 statistics, and the §7 detector evaluation on the synthetic
corpus.

Run with::

    python examples/study_report.py
"""

from repro.cli import main as cli_main
from repro.corpus import evaluate_detectors, generate_corpus
from repro.study import figures, tables


def main() -> None:
    cli_main(["tables", "--table", "1"])
    cli_main(["tables", "--table", "2"])
    cli_main(["tables", "--table", "3"])
    cli_main(["tables", "--table", "4"])

    print("Figure 1. Rust history (feature changes / KLOC per release)")
    for release in figures.fig1_rust_history():
        bar = "#" * (release.feature_changes // 100)
        print(f"  {release.version:10} {release.date}  "
              f"{release.feature_changes:5} {bar}")
    print()

    print("Figure 2. Studied-bug fixes per quarter")
    timeline = figures.fig2_bug_fix_timeline()
    for project, series in sorted(timeline.items()):
        total = sum(series.values())
        print(f"  {project:12} ({total:3} bugs) "
              + " ".join(f"{q}:{n}" for q, n in series.items()))
    print(f"  fixed after 2016: {figures.fig2_fixed_after_2016()} of 170 "
          f"(paper: 145)\n")

    print("Section 4 statistics")
    stats = tables.section4_unsafe_usage()
    print(f"  unsafe usages in apps: {stats['apps_total']} "
          f"({stats['apps_blocks']} blocks, {stats['apps_fns']} fns, "
          f"{stats['apps_traits']} traits)")
    print(f"  operations: {stats['operations_pct']}")
    print(f"  purposes:   {stats['purposes_pct']}")
    removals = tables.section4_removals()
    print(f"  removals: {removals['total']} cases, reasons "
          f"{removals['reasons_pct']}")
    audit = tables.section4_interior_unsafe()
    print(f"  interior-unsafe audit: {audit['checks_pct']} — "
          f"{audit['improper']} improperly encapsulated\n")

    print("Section 7: detector evaluation on the synthetic corpus")
    corpus = generate_corpus(seed=0, scale=1)
    result = evaluate_detectors(corpus)
    print(f"  corpus: {len(corpus.files)} files, {corpus.total_loc} LOC, "
          f"{len(corpus.injected)} injected bugs")
    for name, injected, found, fps, recall in result.summary_rows():
        print(f"  {name:24} injected={injected:<3} found={found:<3} "
              f"FP={fps:<2} recall={recall}")


if __name__ == "__main__":
    main()
