"""Lock audit of a blockchain-client-style service (the paper's §6.1).

Parity Ethereum contributed 27 of the study's 38 Mutex/RwLock blocking
bugs; this example builds a miniature engine in the same style — shared
state behind ``RwLock``, a sealing path, a peer table — runs the
double-lock and lock-order detectors, shows the lock-guard regions the
analysis computed, and demonstrates the paper's two fixes (saving the
scrutinee into a local; consistent acquisition order).

Run with::

    python examples/lock_audit.py
"""

from repro import compile_source
from repro.analysis.lifetime import compute_guard_regions
from repro.detectors.base import AnalysisContext
from repro.detectors.double_lock import DoubleLockDetector
from repro.detectors.lock_order import LockOrderDetector

ENGINE = """
struct ChainState { height: i32, sealed: i32 }

static PEERS: Mutex<i32> = Mutex::new(0);
static QUEUE: Mutex<i32> = Mutex::new(0);

fn validate(height: i32) -> Result<i32, i32> {
    if height > 0 { Ok(height) } else { Err(height) }
}

// Figure 8's shape: the read guard from the match scrutinee is still held
// when the arm takes the write lock on the same RwLock.
fn import_block(state: &RwLock<ChainState>) {
    match validate(state.read().unwrap().height) {
        Ok(h) => {
            let mut guard = state.write().unwrap();
            guard.height = h + 1;
        }
        Err(e) => {}
    };
}

// ABBA: the peer path locks PEERS then QUEUE ...
fn broadcast() {
    let peers = PEERS.lock().unwrap();
    let queue = QUEUE.lock().unwrap();
    print(*peers + *queue);
}

// ... while the queue path locks QUEUE then PEERS.
fn drain_queue() {
    let queue = QUEUE.lock().unwrap();
    let peers = PEERS.lock().unwrap();
    print(*peers + *queue);
}
"""

ENGINE_FIXED = """
struct ChainState { height: i32, sealed: i32 }

static PEERS: Mutex<i32> = Mutex::new(0);
static QUEUE: Mutex<i32> = Mutex::new(0);

fn validate(height: i32) -> Result<i32, i32> {
    if height > 0 { Ok(height) } else { Err(height) }
}

// The paper's fix: save the result to a local so the read guard's
// lifetime (and the implicit unlock) ends before the match.
fn import_block(state: &RwLock<ChainState>) {
    let result = validate(state.read().unwrap().height);
    match result {
        Ok(h) => {
            let mut guard = state.write().unwrap();
            guard.height = h + 1;
        }
        Err(e) => {}
    };
}

// Consistent PEERS -> QUEUE order on every path.
fn broadcast() {
    let peers = PEERS.lock().unwrap();
    let queue = QUEUE.lock().unwrap();
    print(*peers + *queue);
}

fn drain_queue() {
    let peers = PEERS.lock().unwrap();
    let queue = QUEUE.lock().unwrap();
    print(*peers + *queue);
}
"""


def audit(title: str, source: str) -> None:
    print(f"\n==== {title} " + "=" * max(0, 60 - len(title)))
    compiled = compile_source(source, name="engine.rs")
    ctx = AnalysisContext(compiled.program)

    body = compiled.program.functions["import_block"]
    regions = compute_guard_regions(body, ctx.points_to(body))
    print("lock-guard regions in import_block "
          "(the §7.2 'record this release time' analysis):")
    for region in regions:
        blocks = sorted({bb for bb, _i in region.points})
        print(f"  {region.kind:6} acquired in bb{region.acquire_block}, "
              f"guard held through blocks {blocks}")

    findings = []
    for detector in (DoubleLockDetector(), LockOrderDetector()):
        findings.extend(detector.run(ctx))
    if findings:
        print("findings:")
        for finding in findings:
            print("  " + finding.render(compiled.source))
    else:
        print("findings: none — the service is deadlock-clean")


def main() -> None:
    audit("buggy engine (Figure 8 + ABBA)", ENGINE)
    audit("fixed engine (paper's patches applied)", ENGINE_FIXED)


if __name__ == "__main__":
    main()
