// Figure 8 (§7.2): re-acquiring a Mutex while its guard is still live —
// Rust's implicit unlock has not run, so this self-deadlocks.
// Try:
//   minirust check   examples/figure8_double_lock.rs --profile
//   minirust explain examples/figure8_double_lock.rs
//   minirust run     examples/figure8_double_lock.rs   (deadlocks dynamically)

static STATE: Mutex<i32> = Mutex::new(0);

fn bump() {
    let mut g = STATE.lock().unwrap();
    *g += 1;
}

fn main() {
    let snapshot = STATE.lock().unwrap();
    bump();
    print(*snapshot);
}
