"""Dynamic concurrency checking: schedules, races, poisoning, fixes.

The paper (§2.4) notes that dynamic detectors "rely on user-provided
inputs that can trigger memory bugs" — for concurrency bugs the
*schedule* is part of the input.  This example drives the interpreter's
deterministic scheduler across seeds to manifest an atomicity violation
(the Figure 9 shape, de-atomicised), shows the race monitor and lock
poisoning, then applies the paper's fix and re-explores.

Run with::

    python examples/schedule_explorer.py
"""

from repro import compile_source, run_all_detectors
from repro.mir.interp import ScheduleConfig, explore_schedules, run_program
from repro.tools.fixes import suggest_fixes

RACY = """
struct Flag { taken: AtomicBool }
unsafe impl Sync for Flag {}
impl Flag {
    // Figure 9's check-then-act: both threads can pass the load before
    // either stores.
    fn try_take(&self) -> i32 {
        if self.taken.load() { return 0; }
        self.taken.store(true);
        return 1;
    }
}
fn main() {
    let flag = Arc::new(Flag { taken: AtomicBool::new(false) });
    let f2 = Arc::clone(&flag);
    let h = thread::spawn(move || f2.try_take());
    let mine = flag.try_take();
    let theirs = h.join().unwrap();
    println!("{}", mine + theirs);
}
"""

FIXED = RACY.replace(
    """        if self.taken.load() { return 0; }
        self.taken.store(true);
        return 1;""",
    """        if !self.taken.compare_and_swap(false, true) {
            return 1;
        }
        return 0;""")


def explore(title: str, source: str) -> None:
    print(f"\n==== {title} " + "=" * max(0, 58 - len(title)))
    program = compile_source(source).program
    outcomes = {}
    for seed in range(10):
        result = run_program(program, schedule=ScheduleConfig(
            seed=seed, quantum=1, max_steps=200_000))
        winners = result.stdout[0] if result.stdout else "?"
        outcomes.setdefault(winners, []).append(seed)
    print("sum of take_flag() winners per schedule seed "
          "(1 = exactly one thread won, 2 = both 'won'):")
    for value, seeds in sorted(outcomes.items()):
        print(f"  result {value}: seeds {seeds}")
    if "2" in outcomes:
        print("  -> the check-then-act window is real: some schedules let "
              "both threads claim the flag")
    else:
        print("  -> every interleaving yields exactly one winner")


def main() -> None:
    print("static findings on the racy version:")
    report = run_all_detectors(compile_source(RACY))
    for line in report.render().splitlines():
        print("  " + line)
    print("suggested fixes (from the paper's strategy catalogue):")
    for line in suggest_fixes(report.findings):
        print("  " + line)

    explore("racy try_take (Figure 9 shape)", RACY)
    explore("fixed with compare_and_swap", FIXED)

    print("\nlock poisoning across threads (§6.2 'poisoned mutex'):")
    poison = """
    fn main() {
        let data = Arc::new(Mutex::new(0));
        let d2 = Arc::clone(&data);
        let h = thread::spawn(move || {
            let g = d2.lock().unwrap();
            panic!("worker died holding the lock");
        });
        h.join();
        match data.lock() {
            Ok(g) => println!("lock ok"),
            Err(e) => println!("lock poisoned -> handled"),
        };
    }
    """
    result = run_program(compile_source(poison).program)
    print(f"  outcome={result.outcome}, stdout={result.stdout}")


if __name__ == "__main__":
    main()
