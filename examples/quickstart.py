"""Quickstart: compile MiniRust, inspect MIR, detect bugs, execute.

Run with::

    python examples/quickstart.py
"""

from repro import compile_source, run_all_detectors
from repro.mir.interp import run_program
from repro.mir.pretty import pretty_body

# The paper's canonical use-after-free shape: a raw pointer obtained from
# a Vec outlives the Vec.
SOURCE = """
fn main() {
    let v = vec![1, 2, 3];
    let p = v.as_ptr();
    drop(v);
    unsafe {
        let x = *p;
        print(x);
    }
}
"""


def main() -> None:
    print("== 1. compile to MIR " + "=" * 45)
    compiled = compile_source(SOURCE, name="quickstart.rs")
    print(pretty_body(compiled.program.functions["main"]))

    print("\n== 2. static detectors (the paper's §7 tooling) " + "=" * 18)
    report = run_all_detectors(compiled)
    print(report.render())

    print("\n== 3. dynamic check (Miri-style interpretation) " + "=" * 18)
    result = run_program(compiled.program)
    print(f"outcome: {result.outcome}")
    if result.error is not None:
        print(f"error:   {result.error}")

    print("\n== 4. the fix: read before dropping " + "=" * 31)
    fixed = SOURCE.replace("""    let p = v.as_ptr();
    drop(v);
    unsafe {
        let x = *p;
        print(x);
    }""", """    let p = v.as_ptr();
    unsafe {
        let x = *p;
        print(x);
    }
    drop(v);""")
    compiled_fixed = compile_source(fixed, name="quickstart_fixed.rs")
    print("static: ", run_all_detectors(compiled_fixed).render())
    result = run_program(compiled_fixed.program)
    print(f"dynamic: outcome={result.outcome}, stdout={result.stdout}")


if __name__ == "__main__":
    main()
