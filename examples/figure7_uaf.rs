// Figure 7 (§7.1): a raw pointer outliving its heap allocation.
// Try:
//   minirust check   examples/figure7_uaf.rs --profile
//   minirust explain examples/figure7_uaf.rs
//   minirust stats   examples/figure7_uaf.rs --json

fn main() {
    let v: Vec<i32> = Vec::new();
    let p: *const i32 = v.as_ptr();
    drop(v);
    unsafe { print(*p); }
}
