"""Command-line interface — a thin client over :mod:`repro.api`.

Subcommands::

    minirust check FILE... [--detector NAME]... [--json] [--profile]
                           [--jobs N] [--executor-backend B]
                           [--cache-dir DIR] [--no-cache]
                           [--deadlock-cycle-bound N]
                           [--trace-out T.json] [--flame-out F.folded]
                                               run static detectors
    minirust detectors                         list every detector name
    minirust explain FILE                      findings + provenance trails
    minirust run FILE [--seed N] [--races]     interpret (Miri-like)
    minirust mir FILE [--fn NAME]              dump MIR
    minirust scan FILE...                      §4 unsafe-usage scan
    minirust audit-unsafe FILE...|--corpus     §5 interior-unsafe audit
    minirust tables [--table N|all]            regenerate study tables
    minirust corpus [--scale N] [--seed N]     corpus + detector evaluation
    minirust stats FILE [--json] [--top N]     full-pipeline obs dump
    minirust bench-diff OLD NEW [--warn]       benchmark-regression diff
                        [--enforce REGEX]      (contract metrics exit 1
                                               even under --warn)

``--trace-out`` (also on ``audit-unsafe`` and ``corpus``) writes a
Chrome-trace/Perfetto timeline of the whole command — including worker
processes' solve spans re-parented under their waves; ``--flame-out``
writes folded flamegraph stacks from the same span tree.

Exit codes are uniform: 0 clean, 1 findings / failed run, 2 usage or
compile error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import obs
from repro.driver import (
    compile_file, compile_source, run_all_detectors, run_detectors,
)
from repro.lang.diagnostics import CompileError


def _analysis_config(args):
    """Build the one validated AnalysisConfig from CLI flags."""
    from repro.api import AnalysisConfig
    detector_names = tuple(getattr(args, "detector", ()) or ()) or None
    return AnalysisConfig(
        detectors=detector_names,
        jobs=getattr(args, "jobs", 1),
        executor_backend=getattr(args, "executor_backend", "process"),
        cache_dir=getattr(args, "cache_dir", None),
        use_cache=not getattr(args, "no_cache", False),
        unwind_edges=not getattr(args, "no_unwind_edges", False),
        deadlock_cycle_bound=getattr(args, "deadlock_cycle_bound", 4))


def _session_reports(args):
    """Analyze every FILE through one AnalysisSession; None on usage
    errors (already printed)."""
    from repro.api import AnalysisSession
    try:
        config = _analysis_config(args)
        with AnalysisSession(config) as session:
            return session.analyze_files(args.files)
    except ValueError as exc:
        # Unknown detector names and bad flag values land here — the
        # single validation point of the config object.
        print(str(exc), file=sys.stderr)
        return None


def _cmd_detectors(args) -> int:
    """Print every registry detector with its one-line description."""
    from repro.api import detector_catalog
    catalog = detector_catalog()
    if getattr(args, "json", False):
        print(json.dumps(catalog, indent=2))
        return 0
    width = max(len(entry["name"]) for entry in catalog)
    for entry in catalog:
        section = f" [§{entry['paper_section']}]" \
            if entry["paper_section"] else ""
        print(f"{entry['name']:<{width}}  {entry['description']}{section}")
    return 0


def _cmd_check(args) -> int:
    if args.list_detectors:
        return _cmd_detectors(args)
    if not args.files:
        print("usage: minirust check FILE... (or --list-detectors)",
              file=sys.stderr)
        return 2
    reports = _session_reports(args)
    if reports is None:
        return 2
    if args.json:
        if len(reports) == 1:
            payload = reports[0].to_dict()
        else:
            from repro.api import SCHEMA_VERSION
            payload = {"schema_version": SCHEMA_VERSION,
                       "reports": [r.to_dict() for r in reports]}
        collector = obs.get_collector()
        if collector is not None:
            payload["profile"] = collector.to_dict()
        print(json.dumps(payload, indent=2))
    else:
        for report in reports:
            if len(reports) > 1:
                print(f"== {report.name}")
            print(report.render())
            if args.advice and report.findings:
                from repro.tools.fixes import suggest_fixes
                print("\nsuggested fixes:")
                for line in suggest_fixes(report.findings):
                    print("  " + line)
    return 1 if any(r.findings for r in reports) else 0


def _cmd_explain(args) -> int:
    reports = _session_reports(args)
    if reports is None:
        return 2
    for report in reports:
        if len(reports) > 1:
            print(f"== {report.name}")
        print(report.explain())
    return 1 if any(r.findings for r in reports) else 0


def _cmd_stats(args) -> int:
    """Run the full static pipeline under a collector and dump the obs
    trace: per-phase spans, analysis cache counters, detector timings,
    and (``--top``) the hottest SCCs by summary-solve wall time."""
    installed_here = obs.get_collector() is None
    collector = obs.get_collector() or obs.install("minirust-stats")
    top = args.top if args.top is not None else 5
    try:
        compiled = compile_file(args.file)
        report = run_all_detectors(compiled)
        if args.run:
            from repro.mir.interp import ScheduleConfig, run_program
            run_program(compiled.program, schedule=ScheduleConfig())
        if args.json:
            payload = collector.to_dict()
            payload["phases"] = obs.phase_timings(collector)
            payload["hot_sccs"] = obs.hot_sccs(collector, top=top)
            payload["report"] = report.to_dict()
            print(json.dumps(payload, indent=2))
        else:
            print(obs.render_text(collector, top_sccs=top))
            print(f"-- findings: {len(report.findings)}")
    finally:
        if installed_here:
            obs.uninstall()
    return 0


def _cmd_bench_diff(args) -> int:
    """Benchmark-regression observatory: diff two BENCH_*.json artifacts
    (or directories of them) and flag directed changes past threshold."""
    from repro.obs.benchdiff import bench_diff
    try:
        report = bench_diff(args.old, args.new, threshold=args.threshold)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"bench-diff: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    if args.warn and report.exit_code:
        # ``--enforce REGEX`` carves enforced metrics out of warn mode:
        # a regression whose ``file:key`` matches still fails the run.
        # CI runs with --warn (host timing noise) but enforces the
        # contract metrics the benchmarks themselves gate on.
        import re as _re
        enforced = [d for d in report.regressions
                    if args.enforce
                    and _re.search(args.enforce, f"{d.file}:{d.key}")]
        if enforced:
            for d in enforced:
                print(f"bench-diff: enforced regression: "
                      f"{d.file}:{d.key} {d.old:.6g} -> {d.new:.6g}",
                      file=sys.stderr)
            return 1
        print("bench-diff: regressions found (exit 0 due to --warn)",
              file=sys.stderr)
        return 0
    return report.exit_code


def _cmd_run(args) -> int:
    from repro.mir.interp import ScheduleConfig, run_program
    compiled = compile_file(args.file)
    config = ScheduleConfig(seed=args.seed, quantum=args.quantum)
    result = run_program(compiled.program, entry=args.entry,
                         schedule=config, detect_races=args.races)
    for line in result.stdout:
        print(line)
    print(f"-- outcome: {result.outcome} ({result.steps} steps)")
    if result.error is not None:
        print(f"-- {result.error}")
    for race in result.races:
        print(f"-- race: {race.message}")
    return 0 if result.ok else 1


def _cmd_annotate(args) -> int:
    from repro.tools.annotate import (
        annotate_critical_sections, annotate_lifetimes,
    )
    compiled = compile_file(args.file)
    if args.fn not in compiled.program.functions:
        print(f"no function named {args.fn!r}", file=sys.stderr)
        return 2
    print(annotate_lifetimes(compiled, args.fn).render())
    sections = annotate_critical_sections(compiled, args.fn)
    if sections.critical_sections:
        print(sections.render())
    return 0


def _cmd_mir(args) -> int:
    from repro.mir.pretty import pretty_body, pretty_program
    compiled = compile_file(args.file)
    if args.fn:
        body = compiled.program.body(args.fn)
        if body is None:
            print(f"no function named {args.fn!r}", file=sys.stderr)
            return 2
        print(pretty_body(body))
    else:
        print(pretty_program(compiled.program))
    return 0


def _cmd_scan(args) -> int:
    from repro.study.unsafe_scan import scan_sources
    sources = []
    for path in args.files:
        with open(path, "r", encoding="utf-8") as f:
            sources.append((path, f.read()))
    result = scan_sources(sources)
    print(f"unsafe blocks:    {result.counts.blocks}")
    print(f"unsafe functions: {result.counts.functions}")
    print(f"unsafe traits:    {result.counts.traits}")
    print(f"unsafe impls:     {result.counts.impls}")
    print("operations:")
    for kind, count in sorted(result.operations.items(),
                              key=lambda kv: -kv[1]):
        print(f"  {kind.value}: {count}")
    print(f"interior-unsafe functions: {len(result.interior_unsafe_fns)}")
    improper = result.improperly_encapsulated
    if improper:
        print("improperly encapsulated:")
        for audit in improper:
            print(f"  {audit.fn_key}")
    return 0


def _cmd_audit_unsafe(args) -> int:
    """§5 interior-unsafe encapsulation audit: classify every
    interior-unsafe function as checked / unchecked / caller-delegated."""
    from repro.api import audit_unsafe
    if bool(args.files) == bool(args.corpus):
        print("usage: minirust audit-unsafe FILE... (or --corpus)",
              file=sys.stderr)
        return 2
    if args.corpus:
        from repro.corpus import generate_corpus
        corpus = generate_corpus(seed=args.seed, scale=args.scale)
        named = [(f.name, f.text) for f in corpus.files]
    else:
        named = []
        for path in args.files:
            with open(path, "r", encoding="utf-8") as f:
                named.append((path, f.read()))
    try:
        config = _analysis_config(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    result = audit_unsafe(named, config=config)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.render())
    return 0


def _cmd_tables(args) -> int:
    from repro.study import tables as t
    which = args.table
    if which in ("1", "all"):
        rows = t.table1_studied_software()
        print(t.render_table(
            ["Software", "Start", "Stars", "Commits", "KLOC", "Mem", "Blk",
             "NBlk"],
            [[r["software"], r["start"], r["stars"], r["commits"],
              r["loc_k"], r["mem"], r["blk"], r["nblk"]] for r in rows],
            title="Table 1. Studied Applications and Libraries."))
        print()
    if which in ("2", "all"):
        rows = t.table2_memory_categories()
        headers = ["Category"] + [e.value for e in t.TABLE2_EFFECT_ORDER] + \
            ["Total"]
        body = []
        for r in rows:
            body.append([r["category"]] +
                        [f"{r[e.value][0]} ({r[e.value][1]})"
                         if r[e.value][0] else "0"
                         for e in t.TABLE2_EFFECT_ORDER] + [r["total"]])
        print(t.render_table(headers, body,
                             title="Table 2. Memory Bugs Category."))
        print()
    if which in ("3", "all"):
        rows = t.table3_blocking_sync()
        headers = ["Software"] + [c.value for c in t.TABLE3_COLUMNS] + \
            ["Total"]
        body = [[r["software"]] + [r[c.value] for c in t.TABLE3_COLUMNS] +
                [r["total"]] for r in rows]
        print(t.render_table(
            headers, body,
            title="Table 3. Types of Synchronization in Blocking Bugs."))
        print()
    if which in ("4", "all"):
        rows = t.table4_data_sharing()
        headers = ["Software"] + [c.value for c in t.TABLE4_COLUMN_ORDER] + \
            ["Total"]
        body = [[r["software"]] + [r[c.value] for c in t.TABLE4_COLUMN_ORDER]
                + [r["total"]] for r in rows]
        print(t.render_table(headers, body,
                             title="Table 4. How Threads Communicate."))
        print()
    if which == "all":
        print("Section 4:", json.dumps(t.section4_unsafe_usage(), indent=2,
                                       default=str))
        print("Section 5.2:", json.dumps(t.section5_fix_strategies(),
                                         indent=2))
        print("Section 6.1:", json.dumps(t.section6_blocking_causes(),
                                         indent=2))
        print("Section 6.2:", json.dumps(t.section6_nonblocking_stats(),
                                         indent=2))
    return 0


def _cmd_corpus(args) -> int:
    from repro.corpus import evaluate_detectors, generate_corpus
    try:
        config = _analysis_config(args).with_(seed=args.seed)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    corpus = generate_corpus(seed=args.seed, scale=args.scale)
    print(f"corpus: {len(corpus.files)} files, {corpus.total_loc} LOC, "
          f"{len(corpus.injected)} injected bugs")
    result = evaluate_detectors(corpus, config=config)
    print(f"{'detector':24} {'injected':>8} {'found':>6} {'FP':>4} "
          f"{'recall':>7}")
    for name, injected, found, fps, recall in result.summary_rows():
        print(f"{name:24} {injected:>8} {found:>6} {fps:>4} {recall:>7}")
    return 0


def _add_backend_flag(p: argparse.ArgumentParser) -> None:
    """``--executor-backend`` for the commands that run the analysis
    pipeline; findings are byte-identical across backends."""
    p.add_argument("--executor-backend", default="process",
                   choices=["process", "persistent", "thread"],
                   dest="executor_backend",
                   help="how --jobs fans out: stateless worker "
                        "processes, a persistent fork-server pool "
                        "(MIR ships once), or threads")


def _add_unwind_flag(p: argparse.ArgumentParser) -> None:
    """``--no-unwind-edges`` ablation for the commands that run the
    analysis pipeline: the CFG keeps the pre-unwind straight-line-success
    shape and the panic-path detectors go quiet."""
    p.add_argument("--no-unwind-edges", action="store_true",
                   dest="no_unwind_edges",
                   help="ablation: analyse without unwind successor "
                        "edges and landing pads (panic-path detectors "
                        "go quiet)")


def _add_trace_flags(p: argparse.ArgumentParser) -> None:
    """``--trace-out``/``--flame-out`` for the commands that run the
    analysis pipeline (check / audit-unsafe / corpus)."""
    p.add_argument("--trace-out", default=None, metavar="TRACE.json",
                   help="write a Chrome-trace/Perfetto timeline of the "
                        "whole command (worker spans included)")
    p.add_argument("--flame-out", default=None, metavar="OUT.folded",
                   help="write folded flamegraph stacks "
                        "(flamegraph.pl / speedscope format)")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="minirust",
        description="MiniRust analysis toolkit (PLDI 2020 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="run static bug detectors")
    p.add_argument("files", nargs="*", default=[], metavar="FILE")
    p.add_argument("--detector", "--detectors", action="append",
                   default=[], dest="detector")
    p.add_argument("--list-detectors", action="store_true",
                   help="list every detector name and exit")
    p.add_argument("--advice", action="store_true",
                   help="print the paper's fix strategy for each finding")
    p.add_argument("--json", action="store_true",
                   help="emit the report (and profile, if any) as JSON")
    p.add_argument("--profile", action="store_true",
                   help="print the phase/detector timing tree")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for the analysis executor "
                        "(findings are identical at any N)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="content-addressed summary cache directory; warm "
                        "runs re-solve only changed functions")
    p.add_argument("--no-cache", action="store_true",
                   help="skip summary-cache lookups and stores")
    p.add_argument("--deadlock-cycle-bound", type=int, default=4,
                   metavar="N", dest="deadlock_cycle_bound",
                   help="longest lock-graph cycle the deadlock detector "
                        "searches for (default 4; real-world deadlocks "
                        "involve 2-3 locks)")
    _add_backend_flag(p)
    _add_unwind_flag(p)
    _add_trace_flags(p)
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser("detectors", help="list every registry detector "
                                         "with its description")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_detectors)

    p = sub.add_parser("explain", help="findings with their provenance "
                                       "trails")
    p.add_argument("files", nargs="+", metavar="FILE")
    p.add_argument("--detector", "--detectors", action="append",
                   default=[], dest="detector")
    p.add_argument("--jobs", type=int, default=1, metavar="N")
    p.add_argument("--cache-dir", default=None, metavar="DIR")
    p.add_argument("--no-cache", action="store_true")
    _add_backend_flag(p)
    _add_unwind_flag(p)
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser("run", help="interpret a program (Miri-like)")
    p.add_argument("file")
    p.add_argument("--entry", default="main")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--quantum", type=int, default=10)
    p.add_argument("--races", action="store_true")
    p.add_argument("--profile", action="store_true",
                   help="print interpreter timing and step counters")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("annotate", help="IDE-style lifetime and "
                                         "critical-section annotations")
    p.add_argument("file")
    p.add_argument("--fn", required=True)
    p.set_defaults(func=_cmd_annotate)

    p = sub.add_parser("mir", help="dump MIR")
    p.add_argument("file")
    p.add_argument("--fn", default=None)
    p.set_defaults(func=_cmd_mir)

    p = sub.add_parser("scan", help="unsafe-usage scan")
    p.add_argument("files", nargs="+")
    p.set_defaults(func=_cmd_scan)

    p = sub.add_parser("audit-unsafe",
                       help="classify interior-unsafe functions as "
                            "checked/unchecked/caller-delegated (§5)")
    p.add_argument("files", nargs="*", default=[], metavar="FILE")
    p.add_argument("--corpus", action="store_true",
                   help="audit the generated corpus instead of files")
    p.add_argument("--scale", type=int, default=1,
                   help="corpus scale (with --corpus)")
    p.add_argument("--seed", type=int, default=0,
                   help="corpus seed (with --corpus)")
    p.add_argument("--json", action="store_true",
                   help="emit the schema-versioned audit payload as JSON")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes (output identical at any N)")
    p.add_argument("--cache-dir", default=None, metavar="DIR")
    p.add_argument("--no-cache", action="store_true")
    _add_backend_flag(p)
    _add_unwind_flag(p)
    _add_trace_flags(p)
    p.set_defaults(func=_cmd_audit_unsafe)

    p = sub.add_parser("tables", help="regenerate the study tables")
    p.add_argument("--table", default="all", choices=["1", "2", "3", "4",
                                                      "all"])
    p.set_defaults(func=_cmd_tables)

    p = sub.add_parser("corpus", help="generate corpus and evaluate "
                                      "detectors")
    p.add_argument("--scale", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="analyze corpus programs across N worker "
                        "processes")
    p.add_argument("--cache-dir", default=None, metavar="DIR")
    p.add_argument("--no-cache", action="store_true")
    _add_backend_flag(p)
    _add_unwind_flag(p)
    p.add_argument("--profile", action="store_true",
                   help="print corpus generation/evaluation timings")
    _add_trace_flags(p)
    p.set_defaults(func=_cmd_corpus)

    p = sub.add_parser("stats", help="run the pipeline under the obs "
                                     "collector and dump its trace")
    p.add_argument("file")
    p.add_argument("--json", action="store_true")
    p.add_argument("--run", action="store_true",
                   help="also interpret the program")
    p.add_argument("--top", type=int, nargs="?", const=10, default=None,
                   metavar="N",
                   help="show the N hottest SCCs by solve time "
                        "(default 10 when given bare)")
    p.set_defaults(func=_cmd_stats)

    from repro.obs.benchdiff import DEFAULT_ENFORCE
    p = sub.add_parser("bench-diff",
                       help="compare two BENCH_*.json artifacts (or "
                            "directories) for perf regressions")
    p.add_argument("old", metavar="OLD",
                   help="baseline artifact file or directory")
    p.add_argument("new", metavar="NEW",
                   help="candidate artifact file or directory")
    p.add_argument("--threshold", type=float, default=None,
                   metavar="REL",
                   help="relative-change significance bar (default 0.10)")
    p.add_argument("--warn", action="store_true",
                   help="report regressions but exit 0 (CI warn mode)")
    p.add_argument("--enforce", default=DEFAULT_ENFORCE, metavar="REGEX",
                   help="regressions whose file:key matches REGEX exit 1 "
                        "even under --warn (default: the three contract "
                        "metrics; '' disables)")
    p.add_argument("--json", action="store_true",
                   help="emit the diff report as JSON")
    p.set_defaults(func=_cmd_bench_diff)

    args = parser.parse_args(argv)
    if getattr(args, "threshold", "absent") is None:
        from repro.obs.benchdiff import DEFAULT_THRESHOLD
        args.threshold = DEFAULT_THRESHOLD
    # `--profile` (and any trace/flame output request) turns on the obs
    # collector for the whole command; the timing tree prints after the
    # command's own output (inside the JSON payload when `--json` is also
    # given), and timeline/flame files are written last so they capture
    # every span the command recorded.
    profiling = getattr(args, "profile", False)
    trace_out = getattr(args, "trace_out", None)
    flame_out = getattr(args, "flame_out", None)
    collector = obs.install("minirust") \
        if (profiling or trace_out or flame_out) else None
    try:
        code = args.func(args)
        if collector is not None and profiling \
                and not getattr(args, "json", False):
            print(collector.render())
        if collector is not None and trace_out:
            obs.write_chrome_trace(collector, trace_out)
            print(f"trace written to {trace_out} "
                  f"(load in ui.perfetto.dev or chrome://tracing)",
                  file=sys.stderr)
        if collector is not None and flame_out:
            obs.write_folded(collector, flame_out)
            print(f"folded stacks written to {flame_out}",
                  file=sys.stderr)
        return code
    except CompileError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except OSError as exc:
        if isinstance(exc, BrokenPipeError):
            # Output piped into a pager that closed early (e.g. `| head`).
            try:
                sys.stdout.close()
            except OSError:
                pass
            return 0
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if collector is not None:
            obs.uninstall()


if __name__ == "__main__":
    sys.exit(main())
