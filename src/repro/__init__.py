"""repro — reproduction of the PLDI 2020 Rust safety study.

This package implements, from scratch in Python:

* a compiler front-end for **MiniRust**, a Rust subset rich enough to
  express every buggy pattern exhibited in the paper (ownership moves,
  borrows, raw pointers, ``unsafe`` blocks/functions/traits, ``Mutex`` /
  ``RwLock`` / ``Condvar`` / channels, interior mutability);
* a rustc-style **MIR** (control-flow graph of basic blocks with explicit
  ``StorageLive`` / ``StorageDead`` statements and ``Drop`` terminators)
  plus the static analyses the paper's detectors need (liveness,
  initialisation, points-to, lifetime regions, an approximate borrow
  checker, a call graph);
* the paper's two **static bug detectors** (use-after-free, double-lock)
  and eight further detectors realising the paper's §7 suggestions;
* a Miri-like **MIR interpreter** with an allocation-based memory model and
  a deterministic thread scheduler (dynamic UB and deadlock detection);
* the **empirical-study pipeline**: the paper's labelled bug / unsafe-usage
  datasets and the aggregation code regenerating every table and figure;
* a **synthetic corpus generator** standing in for the five studied
  applications, with controlled bug injection for detector evaluation.

Quickstart (the stable facade — one import, three lines)::

    from repro import api

    report = api.analyze('''
        fn main() {
            let v: Vec<i32> = Vec::new();
            let p: *const i32 = v.as_ptr();
            drop(v);
            unsafe { print(*p); }
        }
    ''')
    print(report.render())

The legacy ``compile_source`` / ``run_all_detectors`` pair still works;
see DESIGN.md ("Migrating to repro.api") for the mapping.
"""

from repro import obs
from repro.driver import (
    CompiledProgram,
    compile_file,
    compile_source,
    run_all_detectors,
    run_detectors,
)
from repro.detectors.report import Finding, Report

__version__ = "1.2.0"

__all__ = [
    "CompiledProgram",
    "api",
    "compile_file",
    "compile_source",
    "run_all_detectors",
    "run_detectors",
    "Finding",
    "Report",
    "obs",
    "__version__",
]


def __getattr__(name):
    # ``repro.api`` imports lazily so the base package keeps importing
    # fast (and without cycles) for front-end-only consumers.
    if name == "api":
        import repro.api as api
        return api
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
