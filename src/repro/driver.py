"""End-to-end driver: source text → MIR program → detector report.

The compile half (``compile_source`` / ``compile_file``) is the
front-end entry point.  For analysis, prefer the stable facade in
:mod:`repro.api`::

    from repro import api
    report = api.analyze("fn main() { ... }")

``run_all_detectors`` / ``run_detectors`` remain as thin compatibility
wrappers over the same machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro import obs
from repro.detectors.registry import run_detectors as _run
from repro.detectors.report import Report
from repro.lang.diagnostics import DiagnosticSink
from repro.lang.lexer import Lexer
from repro.lang.parser import Parser
from repro.lang.source import SourceFile
from repro.mir.build import ProgramBuilder
from repro.hir.table import build_item_table
from repro.mir.nodes import Program


@dataclass
class CompiledProgram:
    """A fully lowered compilation unit plus its front-end artefacts."""

    source: SourceFile
    crate: object
    program: Program
    diagnostics: DiagnosticSink = field(default_factory=DiagnosticSink)

    @property
    def functions(self):
        return self.program.functions

    @property
    def item_table(self):
        return self.program.item_table


def compile_source(text: str, name: str = "<input>",
                   emit_bounds_checks: bool = True) -> CompiledProgram:
    """Parse, resolve and lower MiniRust source to MIR.

    ``emit_bounds_checks=False`` compiles safe indexing without the
    bounds-check sequence (the §4.1 perf-comparison build).
    """
    source = SourceFile(name, text)
    with obs.span("compile", file=name):
        with obs.span("lex"):
            tokens = Lexer(source).tokenize()
        obs.count("compile.tokens", len(tokens))
        with obs.span("parse"):
            crate = Parser(source, tokens=tokens).parse_crate(name=name)
        sink = DiagnosticSink(source)
        with obs.span("hir-table"):
            table = build_item_table(crate, sink)
        with obs.span("mir-lower"):
            program = ProgramBuilder(
                table, source, emit_bounds_checks=emit_bounds_checks).build()
        obs.count("compile.functions", len(program.functions))
    return CompiledProgram(source=source, crate=crate, program=program,
                           diagnostics=sink)


def compile_file(path: str) -> CompiledProgram:
    with open(path, "r", encoding="utf-8") as f:
        return compile_source(f.read(), name=path)


def run_all_detectors(compiled, config=None) -> Report:
    """Run every registered detector; accepts a CompiledProgram or a raw
    MIR Program."""
    if isinstance(compiled, CompiledProgram):
        return _run(compiled.program, source=compiled.source, config=config)
    return _run(compiled, config=config)


def run_detectors(compiled, detectors: List, config=None) -> Report:
    """Run a chosen set of detector *instances*."""
    if isinstance(compiled, CompiledProgram):
        return _run(compiled.program, detectors=detectors,
                    source=compiled.source, config=config)
    return _run(compiled, detectors=detectors, config=config)
