"""``repro.api`` — the stable public facade of the analysis pipeline.

Three lines analyze a program::

    from repro import api
    report = api.analyze("examples/figure7_uaf.rs")
    print(report.render())

:func:`analyze` accepts a path or source text, runs the configured
detectors, and returns an :class:`AnalysisReport` whose ``to_dict()``
payload is schema-versioned (see ``SCHEMA_VERSION`` and the "Report JSON
schema" section of DESIGN.md).

For anything beyond a one-shot call, use an :class:`AnalysisSession`: it
owns one validated :class:`~repro.analysis.config.AnalysisConfig`, one
worker-process pool (reused across every program it analyzes), and the
connection to the on-disk summary cache — so a service analyzing a
stream of files pays pool start-up once and shares incremental state::

    with api.AnalysisSession(api.AnalysisConfig(jobs=4,
                                                cache_dir=".repro-cache")) as s:
        reports = s.analyze_files(paths)

Everything the CLI's ``check`` / ``detectors`` / ``explain`` subcommands
do goes through this module; the CLI is a thin argument-parsing client.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.analysis.config import AnalysisConfig, coerce_config
from repro.detectors.base import Detector
from repro.detectors.report import Report, SCHEMA_VERSION
from repro.driver import CompiledProgram, compile_source

__all__ = [
    "AnalysisConfig", "AnalysisReport", "AnalysisSession", "SCHEMA_VERSION",
    "UnsafeAuditReport", "analyze", "audit_unsafe", "detector_catalog",
    "lock_graph",
]

SourceOrPath = Union[str, "os.PathLike[str]"]


def detector_catalog() -> List[Dict[str, str]]:
    """Name, description and paper section of every registered detector."""
    from repro.detectors.registry import detector_catalog as _catalog
    return _catalog()


@dataclass
class AnalysisReport:
    """The result of analyzing one program through the facade.

    Wraps the raw detector :class:`~repro.detectors.report.Report` with
    the input's name, the config that produced it, and the versioned
    JSON payload downstream consumers pin against.
    """

    name: str
    report: Report
    config: AnalysisConfig = field(default_factory=AnalysisConfig)

    @property
    def findings(self):
        return self.report.findings

    @property
    def exit_code(self) -> int:
        """Uniform CLI contract: 1 when there are findings, else 0."""
        return 1 if self.report.findings else 0

    def render(self) -> str:
        return self.report.render()

    def explain(self) -> str:
        return self.report.explain()

    def to_dict(self) -> Dict[str, object]:
        """The schema-versioned JSON payload (see DESIGN.md)."""
        return self.report.to_dict()


def _looks_like_path(source_or_path: SourceOrPath) -> bool:
    if isinstance(source_or_path, os.PathLike):
        return True
    if "\n" in source_or_path:
        return False
    return os.path.exists(source_or_path) \
        or source_or_path.endswith((".rs", ".mrs"))


def _load(source_or_path: SourceOrPath,
          name: Optional[str]) -> Tuple[str, str]:
    """Resolve the facade's flexible input to ``(name, text)``."""
    if _looks_like_path(source_or_path):
        path = os.fspath(source_or_path)
        with open(path, "r", encoding="utf-8") as f:
            return name or path, f.read()
    return name or "<input>", str(source_or_path)


def _resolve_detector_arg(detectors) -> Optional[List[Detector]]:
    """``detectors=`` accepts names or ready instances; names are
    validated by the registry (the single place unknown names fail)."""
    if detectors is None:
        return None
    from repro.detectors.registry import resolve_detectors
    instances: List[Detector] = []
    names: List[str] = []
    for d in detectors:
        if isinstance(d, str):
            names.append(d)
        elif isinstance(d, Detector):
            instances.append(d)
        else:
            raise TypeError(
                f"detectors entries must be names or Detector instances, "
                f"got {type(d).__name__}")
    return instances + resolve_detectors(names)


def _analyze_task(payload: bytes) -> bytes:
    """Worker-side whole-file analysis (compile + detect, jobs=1).

    The worker's obs payload — counters, histograms, and its span forest
    (compile/detector/solve timelines, pid/tid-tagged) — rides back with
    the report so the session can fold it into the installed collector.
    """
    from repro.detectors.registry import run_detectors
    name, text, config = pickle.loads(payload)
    with obs.collecting("api-worker") as collector:
        compiled = compile_source(
            text, name=name, emit_bounds_checks=config.emit_bounds_checks)
        report = run_detectors(compiled.program, source=compiled.source,
                               config=config)
    return pickle.dumps(
        (report, dict(collector.counters), dict(collector.histograms),
         list(collector.roots)),
        protocol=pickle.HIGHEST_PROTOCOL)


def _analyze_source_inproc(name: str, text: str, config: AnalysisConfig):
    """Thread-backend whole-file task: same work as :func:`_analyze_task`
    but in the session's address space — nothing pickled, and metrics
    land directly in the installed (thread-safe) collector instead of
    riding back in a payload."""
    from repro.detectors.registry import run_detectors
    compiled = compile_source(
        text, name=name, emit_bounds_checks=config.emit_bounds_checks)
    return run_detectors(compiled.program, source=compiled.source,
                         config=config)


class AnalysisSession:
    """One validated config + one reusable executor runtime.

    The session owns the worker pool (created lazily on the first
    parallel call, shut down by :meth:`close` / the context manager) and
    hands it to every engine it creates, so consecutive analyses — a
    corpus sweep, a watch loop, a server — never pay pool start-up
    twice.  All entry points are deterministic: results come back in
    input order with findings byte-identical at any ``jobs`` value.
    """

    def __init__(self, config: Optional[AnalysisConfig] = None, *,
                 interprocedural: Optional[bool] = None) -> None:
        self.config = coerce_config(config, interprocedural=interprocedural,
                                    _owner="AnalysisSession")
        if self.config.detectors is not None:
            # Fail on unknown names at session construction, not mid-run.
            _resolve_detector_arg(self.config.detectors)
        self._pool = None
        self._pool_attempted = False
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "AnalysisSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._closed = True

    def _ensure_pool(self):
        if self._closed:
            raise RuntimeError("AnalysisSession is closed")
        if self._pool is None and not self._pool_attempted \
                and self.config.jobs > 1:
            from repro.analysis.executor import create_pool
            self._pool_attempted = True
            # Whole-file fan-out has no single compiled program to ship,
            # so the persistent backend behaves like "process" here; the
            # wave-level executor builds its own initialised pool.
            backend = "thread" \
                if self.config.executor_backend == "thread" else "process"
            self._pool = create_pool(self.config.jobs, backend=backend)
        return self._pool

    def _report_cache(self):
        if self.config.caching_enabled and self.config.report_cache:
            from repro.analysis.executor import ReportCache
            return ReportCache(os.path.join(self.config.cache_dir,
                                            "reports"))
        return None

    # -- analysis entry points ----------------------------------------------

    def analyze(self, source_or_path: SourceOrPath, *,
                name: Optional[str] = None,
                detectors=None) -> AnalysisReport:
        """Compile and analyze one program (path or source text).

        The engine-level executor fans SCC waves out across the
        session's pool when ``config.jobs > 1``.
        """
        resolved_name, text = _load(source_or_path, name)
        compiled = self.compile(text, name=resolved_name)
        return self.analyze_compiled(compiled, detectors=detectors)

    def compile(self, text: str, name: str = "<input>") -> CompiledProgram:
        return compile_source(
            text, name=name,
            emit_bounds_checks=self.config.emit_bounds_checks)

    def analyze_compiled(self, compiled: CompiledProgram, *,
                         detectors=None) -> AnalysisReport:
        from repro.detectors.registry import run_detectors
        pool = self._ensure_pool()
        report = run_detectors(
            compiled.program, detectors=_resolve_detector_arg(detectors),
            source=compiled.source, config=self.config, pool=pool)
        return AnalysisReport(name=compiled.source.name, report=report,
                              config=self.config)

    def analyze_sources(self, named_sources: Sequence[Tuple[str, str]], *,
                        detectors=None) -> List[AnalysisReport]:
        """Analyze many independent programs, fanning whole programs out
        across the worker pool (the corpus/service shape).

        With ``config.cache_dir`` set, the whole-file report tier is
        consulted first: an unchanged ``(name, text)`` pair under the
        same config serves its finished report without compiling at
        all.  Only the misses fan out.  Each worker compiles and
        analyzes one program with an in-process engine (no nested
        pools) but shares the summary cache directory.  Results arrive
        in input order; worker obs counters fold into the installed
        collector.
        """
        explicit = _resolve_detector_arg(detectors)
        named_sources = list(named_sources)
        results: List[Optional[AnalysisReport]] = \
            [None] * len(named_sources)
        # Detector *instances* can't be keyed (or pickled): the report
        # tier and the pool both require name-addressable selections.
        rcache = self._report_cache() if explicit is None else None
        keys: List[Optional[str]] = [None] * len(named_sources)
        misses: List[int] = []
        if rcache is not None:
            from repro.analysis.executor import ReportCache
            for i, (name, text) in enumerate(named_sources):
                keys[i] = ReportCache.key(name, text, self.config)
                hit = rcache.get(keys[i])
                if hit is not None:
                    obs.count("analysis.report_cache.hit")
                    results[i] = AnalysisReport(
                        name=name, report=hit, config=self.config)
                else:
                    obs.count("analysis.report_cache.miss")
                    misses.append(i)
        else:
            misses = list(range(len(named_sources)))

        pool = None
        if explicit is None and self.config.jobs > 1 and len(misses) > 1:
            pool = self._ensure_pool()

        if pool is None:
            for i in misses:
                name, text = named_sources[i]
                results[i] = self.analyze_compiled(
                    self.compile(text, name=name), detectors=detectors)
        elif self.config.executor_backend == "thread":
            worker_config = self.config.with_(jobs=1)
            futures = [
                pool.submit(_analyze_source_inproc, named_sources[i][0],
                            named_sources[i][1], worker_config)
                for i in misses]
            for i, future in zip(misses, futures):
                results[i] = AnalysisReport(
                    name=named_sources[i][0], report=future.result(),
                    config=self.config)
        else:
            worker_config = self.config.with_(jobs=1)
            futures = [
                pool.submit(_analyze_task, pickle.dumps(
                    (named_sources[i][0], named_sources[i][1],
                     worker_config),
                    protocol=pickle.HIGHEST_PROTOCOL))
                for i in misses]
            from repro.analysis.executor import _merge_worker_obs
            for i, future in zip(misses, futures):
                report, counters, histograms, spans = \
                    pickle.loads(future.result())
                _merge_worker_obs(counters, histograms, spans)
                results[i] = AnalysisReport(
                    name=named_sources[i][0], report=report,
                    config=self.config)
        if rcache is not None:
            for i in misses:
                rcache.put(keys[i], results[i].report)
        return results

    def audit_unsafe(self, named_sources: Sequence[Tuple[str, str]]
                     ) -> "UnsafeAuditReport":
        """Interior-unsafe encapsulation audit (§5) over ``(name, text)``
        pairs, reusing this session's pool and cache.  The session's
        detector selection is overridden with the audit detector for the
        duration of the call."""
        audit_cfg = _audit_config(self.config)
        original = self.config
        self.config = audit_cfg
        try:
            reports = self.analyze_sources(list(named_sources))
        finally:
            self.config = original
        return _build_audit_report(reports, audit_cfg)

    def analyze_files(self, paths: Iterable[SourceOrPath], *,
                      detectors=None) -> List[AnalysisReport]:
        """Read and analyze many files (order-preserving, parallel)."""
        named = []
        for path in paths:
            resolved = os.fspath(path)
            with open(resolved, "r", encoding="utf-8") as f:
                named.append((resolved, f.read()))
        return self.analyze_sources(named, detectors=detectors)


def analyze(source_or_path: SourceOrPath, *, detectors=None,
            config: Optional[AnalysisConfig] = None,
            name: Optional[str] = None) -> AnalysisReport:
    """One-shot facade: compile + analyze, returning the report.

    Equivalent to a single-use :class:`AnalysisSession`; prefer a session
    when analyzing more than one program.
    """
    with AnalysisSession(config) as session:
        return session.analyze(source_or_path, detectors=detectors,
                               name=name)


def lock_graph(source_or_path: SourceOrPath, *,
               config: Optional[AnalysisConfig] = None,
               name: Optional[str] = None):
    """Compile one program and return its cross-thread lock graph — the
    structure the ``deadlock`` detector searches (see
    :mod:`repro.analysis.lockgraph`).

    Nodes are global lock identities (statics and heap allocation
    sites, so Arc-cloned mutexes and captured locks meet on one node);
    edges are held→wanted acquisition orders attributed to the thread
    root (main, or a specific spawn site) that can execute them.
    ``graph.deadlock_cycles()`` enumerates the cycles whose edges can be
    assigned pairwise-distinct threads, each with witness hold/want
    chains.
    """
    config = coerce_config(config, _owner="lock_graph")
    resolved_name, text = _load(source_or_path, name)
    compiled = compile_source(
        text, name=resolved_name,
        emit_bounds_checks=config.emit_bounds_checks)
    from repro.analysis.engine import SummaryEngine
    return SummaryEngine(compiled.program, config).lock_graph()


# ---------------------------------------------------------------------------
# Interior-unsafe encapsulation audit (the §5 study as an entry point)
# ---------------------------------------------------------------------------

@dataclass
class UnsafeAuditReport:
    """The §5 interior-unsafe encapsulation audit over many programs.

    ``rows`` holds one entry per interior-unsafe function — its file,
    key, checked / unchecked / caller-delegated classification, and the
    provenance detail the audit detector recorded.  ``breakdown`` is the
    paper-style aggregate.  Row order is ``(file, fn)``-sorted, so the
    rendered table and JSON payload are byte-identical regardless of
    worker count or cache temperature.
    """

    rows: List[Dict[str, object]] = field(default_factory=list)
    config: AnalysisConfig = field(default_factory=AnalysisConfig)

    @property
    def breakdown(self) -> Dict[str, int]:
        out = {"checked": 0, "unchecked": 0, "caller-delegated": 0}
        for row in self.rows:
            out[row["classification"]] = out.get(row["classification"], 0) + 1
        return out

    @property
    def total(self) -> int:
        return len(self.rows)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": SCHEMA_VERSION,
            "total": self.total,
            "breakdown": self.breakdown,
            "functions": self.rows,
        }

    def render(self) -> str:
        lines = [f"interior-unsafe functions: {self.total}"]
        breakdown = self.breakdown
        for label in ("checked", "unchecked", "caller-delegated"):
            count = breakdown[label]
            pct = (100.0 * count / self.total) if self.total else 0.0
            lines.append(f"  {label:<18} {count:>5}  ({pct:5.1f}%)")
        if self.rows:
            width = max(len(str(row["fn"])) for row in self.rows)
            lines.append("")
            lines.append(f"{'function':<{width}}  {'class':<16} "
                         f"{'sites':>5}  file")
            for row in self.rows:
                lines.append(
                    f"{row['fn']:<{width}}  {row['classification']:<16} "
                    f"{row['unsafe_sites']:>5}  {row['file']}")
        return "\n".join(lines)


def _build_audit_report(reports: List[AnalysisReport],
                        config: AnalysisConfig) -> UnsafeAuditReport:
    rows: List[Dict[str, object]] = []
    for report in reports:
        for finding in report.findings:
            if finding.detector != "interior-unsafe-audit":
                continue
            row: Dict[str, object] = {"file": report.name,
                                      "fn": finding.fn_key}
            row.update(finding.metadata)
            rows.append(row)
    rows.sort(key=lambda r: (str(r["file"]), str(r["fn"])))
    return UnsafeAuditReport(rows=rows, config=config)


def _audit_config(config: Optional[AnalysisConfig]) -> AnalysisConfig:
    return (config or AnalysisConfig()).with_(
        audit_unsafe=True, detectors=("interior-unsafe-audit",))


def audit_unsafe(named_sources: Sequence[Tuple[str, str]], *,
                 config: Optional[AnalysisConfig] = None
                 ) -> UnsafeAuditReport:
    """Run the interior-unsafe encapsulation audit over ``(name, text)``
    pairs, regenerating the paper's §5 checked/unchecked breakdown.

    ``config`` carries the execution knobs (``jobs``, ``cache_dir``, …);
    its detector selection is overridden with the audit detector and
    ``audit_unsafe=True``.  Output is deterministic at any worker count.
    """
    audit_cfg = _audit_config(config)
    with AnalysisSession(audit_cfg) as session:
        reports = session.analyze_sources(list(named_sources))
    return _build_audit_report(reports, audit_cfg)
