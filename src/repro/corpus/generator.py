"""Corpus generation and detector evaluation.

Each :class:`AppProfile` mirrors one studied application: relative size
and the per-category bug mix implied by Tables 1/3/4.  The generator
scales those mixes by a ``scale`` factor, interleaves bug snippets with
benign modules, and returns a :class:`Corpus` whose injected-bug labels
let :func:`evaluate_detectors` compute per-detector recall and false
positives — the §7 evaluation, on our substrate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.corpus.benign import BENIGN_TEMPLATES, CHANNEL_BENIGN
from repro.corpus.inject import BUG_TEMPLATES, BugTemplate, InjectedBug


@dataclass
class AppProfile:
    """A studied application's corpus profile."""

    name: str
    #: Relative amount of benign code (number of benign modules).
    benign_modules: int
    #: Bug-template name → how many to inject per unit scale.
    bug_mix: Dict[str, int]


#: Profiles follow each project's published bug mix: Servo is memory- and
#: channel-heavy, Ethereum dominates blocking bugs (Table 3: 27 of 38
#: Mutex bugs), Redox owns most invalid-free/uninit bugs (Table 2 via its
#: 20 memory bugs), Tock is tiny and almost bug-free, TiKV contributes the
#: Figure 8 double lock.
APP_PROFILES: Dict[str, AppProfile] = {
    "servo_like": AppProfile("servo_like", benign_modules=10, bug_mix={
        "uaf_drop_deref": 2, "uaf_escape_ffi": 1, "uaf_free_in_callee": 1,
        "double_free_ptr_read": 1,
        "overflow_unchecked": 2, "double_lock_if": 1,
        "channel_no_sender": 1, "sync_unsync_write": 1, "null_deref": 1,
        "race_unsync_counter": 1, "race_arc_interior_mut": 1,
        "race_lock_wrong_mutex": 1, "unsafe_leak_raw_return": 1,
    }),
    "tock_like": AppProfile("tock_like", benign_modules=5, bug_mix={
        "overflow_unchecked": 1, "uninit_read": 1,
    }),
    "ethereum_like": AppProfile("ethereum_like", benign_modules=8,
                                bug_mix={
        "double_lock_match": 2, "double_lock_if": 2,
        "double_lock_callee": 1, "lock_order_pair": 1,
        "condvar_no_notify": 1, "atomic_check_act": 1,
        "deadlock_abba_two_threads": 1, "deadlock_condvar_hold": 1,
    }),
    "tikv_like": AppProfile("tikv_like", benign_modules=6, bug_mix={
        "double_lock_match": 1, "condvar_no_notify": 1,
        "recv_holding_lock": 1, "deadlock_channel_recv": 1,
    }),
    "redox_like": AppProfile("redox_like", benign_modules=7, bug_mix={
        "invalid_free_assign": 2, "uninit_read": 2, "uaf_drop_deref": 1,
        "double_free_ptr_read": 1, "overflow_unchecked": 1,
        "once_recursion": 1, "null_deref": 2,
    }),
    "libraries_like": AppProfile("libraries_like", benign_modules=5,
                                 bug_mix={
        "uaf_escape_ffi": 1, "sync_unsync_write": 1, "atomic_check_act": 1,
        "condvar_no_notify": 1, "unsafe_leak_raw_return": 1,
        "unchecked_index_passthrough": 1,
    }),
    # The RUSTSEC-advisory mix: exception-safety and uninit-exposure
    # shapes drawn from the CVE classes the §5.1 taxonomy maps to.
    "cve_like": AppProfile("cve_like", benign_modules=4, bug_mix={
        "panic_between_read_and_write": 1,
        "double_drop_in_drop_impl": 1,
        "uninit_pub_exposure": 1,
    }),
}

#: Templates whose detectors are program-level and would be masked by
#: benign uses of the same primitive in the same file.
_ISOLATED_TEMPLATES = {"channel_no_sender", "condvar_no_notify",
                       "recv_holding_lock", "deadlock_abba_two_threads",
                       "deadlock_condvar_hold", "deadlock_channel_recv"}


@dataclass
class CorpusFile:
    project: str
    name: str
    text: str
    injected: List[InjectedBug] = field(default_factory=list)

    @property
    def loc(self) -> int:
        return len(self.text.splitlines())


@dataclass
class Corpus:
    files: List[CorpusFile] = field(default_factory=list)
    seed: int = 0
    scale: int = 1

    @property
    def injected(self) -> List[InjectedBug]:
        return [bug for f in self.files for bug in f.injected]

    @property
    def total_loc(self) -> int:
        return sum(f.loc for f in self.files)

    def combined_source(self) -> str:
        """Every corpus file concatenated into one compilation unit —
        function names are suffix-unique by construction, so the result
        compiles as a single whole-program analysis workload (what the
        parallel-executor benchmarks use)."""
        return "\n".join(f.text for f in self.files)

    def by_project(self) -> Dict[str, List[CorpusFile]]:
        out: Dict[str, List[CorpusFile]] = {}
        for f in self.files:
            out.setdefault(f.project, []).append(f)
        return out


def generate_corpus(seed: int = 0, scale: int = 1,
                    profiles: Optional[Dict[str, AppProfile]] = None
                    ) -> Corpus:
    """Generate the synthetic corpus deterministically."""
    from repro import obs
    with obs.span("corpus.generate", seed=seed, scale=scale):
        corpus = _generate_corpus(seed, scale, profiles)
    obs.count("corpus.programs_generated", len(corpus.files))
    obs.count("corpus.bugs_injected", len(corpus.injected))
    obs.count("corpus.loc", corpus.total_loc)
    return corpus


def _generate_corpus(seed: int, scale: int,
                     profiles: Optional[Dict[str, AppProfile]]) -> Corpus:
    rng = random.Random(seed)
    profiles = profiles or APP_PROFILES
    corpus = Corpus(seed=seed, scale=scale)
    benign_names = sorted(BENIGN_TEMPLATES)

    for app_name in sorted(profiles):
        profile = profiles[app_name]
        counter = 0

        # Bug snippets, each in its own module alongside benign fill.
        bug_plan: List[str] = []
        for template_name in sorted(profile.bug_mix):
            bug_plan.extend([template_name]
                            * (profile.bug_mix[template_name] * scale))
        rng.shuffle(bug_plan)

        module_index = 0
        for template_name in bug_plan:
            template = BUG_TEMPLATES[template_name]
            suffix = f"{app_name[:2]}{module_index}"
            text_parts = [template.render(suffix)]
            injected = [InjectedBug(
                template=template, fn_name=f"bug_{suffix}",
                file_name=f"{app_name}/mod_{module_index}.rs",
                project=app_name)]
            # Pad with benign code that cannot mask the injected bug.
            pads = 2 * scale
            for _ in range(pads):
                benign = benign_names[counter % len(benign_names)]
                counter += 1
                if template_name in _ISOLATED_TEMPLATES and \
                        benign in CHANNEL_BENIGN:
                    benign = "safe_counter"
                text_parts.append(
                    BENIGN_TEMPLATES[benign](f"{app_name[:2]}b{counter}"))
            corpus.files.append(CorpusFile(
                project=app_name,
                name=f"{app_name}/mod_{module_index}.rs",
                text="\n".join(text_parts),
                injected=injected))
            module_index += 1

        # Pure-benign modules.
        for _ in range(profile.benign_modules * scale):
            parts = []
            for _ in range(3):
                benign = benign_names[counter % len(benign_names)]
                counter += 1
                parts.append(
                    BENIGN_TEMPLATES[benign](f"{app_name[:2]}c{counter}"))
            corpus.files.append(CorpusFile(
                project=app_name,
                name=f"{app_name}/mod_{module_index}.rs",
                text="\n".join(parts)))
            module_index += 1
    return corpus


# ---------------------------------------------------------------------------
# Detector evaluation (the §7 experiment)
# ---------------------------------------------------------------------------

@dataclass
class DetectorScore:
    detector: str
    injected: int = 0
    found: int = 0
    false_positives: int = 0
    missed: List[str] = field(default_factory=list)

    @property
    def recall(self) -> float:
        return self.found / self.injected if self.injected else 1.0


@dataclass
class EvaluationResult:
    scores: Dict[str, DetectorScore] = field(default_factory=dict)
    total_findings: int = 0
    files: int = 0
    loc: int = 0

    def summary_rows(self) -> List[Tuple[str, int, int, int, float]]:
        rows = []
        for name in sorted(self.scores):
            score = self.scores[name]
            rows.append((name, score.injected, score.found,
                         score.false_positives, round(score.recall, 3)))
        return rows


def evaluate_detectors(corpus: Corpus, detectors: Optional[List] = None,
                       config=None) -> EvaluationResult:
    """Compile every corpus file, run the detectors, score the outcome.

    A finding *matches* an injection when it comes from the expected
    detector and its function key mentions the injected name's suffix.
    Findings in files with no injection (or from unexpected detectors in
    clean functions) count as false positives.

    ``config`` (an :class:`~repro.analysis.config.AnalysisConfig`) drives
    the analysis session: with ``jobs > 1`` whole corpus programs fan out
    across worker processes, and ``cache_dir`` makes warm re-evaluations
    incremental.  Scores are deterministic at any worker count.
    """
    from repro import obs
    from repro.api import AnalysisSession

    result = EvaluationResult(files=len(corpus.files), loc=corpus.total_loc)
    scores = result.scores

    def score_for(detector: str) -> DetectorScore:
        if detector not in scores:
            scores[detector] = DetectorScore(detector)
        return scores[detector]

    for bug in corpus.injected:
        score_for(bug.template.detector).injected += 1

    with obs.span("corpus.evaluate", files=len(corpus.files)):
        with AnalysisSession(config) as session:
            analyses = session.analyze_sources(
                [(f.name, f.text) for f in corpus.files],
                detectors=detectors)
        for file, analysis in zip(corpus.files, analyses):
            report = analysis.report
            obs.count("corpus.programs_evaluated")
            result.total_findings += len(report.findings)
            matched_bugs = set()
            for finding in report.findings:
                matched = False
                for bug in file.injected:
                    suffix = bug.fn_name[len("bug_"):]
                    if finding.detector == bug.template.detector and \
                            suffix in finding.fn_key:
                        if id(bug) not in matched_bugs:
                            matched_bugs.add(id(bug))
                            score_for(finding.detector).found += 1
                        matched = True
                        break
                if not matched:
                    score_for(finding.detector).false_positives += 1
            for bug in file.injected:
                if id(bug) not in matched_bugs:
                    score_for(bug.template.detector).missed.append(
                        bug.fn_name)
    for score in scores.values():
        obs.count("corpus.bugs_recalled", score.found)
        obs.count("corpus.false_positives", score.false_positives)
    obs.count("corpus.findings", result.total_findings)
    return result
