"""Benign code templates: the "rest of the application" around injected
bugs.

These exercise the same feature vocabulary the studied applications use —
containers, locking done right, interior-unsafe done right (§4.3's good
practices), FFI wrappers with checked inputs, worker threads — and must
produce **zero findings**, so they double as the false-positive meter for
the detector evaluation.
"""

from __future__ import annotations

from typing import Callable, Dict, List


def _safe_counter(u: str) -> str:
    return f"""
struct Counter{u} {{ hits: i32, misses: i32 }}
impl Counter{u} {{
    fn new() -> Counter{u} {{ Counter{u} {{ hits: 0, misses: 0 }} }}
    fn record(&mut self, hit: bool) {{
        if hit {{ self.hits += 1; }} else {{ self.misses += 1; }}
    }}
    fn total(&self) -> i32 {{ self.hits + self.misses }}
}}
fn use_counter_{u}() -> i32 {{
    let mut c = Counter{u}::new();
    for i in 0..8 {{
        c.record(i % 2 == 0);
    }}
    c.total()
}}
"""


def _proper_locking(u: str) -> str:
    return f"""
fn transfer_{u}(from: &Mutex<i32>, amount: i32) -> i32 {{
    let balance = {{
        let mut g = from.lock().unwrap();
        *g -= amount;
        *g
    }};
    balance
}}
fn read_twice_{u}(m: &Mutex<i32>) -> i32 {{
    let first = {{
        let g = m.lock().unwrap();
        *g
    }};
    let second = {{
        let g = m.lock().unwrap();
        *g
    }};
    first + second
}}
"""


def _good_interior_unsafe(u: str) -> str:
    return f"""
struct RawBuf{u} {{ data: Vec<u8>, len: usize }}
impl RawBuf{u} {{
    fn new(size: usize) -> RawBuf{u} {{
        RawBuf{u} {{ data: vec![0u8; size], len: size }}
    }}
    fn read(&self, index: usize) -> u8 {{
        if index >= self.len {{
            return 0;
        }}
        unsafe {{ *self.data.get_unchecked(index) }}
    }}
}}
fn use_rawbuf_{u}() -> u8 {{
    let buf = RawBuf{u}::new(32);
    buf.read(5)
}}
"""


def _checked_interior_unsafe(u: str) -> str:
    # The no-bug mirror of `unchecked_index_passthrough`: the same raw
    # pointer arithmetic behind the same public wrapper shape, but the
    # helper bounds-checks the index before the unsafe region, so
    # `unchecked-unsafe-input` must stay silent (§4.3 good practice).
    return f"""
struct Window{u} {{ base: *mut u8, len: usize }}
impl Window{u} {{
    fn read_raw(&self, index: usize) -> u8 {{
        if index >= self.len {{
            return 0;
        }}
        unsafe {{ *self.base.add(index) }}
    }}
    pub fn read_{u}(&self, index: usize) -> u8 {{
        self.read_raw(index)
    }}
}}
"""


def _checked_ffi(u: str) -> str:
    return f"""
fn checked_call_{u}(input: Option<i32>) -> i32 {{
    match input {{
        Some(value) => {{
            if value > 0 {{
                unsafe {{ external_compute_{u}(value) }}
            }} else {{
                0
            }}
        }}
        None => 0,
    }}
}}
"""


def _worker_threads(u: str) -> str:
    return f"""
fn spawn_workers_{u}() -> i32 {{
    let total = Arc::new(Mutex::new(0));
    let t2 = Arc::clone(&total);
    let h = thread::spawn(move || {{
        let mut g = t2.lock().unwrap();
        *g += 10;
    }});
    h.join();
    let g = total.lock().unwrap();
    *g
}}
"""


def _locked_shared(u: str) -> str:
    # The no-race mirror of the race templates: the same raw-pointer
    # write pattern, but both threads take the *same* mutex around it, so
    # the lockset detector must stay silent.
    return f"""
struct Guarded{u} {{ m: Mutex<i32>, data: i32 }}
unsafe impl Sync for Guarded{u} {{}}
fn bump_guarded_{u}(s: &Guarded{u}, i: i32) {{
    let p = &s.data as *const i32 as *mut i32;
    unsafe {{ *p = *p + i; }}
}}
fn run_guarded_{u}() {{
    let s = Arc::new(Guarded{u} {{ m: Mutex::new(0), data: 0 }});
    let s2 = Arc::clone(&s);
    let h = thread::spawn(move || {{
        let g = s2.m.lock().unwrap();
        bump_guarded_{u}(&s2, 1);
        drop(g);
    }});
    let g = s.m.lock().unwrap();
    bump_guarded_{u}(&s, 2);
    drop(g);
    h.join();
}}
"""


def _channel_pipeline(u: str) -> str:
    return f"""
fn pipeline_{u}() -> i32 {{
    let (tx, rx) = channel();
    let h = thread::spawn(move || {{
        for i in 0..4 {{
            tx.send(i);
        }}
    }});
    let mut sum = 0;
    for i in 0..4 {{
        sum += rx.recv().unwrap();
    }}
    h.join();
    sum
}}
"""


def _handoff_lock_then_send(u: str) -> str:
    # The safe twin of `deadlock_channel_recv`: the spawned sender takes
    # the lock, sends, and the guard drops when the closure ends — while
    # the receiver recvs holding *nothing* and only locks afterwards.
    # No lock is held across the blocking recv, so the handoff always
    # completes.
    return f"""
static JOURNAL_{u}: Mutex<i32> = Mutex::new(0);
fn handoff_{u}() {{
    let (tx, rx) = channel();
    let h = thread::spawn(move || {{
        let g = JOURNAL_{u}.lock().unwrap();
        tx.send(*g);
    }});
    let v = rx.recv().unwrap();
    let g = JOURNAL_{u}.lock().unwrap();
    print(*g + v);
    h.join();
}}
"""


def _vec_pipeline(u: str) -> str:
    return f"""
fn process_{u}(items: &Vec<i32>) -> i32 {{
    let mut total = 0;
    for i in 0..items.len() {{
        total += items[i];
    }}
    total
}}
fn build_and_process_{u}() -> i32 {{
    let mut items = Vec::new();
    for i in 0..12 {{
        items.push(i * 2);
    }}
    process_{u}(&items)
}}
"""


def _state_machine(u: str) -> str:
    return f"""
enum State{u} {{ Idle, Running(i32), Done }}
fn step_{u}(state: State{u}) -> i32 {{
    match state {{
        State{u}::Idle => 0,
        State{u}::Running(progress) => progress,
        State{u}::Done => 100,
    }}
}}
fn drive_{u}() -> i32 {{
    let a = step_{u}(State{u}::Idle);
    let b = step_{u}(State{u}::Running(40));
    let c = step_{u}(State{u}::Done);
    a + b + c
}}
"""


def _cache_map(u: str) -> str:
    return f"""
fn cached_lookup_{u}() -> i32 {{
    let mut cache = HashMap::new();
    cache.insert("alpha", 1);
    cache.insert("beta", 2);
    let mut total = 0;
    if let Some(v) = cache.get("alpha") {{
        total += *v;
    }}
    match cache.get("gamma") {{
        Some(v) => total += *v,
        None => total += 0,
    }}
    total
}}
"""


def _refcounted_tree(u: str) -> str:
    return f"""
struct Node{u} {{ value: i32 }}
fn share_{u}() -> i32 {{
    let root = Rc::new(Node{u} {{ value: 7 }});
    let alias = Rc::clone(&root);
    root.value + alias.value
}}
"""


def _atomic_counter(u: str) -> str:
    return f"""
fn count_atomic_{u}() -> i32 {{
    let flag = AtomicBool::new(false);
    if !flag.compare_and_swap(false, true) {{
        return 1;
    }}
    return 0;
}}
"""


def _panic_guard_restores(u: str) -> str:
    # The no-bug mirror of `panic_between_read_and_write`: the guard
    # takes the value out and restores it before anything can panic, so
    # the duplication window is closed by the time the fallible check
    # runs — `panic-safety` (and the unwind path itself) must stay
    # clean.
    return f"""
fn guarded_update_{u}(flag: bool) -> i32 {{
    let mut slot = vec![1, 2, 3];
    unsafe {{
        ptr::write(&mut slot, ptr::read(&slot));
    }}
    if flag {{
        panic!("update rejected after restore");
    }}
    slot.len()
}}
"""


BENIGN_TEMPLATES: Dict[str, Callable[[str], str]] = {
    "safe_counter": _safe_counter,
    "proper_locking": _proper_locking,
    "good_interior_unsafe": _good_interior_unsafe,
    "checked_interior_unsafe": _checked_interior_unsafe,
    "checked_ffi": _checked_ffi,
    "worker_threads": _worker_threads,
    "locked_shared": _locked_shared,
    "channel_pipeline": _channel_pipeline,
    "handoff_lock_then_send": _handoff_lock_then_send,
    "vec_pipeline": _vec_pipeline,
    "state_machine": _state_machine,
    "cache_map": _cache_map,
    "refcounted_tree": _refcounted_tree,
    "atomic_counter": _atomic_counter,
    "panic_guard_restores": _panic_guard_restores,
}

#: Benign templates using channels / condvars — kept out of files that
#: carry channel/condvar bug injections so program-level detectors stay
#: meaningful.
CHANNEL_BENIGN = {"channel_pipeline", "handoff_lock_then_send"}
