"""Bug-injection templates.

Each :class:`BugTemplate` emits a MiniRust snippet containing exactly one
instance of a studied bug pattern, parameterised by a unique name so that
detector findings can be matched back to injections.  The patterns mirror
the paper's figures and bug taxonomies:

=====================  =====================================  ============
template               paper source                           detector
=====================  =====================================  ============
double_lock_match      Figure 8 (TiKV)                        double-lock
double_lock_if         §6.1 "first lock is in an if"          double-lock
double_lock_callee     §7.2 inter-procedural case             double-lock
lock_order_pair        §6.1 conflicting orders                lock-order
condvar_no_notify      §6.1 Condvar bugs (8/10)               condvar
channel_no_sender      §6.1 channel bugs                      channel
once_recursion         §6.1 Once bug                          once-recursion
deadlock_abba_two_threads    §6.1 cross-thread ABBA           deadlock
deadlock_condvar_hold  §6.1 wait holding an unrelated lock    deadlock
deadlock_channel_recv  §6.1 recv holding the sender's lock    deadlock
uaf_drop_deref         Figure 7 shape                         use-after-free
uaf_escape_ffi         Figure 7 (CMS_sign)                    use-after-free
uaf_free_in_callee     §7.1 inter-procedural free             use-after-free
double_free_ptr_read   §5.1 ptr::read duplication             double-free
invalid_free_assign    Figure 6 (Redox)                       invalid-free
uninit_read            §5.1 uninitialised reads               uninit-read
overflow_unchecked     §5.1 17/21 buffer overflows            buffer-overflow
atomic_check_act       Figure 9 (Ethereum)                    atomicity-violation
sync_unsync_write      Figure 4 / Suggestion 8                sync-unsync-write
race_unsync_counter    §5.3 shared-memory races               data-race
race_arc_interior_mut  §5.3 Arc + interior mutability         data-race
race_lock_wrong_mutex  §6.1 wrong-lock protection             data-race
unsafe_leak_raw_return §5.3 raw pointer escapes safe API      unsafe-leak
unchecked_index_passthrough  §5.3 unvalidated interior input  unchecked-unsafe-input
panic_between_read_and_write §5.1 panic while ptr::read open   panic-safety
double_drop_in_drop_impl     §5.1 Drop impl double drop        bad-drop
uninit_pub_exposure          §5.3 uninit bytes escape pub API  uninit-exposure
=====================  =====================================  ============
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.study.taxonomy import BugKind


@dataclass(frozen=True)
class BugTemplate:
    name: str
    kind: BugKind
    detector: str           # detector expected to report it
    render: Callable[[str], str] = None
    #: Whether the template provides a runnable entry for dynamic checking.
    dynamic_entry: bool = False


@dataclass
class InjectedBug:
    template: BugTemplate
    fn_name: str
    file_name: str
    project: str


# ---------------------------------------------------------------------------
# Template bodies.  Every template takes a unique suffix `u`.
# ---------------------------------------------------------------------------

def _double_lock_match(u: str) -> str:
    return f"""
struct Inner{u} {{ m: i32 }}
fn connect{u}(m: i32) -> Result<i32, i32> {{ Ok(m) }}
fn bug_{u}(client: &RwLock<Inner{u}>) {{
    match connect{u}(client.read().unwrap().m) {{
        Ok(x) => {{
            let mut inner = client.write().unwrap();
            inner.m = x;
        }}
        Err(e) => {{}}
    }};
}}
"""


def _double_lock_if(u: str) -> str:
    # Plain `if` conditions drop their temporaries before the block runs
    # (so `if *m.lock().unwrap() > 0` is NOT a double lock in stable Rust);
    # the paper's if-shaped double locks are the `if let` form, whose
    # scrutinee temporaries live to the end of the whole expression.
    return f"""
fn bug_{u}(counter: &Mutex<i32>) {{
    if let Ok(g) = counter.lock() {{
        let mut g2 = counter.lock().unwrap();
        *g2 = *g + 1;
    }}
}}
"""


def _double_lock_callee(u: str) -> str:
    return f"""
fn helper_{u}(m: &Mutex<i32>) -> i32 {{
    let g = m.lock().unwrap();
    *g
}}
fn bug_{u}(m: &Mutex<i32>) {{
    let g = m.lock().unwrap();
    let v = helper_{u}(m);
    print(v + *g);
}}
"""


def _lock_order_pair(u: str) -> str:
    return f"""
static LOCK_A_{u}: Mutex<i32> = Mutex::new(0);
static LOCK_B_{u}: Mutex<i32> = Mutex::new(0);
fn bug_{u}_first() {{
    let a = LOCK_A_{u}.lock().unwrap();
    let b = LOCK_B_{u}.lock().unwrap();
    print(*a + *b);
}}
fn bug_{u}_second() {{
    let b = LOCK_B_{u}.lock().unwrap();
    let a = LOCK_A_{u}.lock().unwrap();
    print(*a + *b);
}}
"""


def _condvar_no_notify(u: str) -> str:
    return f"""
fn bug_{u}() {{
    let state = Mutex::new(false);
    let cv = Condvar::new();
    let g = state.lock().unwrap();
    let g2 = cv.wait(g).unwrap();
    print(*g2);
}}
"""


def _channel_no_sender(u: str) -> str:
    return f"""
fn bug_{u}() {{
    let (tx, rx) = channel();
    drop(tx);
    let value = rx.recv();
    match value {{
        Ok(v) => print(v),
        Err(e) => print(0),
    }};
}}
"""


def _once_recursion(u: str) -> str:
    return f"""
static INIT_{u}: Once = Once::new();
fn bug_{u}() {{
    INIT_{u}.call_once(|| {{
        INIT_{u}.call_once(|| {{
            print(1);
        }});
    }});
}}
"""


def _uaf_drop_deref(u: str) -> str:
    return f"""
fn bug_{u}() {{
    let buffer = vec![1, 2, 3];
    let p = buffer.as_ptr();
    drop(buffer);
    unsafe {{
        let x = *p;
        print(x);
    }}
}}
"""


def _uaf_escape_ffi(u: str) -> str:
    return f"""
struct Slice{u} {{ v: i32 }}
impl Slice{u} {{
    fn new(data: i32) -> Slice{u} {{ Slice{u} {{ v: data }} }}
    fn as_ptr(&self) -> *const Slice{u} {{
        &self.v as *const i32 as *const Slice{u}
    }}
}}
fn bug_{u}(data: Option<i32>) {{
    let p = match data {{
        Some(d) => Slice{u}::new(d).as_ptr(),
        None => ptr::null_mut(),
    }};
    unsafe {{
        let out = ffi_sign_{u}(p);
    }}
}}
"""


def _uaf_free_in_callee(u: str) -> str:
    # The free is two calls deep: bug_ moves the buffer into sink_, which
    # forwards it to sink_inner_, where it dies.  Only the summary
    # engine's may-drop chain sees that the pointer is dangling.
    return f"""
fn sink_inner_{u}(v: Vec<i32>) {{
    print(1);
}}
fn sink_{u}(v: Vec<i32>) {{
    sink_inner_{u}(v);
}}
fn bug_{u}() {{
    let buffer = vec![1, 2, 3];
    let p = buffer.as_ptr();
    sink_{u}(buffer);
    unsafe {{
        let x = *p;
        print(x);
    }}
}}
"""


def _double_free_ptr_read(u: str) -> str:
    return f"""
fn bug_{u}(v: Vec<i32>) {{
    let t1 = v;
    unsafe {{
        let t2 = ptr::read(&t1);
        drop(t2);
    }}
}}
"""


def _invalid_free_assign(u: str) -> str:
    return f"""
struct File{u} {{ buf: Vec<u8> }}
unsafe fn bug_{u}() {{
    let f = alloc(64) as *mut File{u};
    *f = File{u} {{ buf: vec![0u8; 64] }};
}}
"""


def _uninit_read(u: str) -> str:
    return f"""
unsafe fn bug_{u}() -> i32 {{
    let p = alloc(16) as *mut i32;
    let value = *p;
    value
}}
"""


def _overflow_unchecked(u: str) -> str:
    return f"""
fn bug_{u}() -> u8 {{
    let table = vec![0u8; 16];
    unsafe {{
        let x = table.get_unchecked(20);
        *x
    }}
}}
"""


def _atomic_check_act(u: str) -> str:
    return f"""
struct Seal{u} {{ proposed: AtomicBool }}
unsafe impl Sync for Seal{u} {{}}
impl Seal{u} {{
    fn bug_{u}(&self) -> i32 {{
        if self.proposed.load() {{ return 0; }}
        self.proposed.store(true);
        return 1;
    }}
}}
"""


def _sync_unsync_write(u: str) -> str:
    return f"""
struct Cell{u} {{ value: i32 }}
unsafe impl Sync for Cell{u} {{}}
impl Cell{u} {{
    fn bug_{u}(&self, i: i32) {{
        let p = &self.value as *const i32 as *mut i32;
        unsafe {{ *p = i; }}
    }}
}}
"""


def _null_deref(u: str) -> str:
    return f"""
fn lookup_{u}(found: bool) -> *mut i32 {{
    ptr::null_mut()
}}
fn bug_{u}() {{
    let entry = lookup_{u}(false);
    unsafe {{ *entry = 1; }}
}}
"""


def _race_unsync_counter(u: str) -> str:
    # The §5.3 staple: a struct force-marked Sync shared through Arc,
    # written from two threads through a helper with no lock anywhere.
    return f"""
struct Counter{u} {{ value: i32 }}
unsafe impl Sync for Counter{u} {{}}
fn touch_{u}(c: &Counter{u}, i: i32) {{
    let p = &c.value as *const i32 as *mut i32;
    unsafe {{ *p = *p + i; }}
}}
fn bug_{u}() {{
    let c = Arc::new(Counter{u} {{ value: 0 }});
    let c2 = Arc::clone(&c);
    let h = thread::spawn(move || {{
        touch_{u}(&c2, 1);
    }});
    touch_{u}(&c, 2);
    h.join();
}}
"""


def _race_arc_interior_mut(u: str) -> str:
    # Arc + UnsafeCell: both threads get a raw pointer into the same
    # allocation through UnsafeCell::get and write unsynchronised.
    return f"""
struct Shared{u} {{ cell: UnsafeCell<i32> }}
unsafe impl Sync for Shared{u} {{}}
fn bug_{u}() {{
    let s = Arc::new(Shared{u} {{ cell: UnsafeCell::new(0) }});
    let s2 = Arc::clone(&s);
    let h = thread::spawn(move || {{
        let p = s2.cell.get();
        unsafe {{ *p = *p + 1; }}
    }});
    let p = s.cell.get();
    unsafe {{ *p = *p + 2; }}
    h.join();
}}
"""


def _race_lock_wrong_mutex(u: str) -> str:
    # Both sides lock — but different mutexes, so the locksets at the
    # two writes are disjoint and the data field is unprotected.
    return f"""
struct State{u} {{ ma: Mutex<i32>, mb: Mutex<i32>, data: i32 }}
unsafe impl Sync for State{u} {{}}
fn bump_{u}(s: &State{u}, i: i32) {{
    let p = &s.data as *const i32 as *mut i32;
    unsafe {{ *p = *p + i; }}
}}
fn bug_{u}() {{
    let s = Arc::new(State{u} {{
        ma: Mutex::new(0), mb: Mutex::new(0), data: 0 }});
    let s2 = Arc::clone(&s);
    let h = thread::spawn(move || {{
        let g = s2.ma.lock().unwrap();
        bump_{u}(&s2, 1);
        drop(g);
    }});
    let g = s.mb.lock().unwrap();
    bump_{u}(&s, 2);
    drop(g);
    h.join();
}}
"""


def _unsafe_leak_raw_return(u: str) -> str:
    # §5.3: an interior-unsafe helper mints a raw pointer and a safe
    # *public* wrapper hands it straight to callers — the unsafe
    # obligation escapes its encapsulation boundary with no contract.
    return f"""
fn make_{u}() -> *mut u8 {{
    unsafe {{ alloc(16) }}
}}
pub fn bug_{u}() -> *mut u8 {{
    make_{u}()
}}
"""


def _unchecked_index_passthrough(u: str) -> str:
    # §5.3 improper input validation, split interprocedurally: the public
    # wrapper forwards a caller-controlled index into a private helper
    # whose unsafe pointer arithmetic never bounds-checks it.
    return f"""
struct Table{u} {{ data: *mut u8, len: usize }}
impl Table{u} {{
    fn get_raw(&self, index: usize) -> u8 {{
        unsafe {{ *self.data.add(index) }}
    }}
    pub fn bug_{u}(&self, index: usize) -> u8 {{
        self.get_raw(index)
    }}
}}
"""


def _recv_holding_lock(u: str) -> str:
    return f"""
static STATE_{u}: Mutex<i32> = Mutex::new(0);
fn consumer_{u}(rx: &Receiver<i32>) {{
    let g = STATE_{u}.lock().unwrap();
    let v = rx.recv().unwrap();
    print(*g + v);
}}
fn producer_{u}(tx: &Sender<i32>) {{
    let g = STATE_{u}.lock().unwrap();
    tx.send(*g);
}}
"""


def _deadlock_abba_two_threads(u: str) -> str:
    # The cross-thread ABBA deadlock, split so no single function (and no
    # single thread) shows both orders: the acquisitions live in a shared
    # helper taking both locks as arguments, and the two threads pass the
    # Arc-cloned mutexes in opposite orders.  Invisible to the per-thread
    # lock-order detector (the lock identities are heap allocation sites,
    # not statics, and each call site is consistent with itself) — only
    # the cross-thread lock graph sees the cycle.
    return f"""
fn grab_both_{u}(first: &Mutex<i32>, second: &Mutex<i32>) {{
    let a = first.lock().unwrap();
    let b = second.lock().unwrap();
    print(*a + *b);
}}
fn bug_{u}() {{
    let m1 = Arc::new(Mutex::new(1));
    let m2 = Arc::new(Mutex::new(2));
    let c1 = Arc::clone(&m1);
    let c2 = Arc::clone(&m2);
    let h = thread::spawn(move || {{
        grab_both_{u}(&c2, &c1);
    }});
    grab_both_{u}(&m1, &m2);
    h.join();
}}
"""


def _deadlock_condvar_hold(u: str) -> str:
    # §6.1 condvar-hold: the waiter parks holding an *unrelated* lock
    # (the wait only releases its own guard), and the one notifier must
    # take that lock before it can signal — the wakeup can never happen.
    return f"""
static META_{u}: Mutex<i32> = Mutex::new(0);
fn bug_{u}() {{
    let state = Arc::new(Mutex::new(0));
    let cv = Arc::new(Condvar::new());
    let state2 = Arc::clone(&state);
    let cv2 = Arc::clone(&cv);
    let h = thread::spawn(move || {{
        let m = META_{u}.lock().unwrap();
        let g = state2.lock().unwrap();
        cv2.notify_one();
        print(*m + *g);
    }});
    let meta = META_{u}.lock().unwrap();
    let g = state.lock().unwrap();
    let g2 = cv.wait(g).unwrap();
    print(*meta + *g2);
    h.join();
}}
"""


def _deadlock_channel_recv(u: str) -> str:
    # §6.1 channel deadlock: the receiver blocks in ``recv()`` holding
    # the lock its only (cross-thread) sender must acquire before it can
    # send — the receiver waits for a message only a blocked thread can
    # produce.
    return f"""
static GATE_{u}: Mutex<i32> = Mutex::new(0);
fn bug_{u}() {{
    let (tx, rx) = channel();
    let h = thread::spawn(move || {{
        let g = GATE_{u}.lock().unwrap();
        tx.send(*g);
    }});
    let gate = GATE_{u}.lock().unwrap();
    let v = rx.recv().unwrap();
    print(*gate + v);
    h.join();
}}
"""


def _panic_between_read_and_write(u: str) -> str:
    # The CVE-class exception-safety shape: `ptr::read` duplicates the
    # value, a fallible operation runs, `ptr::write` restores.  On the
    # panic path the write-back never happens — unwinding drops both the
    # original (by scope obligation) and the duplicate: double free.
    return f"""
fn bug_{u}(flag: bool) -> i32 {{
    let mut slot = vec![1, 2, 3];
    unsafe {{
        let tmp = ptr::read(&slot);
        if flag {{
            panic!("mid-update");
        }}
        ptr::write(&mut slot, tmp);
    }}
    slot.len()
}}
"""


def _double_drop_in_drop_impl(u: str) -> str:
    # A destructor that `ptr::read`s a field and lets the duplicate
    # drop: after `fn drop` returns, the compiler's drop glue frees the
    # field a second time (the uid lives in the struct name, so the
    # finding's `Holder_<uid>::drop` key matches the injection).
    return f"""
struct Holder_{u} {{ data: Vec<i32> }}
impl Drop for Holder_{u} {{
    fn drop(&mut self) {{
        unsafe {{
            let dup = ptr::read(&self.data);
            drop(dup);
        }}
    }}
}}
fn make_holder_{u}() {{
    let h = Holder_{u} {{ data: vec![1, 2, 3] }};
}}
"""


def _uninit_pub_exposure(u: str) -> str:
    # A safe public constructor hands out a pointer to bytes it never
    # initialised — the uninitialised-buffer advisory shape.
    return f"""
pub fn bug_{u}() -> *mut i32 {{
    unsafe {{ alloc(16) as *mut i32 }}
}}
"""


BUG_TEMPLATES: Dict[str, BugTemplate] = {
    "double_lock_match": BugTemplate("double_lock_match", BugKind.BLOCKING,
                                     "double-lock", _double_lock_match),
    "double_lock_if": BugTemplate("double_lock_if", BugKind.BLOCKING,
                                  "double-lock", _double_lock_if),
    "double_lock_callee": BugTemplate("double_lock_callee", BugKind.BLOCKING,
                                      "double-lock", _double_lock_callee),
    "lock_order_pair": BugTemplate("lock_order_pair", BugKind.BLOCKING,
                                   "lock-order", _lock_order_pair),
    "condvar_no_notify": BugTemplate("condvar_no_notify", BugKind.BLOCKING,
                                     "condvar", _condvar_no_notify),
    "channel_no_sender": BugTemplate("channel_no_sender", BugKind.BLOCKING,
                                     "channel", _channel_no_sender),
    "once_recursion": BugTemplate("once_recursion", BugKind.BLOCKING,
                                  "once-recursion", _once_recursion),
    "recv_holding_lock": BugTemplate("recv_holding_lock", BugKind.BLOCKING,
                                     "channel", _recv_holding_lock),
    "deadlock_abba_two_threads": BugTemplate(
        "deadlock_abba_two_threads", BugKind.BLOCKING, "deadlock",
        _deadlock_abba_two_threads, dynamic_entry=True),
    "deadlock_condvar_hold": BugTemplate(
        "deadlock_condvar_hold", BugKind.BLOCKING, "deadlock",
        _deadlock_condvar_hold, dynamic_entry=True),
    "deadlock_channel_recv": BugTemplate(
        "deadlock_channel_recv", BugKind.BLOCKING, "deadlock",
        _deadlock_channel_recv, dynamic_entry=True),
    "uaf_drop_deref": BugTemplate("uaf_drop_deref", BugKind.MEMORY,
                                  "use-after-free", _uaf_drop_deref),
    "uaf_escape_ffi": BugTemplate("uaf_escape_ffi", BugKind.MEMORY,
                                  "use-after-free", _uaf_escape_ffi),
    "uaf_free_in_callee": BugTemplate("uaf_free_in_callee", BugKind.MEMORY,
                                      "use-after-free", _uaf_free_in_callee),
    "double_free_ptr_read": BugTemplate("double_free_ptr_read",
                                        BugKind.MEMORY, "double-free",
                                        _double_free_ptr_read),
    "invalid_free_assign": BugTemplate("invalid_free_assign", BugKind.MEMORY,
                                       "invalid-free", _invalid_free_assign),
    "uninit_read": BugTemplate("uninit_read", BugKind.MEMORY, "uninit-read",
                               _uninit_read),
    "null_deref": BugTemplate("null_deref", BugKind.MEMORY, "null-deref",
                              _null_deref),
    "overflow_unchecked": BugTemplate("overflow_unchecked", BugKind.MEMORY,
                                      "buffer-overflow", _overflow_unchecked),
    "atomic_check_act": BugTemplate("atomic_check_act", BugKind.NON_BLOCKING,
                                    "atomicity-violation", _atomic_check_act),
    "sync_unsync_write": BugTemplate("sync_unsync_write",
                                     BugKind.NON_BLOCKING,
                                     "sync-unsync-write", _sync_unsync_write),
    "race_unsync_counter": BugTemplate("race_unsync_counter",
                                       BugKind.NON_BLOCKING, "data-race",
                                       _race_unsync_counter,
                                       dynamic_entry=True),
    "race_arc_interior_mut": BugTemplate("race_arc_interior_mut",
                                         BugKind.NON_BLOCKING, "data-race",
                                         _race_arc_interior_mut,
                                         dynamic_entry=True),
    "race_lock_wrong_mutex": BugTemplate("race_lock_wrong_mutex",
                                         BugKind.NON_BLOCKING, "data-race",
                                         _race_lock_wrong_mutex,
                                         dynamic_entry=True),
    "unsafe_leak_raw_return": BugTemplate("unsafe_leak_raw_return",
                                          BugKind.MEMORY, "unsafe-leak",
                                          _unsafe_leak_raw_return),
    "unchecked_index_passthrough": BugTemplate(
        "unchecked_index_passthrough", BugKind.MEMORY,
        "unchecked-unsafe-input", _unchecked_index_passthrough),
    "panic_between_read_and_write": BugTemplate(
        "panic_between_read_and_write", BugKind.MEMORY, "panic-safety",
        _panic_between_read_and_write),
    "double_drop_in_drop_impl": BugTemplate(
        "double_drop_in_drop_impl", BugKind.MEMORY, "bad-drop",
        _double_drop_in_drop_impl),
    "uninit_pub_exposure": BugTemplate(
        "uninit_pub_exposure", BugKind.MEMORY, "uninit-exposure",
        _uninit_pub_exposure),
}

MEMORY_TEMPLATES = [t for t in BUG_TEMPLATES.values()
                    if t.kind is BugKind.MEMORY]
BLOCKING_TEMPLATES = [t for t in BUG_TEMPLATES.values()
                      if t.kind is BugKind.BLOCKING]
NONBLOCKING_TEMPLATES = [t for t in BUG_TEMPLATES.values()
                         if t.kind is BugKind.NON_BLOCKING]
