"""Synthetic MiniRust corpus standing in for the five studied applications.

The paper evaluated its detectors on Servo, Tock, Parity Ethereum, TiKV
and Redox.  We cannot ship those; instead :func:`generate_corpus` emits a
deterministic corpus of MiniRust crates whose *bug-pattern mix* follows
each application's published profile (Table 1 bug ratios, Table 3
primitive mix, Table 4 sharing mix) and whose *unsafe-usage mix* follows
the §4 operation/purpose distributions.  Each injected bug is labelled
with the detector expected to catch it, so detector recall and false
positives can be measured exactly.
"""

from repro.corpus.inject import BUG_TEMPLATES, BugTemplate, InjectedBug
from repro.corpus.generator import (
    APP_PROFILES, AppProfile, Corpus, CorpusFile, evaluate_detectors,
    generate_corpus,
)

__all__ = [
    "BUG_TEMPLATES", "BugTemplate", "InjectedBug", "APP_PROFILES",
    "AppProfile", "Corpus", "CorpusFile", "evaluate_detectors",
    "generate_corpus",
]
