"""rustc-style pretty printer for MIR bodies.

The output deliberately resembles ``rustc -Zdump-mir`` so anyone familiar
with real MIR dumps can read ours::

    fn main() -> () {
        let _1: Vec<i32>;          // v
        bb0: {
            StorageLive(_1)
            _1 = Vec::new() -> bb1
        }
        ...
    }
"""

from __future__ import annotations

from typing import List

from repro.mir.nodes import Body, Program, StatementKind


def pretty_body(body: Body) -> str:
    lines: List[str] = []
    unsafe_marker = "unsafe " if body.is_unsafe_fn else ""
    lines.append(f"{unsafe_marker}fn {body.key}(...) -> {body.ret_ty} {{")
    for local in body.locals:
        role = ""
        if local.index == 0:
            role = "return place"
        elif local.is_arg:
            role = "arg"
        elif local.name and not local.is_temp:
            role = local.name
        elif local.is_temp:
            role = "temp"
        comment = f"    // {role}" if role else ""
        lines.append(f"    let _{local.index}: {local.ty};{comment}")
    for block in body.blocks:
        lines.append(f"    bb{block.index}: {{")
        for stmt in block.statements:
            marker = "  // unsafe" if stmt.in_unsafe else ""
            lines.append(f"        {stmt};{marker}")
        if block.terminator is not None:
            marker = "  // unsafe" if block.terminator.in_unsafe else ""
            lines.append(f"        {block.terminator};{marker}")
        lines.append("    }")
    lines.append("}")
    return "\n".join(lines)


def pretty_program(program: Program) -> str:
    parts = [pretty_body(body) for body in program.bodies()]
    return "\n\n".join(parts)


def body_stats(body: Body) -> dict:
    """Summary statistics used by tests and the CLI."""
    n_stmts = sum(len(b.statements) for b in body.blocks)
    n_drops = sum(1 for _, _, s in body.iter_statements()
                  if s.kind is StatementKind.DROP)
    n_unsafe = sum(1 for _, _, s in body.iter_statements() if s.in_unsafe)
    return {
        "blocks": len(body.blocks),
        "locals": len(body.locals),
        "statements": n_stmts,
        "drops": n_drops,
        "unsafe_statements": n_unsafe,
    }
