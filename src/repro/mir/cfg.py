"""Control-flow-graph utilities over MIR bodies.

Provides predecessor/successor maps, reverse post-order, dominators
(Cooper-Harvey-Kennedy), natural-loop detection, and reachability — the
graph substrate every dataflow analysis and detector builds on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.mir.nodes import Body


class Cfg:
    """Successor/predecessor view of one body, plus derived orders."""

    def __init__(self, body: Body) -> None:
        self.body = body
        self.num_blocks = len(body.blocks)
        self.successors: List[List[int]] = [[] for _ in range(self.num_blocks)]
        self.predecessors: List[List[int]] = [[] for _ in range(self.num_blocks)]
        for block in body.blocks:
            if block.terminator is None:
                continue
            for succ in block.terminator.successors():
                if succ is None or not (0 <= succ < self.num_blocks):
                    continue
                self.successors[block.index].append(succ)
                self.predecessors[succ].append(block.index)
        self._rpo: Optional[List[int]] = None
        self._idom: Optional[List[Optional[int]]] = None

    # -- orders -------------------------------------------------------------

    def reverse_post_order(self) -> List[int]:
        if self._rpo is not None:
            return self._rpo
        visited: Set[int] = set()
        post: List[int] = []

        def dfs(start: int) -> None:
            stack = [(start, iter(self.successors[start]))]
            visited.add(start)
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ not in visited:
                        visited.add(succ)
                        stack.append((succ, iter(self.successors[succ])))
                        advanced = True
                        break
                if not advanced:
                    post.append(node)
                    stack.pop()

        if self.num_blocks:
            dfs(0)
        self._rpo = list(reversed(post))
        return self._rpo

    def reachable_blocks(self) -> Set[int]:
        return set(self.reverse_post_order())

    # -- dominators ------------------------------------------------------------

    def immediate_dominators(self) -> List[Optional[int]]:
        """Cooper-Harvey-Kennedy iterative dominator computation."""
        if self._idom is not None:
            return self._idom
        rpo = self.reverse_post_order()
        order_index = {bb: i for i, bb in enumerate(rpo)}
        idom: List[Optional[int]] = [None] * self.num_blocks
        if not rpo:
            self._idom = idom
            return idom
        entry = rpo[0]
        idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for bb in rpo[1:]:
                preds = [p for p in self.predecessors[bb]
                         if idom[p] is not None and p in order_index]
                if not preds:
                    continue
                new_idom = preds[0]
                for pred in preds[1:]:
                    new_idom = self._intersect(pred, new_idom, idom,
                                               order_index)
                if idom[bb] != new_idom:
                    idom[bb] = new_idom
                    changed = True
        self._idom = idom
        return idom

    @staticmethod
    def _intersect(a: int, b: int, idom: List[Optional[int]],
                   order: Dict[int, int]) -> int:
        while a != b:
            while order.get(a, -1) > order.get(b, -1):
                a = idom[a]
            while order.get(b, -1) > order.get(a, -1):
                b = idom[b]
        return a

    def dominates(self, a: int, b: int) -> bool:
        idom = self.immediate_dominators()
        node: Optional[int] = b
        while node is not None:
            if node == a:
                return True
            parent = idom[node]
            if parent == node:
                return node == a
            node = parent
        return False

    # -- loops ----------------------------------------------------------------------

    def back_edges(self) -> List[tuple]:
        """Edges ``(tail, head)`` where head dominates tail."""
        edges = []
        for bb in self.reachable_blocks():
            for succ in self.successors[bb]:
                if self.dominates(succ, bb):
                    edges.append((bb, succ))
        return edges

    def natural_loop(self, tail: int, head: int) -> Set[int]:
        """Blocks of the natural loop of back edge ``tail → head``."""
        loop = {head, tail}
        stack = [tail]
        while stack:
            node = stack.pop()
            for pred in self.predecessors[node]:
                if pred not in loop:
                    loop.add(pred)
                    stack.append(pred)
        return loop

    def loops(self) -> List[Set[int]]:
        return [self.natural_loop(t, h) for t, h in self.back_edges()]

    # -- path queries ----------------------------------------------------------------

    def can_reach(self, source: int, target: int,
                  without: Optional[Set[int]] = None) -> bool:
        """Is ``target`` reachable from ``source`` (avoiding ``without``)?"""
        blocked = without or set()
        if source in blocked:
            return False
        seen = {source}
        stack = [source]
        while stack:
            node = stack.pop()
            if node == target:
                return True
            for succ in self.successors[node]:
                if succ not in seen and succ not in blocked:
                    seen.add(succ)
                    stack.append(succ)
        return False
