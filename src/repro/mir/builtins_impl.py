"""Runtime semantics of every builtin operation the interpreter supports.

``dispatch_builtin`` is called from the interpreter's ``Call`` terminator
handler.  Returning the ``_SUSPENDED`` sentinel means the thread blocked
and the call terminator will re-execute when the thread wakes (lock
acquisition, channel operations, ``join``, ``Condvar::wait``).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.hir.builtins import BuiltinOp
from repro.mir.values import (
    MOVED, UNINIT, AtomicValue, BoxValue, ChannelEnd, ClosureValue,
    CondvarValue, DeadlockError, EnumValue, GuardValue, InterpError,
    MapValue, MutexValue, OnceValue, Pointer, RangeValue, RcValue,
    RuntimePanic, StringValue, StructValue, ThreadHandle, TupleValue,
    UBError, UBKind, VecValue, deep_copy, err, none, ok, some,
)


def _variant_name(value: EnumValue) -> str:
    return value.name.split("::")[-1] if value.name else ""


def _enum_success(value: EnumValue) -> bool:
    """Is this Some/Ok (as opposed to None/Err)?"""
    name = _variant_name(value)
    if name in ("Some", "Ok"):
        return True
    if name in ("None", "Err"):
        return False
    # Heuristic for unnamed enums produced internally.
    return bool(value.payload)


def _fmt(value: Any) -> str:
    if isinstance(value, StringValue):
        return value.text
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "()"
    if isinstance(value, EnumValue):
        name = _variant_name(value) or f"#{value.variant_index}"
        if value.payload:
            return f"{name}(" + ", ".join(_fmt(v) for v in value.payload) + ")"
        return name
    if isinstance(value, TupleValue):
        return "(" + ", ".join(_fmt(v) for v in value.elements) + ")"
    if isinstance(value, list):
        return "[" + ", ".join(_fmt(v) for v in value) + "]"
    return str(value)


def _format_args(interp, args: List[Any]) -> str:
    if not args:
        return ""
    first = args[0]
    if isinstance(first, StringValue) and ("{}" in first.text or
                                           "{:?}" in first.text or
                                           "{:" in first.text):
        text = first.text
        rest = list(args[1:])
        out = []
        i = 0
        while i < len(text):
            if text[i] == "{":
                close = text.find("}", i)
                if close != -1:
                    out.append(_fmt(rest.pop(0)) if rest else "")
                    i = close + 1
                    continue
            out.append(text[i])
            i += 1
        return "".join(out)
    return " ".join(_fmt(a) for a in args)


def dispatch_builtin(interp, thread, term, op: BuiltinOp,
                     arg_ops) -> Any:
    from repro.mir.interp import _SUSPENDED, ThreadState

    mem = interp.memory

    # ---- operations with special argument handling (may block) -----------
    if op is BuiltinOp.CONDVAR_WAIT:
        return _condvar_wait(interp, thread, term, arg_ops)
    if op is BuiltinOp.CHANNEL_SEND:
        return _channel_send(interp, thread, term, arg_ops)

    args = [interp.eval_operand(thread, a) for a in arg_ops]

    # ---- constructors -----------------------------------------------------
    if op is BuiltinOp.BOX_NEW:
        return BoxValue(mem.allocate(args[0], "heap", "Box"))
    if op in (BuiltinOp.RC_NEW, BuiltinOp.ARC_NEW):
        return RcValue(mem.allocate(args[0], "heap", "Rc/Arc"), [1],
                       is_arc=op is BuiltinOp.ARC_NEW)
    if op in (BuiltinOp.VEC_NEW, BuiltinOp.VEC_WITH_CAPACITY):
        return VecValue(mem.allocate([], "heap", "Vec"))
    if op is BuiltinOp.VEC_MACRO:
        if term.func is not None and term.func.name == "vec_repeat!" \
                and len(args) == 2 and isinstance(args[1], int):
            buffer = [deep_copy(args[0]) for _ in range(args[1])]
        else:
            buffer = list(args)
        return VecValue(mem.allocate(buffer, "heap", "Vec"))
    if op in (BuiltinOp.MUTEX_NEW, BuiltinOp.RWLOCK_NEW,
              BuiltinOp.REFCELL_NEW, BuiltinOp.CELL_NEW,
              BuiltinOp.UNSAFECELL_NEW):
        kind = {BuiltinOp.MUTEX_NEW: "mutex", BuiltinOp.RWLOCK_NEW: "rwlock",
                BuiltinOp.REFCELL_NEW: "refcell", BuiltinOp.CELL_NEW: "cell",
                BuiltinOp.UNSAFECELL_NEW: "cell"}[op]
        inner = mem.allocate(args[0] if args else UNINIT, "heap", kind)
        return MutexValue(inner, interp._new_obj_id(), kind)
    if op is BuiltinOp.CONDVAR_NEW:
        cid = interp._new_obj_id()
        interp.condvars[cid] = []
        return CondvarValue(cid)
    if op is BuiltinOp.ONCE_NEW:
        oid = interp._new_obj_id()
        interp.onces[oid] = False
        return OnceValue(oid)
    if op is BuiltinOp.ATOMIC_NEW:
        return AtomicValue([args[0] if args else 0])
    if op is BuiltinOp.STRING_NEW:
        return StringValue("")
    if op in (BuiltinOp.STRING_FROM, BuiltinOp.TO_STRING,
              BuiltinOp.FROM_UTF8_UNCHECKED):
        if op is BuiltinOp.TO_STRING:
            value = interp._receiver_value(thread, args[0]) \
                if isinstance(args[0], Pointer) else args[0]
            return StringValue(_fmt(value))
        if args and isinstance(args[0], StringValue):
            return StringValue(args[0].text)
        if args and isinstance(args[0], VecValue):
            buf = mem.check_live(args[0].buffer, "Vec").value
            try:
                return StringValue("".join(chr(int(c)) for c in buf))
            except (ValueError, TypeError):
                return StringValue("")
        return StringValue(_fmt(args[0]) if args else "")
    if op is BuiltinOp.HASHMAP_NEW:
        return MapValue(mem.allocate({}, "heap", "HashMap"))
    if op in (BuiltinOp.CHANNEL_NEW, BuiltinOp.SYNC_CHANNEL_NEW):
        from repro.mir.interp import _ChannelState
        cid = interp._new_obj_id()
        capacity = None
        if op is BuiltinOp.SYNC_CHANNEL_NEW and args and \
                isinstance(args[0], int):
            capacity = args[0]
        interp.channels[cid] = _ChannelState(capacity=capacity)
        return TupleValue([ChannelEnd(cid, True), ChannelEnd(cid, False)])
    if op is BuiltinOp.SOME:
        return some(args[0] if args else None)
    if op is BuiltinOp.NONE:
        return none()
    if op is BuiltinOp.OK:
        return ok(args[0] if args else None)
    if op is BuiltinOp.ERR:
        return err(args[0] if args else None)

    # ---- Option / Result ----------------------------------------------------
    if op in (BuiltinOp.UNWRAP, BuiltinOp.EXPECT):
        return _unwrap(interp, thread, args, term,
                       expect_msg=_fmt(args[1]) if op is BuiltinOp.EXPECT
                       and len(args) > 1 else "")
    if op in (BuiltinOp.IS_SOME, BuiltinOp.IS_NONE, BuiltinOp.IS_OK,
              BuiltinOp.IS_ERR):
        value = _enum_arg(interp, thread, args[0])
        success = _enum_success(value)
        if op in (BuiltinOp.IS_SOME, BuiltinOp.IS_OK):
            return success
        return not success
    if op is BuiltinOp.UNWRAP_OR:
        value = _enum_arg(interp, thread, args[0])
        if _enum_success(value):
            return value.payload[0] if value.payload else None
        return args[1] if len(args) > 1 else None
    if op is BuiltinOp.OK_METHOD:
        value = _enum_arg(interp, thread, args[0])
        if _enum_success(value):
            return some(value.payload[0] if value.payload else None)
        return none()
    if op is BuiltinOp.TAKE:
        alloc_id, path = interp._deref_receiver(thread, args[0])
        value = interp._read_path(alloc_id, path, allow_uninit=False,
                                  what="Option::take receiver")
        interp._write_path(alloc_id, path, none())
        return value
    if op is BuiltinOp.MAP:
        value = _enum_arg(interp, thread, args[0])
        if _enum_success(value) and len(args) > 1 and \
                isinstance(args[1], ClosureValue):
            payload = value.payload[0] if value.payload else None
            result = interp.call_closure_sync(thread, args[1], [payload])
            return some(result)
        return none() if _variant_name(value) in ("None", "Some") else value
    if op is BuiltinOp.MAP_OR:
        value = _enum_arg(interp, thread, args[0])
        if _enum_success(value) and len(args) > 2 and \
                isinstance(args[2], ClosureValue):
            payload = value.payload[0] if value.payload else None
            return interp.call_closure_sync(thread, args[2], [payload])
        return args[1] if len(args) > 1 else None
    if op is BuiltinOp.AND_THEN:
        value = _enum_arg(interp, thread, args[0])
        if _enum_success(value) and len(args) > 1 and \
                isinstance(args[1], ClosureValue):
            payload = value.payload[0] if value.payload else None
            return interp.call_closure_sync(thread, args[1], [payload])
        return none()
    if op in (BuiltinOp.AS_REF, BuiltinOp.AS_MUT):
        alloc_id, path = interp._deref_receiver(thread, args[0])
        value = interp._read_path(alloc_id, path, allow_uninit=False,
                                  what="as_ref receiver")
        if isinstance(value, EnumValue):
            if _enum_success(value) and value.payload:
                return some(Pointer(alloc_id, path + (0,),
                                    op is BuiltinOp.AS_MUT))
            return none()
        return Pointer(alloc_id, path, op is BuiltinOp.AS_MUT)

    # ---- clone & conversion ---------------------------------------------------
    if op in (BuiltinOp.CLONE, BuiltinOp.ARC_CLONE, BuiltinOp.RC_CLONE):
        value = args[0]
        if isinstance(value, Pointer):
            value = interp._read_path(value.alloc_id, value.path, False,
                                      "clone receiver")
        return _clone_value(interp, value)
    if op is BuiltinOp.DOWNGRADE:
        value = args[0]
        if isinstance(value, Pointer):
            value = interp._read_path(value.alloc_id, value.path, False,
                                      "downgrade receiver")
        if isinstance(value, RcValue):
            return RcValue(value.target, value.counter, value.is_arc,
                           weak=True)
        return value
    if op is BuiltinOp.UPGRADE:
        value = interp._receiver_value(thread, args[0]) \
            if isinstance(args[0], Pointer) else args[0]
        if isinstance(value, RcValue) and value.counter[0] > 0:
            value.counter[0] += 1
            return some(RcValue(value.target, value.counter, value.is_arc))
        return none()
    if op is BuiltinOp.INTO:
        return args[0]
    if op is BuiltinOp.DEREF:
        alloc_id, path = interp._deref_receiver(thread, args[0])
        value = interp._read_path(alloc_id, path, False, "deref receiver")
        if isinstance(value, (BoxValue, RcValue)):
            target = value.target
            mem.check_live(target, "deref target")
            return Pointer(target, ())
        if isinstance(value, GuardValue):
            if value.released:
                raise UBError(UBKind.USE_AFTER_FREE,
                              "guard deref after release")
            return Pointer(value.inner, ())
        return Pointer(alloc_id, path)

    # ---- locks -------------------------------------------------------------------
    if op in (BuiltinOp.MUTEX_LOCK, BuiltinOp.MUTEX_TRY_LOCK,
              BuiltinOp.RWLOCK_READ, BuiltinOp.RWLOCK_WRITE,
              BuiltinOp.RWLOCK_TRY_READ, BuiltinOp.RWLOCK_TRY_WRITE):
        return _lock_acquire(interp, thread, args[0], op)
    if op in (BuiltinOp.REFCELL_BORROW, BuiltinOp.REFCELL_BORROW_MUT):
        return _refcell_borrow(interp, thread, args[0], op)
    if op is BuiltinOp.CELL_GET:
        value = interp._receiver_value(thread, args[0], "Cell")
        if isinstance(value, MutexValue):
            return deep_copy(interp._read_path(value.inner, (), False,
                                               "Cell contents"))
        return deep_copy(value)
    if op is BuiltinOp.CELL_SET:
        value = interp._receiver_value(thread, args[0], "Cell")
        if isinstance(value, MutexValue):
            interp._write_path(value.inner, (), args[1])
            interp._record_access(thread, value.inner, is_write=True)
        return None
    if op is BuiltinOp.UNSAFECELL_GET:
        value = interp._receiver_value(thread, args[0], "UnsafeCell")
        if isinstance(value, MutexValue):
            return Pointer(value.inner, (), mutable=True)
        return Pointer.null_ptr()

    # ---- condvar notify / once ------------------------------------------------------
    if op in (BuiltinOp.CONDVAR_NOTIFY_ONE, BuiltinOp.CONDVAR_NOTIFY_ALL):
        cv = interp._receiver_value(thread, args[0], "Condvar")
        if isinstance(cv, CondvarValue):
            waiting = interp.condvars.get(cv.condvar_id, [])
            count = 1 if op is BuiltinOp.CONDVAR_NOTIFY_ONE else len(waiting)
            for _ in range(min(count, len(waiting))):
                tid = waiting.pop(0)
                target = interp.threads[tid]
                target.notified = True
                target.state = ThreadState.RUNNABLE
                target.block_reason = ""
                target.block_object = None
        return None
    if op is BuiltinOp.ONCE_CALL_ONCE:
        once = interp._receiver_value(thread, args[0], "Once")
        if isinstance(once, OnceValue):
            state = interp.onces.get(once.once_id, False)
            if state == "running":
                raise DeadlockError(
                    "call_once re-entered while its initialiser is running "
                    "(recursive call_once)",
                    {thread.thread_id: f"once {once.once_id}"})
            if state is False:
                interp.onces[once.once_id] = "running"
                closure = next((a for a in args[1:]
                                if isinstance(a, ClosureValue)), None)
                if closure is not None:
                    interp.call_closure_sync(thread, closure, [])
                interp.onces[once.once_id] = True
        return None

    # ---- channels ---------------------------------------------------------------------
    if op in (BuiltinOp.CHANNEL_RECV, BuiltinOp.CHANNEL_TRY_RECV):
        end = interp._receiver_value(thread, args[0], "Receiver")
        if not isinstance(end, ChannelEnd):
            return err(StringValue("RecvError"))
        channel = interp.channels.get(end.channel_id)
        if channel is None:
            return err(StringValue("RecvError"))
        if channel.queue:
            value = channel.queue.pop(0)
            interp._wake_channel_waiters(end.channel_id)
            return ok(value)
        if channel.senders <= 0 or op is BuiltinOp.CHANNEL_TRY_RECV:
            return err(StringValue("RecvError"))
        interp._block(thread, "channel-recv", end.channel_id)
        return _SUSPENDED

    # ---- atomics ----------------------------------------------------------------------
    if op in (BuiltinOp.ATOMIC_LOAD, BuiltinOp.ATOMIC_STORE,
              BuiltinOp.ATOMIC_CAS, BuiltinOp.ATOMIC_CAE,
              BuiltinOp.ATOMIC_FETCH_ADD, BuiltinOp.ATOMIC_FETCH_SUB,
              BuiltinOp.ATOMIC_SWAP):
        atomic = interp._receiver_value(thread, args[0], "atomic")
        if not isinstance(atomic, AtomicValue):
            raise InterpError(f"atomic op on non-atomic {atomic!r}")
        cell = atomic.cell
        rest = args[1:]
        if op is BuiltinOp.ATOMIC_LOAD:
            return cell[0]
        if op is BuiltinOp.ATOMIC_STORE:
            cell[0] = rest[0] if rest else 0
            return None
        if op is BuiltinOp.ATOMIC_CAS:
            old = cell[0]
            if old == rest[0]:
                cell[0] = rest[1]
            return old
        if op is BuiltinOp.ATOMIC_CAE:
            old = cell[0]
            if old == rest[0]:
                cell[0] = rest[1]
                return ok(old)
            return err(old)
        if op is BuiltinOp.ATOMIC_FETCH_ADD:
            old = cell[0]
            cell[0] = old + (rest[0] if rest else 1)
            return old
        if op is BuiltinOp.ATOMIC_FETCH_SUB:
            old = cell[0]
            cell[0] = old - (rest[0] if rest else 1)
            return old
        if op is BuiltinOp.ATOMIC_SWAP:
            old = cell[0]
            cell[0] = rest[0] if rest else old
            return old

    # ---- threads --------------------------------------------------------------------------
    if op is BuiltinOp.THREAD_SPAWN:
        closure = next((a for a in args if isinstance(a, ClosureValue)),
                       None)
        if closure is None:
            return ThreadHandle(-1)
        body = interp.program.functions.get(closure.key)
        if body is None:
            return ThreadHandle(-1)
        new_thread = interp._spawn_thread(body, list(closure.captures))
        return ThreadHandle(new_thread.thread_id)
    if op is BuiltinOp.THREAD_JOIN:
        handle = interp._receiver_value(thread, args[0], "JoinHandle")
        if not isinstance(handle, ThreadHandle) or handle.thread_id < 0:
            return ok(None)
        target = interp.threads[handle.thread_id]
        if target.state is ThreadState.DONE:
            return ok(target.result)
        if target.state is ThreadState.PANICKED:
            return err(StringValue(target.panic_message))
        interp._block(thread, "join", handle.thread_id)
        return _SUSPENDED
    if op in (BuiltinOp.THREAD_SLEEP, BuiltinOp.THREAD_YIELD):
        return None

    # ---- Vec / slice / String ---------------------------------------------------------------
    vec_result = _vec_ops(interp, thread, term, op, args)
    if vec_result is not _NOT_HANDLED:
        return vec_result

    # ---- HashMap -------------------------------------------------------------------------------
    map_result = _map_ops(interp, thread, op, args)
    if map_result is not _NOT_HANDLED:
        return map_result

    # ---- raw memory ------------------------------------------------------------------------------
    raw_result = _raw_memory_ops(interp, thread, op, args)
    if raw_result is not _NOT_HANDLED:
        return raw_result

    # ---- I/O & misc ---------------------------------------------------------------------------------
    if op is BuiltinOp.PRINT:
        interp.stdout.append(_format_args(interp, args))
        return None
    if op is BuiltinOp.FORMAT:
        return StringValue(_format_args(interp, args))
    if op is BuiltinOp.PANIC:
        raise RuntimePanic(_format_args(interp, args) or "explicit panic")
    if op is BuiltinOp.ASSERT:
        if len(args) >= 2 and not isinstance(args[0], bool):
            if not interp._values_equal(args[0], args[1]):
                raise RuntimePanic(
                    f"assertion failed: {_fmt(args[0])} != {_fmt(args[1])}")
            return None
        if not args or not bool(args[0]):
            raise RuntimePanic("assertion failed")
        return None
    if op is BuiltinOp.UNIMPLEMENTED:
        raise RuntimePanic("not implemented")
    if op is BuiltinOp.PROCESS_EXIT:
        thread.frames.clear()
        thread.state = ThreadState.DONE
        return _SUSPENDED
    if op is BuiltinOp.GETMNTENT:
        alloc = interp.memory.allocate(
            StructValue("mntent", [StringValue("/dev/sda1")], ["mnt_fsname"]),
            "static", "mntent")
        return Pointer(alloc, (), mutable=True)
    if op is BuiltinOp.FFI:
        return None
    if op is BuiltinOp.ITER_NEXT:
        return none()
    if op is BuiltinOp.GUARD_UNLOCK:
        value = args[0] if args else None
        if isinstance(value, Pointer):
            value = interp._read_path(value.alloc_id, value.path, False,
                                      "unlock receiver")
        if isinstance(value, GuardValue):
            interp._release_guard(thread, value)
        return None

    # Unknown builtin: benign no-op.
    return None


_NOT_HANDLED = object()


def _enum_arg(interp, thread, arg) -> EnumValue:
    """Builtin Option/Result receivers may be the value or a pointer to it."""
    value = arg
    if isinstance(value, Pointer):
        value = interp._read_path(value.alloc_id, value.path, False,
                                  "enum receiver")
    hops = 0
    while not isinstance(value, EnumValue) and hops < 4:
        hops += 1
        if isinstance(value, Pointer):
            value = interp._read_path(value.alloc_id, value.path, False,
                                      "enum receiver")
        elif isinstance(value, (BoxValue, RcValue)):
            value = interp._read_path(value.target, (), False,
                                      "enum receiver")
        else:
            break
    if not isinstance(value, EnumValue):
        # Treat any other value as Some(value) — lenient for unknown types.
        return some(value)
    return value


def _unwrap(interp, thread, args, term, expect_msg: str = "") -> Any:
    receiver = args[0]
    container: Optional[Tuple[int, Tuple]] = None
    value = receiver
    if isinstance(value, Pointer):
        container = (value.alloc_id, value.path)
        value = interp._read_path(value.alloc_id, value.path, False,
                                  "unwrap receiver")
    if not isinstance(value, EnumValue):
        return value
    if _enum_success(value):
        payload = value.payload[0] if value.payload else None
        # Move the payload out so a later drop of the container does not
        # double-drop (unwrap consumes the Result/Option).
        if container is not None and value.payload:
            value.payload[0] = MOVED
        return payload
    detail = ""
    if value.payload and value.payload[0] is not None:
        detail = f": {_fmt(value.payload[0])}"
    message = expect_msg or (
        "called `unwrap()` on a `"
        + (_variant_name(value) or "Err") + "` value" + detail)
    raise RuntimePanic(message)


def _clone_value(interp, value):
    mem = interp.memory
    if isinstance(value, RcValue):
        if not value.weak:
            value.counter[0] += 1
        return RcValue(value.target, value.counter, value.is_arc, value.weak)
    if isinstance(value, VecValue):
        buffer = mem.check_live(value.buffer, "Vec").value
        return VecValue(mem.allocate([deep_copy(v) for v in buffer],
                                     "heap", "Vec"))
    if isinstance(value, MapValue):
        buffer = mem.check_live(value.buffer, "Map").value
        return MapValue(mem.allocate(dict(buffer), "heap", "HashMap"))
    if isinstance(value, StringValue):
        return StringValue(value.text)
    if isinstance(value, BoxValue):
        inner = interp._read_path(value.target, (), False, "Box clone")
        return BoxValue(mem.allocate(_clone_value(interp, inner), "heap",
                                     "Box"))
    return deep_copy(value)


# ---------------------------------------------------------------------------
# Locks
# ---------------------------------------------------------------------------

def _lock_acquire(interp, thread, receiver, op: BuiltinOp):
    from repro.mir.interp import _SUSPENDED
    mutex = interp._receiver_value(thread, receiver, "lock receiver")
    if not isinstance(mutex, MutexValue):
        raise InterpError(f"lock on non-lock value {mutex!r}")
    mode = "write" if op in (BuiltinOp.MUTEX_LOCK, BuiltinOp.MUTEX_TRY_LOCK,
                             BuiltinOp.RWLOCK_WRITE,
                             BuiltinOp.RWLOCK_TRY_WRITE) else "read"
    is_try = op in (BuiltinOp.MUTEX_TRY_LOCK, BuiltinOp.RWLOCK_TRY_READ,
                    BuiltinOp.RWLOCK_TRY_WRITE)
    state = interp._lock_state(mutex.lock_id, mutex.kind)
    if state.poisoned:
        return err(StringValue("PoisonError"))
    if is_try:
        tid = thread.thread_id
        if mode == "write":
            available = state.writer is None and not state.readers
        else:
            available = state.writer is None
        if not available:
            return err(StringValue("WouldBlock"))
        # fall through to blocking acquire, which will now succeed
        acquired = interp._try_acquire(thread, mutex.lock_id, mode)
        if acquired:
            return ok(GuardValue(mutex.lock_id, mutex.inner, mode))
        return err(StringValue("WouldBlock"))
    acquired = interp._try_acquire(thread, mutex.lock_id, mode)
    if acquired:
        return ok(GuardValue(mutex.lock_id, mutex.inner, mode))
    interp._block(thread, f"lock {mutex.lock_id}", mutex.lock_id)
    return _SUSPENDED


def _refcell_borrow(interp, thread, receiver, op: BuiltinOp):
    cell = interp._receiver_value(thread, receiver, "RefCell")
    if not isinstance(cell, MutexValue):
        raise InterpError(f"borrow on non-RefCell {cell!r}")
    state = interp._lock_state(cell.lock_id, "refcell")
    if op is BuiltinOp.REFCELL_BORROW_MUT:
        if state.writer is not None or state.readers:
            raise RuntimePanic("already borrowed: BorrowMutError")
        state.writer = thread.thread_id
        thread.held_locks.append((cell.lock_id, "write"))
        return GuardValue(cell.lock_id, cell.inner, "write")
    if state.writer is not None:
        raise RuntimePanic("already mutably borrowed: BorrowError")
    tid = thread.thread_id
    state.readers[tid] = state.readers.get(tid, 0) + 1
    thread.held_locks.append((cell.lock_id, "read"))
    return GuardValue(cell.lock_id, cell.inner, "read")


def _condvar_wait(interp, thread, term, arg_ops):
    from repro.mir.interp import _SUSPENDED
    if thread.condvar_wait is not None:
        # Woken up: re-acquire the lock before returning the guard.
        cid, lock_id, guard = thread.condvar_wait
        if interp._try_acquire(thread, lock_id, guard.mode):
            thread.condvar_wait = None
            thread.notified = False
            guard.released = False
            return ok(guard)
        interp._block(thread, f"lock {lock_id}", lock_id)
        return _SUSPENDED
    args = [interp.eval_operand(thread, a) for a in arg_ops]
    cv = interp._receiver_value(thread, args[0], "Condvar")
    guard = args[1] if len(args) > 1 else None
    if not isinstance(cv, CondvarValue) or not isinstance(guard, GuardValue):
        return err(StringValue("WaitError"))
    # Release the lock and wait.
    interp._release_lock(thread, guard.lock_id, guard.mode)
    guard.released = True
    interp.condvars.setdefault(cv.condvar_id, []).append(thread.thread_id)
    thread.condvar_wait = (cv.condvar_id, guard.lock_id, guard)
    interp._block(thread, f"condvar {cv.condvar_id}", cv.condvar_id)
    return _SUSPENDED


def _channel_send(interp, thread, term, arg_ops):
    from repro.mir.interp import _SUSPENDED
    if thread.pending_send is not None:
        channel_id, value = thread.pending_send
        channel = interp.channels.get(channel_id)
        if channel is None or channel.receivers <= 0:
            thread.pending_send = None
            return err(StringValue("SendError"))
        if channel.capacity is not None and \
                len(channel.queue) >= channel.capacity:
            interp._block(thread, "channel-send", channel_id)
            return _SUSPENDED
        channel.queue.append(value)
        thread.pending_send = None
        interp._wake_channel_waiters(channel_id)
        return ok(None)
    args = [interp.eval_operand(thread, a) for a in arg_ops]
    end = interp._receiver_value(thread, args[0], "Sender")
    payload = args[1] if len(args) > 1 else None
    if not isinstance(end, ChannelEnd):
        return err(StringValue("SendError"))
    channel = interp.channels.get(end.channel_id)
    if channel is None or channel.receivers <= 0:
        return err(StringValue("SendError"))
    if channel.capacity is not None and \
            len(channel.queue) >= channel.capacity:
        thread.pending_send = (end.channel_id, payload)
        interp._block(thread, "channel-send", end.channel_id)
        return _SUSPENDED
    channel.queue.append(payload)
    interp._wake_channel_waiters(end.channel_id)
    return ok(None)


# ---------------------------------------------------------------------------
# Vec / slice
# ---------------------------------------------------------------------------

def _vec_buffer(interp, thread, receiver):
    """Resolve a builtin receiver pointer to ``(buffer_alloc, list)``."""
    value = interp._receiver_value(thread, receiver, "Vec receiver")
    if isinstance(value, VecValue):
        alloc = interp.memory.check_live(value.buffer, "Vec buffer")
        return value.buffer, alloc.value
    if isinstance(value, list):
        return None, value
    if isinstance(value, StringValue):
        return None, list(value.text)
    raise InterpError(f"Vec operation on {value!r}")


def _vec_ops(interp, thread, term, op: BuiltinOp, args):
    from repro.mir.interp import _SUSPENDED
    mem = interp.memory
    if op is BuiltinOp.VEC_PUSH:
        buffer_id, buffer = _vec_buffer(interp, thread, args[0])
        buffer.append(args[1] if len(args) > 1 else None)
        if buffer_id is not None:
            interp._record_access(thread, buffer_id, is_write=True)
        return None
    if op is BuiltinOp.VEC_POP:
        buffer_id, buffer = _vec_buffer(interp, thread, args[0])
        if buffer:
            if term.func is not None and term.func.name == "pop_front":
                return some(buffer.pop(0))
            return some(buffer.pop())
        return none()
    if op is BuiltinOp.VEC_LEN:
        _bid, buffer = _vec_buffer(interp, thread, args[0])
        return len(buffer)
    if op is BuiltinOp.VEC_CAPACITY:
        _bid, buffer = _vec_buffer(interp, thread, args[0])
        return max(len(buffer), 4)
    if op is BuiltinOp.VEC_IS_EMPTY:
        _bid, buffer = _vec_buffer(interp, thread, args[0])
        return not buffer
    if op in (BuiltinOp.VEC_GET, BuiltinOp.VEC_GET_MUT):
        buffer_id, buffer = _vec_buffer(interp, thread, args[0])
        index = args[1] if len(args) > 1 else 0
        if isinstance(index, int) and 0 <= index < len(buffer) \
                and buffer_id is not None:
            return some(Pointer(buffer_id, (index,),
                                op is BuiltinOp.VEC_GET_MUT))
        return none()
    if op in (BuiltinOp.VEC_GET_UNCHECKED, BuiltinOp.VEC_GET_UNCHECKED_MUT):
        interp.unchecked_accesses += 1
        buffer_id, buffer = _vec_buffer(interp, thread, args[0])
        index = args[1] if len(args) > 1 else 0
        if not isinstance(index, int) or not (0 <= index < len(buffer)):
            raise UBError(UBKind.OUT_OF_BOUNDS,
                          f"get_unchecked({index}) out of bounds "
                          f"(len {len(buffer)})")
        if buffer_id is not None:
            return Pointer(buffer_id, (index,),
                           op is BuiltinOp.VEC_GET_UNCHECKED_MUT)
        return buffer[index]
    if op in (BuiltinOp.FIRST, BuiltinOp.LAST):
        buffer_id, buffer = _vec_buffer(interp, thread, args[0])
        if not buffer:
            return none()
        index = 0 if op is BuiltinOp.FIRST else len(buffer) - 1
        if buffer_id is not None:
            return some(Pointer(buffer_id, (index,)))
        return some(buffer[index])
    if op is BuiltinOp.VEC_INSERT:
        _bid, buffer = _vec_buffer(interp, thread, args[0])
        index = args[1] if len(args) > 1 else 0
        if not (0 <= index <= len(buffer)):
            raise RuntimePanic(f"insertion index (is {index}) should be <= "
                               f"len (is {len(buffer)})")
        buffer.insert(index, args[2] if len(args) > 2 else None)
        return None
    if op is BuiltinOp.VEC_REMOVE:
        _bid, buffer = _vec_buffer(interp, thread, args[0])
        index = args[1] if len(args) > 1 else 0
        if not (0 <= index < len(buffer)):
            raise RuntimePanic(f"removal index (is {index}) should be < "
                               f"len (is {len(buffer)})")
        return buffer.pop(index)
    if op is BuiltinOp.VEC_CLEAR:
        _bid, buffer = _vec_buffer(interp, thread, args[0])
        for element in buffer:
            interp.drop_value(thread, element)
        buffer.clear()
        return None
    if op is BuiltinOp.VEC_TRUNCATE:
        _bid, buffer = _vec_buffer(interp, thread, args[0])
        new_len = args[1] if len(args) > 1 else 0
        while len(buffer) > new_len:
            interp.drop_value(thread, buffer.pop())
        return None
    if op is BuiltinOp.VEC_RESERVE:
        return None
    if op in (BuiltinOp.VEC_AS_PTR, BuiltinOp.VEC_AS_MUT_PTR):
        value = interp._receiver_value(thread, args[0], "as_ptr receiver")
        if isinstance(value, VecValue):
            mem.check_live(value.buffer, "Vec buffer")
            return Pointer(value.buffer, (0,),
                           op is BuiltinOp.VEC_AS_MUT_PTR)
        if isinstance(value, StringValue) and isinstance(args[0], Pointer):
            return Pointer(args[0].alloc_id, args[0].path)
        if isinstance(args[0], Pointer):
            return Pointer(args[0].alloc_id, args[0].path,
                           op is BuiltinOp.VEC_AS_MUT_PTR)
        return Pointer.null_ptr()
    if op is BuiltinOp.VEC_SET_LEN:
        _bid, buffer = _vec_buffer(interp, thread, args[0])
        new_len = args[1] if len(args) > 1 else 0
        if new_len > len(buffer):
            buffer.extend([UNINIT] * (new_len - len(buffer)))
        else:
            del buffer[new_len:]
        return None
    if op is BuiltinOp.VEC_FROM_RAW_PARTS:
        pointer = args[0]
        if isinstance(pointer, Pointer):
            # Shares the existing buffer: a second owner is born — dropping
            # both is the paper's double-free.
            return VecValue(pointer.alloc_id)
        return VecValue(mem.allocate([], "heap", "Vec"))
    if op is BuiltinOp.VEC_ITER:
        value = interp._receiver_value(thread, args[0], "iter receiver")
        return value
    if op is BuiltinOp.VEC_CONTAINS:
        _bid, buffer = _vec_buffer(interp, thread, args[0])
        needle = args[1] if len(args) > 1 else None
        if isinstance(needle, Pointer):
            needle = interp._read_path(needle.alloc_id, needle.path, False,
                                       "contains needle")
        return any(interp._values_equal(x, needle) for x in buffer)
    if op is BuiltinOp.VEC_EXTEND:
        _bid, buffer = _vec_buffer(interp, thread, args[0])
        other = args[1] if len(args) > 1 else None
        if isinstance(other, VecValue):
            other_buffer = mem.check_live(other.buffer, "Vec").value
            buffer.extend(deep_copy(x) for x in other_buffer)
        elif isinstance(other, list):
            buffer.extend(deep_copy(x) for x in other)
        return None
    if op is BuiltinOp.SLICE_COPY_FROM_SLICE:
        _bid, buffer = _vec_buffer(interp, thread, args[0])
        other = args[1] if len(args) > 1 else None
        source: List[Any] = []
        if isinstance(other, VecValue):
            source = mem.check_live(other.buffer, "Vec").value
        elif isinstance(other, list):
            source = other
        elif isinstance(other, Pointer):
            target = interp._read_path(other.alloc_id, other.path, False,
                                       "copy source")
            if isinstance(target, VecValue):
                source = mem.check_live(target.buffer, "Vec").value
            elif isinstance(target, list):
                source = target
        if len(source) != len(buffer):
            raise RuntimePanic("source slice length does not match "
                               "destination slice length")
        buffer[:] = [deep_copy(x) for x in source]
        return None
    return _NOT_HANDLED


def _map_ops(interp, thread, op: BuiltinOp, args):
    mem = interp.memory

    def map_dict(receiver):
        value = interp._receiver_value(thread, receiver, "Map receiver")
        if isinstance(value, MapValue):
            return value.buffer, mem.check_live(value.buffer, "Map").value
        if isinstance(value, dict):
            return None, value
        raise InterpError(f"map operation on {value!r}")

    def key_of(raw):
        if isinstance(raw, StringValue):
            return raw.text
        if isinstance(raw, Pointer):
            return key_of(interp._read_path(raw.alloc_id, raw.path, False,
                                            "map key"))
        return raw

    if op is BuiltinOp.MAP_INSERT:
        buffer_id, table = map_dict(args[0])
        key = key_of(args[1] if len(args) > 1 else None)
        old = table.get(key)
        table[key] = args[2] if len(args) > 2 else None
        if buffer_id is not None:
            interp._record_access(thread, buffer_id, is_write=True)
        return some(old) if old is not None else none()
    if op is BuiltinOp.MAP_GET:
        buffer_id, table = map_dict(args[0])
        key = key_of(args[1] if len(args) > 1 else None)
        if key in table and buffer_id is not None:
            return some(Pointer(buffer_id, (key,)))
        if key in table:
            return some(table[key])
        return none()
    if op is BuiltinOp.MAP_REMOVE:
        _bid, table = map_dict(args[0])
        key = key_of(args[1] if len(args) > 1 else None)
        if key in table:
            return some(table.pop(key))
        return none()
    if op is BuiltinOp.MAP_CONTAINS_KEY:
        _bid, table = map_dict(args[0])
        return key_of(args[1] if len(args) > 1 else None) in table
    return _NOT_HANDLED


def _raw_memory_ops(interp, thread, op: BuiltinOp, args):
    mem = interp.memory
    if op is BuiltinOp.PTR_READ:
        pointer = args[0]
        if isinstance(pointer, Pointer):
            if pointer.null:
                raise UBError(UBKind.NULL_DEREF, "ptr::read of null pointer")
            mem.check_live(pointer.alloc_id, "ptr::read target")
            value = interp._read_path(pointer.alloc_id, pointer.path, False,
                                      "ptr::read")
            # Deliberately *not* a deep copy of handles: the duplicate owns
            # the same resources — the §5.1 double-free seed.
            return deep_copy(value)
        raise UBError(UBKind.NULL_DEREF, "ptr::read of non-pointer")
    if op is BuiltinOp.PTR_WRITE:
        pointer = args[0]
        if isinstance(pointer, Pointer):
            if pointer.null:
                raise UBError(UBKind.NULL_DEREF, "ptr::write to null pointer")
            mem.check_live(pointer.alloc_id, "ptr::write target")
            interp._write_path(pointer.alloc_id, pointer.path,
                               args[1] if len(args) > 1 else None)
            interp._record_access(thread, pointer.alloc_id, is_write=True)
            return None
        raise UBError(UBKind.NULL_DEREF, "ptr::write to non-pointer")
    if op in (BuiltinOp.PTR_COPY, BuiltinOp.PTR_COPY_NONOVERLAPPING):
        src, dst = args[0], args[1] if len(args) > 1 else None
        count = args[2] if len(args) > 2 else 0
        if isinstance(src, Pointer) and isinstance(dst, Pointer):
            mem.check_live(src.alloc_id, "copy source")
            mem.check_live(dst.alloc_id, "copy destination")
            src_container = mem.get(src.alloc_id).value
            dst_container = mem.get(dst.alloc_id).value
            if isinstance(src_container, list) and \
                    isinstance(dst_container, list):
                start_s = src.path[0] if src.path else 0
                start_d = dst.path[0] if dst.path else 0
                for i in range(int(count)):
                    if start_s + i >= len(src_container):
                        raise UBError(UBKind.OUT_OF_BOUNDS,
                                      "ptr::copy source out of bounds")
                    if start_d + i >= len(dst_container):
                        raise UBError(UBKind.OUT_OF_BOUNDS,
                                      "ptr::copy destination out of bounds")
                    dst_container[start_d + i] = deep_copy(
                        src_container[start_s + i])
        return None
    if op in (BuiltinOp.PTR_NULL, BuiltinOp.PTR_NULL_MUT):
        return Pointer.null_ptr()
    if op in (BuiltinOp.PTR_OFFSET, BuiltinOp.PTR_ADD):
        pointer = interp._receiver_value(thread, args[0], "offset receiver") \
            if isinstance(args[0], Pointer) and False else args[0]
        if isinstance(pointer, Pointer) and not pointer.null:
            # Receiver convention: args[0] is &ptr — deref once.
            target = interp._read_path(pointer.alloc_id, pointer.path, False,
                                       "offset receiver")
            if isinstance(target, Pointer):
                pointer = target
        offset = args[1] if len(args) > 1 else 0
        if isinstance(pointer, Pointer) and not pointer.null:
            if pointer.path:
                base = pointer.path[-1]
                new_path = pointer.path[:-1] + (base + int(offset),)
            else:
                new_path = (int(offset),)
            return Pointer(pointer.alloc_id, new_path, pointer.mutable)
        return pointer
    if op is BuiltinOp.PTR_IS_NULL:
        pointer = args[0]
        if isinstance(pointer, Pointer):
            target = interp._read_path(pointer.alloc_id, pointer.path, True,
                                       "is_null receiver")
            if isinstance(target, Pointer):
                return target.null
            return pointer.null
        return True
    if op is BuiltinOp.ALLOC:
        return Pointer(mem.allocate(UNINIT, "heap", "alloc"), (),
                       mutable=True)
    if op is BuiltinOp.DEALLOC:
        pointer = args[0]
        if isinstance(pointer, Pointer) and not pointer.null:
            mem.free(pointer.alloc_id, "dealloc target")
        return None
    if op is BuiltinOp.MEM_DROP:
        for value in args:
            interp.drop_value(thread, value)
        return None
    if op is BuiltinOp.MEM_FORGET:
        return None
    if op is BuiltinOp.MEM_REPLACE:
        pointer = args[0]
        if isinstance(pointer, Pointer):
            old = interp._read_path(pointer.alloc_id, pointer.path, True,
                                    "mem::replace target")
            interp._write_path(pointer.alloc_id, pointer.path,
                               args[1] if len(args) > 1 else None)
            return old
        return None
    if op is BuiltinOp.MEM_SWAP:
        a, b = args[0], args[1] if len(args) > 1 else None
        if isinstance(a, Pointer) and isinstance(b, Pointer):
            va = interp._read_path(a.alloc_id, a.path, True, "swap a")
            vb = interp._read_path(b.alloc_id, b.path, True, "swap b")
            interp._write_path(a.alloc_id, a.path, vb)
            interp._write_path(b.alloc_id, b.path, va)
        return None
    if op is BuiltinOp.MEM_TRANSMUTE:
        return args[0]
    if op in (BuiltinOp.MEM_UNINITIALIZED, BuiltinOp.MAYBE_UNINIT):
        return UNINIT
    if op is BuiltinOp.MEM_ZEROED:
        return 0
    if op is BuiltinOp.MAYBE_UNINIT_ASSUME:
        value = args[0]
        if isinstance(value, Pointer):
            value = interp._read_path(value.alloc_id, value.path, True,
                                      "assume_init receiver")
        if value is UNINIT:
            raise UBError(UBKind.UNINIT_READ,
                          "assume_init on uninitialised memory")
        return value
    if op is BuiltinOp.MEM_SIZE_OF:
        return 8
    return _NOT_HANDLED
