"""MIR data structures.

Layout of a lowered program::

    Program
      functions: {key: Body}
      item_table: ItemTable (HIR)
    Body
      locals: [Local]          _0 = return place, _1.._n = arguments
      blocks: [BasicBlock]
    BasicBlock
      statements: [Statement]  Assign / StorageLive / StorageDead / Drop / Nop
      terminator: Terminator   Goto / SwitchInt / Call / Return / Assert / ...

Every statement and terminator records whether it was lowered from inside
an ``unsafe`` region (block, unsafe fn body, or unsafe callee), which is
what the paper's Table 2 classification and "focus fuzzing on unsafe code"
suggestion (§7.1) need.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.hir.builtins import FuncRef
from repro.lang.source import Span
from repro.lang.types import UNKNOWN, Ty


# ---------------------------------------------------------------------------
# Places
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ProjectionElem:
    """One projection step: deref, field access, or index."""

    kind: str                      # "deref" | "field" | "index"
    field_index: int = 0
    field_name: str = ""
    index_local: Optional[int] = None   # for "index": local holding the index
    index_const: Optional[int] = None   # or a constant index

    @staticmethod
    def deref() -> "ProjectionElem":
        return ProjectionElem("deref")

    @staticmethod
    def fld(index: int, name: str = "") -> "ProjectionElem":
        return ProjectionElem("field", field_index=index, field_name=name)

    @staticmethod
    def index(local: Optional[int] = None,
              const: Optional[int] = None) -> "ProjectionElem":
        return ProjectionElem("index", index_local=local, index_const=const)

    def __str__(self) -> str:
        if self.kind == "deref":
            return "*"
        if self.kind == "field":
            return f".{self.field_name or self.field_index}"
        if self.index_local is not None:
            return f"[_{self.index_local}]"
        return f"[{self.index_const}]"


@dataclass(frozen=True)
class Place:
    """A memory location: a local with zero or more projections."""

    local: int
    projection: Tuple[ProjectionElem, ...] = ()

    def deref(self) -> "Place":
        return Place(self.local, self.projection + (ProjectionElem.deref(),))

    def field(self, index: int, name: str = "") -> "Place":
        return Place(self.local,
                     self.projection + (ProjectionElem.fld(index, name),))

    def index_by(self, local: Optional[int] = None,
                 const: Optional[int] = None) -> "Place":
        return Place(self.local,
                     self.projection + (ProjectionElem.index(local, const),))

    @property
    def is_local(self) -> bool:
        return not self.projection

    @property
    def has_deref(self) -> bool:
        return any(p.kind == "deref" for p in self.projection)

    def render(self) -> str:
        out = f"_{self.local}"
        for proj in self.projection:
            if proj.kind == "deref":
                out = f"(*{out})"
            else:
                out = out + str(proj)
        return out

    def __str__(self) -> str:
        return self.render()


# ---------------------------------------------------------------------------
# Operands and constants
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Constant:
    value: object
    ty: Ty = UNKNOWN

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return repr(self.value)
        return f"const {self.value}"


@dataclass(frozen=True)
class Operand:
    """Copy(place) | Move(place) | Const(constant)."""

    kind: str                      # "copy" | "move" | "const"
    place: Optional[Place] = None
    constant: Optional[Constant] = None

    @staticmethod
    def copy(place: Place) -> "Operand":
        return Operand("copy", place=place)

    @staticmethod
    def move(place: Place) -> "Operand":
        return Operand("move", place=place)

    @staticmethod
    def const(value: object, ty: Ty = UNKNOWN) -> "Operand":
        return Operand("const", constant=Constant(value, ty))

    @property
    def is_move(self) -> bool:
        return self.kind == "move"

    @property
    def is_const(self) -> bool:
        return self.kind == "const"

    def __str__(self) -> str:
        if self.kind == "const":
            return str(self.constant)
        prefix = "move " if self.kind == "move" else ""
        return prefix + str(self.place)


# ---------------------------------------------------------------------------
# Rvalues
# ---------------------------------------------------------------------------

class RvalueKind(enum.Enum):
    USE = "use"
    REF = "ref"
    ADDRESS_OF = "address_of"
    BINARY = "binary"
    UNARY = "unary"
    CAST = "cast"
    AGGREGATE = "aggregate"
    LEN = "len"
    DISCRIMINANT = "discriminant"
    REPEAT = "repeat"


class BinOpKind(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    REM = "%"
    BIT_AND = "&"
    BIT_OR = "|"
    BIT_XOR = "^"
    SHL = "<<"
    SHR = ">>"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


class UnOpKind(enum.Enum):
    NEG = "-"
    NOT = "!"


class CastKind(enum.Enum):
    NUMERIC = "numeric"
    REF_TO_RAW = "ref_to_raw"       # &T as *const T  (unsafe boundary)
    RAW_TO_RAW = "raw_to_raw"       # *const T as *mut T
    RAW_TO_INT = "raw_to_int"
    INT_TO_RAW = "int_to_raw"
    UNSIZE = "unsize"               # &Vec<T> → &[T]
    OTHER = "other"


class AggregateKind(enum.Enum):
    TUPLE = "tuple"
    STRUCT = "struct"
    ENUM = "enum"          # variant aggregate (Option::Some etc.)
    ARRAY = "array"
    CLOSURE = "closure"


@dataclass(frozen=True)
class Rvalue:
    kind: RvalueKind
    operands: Tuple[Operand, ...] = ()
    place: Optional[Place] = None          # for REF / ADDRESS_OF / LEN / DISCRIMINANT
    bin_op: Optional[BinOpKind] = None
    un_op: Optional[UnOpKind] = None
    cast_kind: Optional[CastKind] = None
    cast_ty: Ty = UNKNOWN
    mutable: bool = False                  # for REF / ADDRESS_OF
    aggregate_kind: Optional[AggregateKind] = None
    aggregate_name: str = ""               # struct/enum name, variant, closure key
    variant_index: Optional[int] = None

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def use_(operand: Operand) -> "Rvalue":
        return Rvalue(RvalueKind.USE, (operand,))

    @staticmethod
    def ref(place: Place, mutable: bool = False) -> "Rvalue":
        return Rvalue(RvalueKind.REF, place=place, mutable=mutable)

    @staticmethod
    def address_of(place: Place, mutable: bool = False) -> "Rvalue":
        return Rvalue(RvalueKind.ADDRESS_OF, place=place, mutable=mutable)

    @staticmethod
    def binary(op: BinOpKind, left: Operand, right: Operand) -> "Rvalue":
        return Rvalue(RvalueKind.BINARY, (left, right), bin_op=op)

    @staticmethod
    def unary(op: UnOpKind, operand: Operand) -> "Rvalue":
        return Rvalue(RvalueKind.UNARY, (operand,), un_op=op)

    @staticmethod
    def cast(operand: Operand, kind: CastKind, ty: Ty) -> "Rvalue":
        return Rvalue(RvalueKind.CAST, (operand,), cast_kind=kind, cast_ty=ty)

    @staticmethod
    def aggregate(kind: AggregateKind, operands: Tuple[Operand, ...],
                  name: str = "", variant_index: Optional[int] = None) -> "Rvalue":
        return Rvalue(RvalueKind.AGGREGATE, tuple(operands),
                      aggregate_kind=kind, aggregate_name=name,
                      variant_index=variant_index)

    @staticmethod
    def len_(place: Place) -> "Rvalue":
        return Rvalue(RvalueKind.LEN, place=place)

    @staticmethod
    def discriminant(place: Place) -> "Rvalue":
        return Rvalue(RvalueKind.DISCRIMINANT, place=place)

    @staticmethod
    def repeat(operand: Operand, count: Operand) -> "Rvalue":
        return Rvalue(RvalueKind.REPEAT, (operand, count))

    def __str__(self) -> str:
        if self.kind is RvalueKind.USE:
            return str(self.operands[0])
        if self.kind is RvalueKind.REF:
            return ("&mut " if self.mutable else "&") + str(self.place)
        if self.kind is RvalueKind.ADDRESS_OF:
            return ("&raw mut " if self.mutable else "&raw const ") + str(self.place)
        if self.kind is RvalueKind.BINARY:
            return f"{self.bin_op.value}({self.operands[0]}, {self.operands[1]})"
        if self.kind is RvalueKind.UNARY:
            return f"{self.un_op.value}({self.operands[0]})"
        if self.kind is RvalueKind.CAST:
            return f"{self.operands[0]} as {self.cast_ty} ({self.cast_kind.value})"
        if self.kind is RvalueKind.AGGREGATE:
            inner = ", ".join(str(o) for o in self.operands)
            return f"{self.aggregate_kind.value} {self.aggregate_name}({inner})"
        if self.kind is RvalueKind.LEN:
            return f"Len({self.place})"
        if self.kind is RvalueKind.DISCRIMINANT:
            return f"discriminant({self.place})"
        if self.kind is RvalueKind.REPEAT:
            return f"[{self.operands[0]}; {self.operands[1]}]"
        return self.kind.value


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class StatementKind(enum.Enum):
    ASSIGN = "assign"
    STORAGE_LIVE = "StorageLive"
    STORAGE_DEAD = "StorageDead"
    DROP = "drop"
    SET_DISCRIMINANT = "set_discriminant"
    NOP = "nop"


@dataclass
class Statement:
    kind: StatementKind
    span: Span = Span.DUMMY
    place: Optional[Place] = None          # ASSIGN dest / DROP place
    rvalue: Optional[Rvalue] = None        # ASSIGN source
    local: Optional[int] = None            # STORAGE_LIVE / STORAGE_DEAD
    variant_index: Optional[int] = None    # SET_DISCRIMINANT
    in_unsafe: bool = False                # lowered inside an unsafe region
    unsafe_span: Optional[Span] = None     # span of the enclosing unsafe region

    def __str__(self) -> str:
        if self.kind is StatementKind.ASSIGN:
            return f"{self.place} = {self.rvalue}"
        if self.kind is StatementKind.STORAGE_LIVE:
            return f"StorageLive(_{self.local})"
        if self.kind is StatementKind.STORAGE_DEAD:
            return f"StorageDead(_{self.local})"
        if self.kind is StatementKind.DROP:
            return f"drop({self.place})"
        if self.kind is StatementKind.SET_DISCRIMINANT:
            return f"discriminant({self.place}) = {self.variant_index}"
        return "nop"


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------

class TerminatorKind(enum.Enum):
    GOTO = "goto"
    SWITCH_INT = "switchInt"
    CALL = "call"
    RETURN = "return"
    ASSERT = "assert"
    UNREACHABLE = "unreachable"
    ABORT = "abort"
    RESUME = "resume"        # end of a landing pad: continue unwinding


@dataclass
class Terminator:
    kind: TerminatorKind
    span: Span = Span.DUMMY
    target: Optional[int] = None                   # GOTO / CALL / ASSERT
    # SWITCH_INT:
    discr: Optional[Operand] = None
    switch_targets: List[Tuple[int, int]] = field(default_factory=list)
    otherwise: Optional[int] = None
    # CALL:
    func: Optional[FuncRef] = None
    args: List[Operand] = field(default_factory=list)
    destination: Optional[Place] = None
    # ASSERT:
    cond: Optional[Operand] = None
    expected: bool = True
    msg: str = ""
    in_unsafe: bool = False
    unsafe_span: Optional[Span] = None     # span of the enclosing unsafe region
    #: Landing-pad block entered when this terminator panics (CALL /
    #: ASSERT only); ``None`` until unwind lowering runs.
    unwind: Optional[int] = None

    def successors(self) -> List[int]:
        if self.kind is TerminatorKind.GOTO:
            return [self.target]
        if self.kind is TerminatorKind.SWITCH_INT:
            succ = [bb for _, bb in self.switch_targets]
            if self.otherwise is not None:
                succ.append(self.otherwise)
            return succ
        if self.kind in (TerminatorKind.CALL, TerminatorKind.ASSERT):
            succ = [self.target] if self.target is not None else []
            if self.unwind is not None:
                succ.append(self.unwind)
            return succ
        return []

    def __str__(self) -> str:
        if self.kind is TerminatorKind.GOTO:
            return f"goto -> bb{self.target}"
        if self.kind is TerminatorKind.SWITCH_INT:
            arms = ", ".join(f"{v}: bb{t}" for v, t in self.switch_targets)
            return f"switchInt({self.discr}) -> [{arms}, otherwise: bb{self.otherwise}]"
        if self.kind is TerminatorKind.CALL:
            args = ", ".join(str(a) for a in self.args)
            dest = f"{self.destination} = " if self.destination else ""
            unwind = f", unwind: bb{self.unwind}" if self.unwind is not None \
                else ""
            return f"{dest}{self.func}({args}) -> bb{self.target}{unwind}"
        if self.kind is TerminatorKind.RETURN:
            return "return"
        if self.kind is TerminatorKind.ASSERT:
            unwind = f", unwind: bb{self.unwind}" if self.unwind is not None \
                else ""
            return (f"assert({self.cond} == {self.expected}, {self.msg!r}) "
                    f"-> bb{self.target}{unwind}")
        return self.kind.value


# ---------------------------------------------------------------------------
# Bodies and programs
# ---------------------------------------------------------------------------

@dataclass
class Local:
    index: int
    ty: Ty = UNKNOWN
    name: Optional[str] = None        # user variable name, if any
    is_arg: bool = False
    is_temp: bool = False
    mutable: bool = False
    span: Span = Span.DUMMY

    def __str__(self) -> str:
        label = f"_{self.index}"
        if self.name:
            label += f" /*{self.name}*/"
        return label


@dataclass
class BasicBlock:
    index: int
    statements: List[Statement] = field(default_factory=list)
    terminator: Optional[Terminator] = None
    #: True for landing-pad blocks synthesised by unwind lowering; they
    #: run pending drops and end in RESUME, and the analyses that model
    #: the happy path (scans, storage ranges, value chains) skip them.
    cleanup: bool = False


@dataclass
class Body:
    """MIR of one function / method / closure."""

    key: str                          # "foo", "Type::method", "foo::{closure#0}"
    name: str = ""
    arg_count: int = 0
    locals: List[Local] = field(default_factory=list)
    blocks: List[BasicBlock] = field(default_factory=list)
    span: Span = Span.DUMMY
    is_unsafe_fn: bool = False
    has_unsafe_block: bool = False
    is_pub: bool = False
    self_ty: Optional[Ty] = None
    self_mode: Optional[str] = None
    ret_ty: Ty = UNKNOWN
    source_name: str = "<input>"
    captures: List[str] = field(default_factory=list)   # closure capture names

    @property
    def is_closure(self) -> bool:
        return "{closure" in self.key

    @property
    def has_interior_unsafe(self) -> bool:
        """Safe-to-call function containing unsafe code (paper's "interior
        unsafe" pattern, §2.3)."""
        return self.has_unsafe_block and not self.is_unsafe_fn

    def local_ty(self, index: int) -> Ty:
        if 0 <= index < len(self.locals):
            return self.locals[index].ty
        return UNKNOWN

    def new_block(self) -> BasicBlock:
        block = BasicBlock(index=len(self.blocks))
        self.blocks.append(block)
        return block

    def iter_statements(self, include_cleanup: bool = False):
        """Yield ``(block_index, statement_index, statement)``.

        Landing pads (``cleanup`` blocks) are skipped unless requested:
        their drops restate pending scope-exit obligations on the panic
        path, so flattened walks that model the program text (drop
        chains, written-sets, site inventories) must not double-count
        them.  Panic-path reasoning reads the CFG edges instead.
        """
        for block in self.blocks:
            if block.cleanup and not include_cleanup:
                continue
            for i, stmt in enumerate(block.statements):
                yield block.index, i, stmt

    def iter_terminators(self, include_cleanup: bool = False):
        for block in self.blocks:
            if block.cleanup and not include_cleanup:
                continue
            if block.terminator is not None:
                yield block.index, block.terminator

    def __getstate__(self):
        """Strip derived state (underscore attributes: the analysis scan,
        the memoised fingerprint) so pickles — worker-task payloads,
        summary-cache entries — carry only the MIR itself and receivers
        rebuild their own caches."""
        return {k: v for k, v in self.__dict__.items()
                if not k.startswith("_")}


@dataclass
class Program:
    """A fully lowered crate: every function body plus the HIR item table."""

    functions: Dict[str, Body] = field(default_factory=dict)
    item_table: object = None                  # ItemTable (avoid import cycle)
    source: object = None                      # SourceFile
    statics: Dict[str, Ty] = field(default_factory=dict)

    def body(self, key: str) -> Optional[Body]:
        return self.functions.get(key)

    @property
    def entry(self) -> Optional[Body]:
        return self.functions.get("main")

    def bodies(self) -> List[Body]:
        return list(self.functions.values())
