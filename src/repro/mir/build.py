"""Lowering from (resolved) AST to MIR.

The builder mirrors rustc's HAIR→MIR lowering in the aspects the paper's
analyses observe:

* **Scopes and drops.**  Every user variable gets ``StorageLive`` at its
  binding and, at scope exit, a ``Drop`` (when its type owns resources)
  followed by ``StorageDead`` — in reverse declaration order.  ``return``
  / ``break`` / ``continue`` unwind the scopes they exit.
* **Temporary lifetimes.**  Temporaries die at the end of the enclosing
  statement, *except* temporaries of a ``match`` / ``if let`` / ``while
  let`` scrutinee, which are extended to the end of the whole match — the
  exact rule the paper's Figure 8 double-lock bug depends on.
* **Moves.**  Operands of non-``Copy`` type are ``Move`` operands;
  ``Copy``-type operands are ``Copy``.  The borrow checker and the
  interpreter both key off this.
* **Unsafe provenance.**  Statements lowered inside ``unsafe`` blocks (or
  in the body of an ``unsafe fn``) are flagged ``in_unsafe``.

Deviations from rustc are deliberate and documented: ``Drop`` is a
statement (keeps CFGs small), matches lower to sequential test chains
(uniform over literal/range/enum patterns), and the ``?`` operator lowers
as ``unwrap`` (panic instead of early return).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.hir.builtins import (
    MACRO_OPS, BuiltinOp, FuncKind, FuncRef, resolve_builtin_call,
    resolve_method,
)
from repro.hir.table import FnInfo, ItemTable, build_item_table
from repro.lang import ast_nodes as ast
from repro.lang.diagnostics import CompileError
from repro.lang.source import SourceFile, Span
from repro.lang.types import (
    BOOL, I32, UNIT, UNKNOWN, USIZE, EnumInfo, StructInfo, Ty, TyKind,
)
from repro.mir.nodes import (
    AggregateKind, BasicBlock, BinOpKind, Body, CastKind, Local, Operand,
    Place, Program, ProjectionElem, Rvalue, RvalueKind, Statement,
    StatementKind, Terminator, TerminatorKind, UnOpKind,
)

_BINOP_MAP = {
    ast.BinOp.ADD: BinOpKind.ADD, ast.BinOp.SUB: BinOpKind.SUB,
    ast.BinOp.MUL: BinOpKind.MUL, ast.BinOp.DIV: BinOpKind.DIV,
    ast.BinOp.REM: BinOpKind.REM, ast.BinOp.BIT_AND: BinOpKind.BIT_AND,
    ast.BinOp.BIT_OR: BinOpKind.BIT_OR, ast.BinOp.BIT_XOR: BinOpKind.BIT_XOR,
    ast.BinOp.SHL: BinOpKind.SHL, ast.BinOp.SHR: BinOpKind.SHR,
    ast.BinOp.EQ: BinOpKind.EQ, ast.BinOp.NE: BinOpKind.NE,
    ast.BinOp.LT: BinOpKind.LT, ast.BinOp.LE: BinOpKind.LE,
    ast.BinOp.GT: BinOpKind.GT, ast.BinOp.GE: BinOpKind.GE,
}

_CMP_OPS = {BinOpKind.EQ, BinOpKind.NE, BinOpKind.LT, BinOpKind.LE,
            BinOpKind.GT, BinOpKind.GE}


@dataclass
class _Scope:
    """One lexical scope: locals in declaration order, plus metadata."""

    locals: List[int] = field(default_factory=list)
    is_temp_scope: bool = False
    # Locals whose drop is deferred past this scope (temp extension).
    extended: Set[int] = field(default_factory=set)


@dataclass
class _LoopCtx:
    continue_block: int
    break_block: int
    scope_depth: int


class BodyBuilder:
    """Lowers one function body."""

    def __init__(self, program_builder: "ProgramBuilder", key: str,
                 fn_info: Optional[FnInfo], ast_body: ast.Block,
                 params: List[Tuple[str, Ty, bool]], ret_ty: Ty,
                 is_unsafe_fn: bool, span: Span,
                 captures: Optional[List[Tuple[str, Ty]]] = None) -> None:
        self.pb = program_builder
        self.table: ItemTable = program_builder.table
        self.fn_info = fn_info
        self.ast_body = ast_body
        self.body = Body(key=key, name=key.split("::")[-1],
                         span=span, is_unsafe_fn=is_unsafe_fn, ret_ty=ret_ty,
                         source_name=program_builder.source.name
                         if program_builder.source else "<input>")
        if fn_info is not None:
            self.body.self_ty = fn_info.self_ty
            self.body.self_mode = fn_info.self_mode
        # _0: return place.
        self.body.locals.append(Local(0, ret_ty, name=None, span=span))
        self.var_stack: List[Dict[str, int]] = [{}]
        self.scopes: List[_Scope] = []
        self.loop_stack: List[_LoopCtx] = []
        self.unsafe_depth = 1 if is_unsafe_fn else 0
        # Spans of the unsafe regions currently open; the top of the stack
        # is what statements/terminators record as their enclosing region.
        self.unsafe_span_stack: List[Span] = [span] if is_unsafe_fn else []
        if fn_info is not None:
            self.body.is_pub = getattr(fn_info, "is_pub", False)
        self.closure_counter = 0
        self._static_locals: Dict[str, int] = {}
        # Temps whose value was moved out; their scope-exit Drop is elided
        # (rustc's drop elaboration via drop flags, simplified).
        self.moved_locals: Set[int] = set()

        # Arguments.
        for p_name, p_ty, p_mut in params:
            local = self.new_local(p_ty, name=p_name, span=span, mutable=p_mut)
            local_obj = self.body.locals[local]
            local_obj.is_arg = True
            self.var_stack[-1][p_name] = local
        self.body.arg_count = len(params)
        if captures:
            for c_name, c_ty in captures:
                local = self.new_local(c_ty, name=c_name, span=span,
                                       mutable=True)
                self.body.locals[local].is_arg = True
                self.var_stack[-1][c_name] = local
                self.body.captures.append(c_name)
            self.body.arg_count += len(captures)

        self.current: Optional[BasicBlock] = self.body.new_block()

    # -- plumbing ---------------------------------------------------------

    def new_local(self, ty: Ty, name: Optional[str] = None,
                  span: Span = Span.DUMMY, temp: bool = False,
                  mutable: bool = False) -> int:
        index = len(self.body.locals)
        self.body.locals.append(Local(index, ty, name=name, is_temp=temp,
                                      mutable=mutable, span=span))
        return index

    def local_ty(self, index: int) -> Ty:
        return self.body.local_ty(index)

    def set_local_ty(self, index: int, ty: Ty) -> None:
        if not ty.is_unknown:
            self.body.locals[index].ty = ty

    def emit(self, stmt: Statement) -> None:
        if self.current is not None:
            stmt.in_unsafe = self.unsafe_depth > 0
            if stmt.in_unsafe and self.unsafe_span_stack:
                stmt.unsafe_span = self.unsafe_span_stack[-1]
            if stmt.rvalue is not None:
                self._note_moves(stmt.rvalue.operands)
            self.current.statements.append(stmt)

    def assign(self, place: Place, rvalue: Rvalue, span: Span) -> None:
        # Late type refinement: match/if results flow through temps whose
        # type is only discovered when an arm assigns into them.
        if place.is_local and self.local_ty(place.local).is_unknown \
                and rvalue.kind is RvalueKind.USE:
            self.set_local_ty(place.local,
                              self.operand_ty(rvalue.operands[0]))
        self.emit(Statement(StatementKind.ASSIGN, span=span, place=place,
                            rvalue=rvalue))

    def terminate(self, term: Terminator) -> None:
        if self.current is not None and self.current.terminator is None:
            term.in_unsafe = self.unsafe_depth > 0
            if term.in_unsafe and self.unsafe_span_stack:
                term.unsafe_span = self.unsafe_span_stack[-1]
            self._note_moves(term.args)
            if term.discr is not None:
                self._note_moves([term.discr])
            self.current.terminator = term
        self.current = None

    def switch_to(self, block: BasicBlock) -> None:
        self.current = block

    def goto(self, block: BasicBlock, span: Span = Span.DUMMY) -> None:
        self.terminate(Terminator(TerminatorKind.GOTO, span=span,
                                  target=block.index))

    # -- scopes & drops ------------------------------------------------------

    def push_scope(self, temp: bool = False) -> _Scope:
        scope = _Scope(is_temp_scope=temp)
        self.scopes.append(scope)
        if not temp:
            self.var_stack.append(dict(self.var_stack[-1]))
        return scope

    def declare(self, local: int) -> None:
        if self.scopes:
            self.scopes[-1].locals.append(local)

    def _emit_scope_exit(self, scope: _Scope, span: Span) -> None:
        for local in reversed(scope.locals):
            if local in scope.extended:
                continue
            ty = self.local_ty(local)
            moved_temp = (local in self.moved_locals
                          and self.body.locals[local].is_temp)
            if ty.needs_drop and not moved_temp:
                self.emit(Statement(StatementKind.DROP, span=span,
                                    place=Place(local)))
            self.emit(Statement(StatementKind.STORAGE_DEAD, span=span,
                                local=local))

    def pop_scope(self, span: Span = Span.DUMMY) -> None:
        scope = self.scopes.pop()
        # Extended temps migrate to the enclosing scope, staying extended:
        # the enclosing expression still has to consume them, so their
        # storage lives until the frame is torn down (rustc would have
        # moved the value out instead; the observable event order is the
        # same).
        if scope.extended and self.scopes:
            parent = self.scopes[-1]
            for local in scope.locals:
                if local in scope.extended:
                    parent.locals.append(local)
                    parent.extended.add(local)
        self._emit_scope_exit(scope, span)
        if not scope.is_temp_scope:
            self.var_stack.pop()

    def unwind_scopes(self, down_to: int, span: Span) -> None:
        """Emit exits for scopes deeper than ``down_to`` without popping
        (used by break / continue / return)."""
        for scope in reversed(self.scopes[down_to:]):
            self._emit_scope_exit(scope, span)

    def extend_temp(self, local: int) -> None:
        """Mark a temp so the innermost temp scope does not drop it."""
        if self.scopes:
            self.scopes[-1].extended.add(local)

    # -- operand helpers -------------------------------------------------------

    def operand_for_place(self, place: Place, ty: Ty) -> Operand:
        if ty.is_copy or ty.is_unknown:
            return Operand.copy(place)
        return Operand.move(place)

    def _note_moves(self, operands) -> None:
        for op in operands:
            if op is not None and op.is_move and op.place is not None \
                    and op.place.is_local:
                self.moved_locals.add(op.place.local)

    def spill(self, rvalue: Rvalue, ty: Ty, span: Span) -> int:
        """Assign an rvalue into a fresh temp local, returning the local."""
        temp = self.new_local(ty, span=span, temp=True)
        self.declare(temp)
        self.emit(Statement(StatementKind.STORAGE_LIVE, span=span, local=temp))
        self.assign(Place(temp), rvalue, span)
        return temp

    # =====================================================================
    # Entry point
    # =====================================================================

    def build(self) -> Body:
        self.push_scope()
        result = self.lower_block_into(None, self.ast_body)
        if self.current is not None:
            if result is not None \
                    and self.body.ret_ty.kind is not TyKind.UNIT:
                self.assign(Place(0), Rvalue.use_(result), self.ast_body.span)
            elif result is not None:
                pass   # unit result, discard
            self.pop_scope(self.ast_body.span)
            self.terminate(Terminator(TerminatorKind.RETURN,
                                      span=self.ast_body.span))
        else:
            self.scopes.pop()
            self.var_stack.pop()
        # Ensure every block has a terminator (unreachable tails).
        for block in self.body.blocks:
            if block.terminator is None:
                block.terminator = Terminator(TerminatorKind.UNREACHABLE)
        return self.body

    # -- blocks and statements ----------------------------------------------

    def lower_block_into(self, dest: Optional[Place],
                         block: ast.Block) -> Optional[Operand]:
        """Lower a block; returns the tail operand (or assigns it to dest)."""
        if block.is_unsafe:
            self.unsafe_depth += 1
            self.unsafe_span_stack.append(block.span)
            self.body.has_unsafe_block = True
            self.pb.record_unsafe_block(self.body.key, block.span)
        self.push_scope()
        try:
            for stmt in block.statements:
                if self.current is None:
                    break
                self.lower_stmt(stmt)
            result: Optional[Operand] = None
            if block.tail is not None and self.current is not None:
                self.push_scope(temp=True)
                if dest is not None:
                    self.lower_expr_into(dest, block.tail)
                    result = None
                else:
                    result = self.lower_expr(block.tail)
                    result = self._materialize_tail(result, block.span)
                if self.current is not None:
                    self.pop_scope(block.span)
                else:
                    self.scopes.pop()
            return result
        finally:
            if self.current is not None:
                self.pop_scope(block.span)
            else:
                scope = self.scopes.pop()
                if not scope.is_temp_scope:
                    self.var_stack.pop()
            if block.is_unsafe:
                self.unsafe_depth -= 1
                self.unsafe_span_stack.pop()

    def _materialize_tail(self, operand: Optional[Operand],
                          span: Span) -> Optional[Operand]:
        """Copy a block's tail value into an extended temp so it survives
        the block scope's drops (and inherits the block's unsafe flag)."""
        if operand is None or operand.is_const or self.current is None:
            return operand
        if operand.place is not None and operand.place.is_local \
                and self.body.locals[operand.place.local].is_temp:
            # Already a temp holding the value: just keep it alive.
            self.extend_temp(operand.place.local)
            return operand
        ty = self.operand_ty(operand)
        temp = self.spill(Rvalue.use_(operand), ty, span)
        self.extend_temp(temp)
        return self.operand_for_place(Place(temp), ty)

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.LetStmt):
            self.lower_let(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.push_scope(temp=True)
            self.lower_expr(stmt.expr, want_value=False)
            if self.current is not None:
                self.pop_scope(stmt.span)
            else:
                self.scopes.pop()
        elif isinstance(stmt, ast.ItemStmt):
            # Nested items were already collected by the item table walk.
            pass

    def lower_let(self, let: ast.LetStmt) -> None:
        declared_ty = self.table.lower_ty(
            let.ty, self.body.self_ty,
            tuple(self.fn_info.generics) if self.fn_info else ())
        pattern = let.pattern

        if let.init is None:
            # Declaration without initialiser.
            if isinstance(pattern, ast.PatIdent):
                local = self.new_local(declared_ty, name=pattern.name,
                                       span=let.span,
                                       mutable=pattern.mutability.is_mut)
                self.declare(local)
                self.var_stack[-1][pattern.name] = local
                self.emit(Statement(StatementKind.STORAGE_LIVE, span=let.span,
                                    local=local))
            return

        self.push_scope(temp=True)
        init_op = self.lower_expr(let.init)
        init_ty = self.operand_ty(init_op)
        if not declared_ty.is_unknown:
            init_ty = declared_ty

        if isinstance(pattern, ast.PatWild):
            # `let _ = expr;` drops the value immediately (end of stmt).
            if self.current is not None:
                self.pop_scope(let.span)
            else:
                self.scopes.pop()
            return

        if isinstance(pattern, ast.PatIdent):
            local = self.new_local(init_ty, name=pattern.name, span=let.span,
                                   mutable=pattern.mutability.is_mut)
            self.emit(Statement(StatementKind.STORAGE_LIVE, span=let.span,
                                local=local))
            self.assign(Place(local), Rvalue.use_(init_op), let.span)
            if self.current is not None:
                self.pop_scope(let.span)
            else:
                self.scopes.pop()
            self.declare(local)
            self.var_stack[-1][pattern.name] = local
            return

        # Destructuring patterns (tuple / struct / enum / ref).
        source_local = self._operand_to_local(init_op, init_ty, let.span)
        self.extend_temp(source_local)
        self.pop_scope(let.span)
        self.declare(source_local)
        self.bind_pattern(pattern, Place(source_local), init_ty, let.span,
                          refutable=False)

    def _operand_to_local(self, operand: Operand, ty: Ty, span: Span) -> int:
        if operand.place is not None and operand.place.is_local:
            return operand.place.local
        return self.spill(Rvalue.use_(operand), ty, span)

    # -- patterns -----------------------------------------------------------------

    def bind_pattern(self, pattern: ast.Pat, place: Place, ty: Ty,
                     span: Span, refutable: bool) -> None:
        """Bind irrefutable parts of ``pattern`` against ``place``."""
        if isinstance(pattern, (ast.PatWild, ast.PatLiteral, ast.PatRange,
                                ast.PatPath)):
            return
        if isinstance(pattern, ast.PatIdent):
            local = self.new_local(ty, name=pattern.name, span=span,
                                   mutable=pattern.mutability.is_mut)
            self.declare(local)
            self.var_stack[-1][pattern.name] = local
            self.emit(Statement(StatementKind.STORAGE_LIVE, span=span,
                                local=local))
            if pattern.by_ref:
                self.assign(Place(local), Rvalue.ref(place, pattern.mutability.is_mut), span)
            else:
                self.assign(Place(local), Rvalue.use_(self.operand_for_place(place, ty)), span)
            if pattern.subpattern is not None:
                self.bind_pattern(pattern.subpattern, place, ty, span, refutable)
            return
        if isinstance(pattern, ast.PatRef):
            inner_ty = ty.referent if ty.is_pointer_like else UNKNOWN
            self.bind_pattern(pattern.inner, place.deref(), inner_ty, span,
                              refutable)
            return
        if isinstance(pattern, ast.PatTuple):
            elem_tys = list(ty.args) if ty.kind is TyKind.TUPLE else []
            for i, sub in enumerate(pattern.elements):
                sub_ty = elem_tys[i] if i < len(elem_tys) else UNKNOWN
                self.bind_pattern(sub, place.field(i, str(i)), sub_ty, span,
                                  refutable)
            return
        if isinstance(pattern, ast.PatTupleStruct):
            payload_tys = self._variant_payload_tys(pattern.path, ty)
            for i, sub in enumerate(pattern.elements):
                sub_ty = payload_tys[i] if i < len(payload_tys) else UNKNOWN
                self.bind_pattern(sub, place.field(i, str(i)), sub_ty, span,
                                  refutable)
            return
        if isinstance(pattern, ast.PatStruct):
            base = ty.peel_refs()
            info = self.table.structs.get(base.name)
            for f_name, sub in pattern.fields:
                if info is not None:
                    idx = info.field_index(f_name)
                    f_ty = info.field_ty(f_name)
                else:
                    idx = None
                    f_ty = UNKNOWN
                self.bind_pattern(sub, place.field(idx if idx is not None else 0,
                                                   f_name),
                                  f_ty, span, refutable)
            return

    def _variant_payload_tys(self, path: ast.Path, scrut_ty: Ty) -> List[Ty]:
        variant = path.last.name
        base = scrut_ty.peel_refs()
        if base.kind is TyKind.BUILTIN and base.name == "Option":
            return [base.arg(0)]
        if base.kind is TyKind.BUILTIN and base.name == "Result":
            return [base.arg(0) if variant == "Ok" else base.arg(1)]
        enum_name = path.names[0] if len(path.segments) > 1 else base.name
        info = self.table.enums.get(enum_name)
        if info is not None:
            return info.variant_payload(variant)
        return []

    def _variant_index(self, path: ast.Path, scrut_ty: Ty) -> Optional[int]:
        variant = path.last.name
        base = scrut_ty.peel_refs()
        if variant in ("None", "Ok"):
            return 0
        if variant in ("Some", "Err"):
            return 1
        enum_name = path.names[0] if len(path.segments) > 1 else base.name
        info = self.table.enums.get(enum_name)
        if info is not None:
            idx = info.variant_index(variant)
            if idx is not None:
                return idx
        # Try every known enum (unqualified variant names).
        for info in self.table.enums.values():
            idx = info.variant_index(variant)
            if idx is not None:
                return idx
        return None

    def pattern_test(self, pattern: ast.Pat, place: Place, ty: Ty,
                     span: Span) -> Optional[Operand]:
        """Lower a refutability test; None when the pattern always matches."""
        if isinstance(pattern, (ast.PatWild, ast.PatIdent)):
            if isinstance(pattern, ast.PatIdent) and pattern.subpattern:
                return self.pattern_test(pattern.subpattern, place, ty, span)
            return None
        if isinstance(pattern, ast.PatLiteral):
            value_op = self.operand_for_place(place, ty)
            rv = Rvalue.binary(BinOpKind.EQ,
                               Operand.copy(place),
                               Operand.const(pattern.value))
            temp = self.spill(rv, BOOL, span)
            return Operand.copy(Place(temp))
        if isinstance(pattern, ast.PatRange):
            lo_rv = Rvalue.binary(BinOpKind.GE, Operand.copy(place),
                                  Operand.const(pattern.lo))
            lo_t = self.spill(lo_rv, BOOL, span)
            hi_op = BinOpKind.LE if pattern.inclusive else BinOpKind.LT
            hi_rv = Rvalue.binary(hi_op, Operand.copy(place),
                                  Operand.const(pattern.hi))
            hi_t = self.spill(hi_rv, BOOL, span)
            both = Rvalue.binary(BinOpKind.BIT_AND, Operand.copy(Place(lo_t)),
                                 Operand.copy(Place(hi_t)))
            temp = self.spill(both, BOOL, span)
            return Operand.copy(Place(temp))
        if isinstance(pattern, (ast.PatTupleStruct, ast.PatPath)):
            index = self._variant_index(pattern.path, ty)
            if index is None:
                return None
            discr = self.spill(Rvalue.discriminant(place), USIZE, span)
            eq = Rvalue.binary(BinOpKind.EQ, Operand.copy(Place(discr)),
                               Operand.const(index))
            temp = self.spill(eq, BOOL, span)
            cond: Optional[Operand] = Operand.copy(Place(temp))
            if isinstance(pattern, ast.PatTupleStruct):
                # Nested refutable subpatterns (e.g. Some(0)) may only be
                # evaluated once the discriminant is known to match —
                # reading the payload of the wrong variant is UB in the
                # interpreter (and nonsense in rustc's MIR).
                payload_tys = self._variant_payload_tys(pattern.path, ty)
                refutable_subs = []
                for i, sub in enumerate(pattern.elements):
                    if isinstance(sub, (ast.PatWild, ast.PatIdent)) and \
                            not (isinstance(sub, ast.PatIdent)
                                 and sub.subpattern is not None):
                        continue
                    refutable_subs.append((i, sub))
                if refutable_subs:
                    result = self.spill(Rvalue.use_(Operand.const(False)),
                                        BOOL, span)
                    then_block, else_block = self._switch_on_bool(cond, span)
                    join = self.body.new_block()
                    self.switch_to(else_block)
                    self.goto(join, span)
                    self.switch_to(then_block)
                    inner: Optional[Operand] = Operand.const(True)
                    for i, sub in refutable_subs:
                        sub_ty = payload_tys[i] if i < len(payload_tys) \
                            else UNKNOWN
                        sub_cond = self.pattern_test(
                            sub, place.field(i, str(i)), sub_ty, span)
                        if sub_cond is None:
                            continue
                        both = Rvalue.binary(BinOpKind.BIT_AND, inner,
                                             sub_cond)
                        t = self.spill(both, BOOL, span)
                        inner = Operand.copy(Place(t))
                    self.assign(Place(result), Rvalue.use_(inner), span)
                    self.goto(join, span)
                    self.switch_to(join)
                    cond = Operand.copy(Place(result))
            return cond
        if isinstance(pattern, ast.PatRef):
            inner_ty = ty.referent if ty.is_pointer_like else UNKNOWN
            return self.pattern_test(pattern.inner, place.deref(), inner_ty,
                                     span)
        if isinstance(pattern, ast.PatTuple):
            cond: Optional[Operand] = None
            elem_tys = list(ty.args) if ty.kind is TyKind.TUPLE else []
            for i, sub in enumerate(pattern.elements):
                sub_ty = elem_tys[i] if i < len(elem_tys) else UNKNOWN
                sub_cond = self.pattern_test(sub, place.field(i, str(i)),
                                             sub_ty, span)
                if sub_cond is None:
                    continue
                if cond is None:
                    cond = sub_cond
                else:
                    both = Rvalue.binary(BinOpKind.BIT_AND, cond, sub_cond)
                    t = self.spill(both, BOOL, span)
                    cond = Operand.copy(Place(t))
            return cond
        if isinstance(pattern, ast.PatStruct):
            return None
        return None

    # =====================================================================
    # Expressions
    # =====================================================================

    def operand_ty(self, operand: Operand) -> Ty:
        if operand.is_const:
            return operand.constant.ty
        return self.place_ty(operand.place)

    def place_ty(self, place: Place) -> Ty:
        ty = self.local_ty(place.local)
        for proj in place.projection:
            if proj.kind == "deref":
                if ty.is_pointer_like:
                    ty = ty.referent
                elif ty.kind is TyKind.BUILTIN and ty.name in (
                        "MutexGuard", "RwLockReadGuard", "RwLockWriteGuard",
                        "Ref", "RefMut", "Box", "Rc", "Arc", "ManuallyDrop"):
                    ty = ty.arg(0)
                else:
                    ty = UNKNOWN
            elif proj.kind == "field":
                base = ty.peel_refs().peel_wrappers(
                    ("Box", "Rc", "Arc", "MutexGuard", "RwLockReadGuard",
                     "RwLockWriteGuard", "Ref", "RefMut"))
                if base.kind is TyKind.ADT:
                    info = self.table.structs.get(base.name)
                    if info is not None and proj.field_name:
                        ty = info.field_ty(proj.field_name)
                    elif info is not None and proj.field_index < len(info.fields):
                        ty = info.fields[proj.field_index][1]
                    else:
                        ty = UNKNOWN
                elif base.kind is TyKind.TUPLE:
                    ty = base.arg(proj.field_index)
                elif base.kind is TyKind.BUILTIN and base.name in ("Option", "Result"):
                    ty = base.arg(proj.field_index)
                else:
                    ty = UNKNOWN
            elif proj.kind == "index":
                base = ty.peel_refs()
                if base.kind in (TyKind.SLICE, TyKind.ARRAY) or \
                        (base.kind is TyKind.BUILTIN and base.name in ("Vec", "VecDeque")):
                    ty = base.arg(0)
                else:
                    ty = UNKNOWN
        return ty

    def lower_expr(self, expr: ast.Expr, want_value: bool = True) -> Operand:
        """Lower an expression to an operand."""
        span = expr.span

        if isinstance(expr, ast.Literal):
            ty = self._literal_ty(expr)
            return Operand.const(expr.value, ty)

        if isinstance(expr, ast.PathExpr):
            return self.lower_path_expr(expr)

        if isinstance(expr, (ast.FieldAccess, ast.TupleIndex, ast.Index)):
            place = self.lower_place(expr)
            ty = self.place_ty(place)
            return self.operand_for_place(place, ty)

        if isinstance(expr, ast.Unary):
            if expr.op is ast.UnOp.DEREF:
                place = self.lower_place(expr)
                ty = self.place_ty(place)
                return self.operand_for_place(place, ty)
            operand = self.lower_expr(expr.operand)
            op = UnOpKind.NEG if expr.op is ast.UnOp.NEG else UnOpKind.NOT
            ty = self.operand_ty(operand)
            temp = self.spill(Rvalue.unary(op, operand), ty, span)
            return Operand.copy(Place(temp))

        if isinstance(expr, ast.Binary):
            return self.lower_binary(expr)

        if isinstance(expr, ast.Assign):
            place = self.lower_place(expr.target)
            self.lower_expr_into(place, expr.value)
            return Operand.const(None, UNIT)

        if isinstance(expr, ast.CompoundAssign):
            place = self.lower_place(expr.target)
            ty = self.place_ty(place)
            rhs = self.lower_expr(expr.value)
            rv = Rvalue.binary(_BINOP_MAP[expr.op], Operand.copy(place), rhs)
            self.assign(place, rv, span)
            return Operand.const(None, UNIT)

        if isinstance(expr, ast.Reference):
            place = self.lower_place(expr.operand)
            ty = self.place_ty(place)
            ref_ty = Ty.ref(ty, expr.mutability.is_mut)
            temp = self.spill(Rvalue.ref(place, expr.mutability.is_mut),
                              ref_ty, span)
            return Operand.copy(Place(temp))

        if isinstance(expr, ast.Cast):
            return self.lower_cast(expr)

        if isinstance(expr, ast.Call):
            return self.lower_call(expr)

        if isinstance(expr, ast.MethodCall):
            return self.lower_method_call(expr)

        if isinstance(expr, ast.StructLiteral):
            return self.lower_struct_literal(expr)

        if isinstance(expr, ast.TupleLiteral):
            operands = tuple(self.lower_expr(e) for e in expr.elements)
            tys = tuple(self.operand_ty(o) for o in operands)
            ty = Ty.tuple_(tys) if operands else UNIT
            if not operands:
                return Operand.const(None, UNIT)
            temp = self.spill(Rvalue.aggregate(AggregateKind.TUPLE, operands),
                              ty, span)
            return self.operand_for_place(Place(temp), ty)

        if isinstance(expr, ast.ArrayLiteral):
            if expr.repeat is not None:
                elem, count = expr.repeat
                elem_op = self.lower_expr(elem)
                count_op = self.lower_expr(count)
                ty = Ty.array(self.operand_ty(elem_op))
                temp = self.spill(Rvalue.repeat(elem_op, count_op), ty, span)
                return self.operand_for_place(Place(temp), ty)
            operands = tuple(self.lower_expr(e) for e in expr.elements)
            elem_ty = self.operand_ty(operands[0]) if operands else UNKNOWN
            arr_ty = Ty.array(elem_ty)
            temp = self.spill(Rvalue.aggregate(AggregateKind.ARRAY, operands),
                              arr_ty, span)
            return self.operand_for_place(Place(temp), arr_ty)

        if isinstance(expr, ast.Range):
            lo = self.lower_expr(expr.lo) if expr.lo else Operand.const(0, USIZE)
            hi = self.lower_expr(expr.hi) if expr.hi else Operand.const(None)
            ty = Ty.adt("Range", (self.operand_ty(lo),))
            temp = self.spill(Rvalue.aggregate(
                AggregateKind.STRUCT, (lo, hi, Operand.const(expr.inclusive)),
                name="Range"), ty, span)
            return Operand.copy(Place(temp))

        if isinstance(expr, ast.Block):
            result = self.lower_block_into(None, expr)
            return result if result is not None else Operand.const(None, UNIT)

        if isinstance(expr, ast.If):
            return self.lower_if(expr, want_value)

        if isinstance(expr, ast.IfLet):
            return self.lower_if_let(expr, want_value)

        if isinstance(expr, ast.Match):
            return self.lower_match(expr, want_value)

        if isinstance(expr, (ast.While, ast.WhileLet, ast.Loop, ast.For)):
            self.lower_loop_expr(expr)
            return Operand.const(None, UNIT)

        if isinstance(expr, ast.Break):
            self.lower_break(expr)
            return Operand.const(None, UNIT)

        if isinstance(expr, ast.Continue):
            self.lower_continue(expr)
            return Operand.const(None, UNIT)

        if isinstance(expr, ast.Return):
            self.lower_return(expr)
            return Operand.const(None, UNIT)

        if isinstance(expr, ast.Closure):
            return self.lower_closure(expr)

        if isinstance(expr, ast.MacroCall):
            return self.lower_macro(expr)

        if isinstance(expr, ast.Try):
            # `expr?` lowered as unwrap (documented deviation).
            inner = self.lower_expr(expr.operand)
            inner_ty = self.operand_ty(inner)
            ret = inner_ty.arg(0) if inner_ty.kind is TyKind.BUILTIN else UNKNOWN
            temp = self.new_local(ret, span=span, temp=True)
            self.declare(temp)
            self.emit(Statement(StatementKind.STORAGE_LIVE, span=span, local=temp))
            self.call(FuncRef.builtin(BuiltinOp.UNWRAP), [inner], Place(temp),
                      span)
            return Operand.copy(Place(temp))

        if isinstance(expr, ast.AwaitStub):
            return self.lower_expr(expr.operand)

        raise CompileError(f"cannot lower expression {type(expr).__name__}",
                           span, self.pb.source)

    @staticmethod
    def _literal_ty(lit: ast.Literal) -> Ty:
        if isinstance(lit.value, bool):
            return BOOL
        if isinstance(lit.value, int):
            return Ty.int(lit.suffix) if lit.suffix else I32
        if isinstance(lit.value, float):
            return Ty.float("f64")
        if isinstance(lit.value, str):
            return Ty.ref(Ty.str_())
        return UNKNOWN

    def lower_expr_into(self, dest: Place, expr: ast.Expr) -> None:
        """Lower ``expr`` writing the result directly into ``dest``."""
        if isinstance(expr, (ast.If, ast.IfLet, ast.Match, ast.Block)):
            if isinstance(expr, ast.Block):
                result = self.lower_block_into(dest, expr)
                if result is not None:
                    self.assign(dest, Rvalue.use_(result), expr.span)
                return
            if isinstance(expr, ast.If):
                self.lower_if(expr, want_value=True, dest=dest)
                return
            if isinstance(expr, ast.IfLet):
                self.lower_if_let(expr, want_value=True, dest=dest)
                return
            self.lower_match(expr, want_value=True, dest=dest)
            return
        operand = self.lower_expr(expr)
        if self.current is not None:
            self.assign(dest, Rvalue.use_(operand), expr.span)

    # -- places ------------------------------------------------------------------

    def lower_place(self, expr: ast.Expr) -> Place:
        span = expr.span
        if isinstance(expr, ast.PathExpr):
            name = expr.path.as_str()
            if name in self.var_stack[-1]:
                return Place(self.var_stack[-1][name])
            if name in self.table.statics or name.split("::")[-1] in self.table.statics:
                return Place(self.static_local(name.split("::")[-1], span))
            # Fall through: evaluate as expression into temp.
            operand = self.lower_path_expr(expr)
            return self._operand_place(operand, span)
        if isinstance(expr, ast.FieldAccess):
            base = self.lower_place(expr.base)
            base = self._autoderef(base)
            base_ty = self.place_ty(base).peel_refs()
            index = 0
            info = self.table.structs.get(base_ty.name)
            if info is not None:
                idx = info.field_index(expr.field_name)
                if idx is not None:
                    index = idx
            return base.field(index, expr.field_name)
        if isinstance(expr, ast.TupleIndex):
            base = self._autoderef(self.lower_place(expr.base))
            return base.field(expr.index, str(expr.index))
        if isinstance(expr, ast.Index):
            base = self._autoderef(self.lower_place(expr.base))
            index_op = self.lower_expr(expr.index)
            base_ty = self.place_ty(base)
            self._emit_bounds_check(base, index_op, span)
            if index_op.is_const:
                return base.index_by(const=index_op.constant.value)
            idx_local = self._operand_to_local(index_op, USIZE, span)
            return base.index_by(local=idx_local)
        if isinstance(expr, ast.Unary) and expr.op is ast.UnOp.DEREF:
            inner = self.lower_place(expr.operand)
            return inner.deref()
        if isinstance(expr, ast.Block) and expr.is_unsafe:
            self.unsafe_depth += 1
            self.unsafe_span_stack.append(expr.span)
            self.body.has_unsafe_block = True
            self.pb.record_unsafe_block(self.body.key, expr.span)
            try:
                if expr.tail is not None and not expr.statements:
                    return self.lower_place(expr.tail)
                operand = self.lower_expr(expr)
                return self._operand_place(operand, span)
            finally:
                self.unsafe_depth -= 1
                self.unsafe_span_stack.pop()
        operand = self.lower_expr(expr)
        return self._operand_place(operand, span)

    def _autoderef(self, place: Place) -> Place:
        """Insert the deref projections rustc's autoderef would: through
        references, Box/Rc/Arc, and lock guards."""
        deref_wrappers = ("Box", "Rc", "Arc", "MutexGuard",
                          "RwLockReadGuard", "RwLockWriteGuard", "Ref",
                          "RefMut", "ManuallyDrop")
        for _ in range(4):
            ty = self.place_ty(place)
            if ty.is_ref:
                place = place.deref()
                continue
            if ty.kind is TyKind.BUILTIN and ty.name in deref_wrappers:
                place = place.deref()
                continue
            break
        return place

    def _operand_place(self, operand: Operand, span: Span) -> Place:
        if operand.place is not None:
            return operand.place
        ty = self.operand_ty(operand)
        temp = self.spill(Rvalue.use_(operand), ty, span)
        return Place(temp)

    def _emit_bounds_check(self, base: Place, index_op: Operand,
                           span: Span) -> None:
        """`v[i]` bounds assertion — the safe-Rust check the paper's §4.1
        performance experiments measure."""
        if not self.pb.emit_bounds_checks:
            return
        len_temp = self.spill(Rvalue.len_(base), USIZE, span)
        cond = self.spill(Rvalue.binary(BinOpKind.LT, index_op,
                                        Operand.copy(Place(len_temp))),
                          BOOL, span)
        ok_block = self.body.new_block()
        self.terminate(Terminator(
            TerminatorKind.ASSERT, span=span, cond=Operand.copy(Place(cond)),
            expected=True, target=ok_block.index,
            msg="index out of bounds"))
        self.switch_to(ok_block)

    def static_local(self, name: str, span: Span) -> int:
        if name in self._static_locals:
            return self._static_locals[name]
        info = self.table.statics[name]
        local = self.new_local(info.ty, name=f"static:{name}", span=span,
                               mutable=info.mutable)
        self._static_locals[name] = local
        return local

    # -- paths as expressions -----------------------------------------------------

    def lower_path_expr(self, expr: ast.PathExpr) -> Operand:
        span = expr.span
        path = expr.path
        name = path.as_str()
        if name in self.var_stack[-1]:
            local = self.var_stack[-1][name]
            return self.operand_for_place(Place(local), self.local_ty(local))
        last = path.last.name
        if last in self.table.statics or name in self.table.statics:
            local = self.static_local(last if last in self.table.statics else name, span)
            return Operand.copy(Place(local))
        if name in self.table.consts or last in self.table.consts:
            const = self.table.consts.get(name) or self.table.consts.get(last)
            if isinstance(const, ast.ConstDef) and const.init is not None:
                return self.lower_expr(const.init)
        # Unit enum variants (None, Enum::Variant).
        variant_index = self._unit_variant_index(path)
        if variant_index is not None:
            ty = self._enum_ty_for_path(path)
            temp = self.spill(Rvalue.aggregate(AggregateKind.ENUM, (),
                                               name=path.as_str(),
                                               variant_index=variant_index),
                              ty, span)
            return Operand.copy(Place(temp))
        # Function reference (fn pointer value).
        fn = self.table.lookup_fn(name) or self.table.lookup_fn(last)
        if fn is not None:
            return Operand.const(("fn", fn.key), Ty.fn((), fn.ret_ty))
        return Operand.const(("path", name), UNKNOWN)

    def _unit_variant_index(self, path: ast.Path) -> Optional[int]:
        last = path.last.name
        if last == "None":
            return 0
        if len(path.segments) >= 2:
            enum_name = path.segments[-2].name
            info = self.table.enums.get(enum_name)
            if info is not None:
                return info.variant_index(last)
        info = None
        for candidate in self.table.enums.values():
            idx = candidate.variant_index(last)
            if idx is not None and not candidate.variant_payload(last):
                return idx
        return None

    def _enum_ty_for_path(self, path: ast.Path) -> Ty:
        last = path.last.name
        if last in ("None", "Some"):
            return Ty.builtin("Option", (UNKNOWN,))
        if last in ("Ok", "Err"):
            return Ty.builtin("Result", (UNKNOWN, UNKNOWN))
        if len(path.segments) >= 2 and path.segments[-2].name in self.table.enums:
            return Ty.adt(path.segments[-2].name)
        for name, info in self.table.enums.items():
            if info.variant_index(last) is not None:
                return Ty.adt(name)
        return UNKNOWN

    # -- binary / cast -----------------------------------------------------------

    def lower_binary(self, expr: ast.Binary) -> Operand:
        span = expr.span
        if expr.op in (ast.BinOp.AND, ast.BinOp.OR):
            # Short-circuit lowering.
            result = self.new_local(BOOL, span=span, temp=True)
            self.declare(result)
            self.emit(Statement(StatementKind.STORAGE_LIVE, span=span,
                                local=result))
            left = self.lower_expr(expr.left)
            self.assign(Place(result), Rvalue.use_(left), span)
            rhs_block = self.body.new_block()
            join_block = self.body.new_block()
            if expr.op is ast.BinOp.AND:
                targets = [(0, join_block.index)]      # false → short circuit
                otherwise = rhs_block.index
            else:
                targets = [(0, rhs_block.index)]       # false → evaluate rhs
                otherwise = join_block.index
            self.terminate(Terminator(TerminatorKind.SWITCH_INT, span=span,
                                      discr=Operand.copy(Place(result)),
                                      switch_targets=targets,
                                      otherwise=otherwise))
            self.switch_to(rhs_block)
            right = self.lower_expr(expr.right)
            if self.current is not None:
                self.assign(Place(result), Rvalue.use_(right), span)
                self.goto(join_block, span)
            self.switch_to(join_block)
            return Operand.copy(Place(result))

        left = self.lower_expr(expr.left)
        right = self.lower_expr(expr.right)
        op = _BINOP_MAP[expr.op]
        ty = BOOL if op in _CMP_OPS else self.operand_ty(left)
        temp = self.spill(Rvalue.binary(op, left, right), ty, span)
        return Operand.copy(Place(temp))

    def lower_cast(self, expr: ast.Cast) -> Operand:
        span = expr.span
        operand = self.lower_expr(expr.operand)
        src_ty = self.operand_ty(operand)
        dst_ty = self.table.lower_ty(expr.target_ty, self.body.self_ty,
                                     tuple(self.fn_info.generics)
                                     if self.fn_info else ())
        if src_ty.is_ref and dst_ty.is_raw_ptr:
            kind = CastKind.REF_TO_RAW
        elif src_ty.is_raw_ptr and dst_ty.is_raw_ptr:
            kind = CastKind.RAW_TO_RAW
        elif src_ty.is_raw_ptr and dst_ty.kind is TyKind.INT:
            kind = CastKind.RAW_TO_INT
        elif src_ty.kind is TyKind.INT and dst_ty.is_raw_ptr:
            kind = CastKind.INT_TO_RAW
        elif src_ty.kind is TyKind.INT and dst_ty.kind is TyKind.INT:
            kind = CastKind.NUMERIC
        else:
            kind = CastKind.OTHER
        temp = self.spill(Rvalue.cast(operand, kind, dst_ty), dst_ty, span)
        return Operand.copy(Place(temp))

    # -- calls ---------------------------------------------------------------------

    def call(self, func: FuncRef, args: List[Operand], dest: Place,
             span: Span) -> None:
        next_block = self.body.new_block()
        self.terminate(Terminator(TerminatorKind.CALL, span=span, func=func,
                                  args=args, destination=dest,
                                  target=next_block.index))
        self.switch_to(next_block)

    def _fresh_call_dest(self, ty: Ty, span: Span) -> Place:
        temp = self.new_local(ty, span=span, temp=True)
        self.declare(temp)
        self.emit(Statement(StatementKind.STORAGE_LIVE, span=span, local=temp))
        return Place(temp)

    def lower_call(self, expr: ast.Call) -> Operand:
        span = expr.span
        callee = expr.callee

        if isinstance(callee, ast.PathExpr):
            path = callee.path
            name = path.as_str()
            last = path.last.name

            # Closure / fn-pointer variable call.
            if name in self.var_stack[-1]:
                local = self.var_stack[-1][name]
                local_ty = self.local_ty(local)
                args = [self.lower_expr(a) for a in expr.args]
                if local_ty.kind is TyKind.CLOSURE:
                    func = FuncRef.closure(local_ty.name)
                else:
                    func = FuncRef.unknown(name)
                args.insert(0, Operand.copy(Place(local)))
                dest = self._fresh_call_dest(UNKNOWN, span)
                self.call(func, args, dest, span)
                return Operand.copy(dest)

            # Enum variant constructors (Some / Ok / Err / user variants).
            variant = self._callable_variant(path)
            if variant is not None:
                index, enum_ty = variant
                operands = tuple(self.lower_expr(a) for a in expr.args)
                if enum_ty.kind is TyKind.BUILTIN and operands:
                    payload_ty = self.operand_ty(operands[0])
                    if enum_ty.name == "Option":
                        enum_ty = Ty.builtin("Option", (payload_ty,))
                    elif enum_ty.name == "Result" and last == "Ok":
                        enum_ty = Ty.builtin("Result", (payload_ty, UNKNOWN))
                    elif enum_ty.name == "Result":
                        enum_ty = Ty.builtin("Result", (UNKNOWN, payload_ty))
                temp = self.spill(Rvalue.aggregate(AggregateKind.ENUM, operands,
                                                   name=name,
                                                   variant_index=index),
                                  enum_ty, span)
                return self.operand_for_place(Place(temp), enum_ty)

            # Tuple-struct constructor.
            info = self.table.structs.get(last)
            if info is not None and info.is_tuple:
                operands = tuple(self.lower_expr(a) for a in expr.args)
                struct_ty = Ty.adt(last)
                temp = self.spill(Rvalue.aggregate(AggregateKind.STRUCT,
                                                   operands, name=last),
                                  struct_ty, span)
                return self.operand_for_place(Place(temp), struct_ty)

            # User function (free or associated).
            fn = self._lookup_user_fn(path)
            if fn is not None:
                args = [self.lower_expr(a) for a in expr.args]
                dest = self._fresh_call_dest(fn.ret_ty, span)
                self.call(FuncRef.user(fn.key, fn.is_unsafe), args, dest, span)
                return self.operand_for_place(dest, fn.ret_ty)

            # Builtin path call.
            generics = [self.table.lower_ty(t) for seg in path.segments
                        for t in seg.generic_args]
            args = [self.lower_expr(a) for a in expr.args]
            arg_tys = [self.operand_ty(a) for a in args]
            resolved = resolve_builtin_call(name, generics, arg_tys)
            if resolved is not None:
                func, ret_ty = resolved
                dest = self._fresh_call_dest(ret_ty, span)
                self.call(func, args, dest, span)
                return self.operand_for_place(dest, ret_ty)

            # Unknown foreign call.
            args = [self.lower_expr(a) for a in expr.args]
            dest = self._fresh_call_dest(UNKNOWN, span)
            self.call(FuncRef.unknown(name), args, dest, span)
            return Operand.copy(dest)

        # Calling a non-path callee (e.g. a just-built closure).
        callee_op = self.lower_expr(callee)
        callee_ty = self.operand_ty(callee_op)
        args = [self.lower_expr(a) for a in expr.args]
        if callee_ty.kind is TyKind.CLOSURE:
            func = FuncRef.closure(callee_ty.name)
        else:
            func = FuncRef.unknown("<indirect>")
        args.insert(0, callee_op)
        dest = self._fresh_call_dest(UNKNOWN, span)
        self.call(func, args, dest, span)
        return Operand.copy(dest)

    def _callable_variant(self, path: ast.Path) -> Optional[Tuple[int, Ty]]:
        last = path.last.name
        if last == "Some":
            return 1, Ty.builtin("Option", (UNKNOWN,))
        if last == "Ok":
            return 0, Ty.builtin("Result", (UNKNOWN, UNKNOWN))
        if last == "Err":
            return 1, Ty.builtin("Result", (UNKNOWN, UNKNOWN))
        if len(path.segments) >= 2:
            enum_name = path.segments[-2].name
            info = self.table.enums.get(enum_name)
            if info is not None:
                idx = info.variant_index(last)
                if idx is not None:
                    return idx, Ty.adt(enum_name)
        if last and last[0].isupper():
            for name, info in self.table.enums.items():
                idx = info.variant_index(last)
                if idx is not None:
                    return idx, Ty.adt(name)
        return None

    def _lookup_user_fn(self, path: ast.Path) -> Optional[FnInfo]:
        name = path.as_str()
        fn = self.table.lookup_fn(name)
        if fn is not None:
            return fn
        last = path.last.name
        fn = self.table.lookup_fn(last)
        if fn is not None:
            return fn
        if len(path.segments) >= 2:
            two = f"{path.segments[-2].name}::{last}"
            if path.segments[-2].name == "Self" and self.body.self_ty:
                two = f"{self.body.self_ty.name}::{last}"
            fn = self.table.lookup_fn(two)
            if fn is not None:
                return fn
        return None

    def lower_method_call(self, expr: ast.MethodCall) -> Operand:
        span = expr.span
        recv_place = self.lower_place(expr.receiver)
        recv_ty = self.place_ty(recv_place)
        base_ty = recv_ty.peel_borrows().peel_wrappers()

        # User-defined method?
        adt_name = base_ty.name if base_ty.kind is TyKind.ADT else None
        if adt_name:
            fn = self.table.lookup_method(adt_name, expr.method)
            if fn is not None:
                args: List[Operand] = []
                if fn.self_mode == "value":
                    args.append(self.operand_for_place(recv_place, recv_ty))
                elif fn.self_mode == "ref_mut":
                    temp = self.spill(Rvalue.ref(recv_place, True),
                                      Ty.ref(base_ty, True), span)
                    args.append(Operand.copy(Place(temp)))
                else:
                    temp = self.spill(Rvalue.ref(recv_place, False),
                                      Ty.ref(base_ty), span)
                    args.append(Operand.copy(Place(temp)))
                args.extend(self.lower_expr(a) for a in expr.args)
                dest = self._fresh_call_dest(fn.ret_ty, span)
                self.call(FuncRef.user(fn.key, fn.is_unsafe), args, dest, span)
                return self.operand_for_place(dest, fn.ret_ty)

        # Builtin method.
        args_ops = [self.lower_expr(a) for a in expr.args]
        arg_tys = [self.operand_ty(a) for a in args_ops]
        lock_base = recv_ty.peel_borrows().peel_wrappers()
        resolved = resolve_method(lock_base, expr.method, arg_tys)
        if resolved is not None:
            func, ret_ty = resolved
            ref_temp = self.spill(Rvalue.ref(recv_place, False),
                                  Ty.ref(lock_base), span)
            call_args = [Operand.copy(Place(ref_temp))] + args_ops
            dest = self._fresh_call_dest(ret_ty, span)
            self.call(func, call_args, dest, span)
            return self.operand_for_place(dest, ret_ty)

        # Unknown method — still record the call for the call graph.
        ref_temp = self.spill(Rvalue.ref(recv_place, False),
                              Ty.ref(base_ty), span)
        call_args = [Operand.copy(Place(ref_temp))] + args_ops
        dest = self._fresh_call_dest(UNKNOWN, span)
        self.call(FuncRef.unknown(expr.method), call_args, dest, span)
        return Operand.copy(dest)

    def lower_struct_literal(self, expr: ast.StructLiteral) -> Operand:
        span = expr.span
        name = expr.path.last.name
        info = self.table.structs.get(name)
        field_ops: Dict[str, Operand] = {}
        for f_name, f_expr in expr.fields:
            field_ops[f_name] = self.lower_expr(f_expr)
        base_op: Optional[Operand] = None
        if expr.base is not None:
            base_op = self.lower_expr(expr.base)
        if info is not None:
            ordered = []
            for f_name, _f_ty in info.fields:
                if f_name in field_ops:
                    ordered.append(field_ops[f_name])
                elif base_op is not None and base_op.place is not None:
                    idx = info.field_index(f_name)
                    ordered.append(Operand.copy(
                        base_op.place.field(idx, f_name)))
                else:
                    ordered.append(Operand.const(None))
            operands = tuple(ordered)
        else:
            operands = tuple(field_ops.values())
        struct_ty = Ty.adt(name)
        temp = self.spill(Rvalue.aggregate(AggregateKind.STRUCT, operands,
                                           name=name),
                          struct_ty, span)
        return self.operand_for_place(Place(temp), struct_ty)

    # -- control flow -----------------------------------------------------------------

    def _switch_on_bool(self, cond: Operand, span: Span) -> Tuple[BasicBlock, BasicBlock]:
        then_block = self.body.new_block()
        else_block = self.body.new_block()
        self.terminate(Terminator(TerminatorKind.SWITCH_INT, span=span,
                                  discr=cond,
                                  switch_targets=[(0, else_block.index)],
                                  otherwise=then_block.index))
        return then_block, else_block

    def lower_if(self, expr: ast.If, want_value: bool,
                 dest: Optional[Place] = None) -> Operand:
        span = expr.span
        if want_value and dest is None:
            result = self.new_local(UNKNOWN, span=span, temp=True)
            self.declare(result)
            self.emit(Statement(StatementKind.STORAGE_LIVE, span=span,
                                local=result))
            dest = Place(result)
        # Condition temps die before branching (Rust's rule for `if`) —
        # except the boolean itself, which the switch still consumes.
        self.push_scope(temp=True)
        cond = self.lower_expr(expr.condition)
        if cond.place is not None:
            self.extend_temp(cond.place.local)
        if self.current is None:
            self.scopes.pop()
            return Operand.const(None, UNIT)
        self.pop_scope(span)
        then_block, else_block = self._switch_on_bool(cond, span)
        join_block = self.body.new_block()

        self.switch_to(then_block)
        if want_value and dest is not None:
            self.lower_expr_into(dest, expr.then_block)
        else:
            self.lower_block_into(None, expr.then_block)
        if self.current is not None:
            self.goto(join_block, span)

        self.switch_to(else_block)
        if expr.else_branch is not None:
            if want_value and dest is not None:
                self.lower_expr_into(dest, expr.else_branch)
            else:
                if isinstance(expr.else_branch, ast.Block):
                    self.lower_block_into(None, expr.else_branch)
                else:
                    self.lower_expr(expr.else_branch, want_value=False)
        if self.current is not None:
            self.goto(join_block, span)

        self.switch_to(join_block)
        if want_value and dest is not None:
            return Operand.copy(dest)
        return Operand.const(None, UNIT)

    def lower_if_let(self, expr: ast.IfLet, want_value: bool,
                     dest: Optional[Place] = None) -> Operand:
        span = expr.span
        if want_value and dest is None:
            result = self.new_local(UNKNOWN, span=span, temp=True)
            self.declare(result)
            self.emit(Statement(StatementKind.STORAGE_LIVE, span=span,
                                local=result))
            dest = Place(result)
        # Scrutinee temps extend to the end of the whole if-let.
        self.push_scope(temp=True)
        scrut = self.lower_expr(expr.scrutinee)
        scrut_ty = self.operand_ty(scrut)
        scrut_local = self._operand_to_local(scrut, scrut_ty, span)
        scrut_place = Place(scrut_local)

        cond = self.pattern_test(expr.pattern, scrut_place, scrut_ty, span)
        join_block = self.body.new_block()
        if cond is not None:
            then_block, else_block = self._switch_on_bool(cond, span)
        else:
            then_block = self.body.new_block()
            else_block = join_block
            self.goto(then_block, span)

        self.switch_to(then_block)
        self.push_scope()
        self.bind_pattern(expr.pattern, scrut_place, scrut_ty, span,
                          refutable=True)
        if want_value and dest is not None:
            self.lower_expr_into(dest, expr.then_block)
        else:
            inner = self.lower_block_into(None, expr.then_block)
        if self.current is not None:
            self.pop_scope(span)
            self.goto(join_block, span)
        else:
            self.scopes.pop()
            self.var_stack.pop()

        if else_block is not join_block:
            self.switch_to(else_block)
            if expr.else_branch is not None:
                if want_value and dest is not None:
                    self.lower_expr_into(dest, expr.else_branch)
                else:
                    if isinstance(expr.else_branch, ast.Block):
                        self.lower_block_into(None, expr.else_branch)
                    else:
                        self.lower_expr(expr.else_branch, want_value=False)
            if self.current is not None:
                self.goto(join_block, span)

        self.switch_to(join_block)
        self.pop_scope(span)   # drop the scrutinee temps here
        if want_value and dest is not None:
            return Operand.copy(dest)
        return Operand.const(None, UNIT)

    def lower_match(self, expr: ast.Match, want_value: bool,
                    dest: Optional[Place] = None) -> Operand:
        span = expr.span
        if want_value and dest is None:
            result = self.new_local(UNKNOWN, span=span, temp=True)
            self.declare(result)
            self.emit(Statement(StatementKind.STORAGE_LIVE, span=span,
                                local=result))
            dest = Place(result)
        # Scrutinee temporaries live for the whole match (the Figure 8 rule).
        self.push_scope(temp=True)
        scrut = self.lower_expr(expr.scrutinee)
        scrut_ty = self.operand_ty(scrut)
        scrut_local = self._operand_to_local(scrut, scrut_ty, span)
        scrut_place = Place(scrut_local)

        join_block = self.body.new_block()
        for arm in expr.arms:
            if self.current is None:
                break
            next_test = self.body.new_block()
            cond = self.pattern_test(arm.pattern, scrut_place, scrut_ty,
                                     arm.span)
            if cond is not None:
                body_block, fail_block = self._switch_on_bool(cond, arm.span)
                # fail → next test
                self.switch_to(fail_block)
                self.goto(next_test, arm.span)
                self.switch_to(body_block)
            # irrefutable → fall through into the body directly
            self.push_scope()
            self.bind_pattern(arm.pattern, scrut_place, scrut_ty, arm.span,
                              refutable=True)
            guard_fail: Optional[BasicBlock] = None
            if arm.guard is not None:
                guard_cond = self.lower_expr(arm.guard)
                body_block2, guard_fail = self._switch_on_bool(guard_cond,
                                                               arm.span)
                self.switch_to(body_block2)
            if want_value and dest is not None:
                self.lower_expr_into(dest, arm.body)
            else:
                self.lower_expr(arm.body, want_value=False)
            if self.current is not None:
                self.pop_scope(arm.span)
                self.goto(join_block, arm.span)
            else:
                self.scopes.pop()
                self.var_stack.pop()
            if guard_fail is not None:
                self.switch_to(guard_fail)
                self.goto(next_test, arm.span)
            self.switch_to(next_test)
            if cond is None and arm.guard is None:
                # Irrefutable arm: nothing reaches the next test.
                self.terminate(Terminator(TerminatorKind.UNREACHABLE,
                                          span=arm.span))
                self.current = None
                break
        if self.current is not None:
            # Non-exhaustive match falls off: treat as unreachable.
            self.terminate(Terminator(TerminatorKind.UNREACHABLE, span=span))
        self.switch_to(join_block)
        self.pop_scope(span)   # scrutinee temps (e.g. lock guards) die here
        if want_value and dest is not None:
            return Operand.copy(dest)
        return Operand.const(None, UNIT)

    # -- loops --------------------------------------------------------------------------

    def lower_loop_expr(self, expr: ast.Expr) -> None:
        span = expr.span
        head = self.body.new_block()
        exit_block = self.body.new_block()
        self.goto(head, span)
        self.switch_to(head)
        self.loop_stack.append(_LoopCtx(continue_block=head.index,
                                        break_block=exit_block.index,
                                        scope_depth=len(self.scopes)))
        try:
            if isinstance(expr, ast.Loop):
                self.lower_block_into(None, expr.body)
                if self.current is not None:
                    self.goto(head, span)
            elif isinstance(expr, ast.While):
                self.push_scope(temp=True)
                cond = self.lower_expr(expr.condition)
                if cond.place is not None:
                    self.extend_temp(cond.place.local)
                if self.current is not None:
                    self.pop_scope(span)
                    body_block, done = self._switch_on_bool(cond, span)
                    self.switch_to(done)
                    self.goto(exit_block, span)
                    self.switch_to(body_block)
                    self.lower_block_into(None, expr.body)
                    if self.current is not None:
                        self.goto(head, span)
                else:
                    self.scopes.pop()
            elif isinstance(expr, ast.WhileLet):
                temp_scope = self.push_scope(temp=True)
                scrut = self.lower_expr(expr.scrutinee)
                scrut_ty = self.operand_ty(scrut)
                scrut_local = self._operand_to_local(scrut, scrut_ty, span)
                scrut_place = Place(scrut_local)
                cond = self.pattern_test(expr.pattern, scrut_place, scrut_ty,
                                         span)
                if cond is not None:
                    body_block, done = self._switch_on_bool(cond, span)
                    # Exit path: scrutinee temps die, loop exits.
                    self.switch_to(done)
                    self._emit_scope_exit(temp_scope, span)
                    self.goto(exit_block, span)
                    # Body path: bindings live for the body, then the
                    # scrutinee temps die before re-testing.
                    self.switch_to(body_block)
                    self.push_scope()
                    self.bind_pattern(expr.pattern, scrut_place, scrut_ty,
                                      span, refutable=True)
                    self.lower_block_into(None, expr.body)
                    if self.current is not None:
                        self.pop_scope(span)
                        self._emit_scope_exit(temp_scope, span)
                        self.goto(head, span)
                    else:
                        self.scopes.pop()
                        self.var_stack.pop()
                    self.scopes.pop()   # temp scope bookkeeping (exits emitted)
                else:
                    self.pop_scope(span)
                    self.lower_block_into(None, expr.body)
                    if self.current is not None:
                        self.goto(head, span)
            elif isinstance(expr, ast.For):
                self.lower_for(expr, head, exit_block)
        finally:
            self.loop_stack.pop()
        self.switch_to(exit_block)

    def lower_for(self, expr: ast.For, head: BasicBlock,
                  exit_block: BasicBlock) -> None:
        """``for`` desugars to an index-based loop.

        Ranges iterate the counter directly; any other iterable is treated
        as a Vec-like sequence indexed from 0 (the interpreter's ``Len`` /
        ``Index`` work uniformly over vectors, slices and maps).
        """
        span = expr.span
        # We are currently *in* `head`, but the iterable must be evaluated
        # once before the loop; restructure: head becomes the test block.
        # Evaluate iterable in a pre-header appended before head.
        pre = self.current      # == head
        # Range iteration.
        if isinstance(expr.iterable, ast.Range):
            lo_op = self.lower_expr(expr.iterable.lo) if expr.iterable.lo \
                else Operand.const(0, USIZE)
            hi_op = self.lower_expr(expr.iterable.hi) if expr.iterable.hi \
                else Operand.const(None)
            counter = self.spill(Rvalue.use_(lo_op), USIZE, span)
            hi_local = self._operand_to_local(hi_op, USIZE, span)
            test = self.body.new_block()
            incr = self.body.new_block()
            # `continue` must run the increment, which exists before the
            # body is lowered.
            if self.loop_stack:
                self.loop_stack[-1].continue_block = incr.index
            self.goto(test, span)
            self.switch_to(incr)
            self.assign(Place(counter),
                        Rvalue.binary(BinOpKind.ADD,
                                      Operand.copy(Place(counter)),
                                      Operand.const(1, USIZE)), span)
            self.goto(test, span)
            self.switch_to(test)
            cmp_op = BinOpKind.LE if expr.iterable.inclusive else BinOpKind.LT
            cond = self.spill(Rvalue.binary(cmp_op,
                                            Operand.copy(Place(counter)),
                                            Operand.copy(Place(hi_local))),
                              BOOL, span)
            body_block, done = self._switch_on_bool(
                Operand.copy(Place(cond)), span)
            self.switch_to(done)
            self.goto(exit_block, span)
            self.switch_to(body_block)
            self.push_scope()
            if isinstance(expr.pattern, ast.PatIdent):
                var = self.new_local(USIZE, name=expr.pattern.name, span=span)
                self.declare(var)
                self.var_stack[-1][expr.pattern.name] = var
                self.emit(Statement(StatementKind.STORAGE_LIVE, span=span,
                                    local=var))
                self.assign(Place(var),
                            Rvalue.use_(Operand.copy(Place(counter))), span)
            self.lower_block_into(None, expr.body)
            if self.current is not None:
                self.pop_scope(span)
                self.goto(incr, span)
            else:
                self.scopes.pop()
                self.var_stack.pop()
            return

        # Vec-like iteration.
        iter_op = self.lower_expr(expr.iterable)
        iter_ty = self.operand_ty(iter_op)
        seq_local = self._operand_to_local(iter_op, iter_ty, span)
        counter = self.spill(Rvalue.use_(Operand.const(0, USIZE)), USIZE, span)
        test = self.body.new_block()
        incr = self.body.new_block()
        if self.loop_stack:
            self.loop_stack[-1].continue_block = incr.index
        self.goto(test, span)
        self.switch_to(incr)
        self.assign(Place(counter),
                    Rvalue.binary(BinOpKind.ADD,
                                  Operand.copy(Place(counter)),
                                  Operand.const(1, USIZE)), span)
        self.goto(test, span)
        self.switch_to(test)
        length = self.spill(Rvalue.len_(Place(seq_local)), USIZE, span)
        cond = self.spill(Rvalue.binary(BinOpKind.LT,
                                        Operand.copy(Place(counter)),
                                        Operand.copy(Place(length))),
                          BOOL, span)
        body_block, done = self._switch_on_bool(Operand.copy(Place(cond)),
                                                span)
        self.switch_to(done)
        self.goto(exit_block, span)
        self.switch_to(body_block)
        self.push_scope()
        elem_ty = iter_ty.peel_refs().arg(0)
        elem_place = Place(seq_local).index_by(local=counter)
        if isinstance(expr.pattern, ast.PatIdent):
            var = self.new_local(elem_ty, name=expr.pattern.name, span=span)
            self.declare(var)
            self.var_stack[-1][expr.pattern.name] = var
            self.emit(Statement(StatementKind.STORAGE_LIVE, span=span,
                                local=var))
            self.assign(Place(var), Rvalue.use_(Operand.copy(elem_place)),
                        span)
        else:
            self.bind_pattern(expr.pattern, elem_place, elem_ty, span,
                              refutable=False)
        self.lower_block_into(None, expr.body)
        if self.current is not None:
            self.pop_scope(span)
            self.goto(incr, span)
        else:
            self.scopes.pop()
            self.var_stack.pop()

    def lower_break(self, expr: ast.Break) -> None:
        if not self.loop_stack:
            return
        ctx = self.loop_stack[-1]
        self.unwind_scopes(ctx.scope_depth, expr.span)
        self.terminate(Terminator(TerminatorKind.GOTO, span=expr.span,
                                  target=ctx.break_block))

    def lower_continue(self, expr: ast.Continue) -> None:
        if not self.loop_stack:
            return
        ctx = self.loop_stack[-1]
        self.unwind_scopes(ctx.scope_depth, expr.span)
        self.terminate(Terminator(TerminatorKind.GOTO, span=expr.span,
                                  target=ctx.continue_block))

    def lower_return(self, expr: ast.Return) -> None:
        if expr.value is not None:
            operand = self.lower_expr(expr.value)
            if self.current is None:
                return
            self.assign(Place(0), Rvalue.use_(operand), expr.span)
        self.unwind_scopes(0, expr.span)
        self.terminate(Terminator(TerminatorKind.RETURN, span=expr.span))

    # -- closures ----------------------------------------------------------------------

    def lower_closure(self, expr: ast.Closure) -> Operand:
        span = expr.span
        key = f"{self.body.key}::{{closure#{self.closure_counter}}}"
        self.closure_counter += 1

        bound = {name for name, _ in expr.params}
        free = _collect_free_vars(expr.body, bound)
        captures: List[Tuple[str, Ty]] = []
        capture_ops: List[Operand] = []
        for name in sorted(free):
            if name in self.var_stack[-1]:
                local = self.var_stack[-1][name]
                ty = self.local_ty(local)
                captures.append((name, ty))
                if expr.is_move and not ty.is_copy:
                    capture_ops.append(Operand.move(Place(local)))
                elif ty.is_copy:
                    capture_ops.append(Operand.copy(Place(local)))
                else:
                    # Borrow capture approximated as copy (alias retained).
                    capture_ops.append(Operand.copy(Place(local)))

        params = [(p_name,
                   self.table.lower_ty(p_ty) if p_ty else UNKNOWN,
                   False)
                  for p_name, p_ty in expr.params]
        body_block = expr.body if isinstance(expr.body, ast.Block) else \
            ast.Block(span=expr.body.span, statements=[], tail=expr.body)
        closure_builder = BodyBuilder(
            self.pb, key, None, body_block, params, UNKNOWN,
            is_unsafe_fn=False, span=span, captures=captures)
        if self.unsafe_depth > 0:
            closure_builder.unsafe_depth += 1
            if self.unsafe_span_stack:
                closure_builder.unsafe_span_stack.append(
                    self.unsafe_span_stack[-1])
        self.pb.program.functions[key] = closure_builder.build()

        ty = Ty.closure(key)
        temp = self.spill(Rvalue.aggregate(AggregateKind.CLOSURE,
                                           tuple(capture_ops), name=key),
                          ty, span)
        return Operand.copy(Place(temp))

    # -- macros -------------------------------------------------------------------------

    def lower_macro(self, expr: ast.MacroCall) -> Operand:
        span = expr.span
        op = MACRO_OPS.get(expr.name)
        if op is BuiltinOp.VEC_MACRO:
            if expr.repeat is not None:
                elem, count = expr.repeat
                elem_op = self.lower_expr(elem)
                count_op = self.lower_expr(count)
                elem_ty = self.operand_ty(elem_op)
                ty = Ty.builtin("Vec", (elem_ty,))
                dest = self._fresh_call_dest(ty, span)
                self.call(FuncRef.builtin(BuiltinOp.VEC_MACRO,
                                          name="vec_repeat!"),
                          [elem_op, count_op], dest, span)
                return self.operand_for_place(dest, ty)
            operands = [self.lower_expr(a) for a in expr.args]
            elem_ty = self.operand_ty(operands[0]) if operands else UNKNOWN
            ty = Ty.builtin("Vec", (elem_ty,))
            dest = self._fresh_call_dest(ty, span)
            self.call(FuncRef.builtin(BuiltinOp.VEC_MACRO), operands, dest,
                      span)
            return self.operand_for_place(dest, ty)
        if op is None:
            op = BuiltinOp.FFI
        args = [self.lower_expr(a) for a in expr.args]
        ret_ty = Ty.string() if op is BuiltinOp.FORMAT else (
            Ty.never() if op is BuiltinOp.PANIC else UNIT)
        dest = self._fresh_call_dest(ret_ty, span)
        self.call(FuncRef.builtin(op, f"{expr.name}!"), args, dest, span)
        return self.operand_for_place(dest, ret_ty)


# ---------------------------------------------------------------------------
# Free-variable collection for closures
# ---------------------------------------------------------------------------

def _collect_free_vars(expr: ast.Expr, bound: Set[str]) -> Set[str]:
    free: Set[str] = set()
    _walk_free(expr, set(bound), free)
    return free


def _walk_free(node, bound: Set[str], free: Set[str]) -> None:
    if node is None or isinstance(node, (str, int, float, bool)):
        return
    if isinstance(node, ast.PathExpr):
        if len(node.path.segments) == 1:
            name = node.path.segments[0].name
            if name not in bound and name not in ("self",) and \
                    name and (name[0].islower() or name[0] == "_"):
                free.add(name)
        return
    if isinstance(node, ast.Closure):
        inner_bound = set(bound) | {p for p, _ in node.params}
        _walk_free(node.body, inner_bound, free)
        return
    if isinstance(node, ast.LetStmt):
        if node.init is not None:
            _walk_free(node.init, bound, free)
        _bind_pattern_names(node.pattern, bound)
        return
    if isinstance(node, ast.Block):
        inner = set(bound)
        for stmt in node.statements:
            _walk_free_stmt(stmt, inner, free)
        if node.tail is not None:
            _walk_free(node.tail, inner, free)
        return
    if isinstance(node, (ast.IfLet, ast.WhileLet)):
        _walk_free(node.scrutinee, bound, free)
        inner = set(bound)
        _bind_pattern_names(node.pattern, inner)
        block = node.then_block if isinstance(node, ast.IfLet) else node.body
        _walk_free(block, inner, free)
        if isinstance(node, ast.IfLet) and node.else_branch is not None:
            _walk_free(node.else_branch, bound, free)
        return
    if isinstance(node, ast.For):
        _walk_free(node.iterable, bound, free)
        inner = set(bound)
        _bind_pattern_names(node.pattern, inner)
        _walk_free(node.body, inner, free)
        return
    if isinstance(node, ast.Match):
        _walk_free(node.scrutinee, bound, free)
        for arm in node.arms:
            inner = set(bound)
            _bind_pattern_names(arm.pattern, inner)
            if arm.guard is not None:
                _walk_free(arm.guard, inner, free)
            _walk_free(arm.body, inner, free)
        return
    if isinstance(node, ast.Node):
        for value in vars(node).values():
            if isinstance(value, ast.Node):
                _walk_free(value, bound, free)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.Node):
                        _walk_free(item, bound, free)
                    elif isinstance(item, tuple):
                        for sub in item:
                            if isinstance(sub, ast.Node):
                                _walk_free(sub, bound, free)


def _walk_free_stmt(stmt: ast.Stmt, bound: Set[str], free: Set[str]) -> None:
    if isinstance(stmt, ast.LetStmt):
        if stmt.init is not None:
            _walk_free(stmt.init, bound, free)
        _bind_pattern_names(stmt.pattern, bound)
    elif isinstance(stmt, ast.ExprStmt):
        _walk_free(stmt.expr, bound, free)


def _bind_pattern_names(pattern: ast.Pat, bound: Set[str]) -> None:
    if isinstance(pattern, ast.PatIdent):
        bound.add(pattern.name)
        if pattern.subpattern:
            _bind_pattern_names(pattern.subpattern, bound)
    elif isinstance(pattern, (ast.PatTuple, ast.PatTupleStruct)):
        for sub in pattern.elements:
            _bind_pattern_names(sub, bound)
    elif isinstance(pattern, ast.PatStruct):
        for _name, sub in pattern.fields:
            _bind_pattern_names(sub, bound)
    elif isinstance(pattern, ast.PatRef):
        _bind_pattern_names(pattern.inner, bound)


# ---------------------------------------------------------------------------
# Program builder
# ---------------------------------------------------------------------------

class ProgramBuilder:
    """Lowers every function in a crate to MIR."""

    def __init__(self, table: ItemTable,
                 source: Optional[SourceFile] = None,
                 emit_bounds_checks: bool = True) -> None:
        self.table = table
        self.source = source
        #: When False, safe indexing compiles without the Len/Lt/Assert
        #: sequence — the §4.1 "unsafe build" used by the perf benchmarks.
        self.emit_bounds_checks = emit_bounds_checks
        self.program = Program(item_table=table, source=source)
        self.unsafe_blocks: List[Tuple[str, Span]] = []

    def record_unsafe_block(self, fn_key: str, span: Span) -> None:
        self.unsafe_blocks.append((fn_key, span))

    def build(self) -> Program:
        for name, info in self.table.statics.items():
            self.program.statics[name] = info.ty
            if info.init is not None:
                from repro.lang import ast_nodes as ast_mod
                block = ast_mod.Block(span=info.span, statements=[],
                                      tail=info.init)
                builder = BodyBuilder(
                    self, f"__static_init::{name}", None, block,
                    params=[], ret_ty=info.ty, is_unsafe_fn=False,
                    span=info.span)
                self.program.functions[f"__static_init::{name}"] = \
                    builder.build()
        for key, fn in sorted(self.table.functions.items()):
            if fn.ast_fn is None or fn.ast_fn.body is None:
                continue
            builder = BodyBuilder(
                self, key, fn, fn.ast_fn.body,
                params=fn.params, ret_ty=fn.ret_ty,
                is_unsafe_fn=fn.is_unsafe, span=fn.span)
            self.program.functions[key] = builder.build()
        return self.program


def build_program(crate: ast.Crate,
                  source: Optional[SourceFile] = None) -> Program:
    """Resolve and lower a parsed crate to MIR."""
    table = build_item_table(crate)
    return ProgramBuilder(table, source).build()
