"""Runtime value and memory model for the Miri-like interpreter.

Everything addressable lives in an :class:`Allocation` (stack slots for
locals, heap blocks for ``Box``/``Vec``/``Arc``/... contents), exactly so
that the interpreter can detect the undefined behaviours the paper
catalogues: use-after-free (access to a ``freed`` allocation), double free
(freeing twice), uninitialised reads, and out-of-bounds accesses.

Pointers and references are :class:`Pointer` values carrying an allocation
id plus a projection path; dereferencing validates the allocation state
first.  Handle values (:class:`VecValue`, :class:`BoxValue`, ...) own
their backing allocation and free it when dropped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


class UBKind(enum.Enum):
    USE_AFTER_FREE = "use-after-free"
    DOUBLE_FREE = "double-free"
    INVALID_FREE = "invalid-free"
    UNINIT_READ = "uninit-read"
    OUT_OF_BOUNDS = "out-of-bounds"
    NULL_DEREF = "null-deref"
    DANGLING_STACK = "dangling-stack"


class InterpError(Exception):
    """Base of all interpreter-raised conditions."""


class UBError(InterpError):
    """Undefined behaviour detected (what Miri would flag)."""

    def __init__(self, kind: UBKind, message: str, span=None,
                 fn_key: str = "") -> None:
        self.kind = kind
        self.message = message
        self.span = span
        self.fn_key = fn_key
        super().__init__(f"{kind.value}: {message}")


class RuntimePanic(InterpError):
    """A Rust panic (bounds check, unwrap of None, explicit panic!)."""

    def __init__(self, message: str, span=None, fn_key: str = "") -> None:
        self.message = message
        self.span = span
        self.fn_key = fn_key
        super().__init__(f"panic: {message}")


class DeadlockError(InterpError):
    """Every runnable thread is blocked."""

    def __init__(self, message: str, waiting: Optional[Dict] = None) -> None:
        self.waiting = waiting or {}
        super().__init__(f"deadlock: {message}")


#: Sentinel stored in never-written memory.
class _Uninit:
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<uninit>"


#: Sentinel stored in moved-out slots.
class _Moved:
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<moved>"


UNINIT = _Uninit()
MOVED = _Moved()


class AllocState(enum.Enum):
    LIVE = "live"
    FREED = "freed"
    DEAD_STACK = "dead-stack"      # StorageDead ran (stack slot)


@dataclass
class Allocation:
    alloc_id: int
    value: Any = UNINIT
    state: AllocState = AllocState.LIVE
    kind: str = "heap"             # "heap" | "stack" | "static"
    label: str = ""                # debugging: "main::_3", "Box@bb2", ...

    @property
    def live(self) -> bool:
        return self.state is AllocState.LIVE


class Memory:
    """The allocation store shared by every thread."""

    def __init__(self) -> None:
        self._allocations: Dict[int, Allocation] = {}
        self._next_id = 1
        self.frees = 0
        self.allocs = 0

    def allocate(self, value: Any = UNINIT, kind: str = "heap",
                 label: str = "") -> int:
        alloc_id = self._next_id
        self._next_id += 1
        self._allocations[alloc_id] = Allocation(alloc_id, value, kind=kind,
                                                 label=label)
        self.allocs += 1
        return alloc_id

    def get(self, alloc_id: int) -> Allocation:
        alloc = self._allocations.get(alloc_id)
        if alloc is None:
            raise UBError(UBKind.USE_AFTER_FREE,
                          f"access to unknown allocation {alloc_id}")
        return alloc

    def check_live(self, alloc_id: int, what: str = "memory") -> Allocation:
        alloc = self.get(alloc_id)
        if alloc.state is AllocState.FREED:
            raise UBError(UBKind.USE_AFTER_FREE,
                          f"{what} accessed after its allocation "
                          f"({alloc.label or alloc_id}) was freed")
        if alloc.state is AllocState.DEAD_STACK:
            raise UBError(UBKind.DANGLING_STACK,
                          f"{what} accessed after the stack slot "
                          f"({alloc.label or alloc_id}) went out of scope")
        return alloc

    def free(self, alloc_id: int, what: str = "allocation") -> None:
        alloc = self.get(alloc_id)
        if alloc.state is AllocState.FREED:
            raise UBError(UBKind.DOUBLE_FREE,
                          f"{what} ({alloc.label or alloc_id}) freed twice")
        alloc.state = AllocState.FREED
        self.frees += 1

    def mark_dead_stack(self, alloc_id: int) -> None:
        alloc = self._allocations.get(alloc_id)
        if alloc is not None and alloc.state is AllocState.LIVE:
            alloc.state = AllocState.DEAD_STACK

    def revive_stack(self, alloc_id: int) -> None:
        """StorageLive on a previously dead slot (loop re-entry)."""
        alloc = self._allocations.get(alloc_id)
        if alloc is not None:
            alloc.state = AllocState.LIVE
            alloc.value = UNINIT

    def live_count(self) -> int:
        return sum(1 for a in self._allocations.values() if a.live)


# ---------------------------------------------------------------------------
# Value kinds
# ---------------------------------------------------------------------------

@dataclass
class Pointer:
    """A reference or raw pointer: allocation + projection path.

    ``path`` elements are ints (list/tuple/field indices) or strings
    (struct field names).
    """

    alloc_id: int
    path: Tuple = ()
    mutable: bool = False
    null: bool = False

    @staticmethod
    def null_ptr() -> "Pointer":
        return Pointer(alloc_id=0, null=True)

    def extend(self, element) -> "Pointer":
        return Pointer(self.alloc_id, self.path + (element,), self.mutable)

    def __repr__(self) -> str:
        suffix = "".join(f".{p}" for p in self.path)
        return f"ptr(a{self.alloc_id}{suffix})"


@dataclass
class StructValue:
    name: str
    fields: List[Any] = field(default_factory=list)
    field_names: List[str] = field(default_factory=list)

    def index_of(self, name: str) -> Optional[int]:
        try:
            return self.field_names.index(name)
        except ValueError:
            return None

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}: {v!r}" for n, v in
                          zip(self.field_names, self.fields))
        return f"{self.name} {{ {inner} }}"


@dataclass
class EnumValue:
    variant_index: int
    payload: List[Any] = field(default_factory=list)
    name: str = ""

    def __repr__(self) -> str:
        if self.payload:
            return f"{self.name or 'variant'}#{self.variant_index}({self.payload})"
        return f"{self.name or 'variant'}#{self.variant_index}"


def some(value) -> EnumValue:
    return EnumValue(1, [value], "Option::Some")


def none() -> EnumValue:
    return EnumValue(0, [], "Option::None")


def ok(value) -> EnumValue:
    return EnumValue(0, [value], "Result::Ok")


def err(value) -> EnumValue:
    return EnumValue(1, [value], "Result::Err")


@dataclass
class TupleValue:
    elements: List[Any] = field(default_factory=list)


@dataclass
class VecValue:
    """Handle owning a heap buffer allocation holding a Python list."""

    buffer: int


@dataclass
class StringValue:
    text: str = ""


@dataclass
class BoxValue:
    target: int         # allocation holding the boxed value


@dataclass
class RcValue:
    """Rc/Arc handle: shared target allocation + shared refcount box."""

    target: int
    counter: List[int]  # single-element shared counter
    is_arc: bool = False
    weak: bool = False


@dataclass
class MutexValue:
    """Mutex/RwLock handle: the inner value lives in its own allocation;
    the lock state lives in the runtime's lock table keyed by lock_id."""

    inner: int
    lock_id: int
    kind: str = "mutex"           # "mutex" | "rwlock" | "refcell"
    poisoned: bool = False


@dataclass
class GuardValue:
    """MutexGuard / RwLock guard / RefCell Ref: releases on drop."""

    lock_id: int
    inner: int                    # allocation of the protected value
    mode: str = "write"           # "read" | "write"
    released: bool = False


@dataclass
class CondvarValue:
    condvar_id: int


@dataclass
class OnceValue:
    once_id: int


@dataclass
class ChannelEnd:
    channel_id: int
    is_sender: bool


@dataclass
class AtomicValue:
    cell: List                    # single-element shared cell


@dataclass
class ClosureValue:
    key: str
    captures: List[Any] = field(default_factory=list)


@dataclass
class ThreadHandle:
    thread_id: int


@dataclass
class MapValue:
    buffer: int                   # allocation holding a Python dict


@dataclass
class RangeValue:
    lo: int
    hi: Optional[int]
    inclusive: bool = False


def deep_copy(value):
    """Structural copy for Copy-semantics reads (leaves handles shared —
    a handle copy *is* the aliasing bug the detectors look for)."""
    if isinstance(value, StructValue):
        return StructValue(value.name, [deep_copy(v) for v in value.fields],
                           list(value.field_names))
    if isinstance(value, EnumValue):
        return EnumValue(value.variant_index,
                         [deep_copy(v) for v in value.payload], value.name)
    if isinstance(value, TupleValue):
        return TupleValue([deep_copy(v) for v in value.elements])
    if isinstance(value, list):
        return [deep_copy(v) for v in value]
    return value
