"""A Miri-like MIR interpreter with a deterministic thread scheduler.

Plays the role Miri plays in the paper (§2.4): a dynamic checker that
executes MIR and flags undefined behaviour when a test input triggers it —
use-after-free, double free, uninitialised reads, out-of-bounds accesses —
plus the concurrency outcomes the paper studies: deadlocks (double lock,
conflicting lock order, missed condvar signals, channel misuse), Rust
panics (bounds checks, ``unwrap``, ``RefCell`` borrow errors, poisoned
locks), and (optionally) data races.

Threads are cooperatively scheduled: the scheduler runs one thread for a
``quantum`` of MIR steps, then rotates.  Different ``ScheduleConfig``
seeds yield different interleavings, which is how the exploration
benchmarks manifest injected concurrency bugs deterministically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.hir.builtins import BuiltinOp, FuncKind, FuncRef
from repro.lang.types import TyKind
from repro.mir.nodes import (
    AggregateKind, BinOpKind, Body, CastKind, Operand, Place, Program,
    Rvalue, RvalueKind, Statement, StatementKind, Terminator, TerminatorKind,
    UnOpKind,
)
from repro.mir.values import (
    MOVED, UNINIT, AllocState, AtomicValue, BoxValue, ChannelEnd,
    ClosureValue, CondvarValue, DeadlockError, EnumValue, GuardValue,
    InterpError, MapValue, Memory, MutexValue, OnceValue, Pointer, RangeValue,
    RcValue, RuntimePanic, StringValue, StructValue, ThreadHandle,
    TupleValue, UBError, UBKind, VecValue, deep_copy, err, none, ok, some,
)


class ThreadState(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    DONE = "done"
    PANICKED = "panicked"


@dataclass
class Frame:
    body: Body
    locals_alloc: Dict[int, int] = field(default_factory=dict)
    block: int = 0
    stmt_index: int = 0
    dest_place: Optional[Place] = None       # caller destination
    return_block: Optional[int] = None       # caller resume block
    in_unsafe_call: bool = False


@dataclass
class ThreadCtx:
    thread_id: int
    frames: List[Frame] = field(default_factory=list)
    state: ThreadState = ThreadState.RUNNABLE
    block_reason: str = ""
    block_object: Optional[int] = None
    result: Any = None
    panic_message: str = ""
    held_locks: List[Tuple[int, str]] = field(default_factory=list)
    spawned_at_step: int = 0
    #: Set when blocked on a condvar: (condvar_id, lock_id, guard value).
    condvar_wait: Optional[Tuple] = None
    notified: bool = False
    #: Stashed (channel_id, value) for a blocked bounded-channel send.
    pending_send: Optional[Tuple] = None
    #: Return value of the most recently completed frame (sync closures).
    last_return: Any = None

    @property
    def frame(self) -> Frame:
        return self.frames[-1]

    @property
    def alive(self) -> bool:
        return self.state in (ThreadState.RUNNABLE, ThreadState.BLOCKED)


@dataclass
class ScheduleConfig:
    """Deterministic scheduling policy."""

    quantum: int = 10
    seed: int = 0
    max_steps: int = 2_000_000

    def quantum_for(self, round_index: int) -> int:
        if self.seed == 0:
            return self.quantum
        # Vary quantum pseudo-randomly but deterministically per seed.
        x = (round_index * 2654435761 + self.seed * 40503) & 0xFFFFFFFF
        return 1 + (x % (self.quantum * 2))


@dataclass
class RaceRecord:
    alloc_id: int
    first_thread: int
    second_thread: int
    message: str


@dataclass
class RunResult:
    """Outcome of one interpretation run."""

    outcome: str                  # "ok" | "panic" | "ub" | "deadlock" | "limit"
    value: Any = None
    error: Optional[InterpError] = None
    stdout: List[str] = field(default_factory=list)
    steps: int = 0
    races: List[RaceRecord] = field(default_factory=list)
    leaked: int = 0

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"


@dataclass
class _LockState:
    kind: str                     # "mutex" | "rwlock" | "refcell"
    writer: Optional[int] = None
    #: reader thread id → number of read guards it holds (a set would
    #: collapse same-thread re-reads, releasing the lock too early).
    readers: Dict[int, int] = field(default_factory=dict)
    poisoned: bool = False


@dataclass
class _ChannelState:
    queue: List[Any] = field(default_factory=list)
    capacity: Optional[int] = None
    senders: int = 1
    receivers: int = 1


class Interpreter:
    """Executes a MIR :class:`Program`."""

    def __init__(self, program: Program,
                 schedule: Optional[ScheduleConfig] = None,
                 detect_races: bool = False) -> None:
        self.program = program
        self.schedule = schedule or ScheduleConfig()
        self.detect_races = detect_races
        self.memory = Memory()
        self.threads: List[ThreadCtx] = []
        self.locks: Dict[int, _LockState] = {}
        self.condvars: Dict[int, List[int]] = {}
        self.channels: Dict[int, _ChannelState] = {}
        self.onces: Dict[int, bool] = {}
        self.statics: Dict[str, int] = {}
        self.stdout: List[str] = []
        self.steps = 0
        self.context_switches = 0
        self.races: List[RaceRecord] = []
        self._next_obj_id = 1
        self._race_log: Dict[int, Dict[int, Tuple[bool, frozenset, int]]] = {}
        # Counts for the §4.1 micro-benchmarks.
        self.bounds_checks = 0
        self.unchecked_accesses = 0
        #: When False, Assert terminators are skipped entirely — the
        #: "unsafe/no-bounds-check" ablation mode.
        self.enable_bounds_checks = True

    # -- object ids ----------------------------------------------------------

    def _new_obj_id(self) -> int:
        obj = self._next_obj_id
        self._next_obj_id += 1
        return obj

    # -- entry ------------------------------------------------------------------

    def run(self, entry: str = "main", args: Optional[List[Any]] = None
            ) -> RunResult:
        body = self.program.functions.get(entry)
        if body is None:
            raise ValueError(f"no function named {entry!r}")
        from repro import obs
        obs.gauge("interp.schedule_seed", self.schedule.seed)
        try:
            with obs.span("interp.run", entry=entry):
                self._init_statics()
                main_thread = self._spawn_thread(body, list(args or []))
                self._scheduler_loop()
        except UBError as exc:
            return self._result("ub", error=exc)
        except RuntimePanic as exc:
            # The main thread unwinds like any other: pending drops run
            # innermost-frame-first.  A drop that itself trips UB during
            # unwinding (double free of a duplicated value, Rc underflow)
            # upgrades the outcome to "ub" — exactly the panic-safety bug
            # class the static side's `panic-safety` detector reports.
            if self.threads:
                try:
                    self._panic_thread(self.threads[0], str(exc))
                except UBError as ub:
                    return self._result("ub", error=ub)
            return self._result("panic", error=exc)
        except DeadlockError as exc:
            return self._result("deadlock", error=exc)
        except InterpError as exc:
            # Engine-level conditions (step limits in nested execution,
            # unsupported constructs) terminate the run without tearing
            # down the caller.
            return self._result("limit", error=exc)
        if self.steps >= self.schedule.max_steps:
            return self._result("limit")
        if main_thread.state is ThreadState.PANICKED:
            return self._result("panic",
                                error=RuntimePanic(main_thread.panic_message))
        return self._result("ok", value=main_thread.result)

    def _result(self, outcome: str, value: Any = None,
                error: Optional[InterpError] = None) -> RunResult:
        from repro import obs
        obs.count("interp.steps", self.steps)
        obs.count("interp.context_switches", self.context_switches)
        obs.count("interp.threads", len(self.threads))
        obs.count("interp.bounds_checks", self.bounds_checks)
        obs.count("interp.unchecked_accesses", self.unchecked_accesses)
        obs.count(f"interp.outcome.{outcome}")
        return RunResult(outcome=outcome, value=value, error=error,
                         stdout=list(self.stdout), steps=self.steps,
                         races=list(self.races),
                         leaked=self.memory.live_count())

    def _init_statics(self) -> None:
        for name in self.program.statics:
            init_key = f"__static_init::{name}"
            alloc = self.memory.allocate(UNINIT, kind="static", label=name)
            self.statics[name] = alloc
            body = self.program.functions.get(init_key)
            if body is None:
                continue
            thread = ThreadCtx(thread_id=-1)
            frame = self._make_frame(body, [])
            thread.frames.append(frame)
            guard = 0
            while thread.frames:
                if thread.state is not ThreadState.RUNNABLE:
                    raise DeadlockError(
                        f"static initialiser for `{name}` blocked "
                        f"({thread.block_reason})")
                self._step(thread)
                guard += 1
                if guard > self.schedule.max_steps:
                    raise InterpError(
                        f"static initialiser for `{name}` exceeded the "
                        f"step limit")
            self.memory.get(alloc).value = thread.result

    def _spawn_thread(self, body: Body, args: List[Any]) -> ThreadCtx:
        thread = ThreadCtx(thread_id=len(self.threads),
                           spawned_at_step=self.steps)
        thread.frames.append(self._make_frame(body, args))
        self.threads.append(thread)
        return thread

    def _panic_thread(self, thread: ThreadCtx, message: str) -> None:
        """A thread panicked: poison its locks, run pending drops on the
        unwind path (innermost frame first), free its stack, wake
        joiners.  A ``UBError`` raised by an unwind drop propagates —
        undefined behaviour discovered *during* unwinding is the
        panic-safety bug class itself, and outranks the panic outcome."""
        thread.state = ThreadState.PANICKED
        thread.panic_message = message
        for lock_id, mode in list(thread.held_locks):
            state = self._lock_state(lock_id)
            state.poisoned = True
            self._release_lock(thread, lock_id, mode)
        try:
            for frame in reversed(thread.frames):
                self._unwind_frame_drops(thread, frame)
        finally:
            for frame in thread.frames:
                for alloc_id in frame.locals_alloc.values():
                    alloc = self.memory._allocations.get(alloc_id)
                    if alloc is not None and alloc.kind == "stack":
                        self.memory.mark_dead_stack(alloc_id)
            thread.frames.clear()
        for other in self.threads:
            if other.state is ThreadState.BLOCKED and \
                    other.block_reason == "join" and \
                    other.block_object == thread.thread_id:
                other.state = ThreadState.RUNNABLE
                other.block_reason = ""
                other.block_object = None

    def _unwind_frame_drops(self, thread: ThreadCtx, frame: Frame) -> None:
        """Run one frame's pending drop obligations during unwinding.

        Uses the SAME :func:`repro.analysis.panic.unwind_drop_order` the
        static landing pads are synthesised from — the one obligation
        computation both sides share — filtered dynamically: ``UNINIT``
        and ``MOVED`` slots, dead storage and static-aliased locals are
        skipped (the runtime equivalent of the pads' maybe-init
        filtering).  Dropping a guard releases (already-poisoned) locks
        through the ordinary drop glue."""
        # Imported here, not at module level: repro.mir must finish
        # initialising before repro.analysis (which imports mir.cfg) can.
        from repro.analysis.panic import unwind_drop_order
        for local in unwind_drop_order(frame.body):
            alloc_id = frame.locals_alloc.get(local)
            if alloc_id is None:
                continue
            info = frame.body.locals[local]
            if info.name and info.name.startswith("static:"):
                continue
            alloc = self.memory._allocations.get(alloc_id)
            if alloc is None or alloc.kind != "stack" \
                    or alloc.state is not AllocState.LIVE:
                continue
            value = alloc.value
            if value is UNINIT or value is MOVED:
                continue
            alloc.value = MOVED
            self.drop_value(thread, value)

    def call_closure_sync(self, thread: ThreadCtx, closure: ClosureValue,
                          args: List[Any]) -> Any:
        """Execute a closure to completion on the current thread (used by
        ``map``/``call_once``-style builtins)."""
        body = self.program.functions.get(closure.key)
        if body is None:
            return None
        frame = self._make_frame(body, list(args) + list(closure.captures))
        frame.dest_place = None
        frame.return_block = None
        depth = len(thread.frames)
        thread.frames.append(frame)
        guard_steps = 0
        while len(thread.frames) > depth:
            self._step(thread)
            guard_steps += 1
            self.steps += 1
            if guard_steps > self.schedule.max_steps:
                raise InterpError("closure ran past the step limit")
        return thread.last_return

    def _make_frame(self, body: Body, args: List[Any]) -> Frame:
        frame = Frame(body=body)
        for local in body.locals:
            label = f"{body.key}::_{local.index}"
            if local.name and local.name.startswith("static:"):
                name = local.name[7:]
                frame.locals_alloc[local.index] = self.statics.get(
                    name, self.memory.allocate(UNINIT, "static", name))
                continue
            frame.locals_alloc[local.index] = self.memory.allocate(
                UNINIT, kind="stack", label=label)
        for i, arg in enumerate(args):
            if 1 + i < len(body.locals):
                self._write_local(frame, 1 + i, arg)
        return frame

    # -- scheduler -----------------------------------------------------------------

    def _scheduler_loop(self) -> None:
        round_index = 0
        current = 0
        last_tid: Optional[int] = None
        while True:
            alive = [t for t in self.threads if t.alive]
            if not alive:
                return
            runnable = [t for t in alive if t.state is ThreadState.RUNNABLE]
            if not runnable:
                waiting = {t.thread_id: t.block_reason for t in alive}
                raise DeadlockError(
                    "all threads are blocked: " +
                    "; ".join(f"thread {tid} waiting on {why}"
                              for tid, why in waiting.items()),
                    waiting)
            thread = runnable[(current + self.schedule.seed) % len(runnable)]
            if last_tid is not None and thread.thread_id != last_tid:
                self.context_switches += 1
            last_tid = thread.thread_id
            quantum = self.schedule.quantum_for(round_index)
            for _ in range(quantum):
                if thread.state is not ThreadState.RUNNABLE:
                    break
                if not thread.frames:
                    break
                try:
                    self._step(thread)
                except RuntimePanic as exc:
                    if thread.thread_id == 0:
                        raise
                    self._panic_thread(thread, str(exc))
                self.steps += 1
                if self.steps >= self.schedule.max_steps:
                    return
            round_index += 1
            current += 1

    # -- frame/locals helpers ----------------------------------------------------------

    def _local_alloc(self, frame: Frame, local: int) -> int:
        return frame.locals_alloc[local]

    def _read_local(self, frame: Frame, local: int) -> Any:
        alloc = self.memory.check_live(self._local_alloc(frame, local),
                                       f"local _{local}")
        return alloc.value

    def _write_local(self, frame: Frame, local: int, value: Any) -> None:
        alloc = self.memory.get(self._local_alloc(frame, local))
        if alloc.state is not AllocState.LIVE:
            alloc.state = AllocState.LIVE
        alloc.value = value

    # -- place evaluation -----------------------------------------------------------------

    def eval_place(self, thread: ThreadCtx, place: Place
                   ) -> Tuple[int, Tuple]:
        """Resolve a place to ``(alloc_id, path)``."""
        frame = thread.frame
        alloc_id = self._local_alloc(frame, place.local)
        path: Tuple = ()
        for proj in place.projection:
            value = self._read_path(alloc_id, path, allow_uninit=False,
                                    what=f"place {place}")
            if proj.kind == "deref":
                alloc_id, path = self._deref_value(thread, value, place)
            elif proj.kind == "field":
                # Fallback autoderef (the builder inserts explicit derefs
                # when types are known; unknown types land here).
                hops = 0
                while isinstance(value, (Pointer, BoxValue, RcValue,
                                         GuardValue)) and hops < 4:
                    hops += 1
                    alloc_id, path = self._deref_value(thread, value, place)
                    value = self._read_path(alloc_id, path,
                                            allow_uninit=False,
                                            what=f"place {place}")
                element = self._field_key(value, proj.field_index,
                                          proj.field_name)
                path = path + (element,)
            elif proj.kind == "index":
                if proj.index_local is not None:
                    index = self._read_local(frame, proj.index_local)
                else:
                    index = proj.index_const
                hops = 0
                while isinstance(value, (Pointer, BoxValue, RcValue,
                                         GuardValue)) and hops < 4:
                    hops += 1
                    alloc_id, path = self._deref_value(thread, value, place)
                    value = self._read_path(alloc_id, path,
                                            allow_uninit=False,
                                            what=f"place {place}")
                if isinstance(value, VecValue):
                    self.memory.check_live(value.buffer, "Vec buffer")
                    alloc_id, path = value.buffer, (index,)
                elif isinstance(value, MapValue):
                    alloc_id, path = value.buffer, (index,)
                elif isinstance(value, StringValue):
                    path = path + (index,)
                else:
                    path = path + (index,)
        return alloc_id, path

    def _field_key(self, value: Any, index: int, name: str):
        if isinstance(value, StructValue):
            if name:
                idx = value.index_of(name)
                if idx is not None:
                    return idx
            return index
        return index

    def _deref_value(self, thread: ThreadCtx, value: Any,
                     place: Place) -> Tuple[int, Tuple]:
        fn_key = thread.frame.body.key if thread.frames else ""
        if isinstance(value, Pointer):
            if value.null:
                raise UBError(UBKind.NULL_DEREF,
                              "null pointer dereference", fn_key=fn_key)
            self.memory.check_live(value.alloc_id, "pointer target")
            return value.alloc_id, value.path
        if isinstance(value, BoxValue):
            self.memory.check_live(value.target, "Box contents")
            return value.target, ()
        if isinstance(value, RcValue):
            self.memory.check_live(value.target, "Rc/Arc contents")
            return value.target, ()
        if isinstance(value, GuardValue):
            if value.released:
                raise UBError(UBKind.USE_AFTER_FREE,
                              "lock guard used after release", fn_key=fn_key)
            self.memory.check_live(value.inner, "guarded value")
            return value.inner, ()
        if isinstance(value, VecValue):
            self.memory.check_live(value.buffer, "Vec buffer")
            return value.buffer, ()
        if value is UNINIT:
            raise UBError(UBKind.UNINIT_READ,
                          f"dereference of uninitialised pointer `{place}`",
                          fn_key=fn_key)
        raise UBError(UBKind.NULL_DEREF,
                      f"cannot dereference value {value!r}", fn_key=fn_key)

    # -- memory tree access ---------------------------------------------------------------------

    def _read_path(self, alloc_id: int, path: Tuple, allow_uninit: bool,
                   what: str = "memory") -> Any:
        alloc = self.memory.check_live(alloc_id, what)
        value = alloc.value
        for element in path:
            value = self._index_value(value, element, what)
        if value is UNINIT and not allow_uninit:
            raise UBError(UBKind.UNINIT_READ,
                          f"read of uninitialised {what}")
        if value is MOVED and not allow_uninit:
            raise UBError(UBKind.UNINIT_READ,
                          f"read of moved-out {what}")
        return value

    def _index_value(self, value: Any, element, what: str) -> Any:
        if isinstance(value, StructValue):
            if isinstance(element, int) and element < len(value.fields):
                return value.fields[element]
            raise UBError(UBKind.OUT_OF_BOUNDS,
                          f"field {element} out of range in {what}")
        if isinstance(value, EnumValue):
            if isinstance(element, int) and element < len(value.payload):
                return value.payload[element]
            raise UBError(UBKind.OUT_OF_BOUNDS,
                          f"payload {element} out of range in {what}")
        if isinstance(value, TupleValue):
            if isinstance(element, int) and element < len(value.elements):
                return value.elements[element]
            raise UBError(UBKind.OUT_OF_BOUNDS,
                          f"tuple index {element} out of range")
        if isinstance(value, list):
            if isinstance(element, int) and 0 <= element < len(value):
                return value[element]
            raise UBError(UBKind.OUT_OF_BOUNDS,
                          f"index {element} out of bounds (len {len(value)})")
        if isinstance(value, dict):
            if element in value:
                return value[element]
            raise RuntimePanic(f"key {element!r} not found")
        if isinstance(value, StringValue):
            text = value.text
            if isinstance(element, int) and 0 <= element < len(text):
                return text[element]
            raise UBError(UBKind.OUT_OF_BOUNDS, "string index out of bounds")
        if isinstance(value, VecValue):
            # Auto-step through the handle into its buffer.
            buffer = self.memory.check_live(value.buffer, what).value
            return self._index_value(buffer, element, what)
        if value is UNINIT:
            raise UBError(UBKind.UNINIT_READ,
                          f"projection through uninitialised {what}")
        raise UBError(UBKind.OUT_OF_BOUNDS,
                      f"cannot project {element!r} into {value!r}")

    def _write_path(self, alloc_id: int, path: Tuple, new_value: Any,
                    what: str = "memory") -> Any:
        """Write, returning the overwritten value."""
        alloc = self.memory.check_live(alloc_id, what)
        if not path:
            old = alloc.value
            alloc.value = new_value
            return old
        container = alloc.value
        for element in path[:-1]:
            container = self._index_value(container, element, what)
        last = path[-1]
        if isinstance(container, VecValue):
            container = self.memory.check_live(container.buffer, what).value
        if isinstance(container, StructValue):
            old = container.fields[last] if last < len(container.fields) \
                else UNINIT
            while len(container.fields) <= last:
                container.fields.append(UNINIT)
            container.fields[last] = new_value
            return old
        if isinstance(container, EnumValue):
            while len(container.payload) <= last:
                container.payload.append(UNINIT)
            old = container.payload[last]
            container.payload[last] = new_value
            return old
        if isinstance(container, TupleValue):
            while len(container.elements) <= last:
                container.elements.append(UNINIT)
            old = container.elements[last]
            container.elements[last] = new_value
            return old
        if isinstance(container, list):
            if not (isinstance(last, int) and 0 <= last < len(container)):
                raise UBError(UBKind.OUT_OF_BOUNDS,
                              f"write index {last} out of bounds "
                              f"(len {len(container)})")
            old = container[last]
            container[last] = new_value
            return old
        if isinstance(container, dict):
            old = container.get(last, UNINIT)
            container[last] = new_value
            return old
        raise UBError(UBKind.OUT_OF_BOUNDS,
                      f"cannot write through {container!r}")

    # -- operand / rvalue evaluation --------------------------------------------------------------

    def eval_operand(self, thread: ThreadCtx, operand: Operand) -> Any:
        if operand.is_const:
            value = operand.constant.value
            if isinstance(value, str):
                return StringValue(value)
            return value
        alloc_id, path = self.eval_place(thread, operand.place)
        value = self._read_path(alloc_id, path, allow_uninit=False,
                                what=str(operand.place))
        self._record_access(thread, alloc_id, is_write=False)
        if operand.is_move:
            self._write_path(alloc_id, path, MOVED)
            return value
        return deep_copy(value)

    def eval_rvalue(self, thread: ThreadCtx, rvalue: Rvalue, span) -> Any:
        kind = rvalue.kind
        if kind is RvalueKind.USE:
            return self.eval_operand(thread, rvalue.operands[0])
        if kind in (RvalueKind.REF, RvalueKind.ADDRESS_OF):
            alloc_id, path = self.eval_place(thread, rvalue.place)
            return Pointer(alloc_id, path, rvalue.mutable)
        if kind is RvalueKind.BINARY:
            left = self.eval_operand(thread, rvalue.operands[0])
            right = self.eval_operand(thread, rvalue.operands[1])
            return self._binary(rvalue.bin_op, left, right, span,
                                thread.frame.body.key)
        if kind is RvalueKind.UNARY:
            value = self.eval_operand(thread, rvalue.operands[0])
            if rvalue.un_op is UnOpKind.NEG:
                return -value
            if isinstance(value, bool):
                return not value
            return ~value
        if kind is RvalueKind.CAST:
            value = self.eval_operand(thread, rvalue.operands[0])
            if rvalue.cast_kind is CastKind.INT_TO_RAW:
                if value == 0:
                    return Pointer.null_ptr()
                return value
            if rvalue.cast_kind is CastKind.NUMERIC and \
                    isinstance(value, (int, float, str)):
                target = rvalue.cast_ty
                if target.kind is TyKind.INT:
                    return int(value)
                if target.kind is TyKind.FLOAT:
                    return float(value)
            return value
        if kind is RvalueKind.AGGREGATE:
            return self._aggregate(thread, rvalue)
        if kind is RvalueKind.LEN:
            alloc_id, path = self.eval_place(thread, rvalue.place)
            value = self._read_path(alloc_id, path, allow_uninit=False,
                                    what="len operand")
            return self._len_of(value)
        if kind is RvalueKind.DISCRIMINANT:
            alloc_id, path = self.eval_place(thread, rvalue.place)
            value = self._read_path(alloc_id, path, allow_uninit=False,
                                    what="discriminant operand")
            if isinstance(value, EnumValue):
                return value.variant_index
            if isinstance(value, bool):
                return 1 if value else 0
            if isinstance(value, int):
                return value
            return 0
        if kind is RvalueKind.REPEAT:
            element = self.eval_operand(thread, rvalue.operands[0])
            count = self.eval_operand(thread, rvalue.operands[1])
            return [deep_copy(element) for _ in range(int(count))]
        raise InterpError(f"cannot evaluate rvalue {rvalue}")

    def _len_of(self, value: Any) -> int:
        if isinstance(value, VecValue):
            return len(self.memory.check_live(value.buffer, "Vec").value)
        if isinstance(value, MapValue):
            return len(self.memory.check_live(value.buffer, "Map").value)
        if isinstance(value, list):
            return len(value)
        if isinstance(value, StringValue):
            return len(value.text)
        if isinstance(value, Pointer):
            target = self._read_path(value.alloc_id, value.path, True)
            return self._len_of(target)
        if isinstance(value, RangeValue):
            return max(0, (value.hi or 0) - value.lo)
        if isinstance(value, (StructValue, EnumValue)):
            return 0
        return 0

    def _binary(self, op: BinOpKind, left: Any, right: Any, span,
                fn_key: str) -> Any:
        if isinstance(left, StringValue):
            left = left.text
        if isinstance(right, StringValue):
            right = right.text
        if op is BinOpKind.ADD:
            if isinstance(left, str):
                return StringValue(left + str(right))
            return left + right
        if op is BinOpKind.SUB:
            return left - right
        if op is BinOpKind.MUL:
            return left * right
        if op is BinOpKind.DIV:
            if right == 0:
                raise RuntimePanic("attempt to divide by zero", span, fn_key)
            return left // right if isinstance(left, int) else left / right
        if op is BinOpKind.REM:
            if right == 0:
                raise RuntimePanic("attempt to calculate the remainder with "
                                   "a divisor of zero", span, fn_key)
            return left % right
        if op is BinOpKind.BIT_AND:
            return left & right if isinstance(left, int) else (left and right)
        if op is BinOpKind.BIT_OR:
            return left | right if isinstance(left, int) else (left or right)
        if op is BinOpKind.BIT_XOR:
            return left ^ right
        if op is BinOpKind.SHL:
            return left << right
        if op is BinOpKind.SHR:
            return left >> right
        if op is BinOpKind.EQ:
            return self._values_equal(left, right)
        if op is BinOpKind.NE:
            return not self._values_equal(left, right)
        if op is BinOpKind.LT:
            return left < right
        if op is BinOpKind.LE:
            return left <= right
        if op is BinOpKind.GT:
            return left > right
        if op is BinOpKind.GE:
            return left >= right
        raise InterpError(f"unsupported binary op {op}")

    @staticmethod
    def _values_equal(left: Any, right: Any) -> bool:
        if isinstance(left, EnumValue) and isinstance(right, EnumValue):
            return (left.variant_index == right.variant_index and
                    left.payload == right.payload)
        try:
            return bool(left == right)
        except Exception:
            return left is right

    def _aggregate(self, thread: ThreadCtx, rvalue: Rvalue) -> Any:
        values = [self.eval_operand(thread, op) for op in rvalue.operands]
        kind = rvalue.aggregate_kind
        if kind is AggregateKind.TUPLE:
            return TupleValue(values)
        if kind is AggregateKind.ARRAY:
            return values
        if kind is AggregateKind.CLOSURE:
            return ClosureValue(rvalue.aggregate_name, values)
        if kind is AggregateKind.ENUM:
            return EnumValue(rvalue.variant_index or 0, values,
                             rvalue.aggregate_name)
        if kind is AggregateKind.STRUCT:
            name = rvalue.aggregate_name
            if name == "Range":
                lo = values[0] if values else 0
                hi = values[1] if len(values) > 1 else None
                inclusive = bool(values[2]) if len(values) > 2 else False
                return RangeValue(int(lo) if lo is not None else 0,
                                  int(hi) if isinstance(hi, int) else None,
                                  inclusive)
            table = self.program.item_table
            field_names: List[str] = []
            if table is not None:
                info = table.structs.get(name)
                if info is not None:
                    field_names = [f for f, _ in info.fields]
            return StructValue(name, values, field_names)
        raise InterpError(f"unsupported aggregate {kind}")

    # -- drop glue ---------------------------------------------------------------------------------

    def drop_value(self, thread: ThreadCtx, value: Any) -> None:
        if value is UNINIT or value is MOVED or value is None:
            return
        if isinstance(value, BoxValue):
            alloc = self.memory.get(value.target)
            inner = alloc.value
            self.memory.free(value.target, "Box allocation")
            self.drop_value(thread, inner)
            return
        if isinstance(value, VecValue):
            alloc = self.memory.get(value.buffer)
            elements = list(alloc.value) if isinstance(alloc.value, list) \
                else []
            self.memory.free(value.buffer, "Vec buffer")
            for element in elements:
                self.drop_value(thread, element)
            return
        if isinstance(value, MapValue):
            alloc = self.memory.get(value.buffer)
            entries = list(alloc.value.values()) \
                if isinstance(alloc.value, dict) else []
            self.memory.free(value.buffer, "Map buffer")
            for element in entries:
                self.drop_value(thread, element)
            return
        if isinstance(value, RcValue):
            if value.weak:
                return
            value.counter[0] -= 1
            if value.counter[0] == 0:
                inner = self.memory.get(value.target).value
                self.memory.free(value.target, "Rc/Arc allocation")
                self.drop_value(thread, inner)
            elif value.counter[0] < 0:
                raise UBError(UBKind.DOUBLE_FREE,
                              "Rc/Arc reference count underflow "
                              "(ownership was duplicated)")
            return
        if isinstance(value, MutexValue):
            inner = self.memory.get(value.inner).value
            self.memory.free(value.inner, "Mutex allocation")
            self.drop_value(thread, inner)
            return
        if isinstance(value, GuardValue):
            self._release_guard(thread, value)
            return
        if isinstance(value, ChannelEnd):
            channel = self.channels.get(value.channel_id)
            if channel is not None:
                if value.is_sender:
                    channel.senders -= 1
                    self._wake_channel_waiters(value.channel_id)
                else:
                    channel.receivers -= 1
            return
        if isinstance(value, StructValue):
            for element in value.fields:
                self.drop_value(thread, element)
            return
        if isinstance(value, EnumValue):
            for element in value.payload:
                self.drop_value(thread, element)
            return
        if isinstance(value, TupleValue):
            for element in value.elements:
                self.drop_value(thread, element)
            return
        if isinstance(value, list):
            for element in value:
                self.drop_value(thread, element)
            return
        if isinstance(value, ClosureValue):
            for element in value.captures:
                self.drop_value(thread, element)
            return
        # Scalars, pointers, strings, atomics, handles without drop glue.

    # -- lock runtime ----------------------------------------------------------------------------------

    def _lock_state(self, lock_id: int, kind: str = "mutex") -> _LockState:
        state = self.locks.get(lock_id)
        if state is None:
            state = _LockState(kind=kind)
            self.locks[lock_id] = state
        return state

    def _try_acquire(self, thread: ThreadCtx, lock_id: int,
                     mode: str) -> bool:
        state = self._lock_state(lock_id)
        tid = thread.thread_id
        if mode == "write":
            if state.writer is None and not state.readers:
                state.writer = tid
                thread.held_locks.append((lock_id, "write"))
                return True
            if state.writer == tid:
                raise DeadlockError(
                    f"thread {tid} acquires a lock it already holds "
                    f"(double lock)", {tid: f"lock {lock_id}"})
            if tid in state.readers:
                raise DeadlockError(
                    f"thread {tid} upgrades read→write on a lock it holds "
                    f"(read/write double lock)", {tid: f"lock {lock_id}"})
            return False
        # read mode
        if state.writer is None:
            state.readers[tid] = state.readers.get(tid, 0) + 1
            thread.held_locks.append((lock_id, "read"))
            return True
        if state.writer == tid:
            raise DeadlockError(
                f"thread {tid} acquires read lock while holding the write "
                f"lock (double lock)", {tid: f"lock {lock_id}"})
        return False

    def _release_lock(self, thread: ThreadCtx, lock_id: int,
                      mode: str, tid: Optional[int] = None) -> None:
        state = self._lock_state(lock_id)
        owner = thread.thread_id if tid is None else tid
        if mode == "write":
            if state.writer == owner:
                state.writer = None
        else:
            count = state.readers.get(owner, 0)
            if count <= 1:
                state.readers.pop(owner, None)
            else:
                state.readers[owner] = count - 1
        try:
            thread.held_locks.remove((lock_id, mode))
        except ValueError:
            pass
        self._wake_lock_waiters(lock_id)

    def _release_guard(self, thread: ThreadCtx, guard: GuardValue) -> None:
        if guard.released:
            return
        guard.released = True
        self._release_lock(thread, guard.lock_id, guard.mode)

    def _wake_lock_waiters(self, lock_id: int) -> None:
        for other in self.threads:
            if other.state is ThreadState.BLOCKED and \
                    other.block_reason.startswith("lock") and \
                    other.block_object == lock_id:
                other.state = ThreadState.RUNNABLE
                other.block_reason = ""
                other.block_object = None

    def _wake_channel_waiters(self, channel_id: int) -> None:
        for other in self.threads:
            if other.state is ThreadState.BLOCKED and \
                    other.block_reason.startswith("channel") and \
                    other.block_object == channel_id:
                other.state = ThreadState.RUNNABLE
                other.block_reason = ""
                other.block_object = None

    def _block(self, thread: ThreadCtx, reason: str,
               obj: Optional[int]) -> None:
        thread.state = ThreadState.BLOCKED
        thread.block_reason = reason
        thread.block_object = obj

    # -- race detection (approximate) --------------------------------------------------------------------

    def _record_access(self, thread: ThreadCtx, alloc_id: int,
                       is_write: bool) -> None:
        if not self.detect_races:
            return
        alloc = self.memory._allocations.get(alloc_id)
        if alloc is None or alloc.kind == "stack":
            return
        tid = thread.thread_id
        locks = frozenset(l for l, _m in thread.held_locks)
        log = self._race_log.setdefault(alloc_id, {})
        for other_tid, (other_write, other_locks, other_step) in log.items():
            if other_tid == tid:
                continue
            if not (is_write or other_write):
                continue
            if locks & other_locks:
                continue
            # Approximate happens-before: accesses from before this thread
            # was spawned cannot race with it.
            if other_step < thread.spawned_at_step:
                continue
            self.races.append(RaceRecord(
                alloc_id=alloc_id, first_thread=other_tid,
                second_thread=tid,
                message=f"unsynchronised {'write' if is_write else 'read'} "
                        f"by thread {tid} races with "
                        f"{'write' if other_write else 'read'} by thread "
                        f"{other_tid} on allocation "
                        f"{alloc.label or alloc_id}"))
        log[tid] = (is_write, locks, self.steps)

    # -- the step function -------------------------------------------------------------------------------

    def _step(self, thread: ThreadCtx) -> None:
        frame = thread.frame
        block = frame.body.blocks[frame.block]
        if frame.stmt_index < len(block.statements):
            stmt = block.statements[frame.stmt_index]
            frame.stmt_index += 1
            try:
                self._exec_statement(thread, stmt)
            except (UBError, RuntimePanic) as exc:
                self._attach_context(exc, stmt.span, frame.body.key)
                raise
            return
        term = block.terminator
        if term is None:
            self._return_from_frame(thread, None)
            return
        try:
            self._exec_terminator(thread, term)
        except (UBError, RuntimePanic) as exc:
            self._attach_context(exc, term.span, frame.body.key)
            raise

    @staticmethod
    def _droppable(value: Any) -> bool:
        return isinstance(value, (StructValue, EnumValue, TupleValue,
                                  VecValue, BoxValue, RcValue, MutexValue,
                                  MapValue, StringValue, GuardValue))

    @staticmethod
    def _attach_context(exc, span, fn_key: str) -> None:
        if getattr(exc, "span", None) is None:
            exc.span = span
        if not getattr(exc, "fn_key", ""):
            exc.fn_key = fn_key

    def _exec_statement(self, thread: ThreadCtx, stmt: Statement) -> None:
        frame = thread.frame
        if stmt.kind is StatementKind.ASSIGN:
            value = self.eval_rvalue(thread, stmt.rvalue, stmt.span)
            alloc_id, path = self.eval_place(thread, stmt.place)
            self._record_access(thread, alloc_id, is_write=True)
            # The Figure 6 invalid free: `*raw = value` runs drop glue on
            # the old contents; if the allocation was never initialised,
            # that frees garbage.
            if stmt.place.has_deref and self._droppable(value):
                base_ty = frame.body.local_ty(stmt.place.local)
                if base_ty.is_raw_ptr:
                    current = self._read_path(alloc_id, path,
                                              allow_uninit=True,
                                              what=str(stmt.place))
                    if current is UNINIT:
                        raise UBError(
                            UBKind.INVALID_FREE,
                            "assignment through raw pointer drops the old "
                            "value, but the memory is uninitialised "
                            "(use ptr::write)", stmt.span,
                            frame.body.key)
            old = self._write_path(alloc_id, path, value,
                                   what=str(stmt.place))
            # Rust semantics: assignment drops the overwritten value.  The
            # Figure 6 invalid-free arises exactly here when `old` is
            # garbage from uninitialised memory — our UNINIT sentinel makes
            # that a silent no-op unless the target is a raw allocation
            # that was never initialised, which we flag when asked to.
            if old is not UNINIT and old is not MOVED and old != value \
                    and stmt.place.projection:
                self.drop_value(thread, old)
            elif old is not UNINIT and old is not MOVED \
                    and stmt.place.is_local:
                pass   # whole-local overwrite: previous value handled by moves
            return
        if stmt.kind is StatementKind.STORAGE_LIVE:
            self.memory.revive_stack(frame.locals_alloc[stmt.local])
            return
        if stmt.kind is StatementKind.STORAGE_DEAD:
            self.memory.mark_dead_stack(frame.locals_alloc[stmt.local])
            return
        if stmt.kind is StatementKind.DROP:
            alloc_id, path = self.eval_place(thread, stmt.place)
            value = self._read_path(alloc_id, path, allow_uninit=True,
                                    what=str(stmt.place))
            if value is UNINIT or value is MOVED:
                return
            self._write_path(alloc_id, path, MOVED)
            self.drop_value(thread, value)
            return
        # NOP / SET_DISCRIMINANT: nothing.

    def _exec_terminator(self, thread: ThreadCtx, term: Terminator) -> None:
        frame = thread.frame
        if term.kind is TerminatorKind.GOTO:
            frame.block = term.target
            frame.stmt_index = 0
            return
        if term.kind is TerminatorKind.SWITCH_INT:
            value = self.eval_operand(thread, term.discr)
            if isinstance(value, bool):
                value = 1 if value else 0
            target = term.otherwise
            for case, bb in term.switch_targets:
                if value == case:
                    target = bb
                    break
            frame.block = target
            frame.stmt_index = 0
            return
        if term.kind is TerminatorKind.ASSERT:
            if self.enable_bounds_checks:
                self.bounds_checks += 1
                cond = self.eval_operand(thread, term.cond)
                if bool(cond) != term.expected:
                    raise RuntimePanic(term.msg or "assertion failed",
                                       term.span, frame.body.key)
            frame.block = term.target
            frame.stmt_index = 0
            return
        if term.kind is TerminatorKind.RETURN:
            value = self._read_path(frame.locals_alloc[0], (),
                                    allow_uninit=True, what="return value")
            self._return_from_frame(thread, value)
            return
        if term.kind is TerminatorKind.CALL:
            self._exec_call(thread, term)
            return
        if term.kind is TerminatorKind.UNREACHABLE:
            raise RuntimePanic("entered unreachable code", term.span,
                               frame.body.key)
        if term.kind is TerminatorKind.ABORT:
            thread.state = ThreadState.PANICKED
            thread.panic_message = "abort"
            return
        if term.kind is TerminatorKind.RESUME:
            # Landing pads exist for the static analyses; the interpreter
            # unwinds via exceptions and never jumps to them.  Reaching
            # one means unwinding continues.
            raise RuntimePanic("resumed unwinding", term.span,
                               frame.body.key)
        raise InterpError(f"unsupported terminator {term.kind}")

    def _return_from_frame(self, thread: ThreadCtx, value: Any) -> None:
        thread.last_return = value
        frame = thread.frames.pop()
        # Free remaining stack slots of the frame (dangling pointers into
        # them become detectable).
        for local, alloc_id in frame.locals_alloc.items():
            alloc = self.memory._allocations.get(alloc_id)
            if alloc is not None and alloc.kind == "stack":
                self.memory.mark_dead_stack(alloc_id)
        if not thread.frames:
            thread.result = value
            thread.state = ThreadState.DONE
            # Wake joiners.
            for other in self.threads:
                if other.state is ThreadState.BLOCKED and \
                        other.block_reason == "join" and \
                        other.block_object == thread.thread_id:
                    other.state = ThreadState.RUNNABLE
                    other.block_reason = ""
                    other.block_object = None
            return
        caller = thread.frame
        if frame.dest_place is not None:
            alloc_id, path = self.eval_place(thread, frame.dest_place)
            self._write_path(alloc_id, path, value, what="call destination")
        if frame.return_block is not None:
            caller.block = frame.return_block
            caller.stmt_index = 0

    # -- calls ----------------------------------------------------------------------------------------------

    def _exec_call(self, thread: ThreadCtx, term: Terminator) -> None:
        frame = thread.frame
        func = term.func
        if func is None:
            frame.block = term.target
            frame.stmt_index = 0
            return

        if func.kind in (FuncKind.USER, FuncKind.CLOSURE):
            callee = self.program.functions.get(func.user_fn or func.name)
            if callee is None:
                self._write_call_result(thread, term, None)
                return
            args = [self.eval_operand(thread, a) for a in term.args]
            if func.kind is FuncKind.CLOSURE and args and \
                    isinstance(args[0], ClosureValue):
                closure = args[0]
                args = args[1:] + list(closure.captures)
            new_frame = self._make_frame(callee, args)
            new_frame.dest_place = term.destination
            new_frame.return_block = term.target
            thread.frames.append(new_frame)
            return

        if func.kind is FuncKind.UNKNOWN:
            for a in term.args:
                self.eval_operand(thread, a)
            self._write_call_result(thread, term, None)
            return

        # Builtin.
        result = self._call_builtin(thread, term, func.builtin_op,
                                    [a for a in term.args])
        if result is not _SUSPENDED:
            self._write_call_result(thread, term, result)

    def _write_call_result(self, thread: ThreadCtx, term: Terminator,
                           value: Any) -> None:
        frame = thread.frame
        if term.destination is not None:
            alloc_id, path = self.eval_place(thread, term.destination)
            self._write_path(alloc_id, path, value, what="call destination")
        frame.block = term.target
        frame.stmt_index = 0

    # -- builtin semantics --------------------------------------------------------------------------------------

    def _deref_receiver(self, thread: ThreadCtx, value: Any,
                        what: str = "receiver") -> Tuple[int, Tuple]:
        """Builtin receivers arrive as Pointers to the receiver place."""
        if isinstance(value, Pointer):
            self.memory.check_live(value.alloc_id, what)
            return value.alloc_id, value.path
        raise InterpError(f"builtin receiver is not a pointer: {value!r}")

    def _receiver_value(self, thread: ThreadCtx, value: Any,
                        what: str = "receiver") -> Any:
        alloc_id, path = self._deref_receiver(thread, value, what)
        out = self._read_path(alloc_id, path, allow_uninit=False, what=what)
        # Transparently unwrap handles that builtins operate *through*.
        hops = 0
        while isinstance(out, (BoxValue, RcValue, GuardValue, Pointer)) \
                and hops < 8:
            hops += 1
            if isinstance(out, Pointer):
                if out.null:
                    raise UBError(UBKind.NULL_DEREF,
                                  "null pointer method receiver")
                out = self._read_path(out.alloc_id, out.path, False, what)
            elif isinstance(out, BoxValue):
                out = self._read_path(out.target, (), False, what)
            elif isinstance(out, RcValue):
                out = self._read_path(out.target, (), False, what)
            elif isinstance(out, GuardValue):
                if out.released:
                    raise UBError(UBKind.USE_AFTER_FREE,
                                  "guard used after release")
                out = self._read_path(out.inner, (), False, what)
        return out

    def _call_builtin(self, thread: ThreadCtx, term: Terminator,
                      op: BuiltinOp, arg_ops: List[Operand]) -> Any:
        from repro.mir.builtins_impl import dispatch_builtin
        return dispatch_builtin(self, thread, term, op, arg_ops)


#: Sentinel returned by builtins that blocked the thread (no result yet).
_SUSPENDED = object()


def run_program(program: Program, entry: str = "main",
                schedule: Optional[ScheduleConfig] = None,
                detect_races: bool = False) -> RunResult:
    """Convenience wrapper: interpret ``program`` from ``entry``."""
    interp = Interpreter(program, schedule=schedule,
                         detect_races=detect_races)
    return interp.run(entry)


def explore_schedules(program: Program, entry: str = "main",
                      seeds: Optional[List[int]] = None,
                      quantum: int = 3,
                      max_steps: int = 400_000) -> List[RunResult]:
    """Run the program under several deterministic interleavings and
    collect every distinct outcome — the paper's dynamic detectors "rely
    on user-provided inputs that can trigger" the bug; varying the
    schedule is our equivalent for concurrency bugs."""
    results = []
    for seed in seeds if seeds is not None else range(8):
        config = ScheduleConfig(quantum=quantum, seed=seed,
                                max_steps=max_steps)
        results.append(run_program(program, entry, schedule=config))
    return results
