"""MIR: the mid-level intermediate representation.

Our MIR mirrors rustc's: each function body is a control-flow graph of
basic blocks whose statements include explicit ``StorageLive`` /
``StorageDead`` markers and ``Drop`` events, with ownership moves visible
as ``Move`` operands.  This is exactly the representation the paper's
detectors consume ("our detector maintains the state of each variable by
monitoring when MIR calls StorageLive or StorageDead", §7.1).

One deliberate simplification versus rustc: ``Drop`` is a *statement*, not
a terminator, which keeps block counts small without changing the event
order any analysis observes.  This deviation is documented in DESIGN.md.
"""

from repro.mir.nodes import (
    AggregateKind, BasicBlock, BinOpKind, Body, CastKind, Constant, Local,
    Operand, Place, Program, ProjectionElem, Rvalue, RvalueKind, Statement,
    StatementKind, Terminator, TerminatorKind, UnOpKind,
)
from repro.mir.build import build_program
from repro.mir.interp import (
    Interpreter, RunResult, ScheduleConfig, explore_schedules, run_program,
)
from repro.mir.pretty import pretty_body, pretty_program
from repro.mir.values import (
    DeadlockError, InterpError, RuntimePanic, UBError, UBKind,
)

__all__ = [
    "AggregateKind", "BasicBlock", "BinOpKind", "Body", "CastKind",
    "Constant", "Local", "Operand", "Place", "Program", "ProjectionElem",
    "Rvalue", "RvalueKind", "Statement", "StatementKind", "Terminator",
    "TerminatorKind", "UnOpKind", "build_program", "pretty_body",
    "pretty_program", "Interpreter", "RunResult", "ScheduleConfig",
    "explore_schedules", "run_program", "DeadlockError", "InterpError",
    "RuntimePanic", "UBError", "UBKind",
]
