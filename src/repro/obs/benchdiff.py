"""Benchmark-regression observatory: diff two ``BENCH_*.json`` artifacts.

Every benchmark in this repo writes a JSON artifact (``BENCH_obs.json``,
``BENCH_parallel.json``, …) whose numeric leaves are the floors the perf
PRs optimise against.  This module compares two such artifacts — or two
directories of them — metric by metric:

* payloads are flattened to ``dotted.path → number`` leaves;
* each key is classified by direction rules (regexes): *lower-is-better*
  (wall seconds, bytes, recompute counts), *higher-is-better* (speedups,
  ratios, recall), or neutral (informational counters — never flagged);
* a directed relative change beyond the threshold is a **regression**;
  the opposite direction beyond the threshold is an improvement.

``minirust bench-diff OLD NEW`` prints the table and exits 1 on any
regression (0 with ``--warn`` — the CI mode, where host noise makes hard
gating on timings dishonest but the table in the log is the point).
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: A 10% directed change is the default significance bar — small enough
#: to flag a real 20% regression loudly, large enough to ride over
#: per-run jitter in the sub-millisecond phases.
DEFAULT_THRESHOLD = 0.10

#: The three contract metrics ``bench-diff --warn`` still *enforces*
#: (exit 1): engine-vs-naive-schedule wall ratio (BENCH_summaries),
#: warm-over-cold audit speedup (BENCH_unsafe), and executor pickle
#: bytes (BENCH_parallel).  These are ratios of numbers measured in the
#: same run on the same host, so host noise largely cancels — hard
#: gating on them is honest where gating on raw seconds is not.
DEFAULT_ENFORCE = r"wall_ratio|warm_speedup|pickle_bytes"

#: Ordered ``(regex, direction, threshold-override)`` rules; the first
#: match classifies the metric.  ``None`` threshold means "use the
#: caller's".  Patterns are matched with ``re.search`` against the full
#: dotted key, case-insensitively.
DEFAULT_RULES: Tuple[Tuple[str, str, Optional[float]], ...] = (
    (r"(^|\.)phases\.", "lower", None),          # BENCH_obs phase seconds
    # wall_ratio is engine-wall / baseline-wall: smaller is faster,
    # despite the "ratio" suffix that the generic rule reads as a
    # speedup-style higher-is-better metric.  Its ambient spread on a
    # shared 1-CPU host exceeds the default 10% delta threshold, and
    # the producing benchmarks already enforce an absolute ceiling
    # (their ``max_wall_ratio``), so cross-run drift only matters when
    # it is gross — hence the loose override.
    (r"wall_ratio", "lower", 0.5),
    (r"(speedup|ratio|recall|throughput|hit)", "higher", None),
    (r"(seconds|wall|_s$|bytes|overhead|fraction|computes|iterations"
     r"|pickle|deserialize|evict|corrupt|stale|rss)", "lower", None),
)

#: Identity fields, not metrics: span ids, parent links, and pid/tid
#: lane tags inside an exported span tree differ between any two runs by
#: construction.  They are dropped before comparison — neither compared
#: nor reported as one-sided keys.
IGNORE_PATTERN = r"\.(id|parent|pid|tid)$"


def flatten(payload: object, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a JSON payload as ``{dotted.path: value}``.

    Booleans are not numbers here; list elements key by index.
    """
    out: Dict[str, float] = {}
    if isinstance(payload, bool):
        return out
    if isinstance(payload, (int, float)):
        out[prefix or "value"] = float(payload)
        return out
    if isinstance(payload, dict):
        for key in payload:
            sub = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(payload[key], sub))
        return out
    if isinstance(payload, list):
        for i, item in enumerate(payload):
            sub = f"{prefix}.{i}" if prefix else str(i)
            out.update(flatten(item, sub))
        return out
    return out


def classify(key: str, rules=DEFAULT_RULES) -> Tuple[str, Optional[float]]:
    """``(direction, threshold-override)`` for a metric key; direction is
    ``"lower"`` / ``"higher"`` / ``"neutral"``."""
    for pattern, direction, threshold in rules:
        if re.search(pattern, key, re.IGNORECASE):
            return direction, threshold
    return "neutral", None


@dataclass
class MetricDelta:
    """One compared metric: old vs new and the verdict."""

    file: str
    key: str
    old: float
    new: float
    rel: float                  # (new - old) / |old|; inf when old == 0
    direction: str              # lower | higher | neutral
    status: str                 # ok | regression | improvement | neutral

    def to_dict(self) -> Dict[str, object]:
        return {"file": self.file, "key": self.key, "old": self.old,
                "new": self.new, "rel": self.rel,
                "direction": self.direction, "status": self.status}


@dataclass
class BenchDiffReport:
    """The full comparison: every compared metric plus bookkeeping notes
    (files or keys present on only one side)."""

    deltas: List[MetricDelta] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    threshold: float = DEFAULT_THRESHOLD

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def improvements(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.status == "improvement"]

    @property
    def exit_code(self) -> int:
        return 1 if self.regressions else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "threshold": self.threshold,
            "compared": len(self.deltas),
            "regressions": [d.to_dict() for d in self.regressions],
            "improvements": [d.to_dict() for d in self.improvements],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        lines = [f"bench-diff: {len(self.deltas)} metrics compared "
                 f"(threshold {self.threshold:.0%})"]
        for note in self.notes:
            lines.append(f"  note: {note}")

        def rows(deltas: List[MetricDelta], label: str) -> None:
            if not deltas:
                return
            lines.append(f"-- {label} ({len(deltas)}) --")
            width = max(len(f"{d.file}:{d.key}") for d in deltas)
            for d in sorted(deltas, key=lambda d: -abs(d.rel)):
                rel = "new" if d.rel == float("inf") else f"{d.rel:+.1%}"
                lines.append(
                    f"  {d.file + ':' + d.key:<{width}}  "
                    f"{d.old:.6g} -> {d.new:.6g}  ({rel}, "
                    f"{d.direction}-is-better)")

        rows(self.regressions, "regressions")
        rows(self.improvements, "improvements")
        if not self.regressions and not self.improvements:
            lines.append("no metric moved beyond the threshold")
        return "\n".join(lines)


def diff_payloads(old: object, new: object, *,
                  threshold: float = DEFAULT_THRESHOLD,
                  rules=DEFAULT_RULES, file: str = "",
                  report: Optional[BenchDiffReport] = None
                  ) -> BenchDiffReport:
    """Compare two artifact payloads (parsed JSON) metric by metric."""
    if report is None:
        report = BenchDiffReport(threshold=threshold)
    old_flat = {k: v for k, v in flatten(old).items()
                if not re.search(IGNORE_PATTERN, k)}
    new_flat = {k: v for k, v in flatten(new).items()
                if not re.search(IGNORE_PATTERN, k)}
    for key in sorted(set(old_flat) - set(new_flat)):
        report.notes.append(f"{file}:{key} only in OLD")
    for key in sorted(set(new_flat) - set(old_flat)):
        report.notes.append(f"{file}:{key} only in NEW")
    for key in sorted(set(old_flat) & set(new_flat)):
        a, b = old_flat[key], new_flat[key]
        direction, override = classify(key, rules)
        bar = threshold if override is None else override
        if a == 0.0:
            rel = 0.0 if b == 0.0 else float("inf")
        else:
            rel = (b - a) / abs(a)
        status = "ok"
        if direction == "neutral":
            status = "neutral"
        elif direction == "lower":
            if rel > bar:
                status = "regression"
            elif rel < -bar:
                status = "improvement"
        elif direction == "higher":
            if rel < -bar:
                status = "regression"
            elif rel > bar and rel != float("inf"):
                status = "improvement"
        report.deltas.append(MetricDelta(
            file=file, key=key, old=a, new=b, rel=rel,
            direction=direction, status=status))
    return report


def _load(path: str) -> object:
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def _artifact_names(root: str) -> List[str]:
    return sorted(name for name in os.listdir(root)
                  if re.fullmatch(r"BENCH_\w+\.json", name))


def bench_diff(old_path: str, new_path: str, *,
               threshold: float = DEFAULT_THRESHOLD,
               rules=DEFAULT_RULES) -> BenchDiffReport:
    """Compare two artifact files, or two directories of ``BENCH_*.json``
    artifacts matched by file name."""
    report = BenchDiffReport(threshold=threshold)
    if os.path.isdir(old_path) and os.path.isdir(new_path):
        old_names = _artifact_names(old_path)
        new_names = set(_artifact_names(new_path))
        for name in old_names:
            if name not in new_names:
                report.notes.append(f"{name} only in OLD dir")
                continue
            diff_payloads(_load(os.path.join(old_path, name)),
                          _load(os.path.join(new_path, name)),
                          threshold=threshold, rules=rules, file=name,
                          report=report)
        for name in sorted(new_names - set(old_names)):
            report.notes.append(f"{name} only in NEW dir")
        return report
    diff_payloads(_load(old_path), _load(new_path), threshold=threshold,
                  rules=rules, file=os.path.basename(new_path),
                  report=report)
    return report
