"""``repro.obs`` — pipeline-wide tracing, metrics, and finding provenance.

Every layer of the pipeline (front-end phases, the shared analysis
cache, each detector, the MIR interpreter, corpus evaluation) calls the
module-level helpers here::

    from repro import obs

    with obs.span("parse"):
        ...
    obs.count("analysis.points_to.miss")
    obs.gauge("interp.schedule_seed", 3)
    obs.observe("detector.latency_s", 0.004)

By default **no collector is installed** and every helper is a no-op
fast path (one global read, no allocation), so instrumented code runs at
seed speed.  ``--profile`` / ``minirust stats`` / the benchmarks install
a :class:`Collector` via :func:`install` or the :func:`collecting`
context manager and then export the trace as a pretty tree or JSON.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional, Union

from repro.obs.core import (
    Collector, Histogram, NOOP_SPAN, NoopSpan, SpanRecord,
)
from repro.obs.export import (
    hot_sccs, phase_timings, render_text, to_json, write_json,
)
from repro.obs.flame import folded_stacks, write_folded
from repro.obs.provenance import fact, jsonable, render_facts
from repro.obs.trace import to_chrome_trace, write_chrome_trace

__all__ = [
    "Collector", "Histogram", "NoopSpan", "NOOP_SPAN", "SpanRecord",
    "collecting", "count", "enabled", "fact", "folded_stacks", "gauge",
    "get_collector", "hot_sccs", "install", "jsonable", "observe",
    "phase_timings", "render_facts", "render_text", "span",
    "to_chrome_trace", "to_json", "uninstall", "write_chrome_trace",
    "write_folded", "write_json",
]

#: The process-wide active collector; ``None`` means disabled.
_active: Optional[Collector] = None


def get_collector() -> Optional[Collector]:
    return _active


def enabled() -> bool:
    return _active is not None


def install(name_or_collector: Union[str, Collector] = "repro") -> Collector:
    """Install (and return) the process-wide collector.

    Installing over an already-active collector raises: silently
    replacing it would drop every span and counter it holds.  Re-install
    of the *same* collector object is an idempotent no-op; for scoped
    collection that must compose with an outer collector, use
    :func:`collecting` (which saves and restores the active one).
    """
    global _active
    if isinstance(name_or_collector, Collector):
        collector = name_or_collector
    else:
        collector = Collector(name_or_collector)
    if _active is not None and _active is not collector:
        raise RuntimeError(
            f"an obs collector ({_active.name!r}) is already installed; "
            f"uninstall() it first or use obs.collecting() for scoped "
            f"collection")
    _active = collector
    return _active


def uninstall() -> Optional[Collector]:
    """Remove the active collector (returning it) — back to no-op mode."""
    global _active
    collector, _active = _active, None
    return collector


@contextmanager
def collecting(name: str = "repro") -> Iterator[Collector]:
    """Scoped collection: install a fresh collector, restore the previous
    one (usually ``None``) on exit."""
    global _active
    previous = _active
    collector = Collector(name)
    _active = collector
    try:
        yield collector
    finally:
        _active = previous


# -- instrumentation fast paths ---------------------------------------------

def span(name: str, **attrs: Any):
    """Open a (context-manager) span, or the shared no-op when disabled."""
    collector = _active
    if collector is None:
        return NOOP_SPAN
    return collector.span(name, **attrs)


def count(name: str, n: float = 1) -> None:
    collector = _active
    if collector is not None:
        collector.count(name, n)


def gauge(name: str, value: float) -> None:
    collector = _active
    if collector is not None:
        collector.gauge(name, value)


def observe(name: str, value: float) -> None:
    collector = _active
    if collector is not None:
        collector.observe(name, value)
