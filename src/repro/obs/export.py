"""Exporters: pretty-text phase tree and JSON, shared by ``--profile``,
``minirust stats`` and the benchmark harness."""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.core import Collector, SpanRecord


def _fmt_secs(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 0.001:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}µs"


def _render_span(span: SpanRecord, lines: List[str], prefix: str,
                 is_last: bool, is_root: bool) -> None:
    if is_root:
        head, child_prefix = "", ""
    else:
        head = prefix + ("└─ " if is_last else "├─ ")
        child_prefix = prefix + ("   " if is_last else "│  ")
    attrs = ""
    if span.attrs:
        attrs = " [" + ", ".join(f"{k}={v}"
                                 for k, v in sorted(span.attrs.items())) + "]"
    self_note = ""
    if span.children and span.duration:
        self_note = f" (self {_fmt_secs(span.self_time)})"
    lines.append(f"{head}{span.name:<24} {_fmt_secs(span.duration)}"
                 f"{self_note}{attrs}")
    for i, child in enumerate(span.children):
        _render_span(child, lines, child_prefix,
                     is_last=(i == len(span.children) - 1), is_root=False)


def render_text(collector: Collector) -> str:
    """Human-readable dump: span tree, then counters/gauges/histograms."""
    lines: List[str] = [f"== trace ({collector.name}) =="]
    if not collector.roots:
        lines.append("(no spans recorded)")
    for root in collector.roots:
        _render_span(root, lines, "", is_last=True, is_root=True)
    if collector.counters:
        lines.append("== counters ==")
        width = max(len(k) for k in collector.counters)
        for key in sorted(collector.counters):
            value = collector.counters[key]
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"{key:<{width}}  {shown}")
    if collector.gauges:
        lines.append("== gauges ==")
        for key in sorted(collector.gauges):
            lines.append(f"{key}  {collector.gauges[key]}")
    if collector.histograms:
        lines.append("== histograms ==")
        for key in sorted(collector.histograms):
            hist = collector.histograms[key]
            lines.append(
                f"{key}  n={hist.count} mean={_fmt_secs(hist.mean)} "
                f"min={_fmt_secs(hist.min or 0.0)} "
                f"max={_fmt_secs(hist.max or 0.0)}")
    return "\n".join(lines)


def to_json(collector: Collector, indent: Optional[int] = 2) -> str:
    return json.dumps(collector.to_dict(), indent=indent, sort_keys=False)


def phase_timings(collector: Collector) -> Dict[str, float]:
    """Flatten the span forest into ``{dotted.path: duration_s}``.

    Repeated spans at the same path accumulate, so e.g. per-body analysis
    spans sum into one phase figure — the shape BENCH_obs.json records.
    """
    out: Dict[str, float] = {}

    def visit(span: SpanRecord, path: str) -> None:
        key = f"{path}.{span.name}" if path else span.name
        out[key] = out.get(key, 0.0) + span.duration
        for child in span.children:
            visit(child, key)

    for root in collector.roots:
        visit(root, "")
    return out


def write_json(collector: Collector, path: str) -> Dict[str, Any]:
    """Write the collector dump (plus flattened phases) to ``path``."""
    payload = collector.to_dict()
    payload["phases"] = phase_timings(collector)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    return payload
