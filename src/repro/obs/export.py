"""Exporters: pretty-text phase tree and JSON, shared by ``--profile``,
``minirust stats`` and the benchmark harness."""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.core import Collector, SpanRecord


def _fmt_secs(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 0.001:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}µs"


def _render_span(span: SpanRecord, lines: List[str], prefix: str,
                 is_last: bool, is_root: bool) -> None:
    if is_root:
        head, child_prefix = "", ""
    else:
        head = prefix + ("└─ " if is_last else "├─ ")
        child_prefix = prefix + ("   " if is_last else "│  ")
    attrs = ""
    if span.attrs:
        attrs = " [" + ", ".join(f"{k}={v}"
                                 for k, v in sorted(span.attrs.items())) + "]"
    self_note = ""
    if span.children and span.duration:
        self_note = f" (self {_fmt_secs(span.self_time)})"
    lines.append(f"{head}{span.name:<24} {_fmt_secs(span.duration)}"
                 f"{self_note}{attrs}")
    for i, child in enumerate(span.children):
        _render_span(child, lines, child_prefix,
                     is_last=(i == len(span.children) - 1), is_root=False)


def hot_sccs(collector: Collector, top: int = 10) -> List[Dict[str, Any]]:
    """Per-unit cost attribution: the ``top`` hottest SCCs by summary-
    solve wall time, aggregated over every ``analysis.scc`` span in the
    collector (main-process and folded-back worker spans alike).

    Each entry carries the component head function, total solve seconds,
    summed fixpoint iterations, component size, and how many times the
    component was solved — the table behind ``minirust stats --top``.
    """
    agg: Dict[str, Dict[str, Any]] = {}
    for span in collector.iter_spans():
        if span.name != "analysis.scc":
            continue
        head = str(span.attrs.get("head", "?"))
        entry = agg.setdefault(head, {
            "fn": head, "wall_s": 0.0, "iterations": 0,
            "functions": int(span.attrs.get("functions", 1)), "solves": 0,
        })
        entry["wall_s"] += span.duration
        entry["iterations"] += int(span.attrs.get("iterations", 0))
        entry["solves"] += 1
    ranked = sorted(agg.values(), key=lambda e: (-e["wall_s"], e["fn"]))
    return ranked[:max(0, top)]


def render_hot_sccs(entries: List[Dict[str, Any]]) -> List[str]:
    if not entries:
        return []
    width = max(max(len(e["fn"]) for e in entries), len("function"))
    lines = [f"{'function':<{width}}  {'solve':>9}  {'iters':>5} "
             f"{'fns':>4}  {'solves':>6}"]
    for e in entries:
        lines.append(f"{e['fn']:<{width}}  {_fmt_secs(e['wall_s']):>9}  "
                     f"{e['iterations']:>5} {e['functions']:>4}  "
                     f"{e['solves']:>6}")
    return lines


def render_text(collector: Collector, top_sccs: int = 5) -> str:
    """Human-readable dump: span tree, hottest SCCs (when the summary
    solve ran), then counters/gauges/histograms."""
    lines: List[str] = [f"== trace ({collector.name}) =="]
    if not collector.roots:
        lines.append("(no spans recorded)")
    for root in collector.roots:
        _render_span(root, lines, "", is_last=True, is_root=True)
    hottest = hot_sccs(collector, top=top_sccs)
    if hottest:
        lines.append("== hottest sccs ==")
        lines.extend(render_hot_sccs(hottest))
    if collector.counters:
        lines.append("== counters ==")
        width = max(len(k) for k in collector.counters)
        for key in sorted(collector.counters):
            value = collector.counters[key]
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"{key:<{width}}  {shown}")
    if collector.gauges:
        lines.append("== gauges ==")
        for key in sorted(collector.gauges):
            lines.append(f"{key}  {collector.gauges[key]}")
    if collector.histograms:
        lines.append("== histograms ==")
        for key in sorted(collector.histograms):
            hist = collector.histograms[key]
            lines.append(
                f"{key}  n={hist.count} mean={_fmt_secs(hist.mean)} "
                f"min={_fmt_secs(hist.min or 0.0)} "
                f"max={_fmt_secs(hist.max or 0.0)}")
    return "\n".join(lines)


def to_json(collector: Collector, indent: Optional[int] = 2) -> str:
    return json.dumps(collector.to_dict(), indent=indent, sort_keys=False)


def phase_timings(collector: Collector) -> Dict[str, float]:
    """Flatten the span forest into ``{dotted.path: duration_s}``.

    Repeated spans at the same path accumulate, so e.g. per-body analysis
    spans sum into one phase figure — the shape BENCH_obs.json records.
    """
    out: Dict[str, float] = {}

    def visit(span: SpanRecord, path: str) -> None:
        key = f"{path}.{span.name}" if path else span.name
        out[key] = out.get(key, 0.0) + span.duration
        for child in span.children:
            visit(child, key)

    for root in collector.roots:
        visit(root, "")
    return out


def write_json(collector: Collector, path: str) -> Dict[str, Any]:
    """Write the collector dump (plus flattened phases) to ``path``."""
    payload = collector.to_dict()
    payload["phases"] = phase_timings(collector)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    return payload
