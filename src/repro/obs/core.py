"""Tracing and metrics core: spans, counters, gauges, histograms.

The design point is the ROADMAP's: this substrate must cost (almost)
nothing when nobody is looking.  All instrumentation goes through the
module-level helpers in :mod:`repro.obs`; when no :class:`Collector` is
installed they hand back a shared no-op span / return immediately, so
the tier-1 suite runs at seed speed.  When a collector *is* installed
(``--profile``, ``minirust stats``, the benchmark harness) every span
carries wall time from :func:`time.perf_counter` and nests under its
parent, giving the phase tree the exporters render.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional


@dataclass
class SpanRecord:
    """One completed (or still-open) span in the trace tree.

    Every record carries a collector-stable ``id``, its parent's id
    (``None`` for roots), and the ``pid``/``tid`` it was recorded on —
    the links the Chrome-trace exporter and the cross-process fold-back
    rely on.  Timestamps come from :func:`time.perf_counter`
    (``CLOCK_MONOTONIC``-class), so durations can never be negative and
    spans recorded in forked worker processes share the parent's
    timebase.
    """

    name: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["SpanRecord"] = field(default_factory=list)
    id: int = 0
    parent_id: Optional[int] = None
    pid: int = 0
    tid: int = 0

    @property
    def duration(self) -> float:
        """Wall-clock seconds, 0.0 while the span is still open."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def self_time(self) -> float:
        """Duration minus time attributed to child spans."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "duration_s": self.duration,
            "self_s": self.self_time,
            "id": self.id,
            "parent": self.parent_id,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def find(self, name: str) -> Optional["SpanRecord"]:
        """Depth-first lookup of a descendant (or self) by span name."""
        if self.name == name:
            return self
        for child in self.children:
            hit = child.find(name)
            if hit is not None:
                return hit
        return None


class _SpanHandle:
    """Context manager tying one :class:`SpanRecord` to a collector stack."""

    __slots__ = ("_collector", "_record")

    def __init__(self, collector: "Collector", record: SpanRecord) -> None:
        self._collector = collector
        self._record = record

    def set(self, **attrs: Any) -> "_SpanHandle":
        self._record.attrs.update(attrs)
        return self

    def __enter__(self) -> "_SpanHandle":
        self._collector._push(self._record)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # The span is recorded either way; a raising body is tagged so
        # the trace shows *where* the pipeline died, not a hole.
        if exc_type is not None:
            self._record.attrs.setdefault("error", True)
            self._record.attrs.setdefault("error_type", exc_type.__name__)
        self._record.end = perf_counter()
        self._collector._pop(self._record)
        return False


class NoopSpan:
    """Shared, stateless stand-in returned while collection is disabled.

    Reentrant and reusable: it records nothing, so one instance serves
    every call site.
    """

    __slots__ = ()

    def set(self, **attrs: Any) -> "NoopSpan":
        return self

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = NoopSpan()


@dataclass
class Histogram:
    """Streaming summary of observed values (count/sum/min/max + samples)."""

    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None
    #: First N raw samples, enough for test assertions and percentile-ish
    #: eyeballing without unbounded memory.
    samples: List[float] = field(default_factory=list)
    sample_cap: int = 256

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self.samples) < self.sample_cap:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "sum": self.total, "min": self.min,
                "max": self.max, "mean": self.mean}


class Collector:
    """Process-wide sink for spans and metrics.

    A collector owns a stack of open spans (so ``span()`` calls nest), a
    forest of completed root spans, and three metric families keyed by
    dotted names (``analysis.points_to.hit``).

    Thread-safe: the open-span stack is **per thread** (a span opened on
    a thread-backend worker nests under that worker's spans, or becomes
    a new root tagged with its ``tid``), while the shared structures —
    roots, id allocation, counters, gauges, histograms — mutate under
    one lock.  The lock is only ever touched when a collector is
    installed, so the no-collector fast path stays free.
    """

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        self.roots: List[SpanRecord] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._last_id = 0
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- spans ----------------------------------------------------------

    @property
    def _stack(self) -> List[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _alloc_id(self) -> int:
        with self._lock:
            self._last_id += 1
            return self._last_id

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        record = SpanRecord(name=name, start=perf_counter(),
                            attrs=dict(attrs), id=self._alloc_id(),
                            pid=os.getpid(), tid=threading.get_ident())
        return _SpanHandle(self, record)

    def _push(self, record: SpanRecord) -> None:
        stack = self._stack
        if stack:
            record.parent_id = stack[-1].id
            stack[-1].children.append(record)
        else:
            record.parent_id = None
            with self._lock:
                self.roots.append(record)
        stack.append(record)

    def _pop(self, record: SpanRecord) -> None:
        # Tolerate mismatched exits (a span leaked across an exception):
        # unwind to the matching record instead of corrupting the stack.
        while self._stack:
            top = self._stack.pop()
            if top is record:
                break

    @property
    def current_span(self) -> Optional[SpanRecord]:
        return self._stack[-1] if self._stack else None

    def find_span(self, name: str) -> Optional[SpanRecord]:
        for root in self.roots:
            hit = root.find(name)
            if hit is not None:
                return hit
        return None

    def iter_spans(self):
        """Depth-first walk over every recorded span."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def adopt_spans(self, roots: List[SpanRecord],
                    parent: Optional[SpanRecord] = None) -> None:
        """Graft externally recorded span trees (a worker collector's
        roots, deserialised from a task result) into this collector.

        Each adopted subtree is re-assigned ids from this collector's
        sequence (worker ids collide across processes) and re-parented
        under ``parent`` — by default the currently open span, so the
        executor folds worker solve timelines under the owning
        ``analysis.wave`` span.  The records' own ``pid``/``tid`` are
        preserved: that is how a trace shows workers side by side.
        """
        if parent is None:
            parent = self.current_span
        for root in roots:
            if parent is not None:
                parent.children.append(root)
            else:
                self.roots.append(root)
            self._reid(root, parent.id if parent is not None else None)

    def _reid(self, record: SpanRecord, parent_id: Optional[int]) -> None:
        record.id = self._alloc_id()
        record.parent_id = parent_id
        for child in record.children:
            self._reid(child, record.id)

    # -- metrics --------------------------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.observe(value)

    def merge_histogram(self, name: str, other: Histogram) -> None:
        """Fold a worker histogram into this collector's, preserving
        count/sum/min/max exactly and samples up to the cap."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.count += other.count
        hist.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            hist.min = bound if hist.min is None else min(hist.min, bound)
            hist.max = bound if hist.max is None else max(hist.max, bound)
        room = hist.sample_cap - len(hist.samples)
        if room > 0:
            hist.samples.extend(other.samples[:room])

    # -- export ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "collector": self.name,
            "spans": [root.to_dict() for root in self.roots],
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: h.to_dict()
                           for k, h in sorted(self.histograms.items())},
        }

    def render(self) -> str:
        from repro.obs.export import render_text
        return render_text(self)
