"""Chrome-trace / Perfetto export of the collector's span tree.

The output is the Trace Event Format JSON object that both
``chrome://tracing`` and https://ui.perfetto.dev open directly: one
complete (``"ph": "X"``) event per span, with microsecond timestamps
normalised to the earliest recorded span, plus ``"M"`` metadata events
naming each process and thread lane.

Because spans carry the ``pid``/``tid`` they were recorded on and
:func:`time.perf_counter` is a ``CLOCK_MONOTONIC``-class clock shared by
forked worker processes, spans folded back from the executor's workers
line up on the same timeline as the main process: a ``--jobs 4`` run
renders as four worker lanes solving side by side under the owning
``analysis.wave`` span.  Each event's ``args`` keeps the span's stable
``id`` and ``parent`` link, so tooling (and the tests) can reconstruct
the exact tree independent of timestamp nesting.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

from repro.obs.core import Collector
from repro.obs.provenance import jsonable


def trace_events(collector: Collector) -> List[Dict[str, Any]]:
    """The flat Trace Event list: metadata lanes first, then one
    complete event per span (open spans export with ``dur`` 0)."""
    spans = list(collector.iter_spans())
    if not spans:
        return []
    base = min(span.start for span in spans)
    events: List[Dict[str, Any]] = []

    lanes: Dict[int, set] = {}
    for span in spans:
        lanes.setdefault(span.pid, set()).add(span.tid)
    main_pid = os.getpid()
    for pid in sorted(lanes):
        label = "main" if pid == main_pid else f"worker-{pid}"
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": label}})
        for tid in sorted(lanes[pid]):
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": tid, "args": {"name": f"thread-{tid}"}})

    for span in spans:
        end = span.end if span.end is not None else span.start
        args: Dict[str, Any] = {"id": span.id, "parent": span.parent_id}
        for key, value in span.attrs.items():
            args[key] = jsonable(value)
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": "repro",
            "ts": (span.start - base) * 1e6,
            "dur": max(0.0, end - span.start) * 1e6,
            "pid": span.pid,
            "tid": span.tid,
            "args": args,
        })
    return events


def to_chrome_trace(collector: Collector) -> Dict[str, Any]:
    """The full Trace Event Format payload (JSON Object Format)."""
    return {
        "traceEvents": trace_events(collector),
        "displayTimeUnit": "ms",
        "otherData": {"collector": collector.name,
                      "counters": dict(collector.counters)},
    }


def write_chrome_trace(collector: Collector, path: str) -> Dict[str, Any]:
    """Write the Chrome-trace JSON to ``path`` and return the payload."""
    payload = to_chrome_trace(collector)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    return payload
