"""Folded-stack flamegraph export from the collector's span tree.

One line per distinct span path, ``root;child;leaf <self-µs>`` — the
input format of Brendan Gregg's ``flamegraph.pl`` and of speedscope's
folded importer.  Weights are *self* time (duration minus children), so
the flamegraph's widths add up instead of double-counting nested spans;
identical paths recorded repeatedly (e.g. one ``analysis.scc`` span per
component under one wave) aggregate into a single line.

Spans folded back from worker processes are prefixed with their process
lane (``worker-<pid>``) so a parallel solve shows each worker's stack
as its own tower next to the main process.
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.obs.core import Collector, SpanRecord


def _frame(name: str) -> str:
    # The folded format is whitespace/semicolon-delimited; sanitise.
    return name.replace(";", ":").replace(" ", "_")


def folded_stacks(collector: Collector) -> List[str]:
    """The folded-stack lines for every span in the collector."""
    weights: Dict[str, int] = {}
    main_pid = os.getpid()

    def visit(span: SpanRecord, prefix: str, parent_pid: int) -> None:
        frame = _frame(span.name)
        if span.pid and span.pid != parent_pid and span.pid != main_pid:
            # Crossing into an adopted worker subtree: open its lane.
            frame = f"worker-{span.pid};{frame}"
        stack = f"{prefix};{frame}" if prefix else frame
        weight = int(round(span.self_time * 1e6))
        weights[stack] = weights.get(stack, 0) + max(0, weight)
        for child in span.children:
            visit(child, stack, span.pid)

    for root in collector.roots:
        visit(root, "", main_pid)
    return [f"{stack} {weight}" for stack, weight in weights.items()]


def write_folded(collector: Collector, path: str) -> List[str]:
    """Write the folded stacks to ``path`` and return the lines."""
    lines = folded_stacks(collector)
    with open(path, "w", encoding="utf-8") as f:
        for line in lines:
            f.write(line + "\n")
    return lines
