"""Finding provenance: the ordered analysis facts that justify a report.

The paper's authors manually audited every detector hit; this module
gives our detectors the machinery to make the same audit mechanical.  A
*fact* is a small JSON-able dict — ``{"kind": ..., "note": ..., ...}`` —
and a finding's ``provenance`` is the ordered list of facts that led to
it (the points-to edge, the guard region, the freed-state bit, the
re-acquisition site).  ``minirust explain`` and the ``--json`` report
surface these verbatim.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Iterable, List


def jsonable(value: Any) -> Any:
    """Coerce analysis-internal values (tuples, frozensets, enums, MIR
    nodes) into something ``json.dumps`` accepts, deterministically."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(jsonable(v) for v in value) if all(
            isinstance(v, (str, int, float)) for v in value
        ) else sorted((jsonable(v) for v in value), key=repr)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def fact(kind: str, note: str = "", /, **detail: Any) -> Dict[str, Any]:
    """Build one provenance fact.

    ``kind`` is a short machine-readable tag (``points-to``,
    ``guard-region``, ``freed-state`` …); ``note`` is the human sentence;
    the rest is structured detail from the analysis that produced it.
    The first two are positional-only, so detail keys named ``kind`` /
    ``note`` are legal — the tag still wins on collision.
    """
    out: Dict[str, Any] = {"kind": kind}
    if note:
        out["note"] = note
    for key, value in detail.items():
        out.setdefault(key, jsonable(value))
    return out


def render_facts(facts: Iterable[Dict[str, Any]],
                 indent: str = "  ") -> List[str]:
    """Render a provenance trail as numbered, indented lines.

    Every fact renders *something*, whatever its shape: dict facts with
    an unrecognised ``kind`` (or none at all) fall back to the generic
    ``[kind] note (detail)`` form, and non-dict facts — which a detector
    predating the ``fact()`` helper may emit — render via ``repr``.  New
    detectors must never produce an empty or crashing explanation."""
    lines: List[str] = []
    for i, f in enumerate(facts, start=1):
        if not isinstance(f, dict):
            lines.append(f"{indent}{i}. [fact] {f!r}")
            continue
        note = f.get("note", "")
        detail = ", ".join(f"{k}={v!r}" for k, v in sorted(f.items())
                           if k not in ("kind", "note"))
        line = f"{indent}{i}. [{f.get('kind', 'fact')}]"
        if note:
            line += f" {note}"
        if detail:
            line += f" ({detail})"
        lines.append(line)
    return lines
