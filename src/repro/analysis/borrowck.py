"""An approximate NLL-style borrow checker over MIR.

This is the *substrate* half of Rust's safety story: safe MiniRust code is
expected to pass these checks, and the corpus generator uses them as a
sanity filter.  Two rule families are enforced (both approximately, both
skipped inside ``unsafe`` regions, mirroring how real unsafe code opts out
of parts of the discipline):

* **use-after-move** — reading or re-moving a local whose value may have
  been moved out and not reinitialised;
* **conflicting borrows** — two overlapping borrows of the same local
  where at least one is mutable, or mutation of a local while a shared
  borrow of it is live (borrow regions are approximated by the storage
  range of the reference-holding local, i.e. lexical-lifetime precision).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dataflow import statement_states
from repro.analysis.init import MaybeInitAnalysis, compute_init
from repro.analysis.lifetime import compute_storage_ranges
from repro.lang.source import Span
from repro.mir.nodes import (
    Body, RvalueKind, StatementKind, TerminatorKind,
)


@dataclass
class BorrowError:
    kind: str                  # "use_after_move" | "conflicting_borrow" | ...
    message: str
    span: Span
    fn_key: str
    local: Optional[int] = None

    def render(self) -> str:
        return f"error[{self.kind}] in {self.fn_key}: {self.message}"


@dataclass
class _Borrow:
    holder: int                # local holding the reference
    target: int                # local borrowed
    mutable: bool
    point: Tuple[int, int]
    span: Span
    in_unsafe: bool


def check_body(body: Body) -> List[BorrowError]:
    errors: List[BorrowError] = []
    errors.extend(_check_use_after_move(body))
    errors.extend(_check_conflicting_borrows(body))
    return errors


def check_program(program) -> List[BorrowError]:
    errors: List[BorrowError] = []
    for body in program.bodies():
        errors.extend(check_body(body))
    return errors


# ---------------------------------------------------------------------------
# Use after move
# ---------------------------------------------------------------------------

def _check_use_after_move(body: Body) -> List[BorrowError]:
    errors: List[BorrowError] = []
    analysis = MaybeInitAnalysis(body)
    entry_states = compute_init(body)
    named = {l.index for l in body.locals if l.name and not l.is_temp}

    def moved_here(state, local: int) -> bool:
        return ("moved", local) in state and ("init", local) not in state

    for block in body.blocks:
        if block.index not in entry_states:
            continue
        states = statement_states(analysis, entry_states, block.index)
        for i, stmt in enumerate(block.statements):
            state = states[i]
            if stmt.in_unsafe:
                continue
            if stmt.kind is StatementKind.ASSIGN and stmt.rvalue is not None:
                reads: Set[int] = set()
                for op in stmt.rvalue.operands:
                    if op.place is not None:
                        reads.add(op.place.local)
                if stmt.rvalue.place is not None:
                    reads.add(stmt.rvalue.place.local)
                for local in reads & named:
                    if moved_here(state, local):
                        errors.append(BorrowError(
                            kind="use_after_move",
                            message=f"use of moved value "
                                    f"`{body.locals[local].name}`",
                            span=stmt.span, fn_key=body.key, local=local))
        term = block.terminator
        if term is not None and term.kind is TerminatorKind.CALL \
                and not term.in_unsafe:
            state = states[-1]
            for op in term.args:
                if op.place is not None and op.place.local in named \
                        and moved_here(state, op.place.local):
                    errors.append(BorrowError(
                        kind="use_after_move",
                        message=f"use of moved value "
                                f"`{body.locals[op.place.local].name}`",
                        span=term.span, fn_key=body.key,
                        local=op.place.local))
    return errors


# ---------------------------------------------------------------------------
# Conflicting borrows
# ---------------------------------------------------------------------------

def _collect_borrows(body: Body) -> List[_Borrow]:
    borrows: List[_Borrow] = []
    for bb, i, stmt in body.iter_statements():
        if stmt.kind is StatementKind.ASSIGN and stmt.rvalue is not None \
                and stmt.rvalue.kind in (RvalueKind.REF, RvalueKind.ADDRESS_OF) \
                and stmt.place.is_local:
            borrows.append(_Borrow(
                holder=stmt.place.local,
                target=stmt.rvalue.place.local,
                mutable=stmt.rvalue.mutable,
                point=(bb, i), span=stmt.span,
                in_unsafe=stmt.in_unsafe))
    return borrows


def _check_conflicting_borrows(body: Body) -> List[BorrowError]:
    errors: List[BorrowError] = []
    borrows = _collect_borrows(body)
    if not borrows:
        return errors
    ranges = compute_storage_ranges(body)
    named = {l.index for l in body.locals if l.name and not l.is_temp}

    # Reference expressions lower through a temp (`_t = &x; r = _t`), so
    # resolve each borrow's holder to the named local it lands in.
    forwarded: Dict[int, int] = {}
    for _bb, _i, stmt in body.iter_statements():
        if stmt.kind is StatementKind.ASSIGN and stmt.place.is_local \
                and stmt.place.local in named \
                and stmt.rvalue is not None \
                and stmt.rvalue.kind is RvalueKind.USE:
            op = stmt.rvalue.operands[0]
            if op.place is not None and op.place.is_local:
                forwarded[op.place.local] = stmt.place.local
    for borrow in borrows:
        if borrow.holder not in named and borrow.holder in forwarded:
            borrow.holder = forwarded[borrow.holder]

    # Restrict to borrows of *named* locals whose holder is also named:
    # compiler temps for method receivers would otherwise flood this check
    # with borrows that real NLL kills instantly.
    user_borrows = [b for b in borrows
                    if b.target in named and b.holder in named
                    and not b.in_unsafe]

    for i, a in enumerate(user_borrows):
        for b in user_borrows[i + 1:]:
            if a.target != b.target:
                continue
            if not (a.mutable or b.mutable):
                continue
            pts_a = ranges.live_points.get(a.holder, set())
            pts_b = ranges.live_points.get(b.holder, set())
            if pts_a & pts_b:
                which = "mutable" if (a.mutable and b.mutable) else \
                    "mutable and shared"
                errors.append(BorrowError(
                    kind="conflicting_borrow",
                    message=f"conflicting {which} borrows of "
                            f"`{body.locals[a.target].name}`",
                    span=b.span, fn_key=body.key, local=a.target))
    return errors
