"""Generic forward/backward dataflow framework over MIR.

Analyses subclass :class:`DataflowAnalysis` with set-typed states (a
powerset lattice joined by union or intersection) and per-statement /
per-terminator transfer functions; :func:`solve` runs a worklist to a fixed
point and returns block-entry states, from which per-statement states can
be replayed on demand.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Generic, List, TypeVar

from repro.mir.cfg import Cfg
from repro.mir.nodes import Body, Statement, Terminator

T = TypeVar("T")
State = FrozenSet[T]


class DataflowAnalysis(Generic[T]):
    """Base class: override the transfer functions and direction."""

    FORWARD = True
    #: ``union`` (may) or ``intersection`` (must) join.
    JOIN_UNION = True

    def __init__(self, body: Body) -> None:
        self.body = body
        self.cfg = Cfg(body)

    # -- overridables --------------------------------------------------------

    def boundary_state(self) -> State:
        """State at function entry (forward) or exit (backward)."""
        return frozenset()

    def initial_state(self) -> State:
        """State assumed for not-yet-visited blocks."""
        if self.JOIN_UNION:
            return frozenset()
        return None   # "top": identity for intersection; handled in join

    def transfer_statement(self, state: State, stmt: Statement,
                           block: int, index: int) -> State:
        return state

    def transfer_terminator(self, state: State, term: Terminator,
                            block: int) -> State:
        return state

    # -- engine ----------------------------------------------------------------

    def join(self, states: List[State]) -> State:
        real = [s for s in states if s is not None]
        if not real:
            return frozenset()
        if self.JOIN_UNION:
            out = set()
            for s in real:
                out |= s
            return frozenset(out)
        out = set(real[0])
        for s in real[1:]:
            out &= s
        return frozenset(out)

    def transfer_block(self, state: State, block_index: int) -> State:
        block = self.body.blocks[block_index]
        if self.FORWARD:
            for i, stmt in enumerate(block.statements):
                state = self.transfer_statement(state, stmt, block_index, i)
            if block.terminator is not None:
                state = self.transfer_terminator(state, block.terminator,
                                                 block_index)
            return state
        if block.terminator is not None:
            state = self.transfer_terminator(state, block.terminator,
                                             block_index)
        for i in range(len(block.statements) - 1, -1, -1):
            state = self.transfer_statement(state, block.statements[i],
                                            block_index, i)
        return state


def solve(analysis: DataflowAnalysis) -> Dict[int, State]:
    """Run to fixpoint; returns block-*entry* states (forward) or
    block-*exit* states (backward)."""
    body = analysis.body
    cfg = analysis.cfg
    n = len(body.blocks)
    entry_states: Dict[int, State] = {}

    if analysis.FORWARD:
        preds = cfg.predecessors
        start_blocks = [0] if n else []
    else:
        preds = cfg.successors
        start_blocks = [b.index for b in body.blocks
                        if b.terminator is not None and
                        not b.terminator.successors()]

    for start in start_blocks:
        entry_states[start] = analysis.boundary_state()

    order = cfg.reverse_post_order()
    if not analysis.FORWARD:
        order = list(reversed(order))
    worklist = deque(order)
    in_worklist = set(worklist)

    while worklist:
        bb = worklist.popleft()
        in_worklist.discard(bb)
        incoming = [analysis.transfer_block(entry_states[p], p)
                    for p in preds[bb] if p in entry_states]
        if bb in start_blocks:
            incoming.append(analysis.boundary_state())
        if not incoming:
            if bb not in entry_states:
                entry_states[bb] = analysis.boundary_state() if bb in start_blocks \
                    else frozenset()
            continue
        new_state = analysis.join(incoming)
        if bb not in entry_states or entry_states[bb] != new_state:
            entry_states[bb] = new_state
            next_nodes = cfg.successors[bb] if analysis.FORWARD \
                else cfg.predecessors[bb]
            for nxt in next_nodes:
                if nxt not in in_worklist:
                    worklist.append(nxt)
                    in_worklist.add(nxt)
    return entry_states


def statement_states(analysis: DataflowAnalysis,
                     entry_states: Dict[int, State],
                     block_index: int) -> List[State]:
    """Replay one block, returning the state *before* each statement (and,
    as the final element, before the terminator) for a forward analysis."""
    assert analysis.FORWARD, "statement_states is for forward analyses"
    state = entry_states.get(block_index, frozenset())
    block = analysis.body.blocks[block_index]
    states = []
    for i, stmt in enumerate(block.statements):
        states.append(state)
        state = analysis.transfer_statement(state, stmt, block_index, i)
    states.append(state)
    return states
