"""Unsafe-provenance lattice: tracking *unsafety itself* through MIR.

The paper's §4–§5 study finds that most unsafe code hides behind safe
APIs ("interior unsafe", §2.3) and that bugs cluster where those APIs
fail to encapsulate: a caller-controlled input reaches an unsafe
dereference/offset with no sanitising check, or a raw pointer born in an
unsafe region escapes the encapsulation boundary (§5.3).  Evans et al.
(ICSE 2020) and Zhou et al. (arXiv 2310.10298) analyse exactly this by
propagating unsafe provenance through call chains — the shape this
module reproduces on our MIR.

Three per-body facts feed the summary component
(:class:`UnsafeProvenance`, attached to every
:class:`~repro.analysis.summaries.FunctionSummary` and solved inside the
engine's SCC fixpoint):

* **Argument taint** (:func:`arg_taint`) — which locals may carry the
  value of a caller-controlled argument.  Only raw-pointer and integer
  arguments seed taint: those are the inputs whose unchecked use in an
  unsafe operation is the paper's "improper input check" pattern.
  Container/reference arguments are deliberately *not* seeds — a ``&Vec``
  receiver reaching ``get_unchecked`` is the access path, not the
  attacker-controlled index.
* **Guards** (:func:`guard_blocks`) — ``switchInt``/``assert``
  terminators whose condition is tainted by an argument: the null /
  bounds / tag checks that sanitise it.  A guard *dominates* a sink when
  its block precedes the sink's block (the same block-order heuristic the
  source-level audit in :mod:`repro.study.unsafe_scan` uses).
* **Unsafe birth** (:func:`unsafe_born_locals`) — locals holding a raw
  pointer derived *inside* an unsafe region (a ``&x as *mut`` cast in an
  unsafe block, an ``alloc`` result, or a callee that returns such a
  pointer per its summary).  Safe derivations (``ptr::null``,
  ``Vec::as_ptr`` outside unsafe) are not unsafe-born; returning or
  publishing them is not an encapsulation leak.

All components are may-sets or monotone flags: composed entries only
grow as callee summaries grow, so the engine's per-SCC worklist
converges exactly (see ``tests/test_unsafe_prop.py`` for the property
test).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.scan import scan_of
from repro.hir.builtins import BuiltinOp, FuncKind
from repro.lang.source import Span
from repro.lang.types import TyKind
from repro.mir.nodes import (
    Body, CastKind, RvalueKind, StatementKind, TerminatorKind,
)

#: One hop of a cross-function provenance chain: (callee key, arg pos).
ProvenanceHop = Tuple[str, int]

#: Unsafe operations with a caller-controllable *address/index* operand:
#: op → ((sink kind, operand position), ...).  Only the positions that
#: select memory are sinks — the stored-value operand of ``ptr::write``
#: or ``*p = v`` can be anything without violating memory safety.
UNSAFE_SINK_OPS: Dict[BuiltinOp, Tuple[Tuple[str, int], ...]] = {
    BuiltinOp.VEC_GET_UNCHECKED: (("index", 1),),
    BuiltinOp.VEC_GET_UNCHECKED_MUT: (("index", 1),),
    BuiltinOp.VEC_SET_LEN: (("index", 1),),
    BuiltinOp.PTR_OFFSET: (("offset", 0), ("offset", 1)),
    BuiltinOp.PTR_ADD: (("offset", 0), ("offset", 1)),
    BuiltinOp.PTR_READ: (("deref", 0),),
    BuiltinOp.PTR_WRITE: (("deref", 0),),
    BuiltinOp.PTR_COPY: (("deref", 0), ("deref", 1)),
    BuiltinOp.PTR_COPY_NONOVERLAPPING: (("deref", 0), ("deref", 1)),
    BuiltinOp.DEALLOC: (("deref", 0),),
}

#: Casts that mint a raw pointer (the unsafe-birth sites when they occur
#: inside an unsafe region).
_RAW_MINT_CASTS = {CastKind.REF_TO_RAW, CastKind.INT_TO_RAW}

#: Rvalue kinds through which taint flows local-to-local.
_TAINT_FLOW = {RvalueKind.USE, RvalueKind.CAST, RvalueKind.BINARY,
               RvalueKind.UNARY, RvalueKind.DISCRIMINANT, RvalueKind.LEN,
               RvalueKind.REF, RvalueKind.ADDRESS_OF}

#: Builtin calls whose result is a pure function of their input — taint
#: flows through so ``if p.is_null() { ... }`` reads as a check on ``p``.
_TAINT_FLOW_CALLS = {BuiltinOp.PTR_IS_NULL}


def restore_slots_state(obj, state) -> None:
    """``__setstate__`` body shared by the slotted summary dataclasses.

    Accepts both state shapes a pickle may carry: the ``(dict,
    slots_dict)`` pair the slotted classes produce, and the plain
    ``__dict__`` older (pre-slots) releases wrote into the on-disk
    summary cache — those entries stay loadable instead of being
    treated as corrupt and re-solved.
    """
    if isinstance(state, tuple):
        plain, slotted = state
        merged = dict(plain or {})
        merged.update(slotted or {})
        state = merged
    for name, value in state.items():
        object.__setattr__(obj, name, value)


@dataclass(slots=True)
class UnsafeProvenance:
    """The unsafe-provenance component of a function summary.

    Every field is a may-set / monotone flag in the summary lattice:

    * ``arg_sinks`` — argument positions that may reach an unsafe
      deref/index/offset with **no dominating guard**; the value is
      ``(sink kind, hop, span)`` where ``hop`` is the ``(callee, callee
      arg)`` the sink was composed through (``None`` when the unsafe
      operation is in this very body).
    * ``guarded_args`` — argument positions that reach an unsafe sink but
      only past a dominating taint-reading check (the paper's "checked"
      encapsulation).
    * ``delegated_args`` — argument positions forwarded (unguarded) from
      inside an unsafe region into an ``unsafe fn`` / FFI / unresolved
      callee: the safety obligation is passed on rather than discharged.
    * ``returns_unsafe_ptr`` — the return value may carry a raw pointer
      born in an unsafe region somewhere in the call tree.
    * ``unsafe_sites`` — direct count of MIR statements/terminators in
      this body lowered from an unsafe region (body-local, stable across
      fixpoint iterations).
    """

    arg_sinks: Dict[int, Tuple[str, Optional[ProvenanceHop], Span]] = \
        field(default_factory=dict)
    guarded_args: FrozenSet[int] = frozenset()
    delegated_args: FrozenSet[int] = frozenset()
    returns_unsafe_ptr: bool = False
    unsafe_sites: int = 0

    @property
    def is_bottom(self) -> bool:
        return not (self.arg_sinks or self.guarded_args
                    or self.delegated_args or self.returns_unsafe_ptr
                    or self.unsafe_sites)

    def __setstate__(self, state):
        restore_slots_state(self, state)


#: Shared bottom element served for the common case (a body with no
#: unsafe code whose callees all have bottom provenance) — nothing ever
#: mutates a provenance after construction, so sharing is safe and keeps
#: the solve from allocating ~400 identical empty components per program.
_BOTTOM = UnsafeProvenance()


def _int_like(ty) -> bool:
    return ty.kind is TyKind.INT


def taint_seeds(body: Body) -> Dict[int, FrozenSet[int]]:
    """Seed taint: argument locals whose type is a raw pointer or an
    integer (local → {argument position})."""
    seeds: Dict[int, FrozenSet[int]] = {}
    for position in range(body.arg_count):
        ty = body.local_ty(position + 1)
        if ty.is_raw_ptr or _int_like(ty):
            seeds[position + 1] = frozenset({position})
    return seeds


def arg_taint(body: Body) -> Dict[int, FrozenSet[int]]:
    """Which argument positions each local may carry (data-flow closure
    of :func:`taint_seeds` over copies, casts, arithmetic and the pure
    builtins in :data:`_TAINT_FLOW_CALLS`).  Cached on the body's scan —
    taint only depends on the body text."""
    return scan_of(body).memo("arg_taint", lambda: _compute_arg_taint(body))


def _compute_arg_taint(body: Body) -> Dict[int, FrozenSet[int]]:
    scan = scan_of(body)
    taint: Dict[int, Set[int]] = {l: set(s)
                                  for l, s in taint_seeds(body).items()}
    if not taint:
        return {}

    def flow_into(dest: int, sources: Set[int]) -> bool:
        have = taint.setdefault(dest, set())
        if sources <= have:
            return False
        have |= sources
        return True

    changed = True
    while changed:
        changed = False
        for _bb, _i, stmt in scan.statements:
            if stmt.kind is not StatementKind.ASSIGN \
                    or not stmt.place.is_local or stmt.rvalue is None \
                    or stmt.rvalue.kind not in _TAINT_FLOW:
                continue
            incoming: Set[int] = set()
            for op in stmt.rvalue.operands:
                if op.place is not None:
                    incoming |= taint.get(op.place.local, set())
            if stmt.rvalue.place is not None:
                incoming |= taint.get(stmt.rvalue.place.local, set())
            if incoming and flow_into(stmt.place.local, incoming):
                changed = True
        for _bb, term in scan.calls:
            if term.func.builtin_op not in _TAINT_FLOW_CALLS \
                    or term.destination is None \
                    or not term.destination.is_local:
                continue
            incoming = set()
            for arg in term.args:
                if arg.place is not None:
                    incoming |= taint.get(arg.place.local, set())
            if incoming and flow_into(term.destination.local, incoming):
                changed = True
    return {local: frozenset(positions)
            for local, positions in taint.items() if positions}


def guard_blocks(body: Body,
                 taint: Dict[int, FrozenSet[int]]) -> Dict[int, Set[int]]:
    """Blocks whose terminator branches on a value tainted by an
    argument (argument position → guard block indices).  These are the
    null/bounds/tag checks of the paper's "checked" encapsulations."""
    guards: Dict[int, Set[int]] = {}
    for bb, term in scan_of(body).terminators:
        operand = None
        if term.kind is TerminatorKind.SWITCH_INT:
            operand = term.discr
        elif term.kind is TerminatorKind.ASSERT:
            operand = term.cond
        if operand is None or operand.place is None:
            continue
        for position in taint.get(operand.place.local, ()):
            guards.setdefault(position, set()).add(bb)
    return guards


def _dominated(guards: Dict[int, Set[int]], position: int,
               block: int) -> bool:
    """Is there a guard on ``position`` before ``block``?  Block-index
    order approximates dominance (lowering emits the check's blocks
    before the guarded region's; same heuristic as the source audit)."""
    return any(g < block for g in guards.get(position, ()))


def direct_arg_sinks(body: Body,
                     taint: Dict[int, FrozenSet[int]]) -> List[Tuple]:
    """Unsafe operations in this body whose address/index operand is
    argument-tainted: ``(position, sink kind, block, span)``."""
    sinks: List[Tuple] = []
    if not taint:
        return sinks
    scan = scan_of(body)

    def taints_of(local: int) -> FrozenSet[int]:
        base, _proj = scan.ref_chain(local)
        return taint.get(local, frozenset()) | taint.get(base, frozenset())

    for bb, _i, stmt in scan.statements:
        if not stmt.in_unsafe or stmt.kind is not StatementKind.ASSIGN:
            continue
        places = []
        if stmt.place.has_deref:
            places.append(stmt.place)
        rv = stmt.rvalue
        if rv is not None and rv.kind not in (RvalueKind.REF,
                                              RvalueKind.ADDRESS_OF):
            places.extend(op.place for op in rv.operands
                          if op.place is not None and op.place.has_deref)
        for place in places:
            base, _proj = scan.ref_chain(place.local)
            if not (body.local_ty(place.local).is_raw_ptr
                    or body.local_ty(base).is_raw_ptr):
                continue          # deref of a safe reference
            for position in sorted(taints_of(place.local)):
                sinks.append((position, "deref", bb, stmt.span))

    for bb, term in scan.calls:
        if not term.in_unsafe:
            continue
        for kind, index in UNSAFE_SINK_OPS.get(term.func.builtin_op, ()):
            if index >= len(term.args) or term.args[index].place is None:
                continue
            for position in sorted(taints_of(term.args[index].place.local)):
                sinks.append((position, kind, bb, term.span))
    return sinks


def delegation_sites(body: Body) -> List[Tuple[int, int, Span]]:
    """Arguments forwarded from inside an unsafe region into an
    ``unsafe fn`` / FFI / unresolved callee:
    ``(position, block, span)``."""
    out: List[Tuple[int, int, Span]] = []
    scan = scan_of(body)
    for bb, term in scan.calls:
        if not term.in_unsafe:
            continue
        func = term.func
        unsafe_callee = func.is_unsafe \
            or func.kind is FuncKind.UNKNOWN \
            or func.builtin_op is BuiltinOp.FFI
        if not unsafe_callee or func.builtin_op in UNSAFE_SINK_OPS:
            continue          # modeled sinks are handled precisely
        for arg in term.args:
            if arg.place is None:
                continue
            base, _proj = scan.ref_chain(arg.place.local)
            if 0 < base <= body.arg_count:
                out.append((base - 1, bb, term.span))
    return out


def _born_skeleton(body: Body) -> Tuple:
    """Body-only half of :func:`unsafe_born_locals`, cached on the scan:
    ``(mints, copy_edges, call_edges)`` — the locals minted unsafe in
    this body, the copy/cast flow edges the provenance travels along,
    and the ``(dest, callee key)`` call results whose unsafety depends
    on callee summaries."""

    def compute() -> Tuple:
        scan = scan_of(body)
        mints: Set[int] = set()
        copy_edges: List[Tuple[int, Tuple[int, ...]]] = []
        call_edges: List[Tuple[int, str]] = []
        for _bb, _i, stmt in scan.statements:
            if stmt.kind is not StatementKind.ASSIGN \
                    or not stmt.place.is_local or stmt.rvalue is None:
                continue
            dest = stmt.place.local
            rv = stmt.rvalue
            if stmt.in_unsafe and rv.kind is RvalueKind.CAST \
                    and rv.cast_kind in _RAW_MINT_CASTS \
                    and rv.cast_ty.is_raw_ptr:
                mints.add(dest)
            elif rv.kind in (RvalueKind.USE, RvalueKind.CAST):
                sources = tuple(op.place.local for op in rv.operands
                                if op.place is not None)
                if sources:
                    copy_edges.append((dest, sources))
        for _bb, term in scan.calls:
            if term.destination is None or not term.destination.is_local:
                continue
            dest = term.destination.local
            func = term.func
            if term.in_unsafe and func.builtin_op is not None \
                    and func.is_unsafe \
                    and body.local_ty(dest).is_raw_ptr:
                mints.add(dest)
            elif func.kind in (FuncKind.USER, FuncKind.CLOSURE):
                call_edges.append((dest, func.user_fn))
        return frozenset(mints), tuple(copy_edges), tuple(call_edges)

    return scan_of(body).memo("born_skeleton", compute)


def unsafe_born_locals(body: Body, summaries=None) -> Set[int]:
    """Locals that may hold a raw pointer *born in an unsafe region*:
    minted by a ref/int→raw cast inside unsafe, returned by ``alloc`` or
    an unsafe builtin, or returned by a callee whose summary says so.
    Propagates through copies and further casts (a later safe-context
    cast does not launder the provenance)."""
    mints, copy_edges, call_edges = _born_skeleton(body)
    born: Set[int] = set(mints)
    if summaries is not None:
        for dest, callee in call_edges:
            callee_summary = summaries.get(callee)
            if callee_summary is not None and \
                    callee_summary.unsafe_provenance.returns_unsafe_ptr:
                born.add(dest)
    if not born:
        return born
    changed = True
    while changed:
        changed = False
        for dest, sources in copy_edges:
            if dest not in born and any(s in born for s in sources):
                born.add(dest)
                changed = True
    return born


def count_unsafe_sites(body: Body) -> int:
    """Direct MIR statements/terminators lowered from an unsafe region."""

    def compute() -> int:
        scan = scan_of(body)
        count = sum(1 for _bb, _i, stmt in scan.statements
                    if stmt.in_unsafe)
        count += sum(1 for _bb, term in scan.terminators
                     if term.in_unsafe)
        return count

    return scan_of(body).memo("unsafe_sites", compute)


def compute_unsafe_provenance(body: Body, summaries,
                              user_sites) -> UnsafeProvenance:
    """The full per-function component: direct facts plus callee facts
    composed through the call sites in ``user_sites`` (the engine's
    ``(block, terminator, callee key, arg sources)`` inventory).

    Composition only grows as callee summaries grow — monotone, so the
    SCC worklist converges.
    """
    # Fast path for the dominant case: a body with no unsafe code whose
    # callees all have bottom provenance can only produce the bottom
    # element (sinks/delegations need ``in_unsafe`` sites, composed
    # facts need a non-bottom callee) — skip taint/guard/birth analysis.
    if not scan_of(body).has_unsafe:
        for _block, _term, callee, _sources in user_sites:
            callee_summary = summaries.get(callee)
            if callee_summary is not None \
                    and not callee_summary.unsafe_provenance.is_bottom:
                break
        else:
            return _BOTTOM

    taint = arg_taint(body)
    guards = scan_of(body).memo(
        "guard_blocks", lambda: guard_blocks(body, taint))

    arg_sinks: Dict[int, Tuple[str, Optional[ProvenanceHop], Span]] = {}
    guarded: Set[int] = set()
    delegated: Set[int] = set()

    direct_sinks = scan_of(body).memo(
        "direct_sinks", lambda: direct_arg_sinks(body, taint))
    delegations = scan_of(body).memo(
        "delegations", lambda: delegation_sites(body))
    for position, kind, block, span in direct_sinks:
        if _dominated(guards, position, block):
            guarded.add(position)
        else:
            arg_sinks.setdefault(position, (kind, None, span))

    for position, block, _span in delegations:
        if _dominated(guards, position, block):
            guarded.add(position)
        else:
            delegated.add(position)

    for block, term, callee, sources in user_sites:
        callee_summary = summaries.get(callee)
        if callee_summary is None:
            continue
        prov = callee_summary.unsafe_provenance
        for callee_pos in sorted(prov.arg_sinks):
            kind, _hop, _span = prov.arg_sinks[callee_pos]
            if callee_pos >= len(sources) or sources[callee_pos] is None:
                continue
            position = sources[callee_pos]
            if _dominated(guards, position, block):
                guarded.add(position)
            else:
                arg_sinks.setdefault(position,
                                     (kind, (callee, callee_pos), term.span))
        for callee_pos in sorted(prov.delegated_args):
            if callee_pos >= len(sources) or sources[callee_pos] is None:
                continue
            position = sources[callee_pos]
            if _dominated(guards, position, block):
                guarded.add(position)
            else:
                delegated.add(position)

    born = unsafe_born_locals(body, summaries)

    return UnsafeProvenance(
        arg_sinks=arg_sinks,
        guarded_args=frozenset(guarded),
        delegated_args=frozenset(delegated),
        returns_unsafe_ptr=0 in born,
        unsafe_sites=count_unsafe_sites(body))


# ---------------------------------------------------------------------------
# §5.3 classification
# ---------------------------------------------------------------------------

CHECKED = "checked"
UNCHECKED = "unchecked"
CALLER_DELEGATED = "caller-delegated"


def classify_interior_unsafe(prov: UnsafeProvenance) -> str:
    """The paper's §5.3 encapsulation verdict for one interior-unsafe
    function: ``unchecked`` when a caller-controlled input reaches an
    unsafe sink unguarded, ``caller-delegated`` when inputs are only
    forwarded into unsafe callees (the obligation moves up, it is not
    discharged), ``checked`` otherwise (guards present, or the unsafe
    region is self-contained)."""
    if prov.arg_sinks:
        return UNCHECKED
    if prov.delegated_args:
        return CALLER_DELEGATED
    return CHECKED
