"""One frozen, validated configuration object for the whole pipeline.

Before this module existed every layer threaded its own keyword
arguments: ``interprocedural=`` through :class:`AnalysisContext` and
:class:`SummaryEngine`, detector lists through ``run_detectors``, and the
executor would have added ``jobs=`` / ``cache_dir=`` on top.
:class:`AnalysisConfig` replaces all of them — it is constructed (and
validated) in exactly one place and handed down unchanged, so a bad
value fails fast at the API boundary instead of deep inside a solve.

The legacy keyword arguments keep working for one release: call sites
that still pass ``interprocedural=`` get the behaviour they asked for
plus a :class:`DeprecationWarning` pointing at the replacement (see
:func:`coerce_config`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Optional, Tuple

#: Default maximum number of on-disk summary-cache entries before the
#: executor evicts the oldest ones.
DEFAULT_CACHE_LIMIT = 65536


@dataclass(frozen=True)
class AnalysisConfig:
    """Every knob of the analysis pipeline, validated once.

    * ``interprocedural`` — the ablation switch: ``False`` collapses every
      function summary to the bottom element.
    * ``detectors`` — detector names to run (``None`` = the full
      registry); validated against the registry by the API layer.
    * ``jobs`` — worker fan-out for the executor; ``1`` keeps
      everything in-process.
    * ``executor_backend`` — how ``jobs > 1`` fans out: ``"process"``
      (stateless worker processes, every task ships its MIR),
      ``"persistent"`` (a fork-server pool whose initializer ships the
      compiled MIR once; tasks carry only schedules and callee
      summaries), or ``"thread"`` (same address space, nothing pickled).
      Findings are byte-identical across all three at any ``jobs``.
    * ``cache_dir`` / ``use_cache`` — the content-addressed on-disk
      summary cache.  ``cache_dir=None`` disables caching regardless of
      ``use_cache`` (there is nowhere to put it); ``use_cache=False`` is
      the ``--no-cache`` escape hatch that keeps the directory argument
      but skips both lookups and stores.
    * ``report_cache`` — the whole-file report tier above the summary
      cache (batch entry points only): an unchanged source skips
      compile + detectors entirely.  Needs ``cache_dir``.
    * ``cache_limit`` — shard-file cap before oldest-first eviction.
    * ``seed`` — deterministic seed forwarded to corpus generation and
      interpreter schedules.
    * ``emit_bounds_checks`` — compile-time switch for the §4.1
      perf-comparison build.
    * ``audit_unsafe`` — enables the ``interior-unsafe-audit`` detector's
      per-function classification findings (the §5 encapsulation report
      behind ``minirust audit-unsafe``).  Off by default so a plain
      ``check`` never mixes audit rows into bug findings.
    * ``deadlock_cycle_bound`` — maximum lock-graph cycle length the
      deadlock detector searches for (the bound of its Johnson-style
      elementary-circuit enumeration).  Real-world deadlocks in the
      studied bug set involve two or three locks; the default of 4 keeps
      the search linear in practice while leaving headroom.
    * ``unwind_edges`` — materialise unwind successor edges and
      landing-pad cleanup blocks on may-panic terminators (bounds
      checks, ``unwrap``, ``RefCell`` borrows, explicit ``panic!``,
      arithmetic guards) so dataflow and the detectors see panic paths.
      ``False`` is the ``--no-unwind-edges`` ablation: the CFG keeps the
      pre-unwind straight-line-success shape and the panic-path
      detectors go quiet.
    """

    interprocedural: bool = True
    detectors: Optional[Tuple[str, ...]] = None
    jobs: int = 1
    executor_backend: str = "process"
    cache_dir: Optional[str] = None
    use_cache: bool = True
    report_cache: bool = True
    cache_limit: int = DEFAULT_CACHE_LIMIT
    seed: int = 0
    emit_bounds_checks: bool = True
    audit_unsafe: bool = False
    deadlock_cycle_bound: int = 4
    unwind_edges: bool = True

    EXECUTOR_BACKENDS = ("process", "persistent", "thread")

    def __post_init__(self) -> None:
        if not isinstance(self.jobs, int) or isinstance(self.jobs, bool) \
                or self.jobs < 1:
            raise ValueError(
                f"jobs must be a positive integer, got {self.jobs!r}")
        if self.executor_backend not in self.EXECUTOR_BACKENDS:
            raise ValueError(
                f"executor_backend must be one of "
                f"{'/'.join(self.EXECUTOR_BACKENDS)}, "
                f"got {self.executor_backend!r}")
        if not isinstance(self.cache_limit, int) or self.cache_limit < 1:
            raise ValueError(
                f"cache_limit must be a positive integer, "
                f"got {self.cache_limit!r}")
        if not isinstance(self.deadlock_cycle_bound, int) \
                or isinstance(self.deadlock_cycle_bound, bool) \
                or self.deadlock_cycle_bound < 2:
            raise ValueError(
                f"deadlock_cycle_bound must be an integer >= 2 (a cycle "
                f"needs two locks), got {self.deadlock_cycle_bound!r}")
        if self.cache_dir is not None and not isinstance(self.cache_dir, str):
            raise ValueError(
                f"cache_dir must be a string path or None, "
                f"got {type(self.cache_dir).__name__}")
        if self.detectors is not None:
            if isinstance(self.detectors, str):
                raise ValueError(
                    "detectors must be a sequence of names, not a string")
            # Freeze whatever sequence the caller handed us.
            object.__setattr__(self, "detectors", tuple(self.detectors))
            for name in self.detectors:
                if not isinstance(name, str) or not name:
                    raise ValueError(
                        f"detector names must be non-empty strings, "
                        f"got {name!r}")

    @property
    def caching_enabled(self) -> bool:
        return self.use_cache and self.cache_dir is not None

    def with_(self, **changes) -> "AnalysisConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)


def coerce_config(config: Optional[AnalysisConfig] = None,
                  *, interprocedural: Optional[bool] = None,
                  _owner: str = "this API") -> AnalysisConfig:
    """Resolve the (new) ``config`` object against (legacy) kwargs.

    ``interprocedural=`` predates :class:`AnalysisConfig`; passing it
    still works for one release but warns.  A bool in the ``config``
    position is the old positional ``interprocedural`` argument and gets
    the same treatment.
    """
    if isinstance(config, bool):          # legacy positional call shape
        interprocedural, config = config, None
    if config is not None and not isinstance(config, AnalysisConfig):
        raise TypeError(
            f"config must be an AnalysisConfig, "
            f"got {type(config).__name__}")
    if interprocedural is not None:
        warnings.warn(
            f"passing interprocedural= to {_owner} is deprecated; "
            f"pass config=AnalysisConfig(interprocedural=...) instead",
            DeprecationWarning, stacklevel=3)
        return (config or AnalysisConfig()).with_(
            interprocedural=interprocedural)
    return config or AnalysisConfig()
