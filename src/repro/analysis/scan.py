"""Per-body scan cache: flatten the MIR once, derive facts once.

Profiling the summary solve (ROADMAP's "hot path" item) showed the
engine spending most of its wall time not in lattice joins but in
*re-walking bodies*: ``Body.iter_statements`` generator resumptions,
``resolve_ref_chain`` rebuilding its assignment map on every call, and
every summarise iteration re-deriving deref sites, taint seeds and
guard chains that only depend on the body text.  :class:`BodyScan`
computes those structural facts exactly once per body and memoises the
pure per-local queries; the analysis modules (``summaries``,
``unsafe_prop``, ``lifetime``, ``points_to``, ``callgraph``) all route
through it instead of walking the block list themselves.

The scan lives in ``body.__dict__`` under a non-field attribute, so

* ``canonical(body)`` (the cache fingerprint) never sees it — fingerprints
  stay byte-identical with pre-scan releases, which is what keeps the
  v2 summary-cache keys valid;
* dataclass equality ignores it;
* ``Body.__getstate__`` strips it, so worker-task payloads and cache
  entries never ship derived state (workers rebuild their own scans).

Derived facts that belong to *other* modules (deref sites, taint,
points-to skeletons) are stored in the scan's generic ``cache`` dict
under module-chosen keys — the scan stays free of imports from the
analysis layer, so there are no cycles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.mir.nodes import Body, RvalueKind, StatementKind, TerminatorKind

#: ``body.__dict__`` attribute holding the scan.  Leading underscore:
#: ``Body.__getstate__`` strips every non-field attribute so pickles
#: (worker payloads, cache entries) never carry derived state.
_ATTR = "_scan_cache"


class BodyScan:
    """Flattened MIR views plus memoised per-local queries for one body."""

    __slots__ = (
        "body",
        "statements",        # tuple of (block, index, stmt)
        "terminators",       # tuple of (block, terminator)
        "calls",             # tuple of (block, term) for CALL with a func
        "has_unsafe",        # any statement/terminator lowered from unsafe
        "first_assigns",     # local -> first rvalue assigned (is_local dests)
        "ref_map",           # local -> base of its last `= &base` assignment
        "drop_locals",       # locals with an explicit DROP statement
        "_ref_chains",       # resolve_ref_chain memo
        "cache",             # generic slot store for other modules' facts
    )

    def __init__(self, body: Body) -> None:
        self.body = body
        statements: List[Tuple[int, int, object]] = []
        terminators: List[Tuple[int, object]] = []
        calls: List[Tuple[int, object]] = []
        first_assigns: Dict[int, object] = {}
        ref_map: Dict[int, int] = {}
        drop_locals: List[int] = []
        has_unsafe = False
        for block in body.blocks:
            # Landing pads synthesised by unwind lowering hold only the
            # pending drops of the panic path; the scan models the
            # fall-through program (drop_locals, first_assigns, value
            # chains), so they are skipped — pad effects are read from
            # the CFG edges, not the flattened views.
            if block.cleanup:
                continue
            bb = block.index
            for i, stmt in enumerate(block.statements):
                statements.append((bb, i, stmt))
                if stmt.in_unsafe:
                    has_unsafe = True
                if stmt.kind is StatementKind.ASSIGN and stmt.place.is_local:
                    local = stmt.place.local
                    if local not in first_assigns:
                        first_assigns[local] = stmt.rvalue
                    rv = stmt.rvalue
                    if rv is not None and rv.kind in (
                            RvalueKind.REF, RvalueKind.ADDRESS_OF) \
                            and rv.place.is_local:
                        ref_map[local] = rv.place.local
                elif stmt.kind is StatementKind.DROP \
                        and stmt.place.is_local:
                    drop_locals.append(stmt.place.local)
            term = block.terminator
            if term is not None:
                terminators.append((bb, term))
                if term.in_unsafe:
                    has_unsafe = True
                if term.kind is TerminatorKind.CALL \
                        and term.func is not None:
                    calls.append((bb, term))
        self.statements = tuple(statements)
        self.terminators = tuple(terminators)
        self.calls = tuple(calls)
        self.has_unsafe = has_unsafe
        self.first_assigns = first_assigns
        self.ref_map = ref_map
        self.drop_locals = tuple(drop_locals)
        self._ref_chains: Dict[int, Tuple[int, Tuple]] = {}
        self.cache: Dict[str, object] = {}

    # -- memoised per-local queries -----------------------------------------

    def ref_chain(self, local: int, max_hops: int = 8) -> Tuple[int, Tuple]:
        """Memoised :func:`repro.analysis.lifetime.resolve_ref_chain`:
        the base local (and field projection) a reference temp denotes."""
        if max_hops == 8:
            hit = self._ref_chains.get(local)
            if hit is not None:
                return hit
        assigns = self.first_assigns
        current = local
        projection: Tuple = ()
        for _ in range(max_hops):
            rv = assigns.get(current)
            if rv is None:
                break
            if rv.kind in (RvalueKind.REF, RvalueKind.ADDRESS_OF):
                projection = tuple(p for p in rv.place.projection
                                   if p.kind == "field") + projection
                current = rv.place.local
                continue
            if rv.kind is RvalueKind.USE \
                    and rv.operands[0].place is not None \
                    and rv.operands[0].place.is_local:
                current = rv.operands[0].place.local
                continue
            if rv.kind is RvalueKind.CAST \
                    and rv.operands[0].place is not None \
                    and rv.operands[0].place.is_local:
                current = rv.operands[0].place.local
                continue
            break
        result = (current, projection)
        if max_hops == 8:
            self._ref_chains[local] = result
        return result

    def memo(self, key: str, compute):
        """Fetch-or-compute a derived fact owned by another module."""
        hit = self.cache.get(key)
        if hit is None:
            hit = self.cache[key] = compute()
        return hit


def scan_of(body: Body) -> BodyScan:
    """The body's scan, built on first use and cached on the body object
    (outside its dataclass fields, stripped from pickles)."""
    scan = body.__dict__.get(_ATTR)
    if scan is None:
        scan = BodyScan(body)
        body.__dict__[_ATTR] = scan
    return scan
