"""Per-function summaries: the facts the :class:`SummaryEngine` composes.

Zhou et al. (arXiv 2310.10298) and Zhang et al. (arXiv 2401.01114) both
scale whole-program unsafe-memory / deadlock analysis the same way: walk
the call graph bottom-up and compute, once per function, a *summary* that
callers can apply at their call sites without re-analysing the callee.
:class:`FunctionSummary` is our summary lattice; every field is a may-set
(or a flag that only flips ``False → True``), so iterating a strongly
connected component of the call graph to a fixpoint converges exactly.

Fields and their join direction:

* ``returns`` — what the return value may alias: argument positions
  (ints), ``"null"``, ``"heap"`` (a fresh allocation made somewhere in the
  call tree), ``"unknown"``.  Subsumes the old ``compute_return_summaries``
  shape (which only knew args and null).
* ``const_return`` — the constant integer the function always returns, if
  any (feeds the buffer-overflow detector's constant propagation).
* ``may_drop_args`` — argument positions whose (by-value, droppable) value
  may be dropped by the time the function returns; the value is the next
  ``(function, arg position)`` hop of the drop chain, with a self-hop
  ``(own key, position)`` meaning "dropped in this very body".
* ``arg_escapes`` — argument positions whose value is passed on to
  unknown/FFI code; same hop encoding.
* ``locks`` — caller-translatable locks the function may acquire
  (transitively, same thread); the value is ``None`` for a direct
  acquisition or the ``(callee, callee lock)`` hop it came through.
* ``locks_held_on_return`` — locks still held when the function returns
  (a returned guard), in the same 4-tuple id format.
* ``acquires_any_lock`` — does any lock acquisition happen in the call
  tree (used by interior-mutability suppression)?
* ``calls_unknown`` — does the call tree reach FFI or an unresolved
  function?  The soundness fallback bit: facts about such functions are
  lower-bounds only.
* ``unsafe_provenance`` — the unsafe-provenance component (paper §5.3):
  which arguments may reach an unsafe deref/index/offset unguarded, which
  are sanitised by a dominating check, which are delegated to unsafe
  callees, and whether the return value carries a raw pointer born in an
  unsafe region.  See :mod:`repro.analysis.unsafe_prop`.
* ``lock_orders`` — ordered lock-acquisition pairs observed in the call
  tree, in caller-translatable 4-tuple ids: ``(first, second) → span``
  means the function may acquire ``second`` while holding ``first``.
  Ids are ``"arg"`` (translated per call site), ``"static"``, or
  ``"heap"`` — heap allocation-site ids are program-unique
  (``"fnkey:bb"``), so a pair over Arc-allocated mutexes stays globally
  identifiable as it propagates up the call chain.  Composing these
  through call sites is what lets the lock-order detector see an ABBA
  cycle whose two acquisitions live in a helper taking both locks as
  arguments, and what gives the cross-thread lock graph
  (:mod:`repro.analysis.lockgraph`) its per-thread-root edges.
* ``shared_accesses`` — the "accesses-shared-under-locks" component: every
  read/write the call tree performs through a pointer to potentially
  thread-shared data, keyed by :data:`AccessKey` ``(location, is_write,
  lockset)``.  The location is caller-translatable (``("arg", pos, proj)``)
  or globally identifiable (``("heap", site, proj)`` / ``("static", name,
  proj)``); the lockset is the set of lock ids (the 4-tuple format, heap
  ids included) held at the access — composed callee accesses gain the
  locks the caller holds at the call site, which is how protection through
  helper functions is seen.  The value is ``(hop, span)``: the
  ``(callee, callee access key)`` hop the entry came through (``None``
  when direct) and the span of the access / call site.

* ``panic`` — the panic-effects component (:mod:`repro.analysis.panic`):
  a may-panic bit with its source vocabulary and hop provenance, the
  moved-out-not-reinitialised window at this body's panic points, and
  the drop obligations live on unwind.  What the ``panic-safety`` /
  ``bad-drop`` detectors and ``panic_chain`` provenance consume.

Lock ids are the caller-translatable 4-tuples of
:func:`repro.analysis.callgraph.direct_locks`:
``(kind_of_id, payload, projection, lock_kind)`` with ``kind_of_id`` one
of ``"arg"`` / ``"static"`` / ``"heap"`` (heap ids only appear after the
engine resolves an arg-relative lock through points-to).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.panic import PanicEffects
from repro.analysis.scan import scan_of
from repro.analysis.unsafe_prop import UnsafeProvenance, restore_slots_state
from repro.hir.builtins import BuiltinOp
from repro.lang.source import Span
from repro.mir.nodes import Body, RvalueKind, StatementKind, TerminatorKind

#: ``(kind_of_id, payload, projection, lock_kind)``.
LockId = Tuple

#: One hop of a cross-function effect chain: (function key, arg position).
EffectHop = Tuple[str, int]

#: Shared-access summary key: ``(location, is_write, lockset)`` where
#: location is ``("arg", pos, proj)`` / ``("heap", site, proj)`` /
#: ``("static", name, proj)`` and lockset is a frozenset of lock ids.
AccessKey = Tuple


@dataclass(slots=True)
class FunctionSummary:
    """Composable interprocedural facts about one function.

    ``slots=True``: summaries are the densest objects the solve
    allocates (one per function per worklist iteration) — slots drop the
    per-instance dict and make field access / equality comparison during
    the worklist's change check measurably cheaper.
    """

    key: str
    returns: FrozenSet = frozenset()
    const_return: Optional[int] = None
    may_drop_args: Dict[int, EffectHop] = field(default_factory=dict)
    arg_escapes: Dict[int, EffectHop] = field(default_factory=dict)
    locks: Dict[LockId, Optional[Tuple[str, LockId]]] = \
        field(default_factory=dict)
    locks_held_on_return: FrozenSet[LockId] = frozenset()
    acquires_any_lock: bool = False
    calls_unknown: bool = False
    #: AccessKey → (hop or None, span) — see the module docstring.
    shared_accesses: Dict[AccessKey, Tuple] = field(default_factory=dict)
    #: The §5.3 unsafe-provenance component (see the module docstring).
    unsafe_provenance: UnsafeProvenance = \
        field(default_factory=UnsafeProvenance)
    #: (first lock, second lock) → span of the second acquisition.
    lock_orders: Dict[Tuple[LockId, LockId], Span] = \
        field(default_factory=dict)
    #: The panic-effects component (may-panic bit with source vocabulary
    #: and hop provenance, moved-at-panic window, unwind drop
    #: obligations) — see :mod:`repro.analysis.panic`.
    panic: PanicEffects = field(default_factory=PanicEffects)

    def drops_arg(self, position: int) -> bool:
        return position in self.may_drop_args

    def lock_kinds(self) -> Set[str]:
        return {lock[3] for lock in self.locks}

    def __setstate__(self, state):
        restore_slots_state(self, state)


_EXTRACT_OPS = frozenset({BuiltinOp.UNWRAP, BuiltinOp.EXPECT,
                          BuiltinOp.TAKE, BuiltinOp.OK_METHOD})


def value_chain(body: Body, seed: int) -> Set[int]:
    """Locals the value initially in ``seed`` may flow through (moves and
    unwrap-style extractions).  Memoised per seed on the body's scan —
    the may-drop loop re-requests the same chains every iteration."""
    scan = scan_of(body)
    key = ("value_chain", seed)
    cached = scan.cache.get(key)
    if cached is None:
        cached = scan.cache[key] = frozenset(_compute_value_chain(scan, seed))
    return set(cached)


def _compute_value_chain(scan, seed: int) -> Set[int]:
    ref_map = scan.ref_map
    chain = {seed}
    changed = True
    while changed:
        changed = False
        for _bb, _i, stmt in scan.statements:
            if stmt.kind is StatementKind.ASSIGN and stmt.place.is_local \
                    and stmt.rvalue is not None \
                    and stmt.rvalue.kind is RvalueKind.USE:
                op = stmt.rvalue.operands[0]
                if op.place is not None and op.place.is_local \
                        and op.place.local in chain \
                        and stmt.place.local not in chain \
                        and not op.place.projection:
                    chain.add(stmt.place.local)
                    changed = True
        for _bb, term in scan.calls:
            if term.func.builtin_op in _EXTRACT_OPS and term.args:
                arg = term.args[0]
                if arg.place is not None and arg.place.is_local:
                    src = ref_map.get(arg.place.local, arg.place.local)
                    if src in chain and term.destination is not None \
                            and term.destination.is_local \
                            and term.destination.local not in chain:
                        chain.add(term.destination.local)
                        changed = True
    return chain


def owned_value_args(body: Body) -> List[int]:
    """Argument positions (0-based) passed by value whose type runs drop
    glue — the candidates for may-drop / escape facts."""

    def compute() -> Tuple[int, ...]:
        return tuple(
            position for position in range(body.arg_count)
            if body.local_ty(position + 1).needs_drop
            and not body.local_ty(position + 1).is_pointer_like)

    return list(scan_of(body).memo("owned_value_args", compute))


def term_arg_sources(body: Body, term) -> List[Optional[int]]:
    """For each call operand: the caller argument position it carries
    (following reference/copy chains), or None.  Memoised per call
    terminator on the body's scan."""
    scan = scan_of(body)
    key = ("arg_sources", id(term))
    cached = scan.cache.get(key)
    if cached is None:
        sources: List[Optional[int]] = []
        for arg in term.args:
            if arg.place is None:
                sources.append(None)
                continue
            base, _proj = scan.ref_chain(arg.place.local)
            sources.append(base - 1 if 0 < base <= body.arg_count else None)
        cached = scan.cache[key] = tuple(sources)
    return list(cached)


def translate_lock(lock: LockId,
                   sources: List[Optional[int]]) -> Optional[LockId]:
    """Translate a callee lock id into the caller's frame using the call
    site's operand → caller-argument mapping (statics and heap sites are
    program-global ids and pass through unchanged)."""
    if lock[0] in ("static", "heap"):
        return lock
    if lock[0] == "arg":
        index = lock[1]
        if index < len(sources) and sources[index] is not None:
            return ("arg", sources[index], lock[2], lock[3])
    return None


# ---------------------------------------------------------------------------
# Shared-access collection (feeds the data-race summary component)
# ---------------------------------------------------------------------------

def _fields_of(projection) -> Tuple:
    return tuple((p.field_name or str(p.field_index))
                 for p in projection if p.kind == "field")


def deref_access_sites(body: Body) -> List[Tuple]:
    """Every read/write that goes *through* a pointer or reference in
    ``body``: ``(point, base_local, projection, is_write, span)``.

    The base local is resolved through reference/cast chains, so a write
    ``*p = v`` with ``p = &x.f as *mut _`` reports base ``x`` with
    projection ``("f",)``.  Taking an address (``&place``) is not an
    access; atomics go through their own builtin calls and are excluded —
    they synchronise by construction.

    Cached on the body's scan: the site list only depends on the body
    text, and the shared-access summariser re-reads it every worklist
    iteration."""
    return scan_of(body).memo(
        "deref_sites", lambda: _compute_deref_sites(body))


def _compute_deref_sites(body: Body) -> List[Tuple]:
    scan = scan_of(body)
    sites: List[Tuple] = []
    for bb, i, stmt in scan.statements:
        if stmt.kind is not StatementKind.ASSIGN:
            continue
        point = (bb, i)
        if stmt.place.has_deref:
            base, proj = scan.ref_chain(stmt.place.local)
            combined = _fields_of(proj) + _fields_of(stmt.place.projection)
            sites.append((point, base, combined, True, stmt.span))
        rv = stmt.rvalue
        if rv is None or rv.kind in (RvalueKind.REF, RvalueKind.ADDRESS_OF):
            continue
        for op in rv.operands:
            if op.place is not None and op.place.has_deref:
                base, proj = scan.ref_chain(op.place.local)
                combined = _fields_of(proj) + _fields_of(op.place.projection)
                sites.append((point, base, combined, False, stmt.span))
    for bb, term in scan.calls:
        op = term.func.builtin_op
        if op not in (BuiltinOp.PTR_READ, BuiltinOp.PTR_WRITE):
            continue
        if not term.args or term.args[0].place is None:
            continue
        point = (bb, len(body.blocks[bb].statements))
        base, proj = scan.ref_chain(term.args[0].place.local)
        sites.append((point, base, _fields_of(proj),
                      op is BuiltinOp.PTR_WRITE, term.span))
    return sites


def translate_access_loc(loc: Tuple,
                         sources: List[Optional[int]]) -> Optional[Tuple]:
    """Translate a callee access location into the caller's frame by the
    argument-position route (heap sites and statics are global ids and
    pass through unchanged)."""
    if loc[0] in ("heap", "static"):
        return loc
    if loc[0] == "arg":
        index = loc[1]
        if index < len(sources) and sources[index] is not None:
            return ("arg", sources[index], loc[2])
    return None


def opaque_lock(callee: str, lock: Tuple) -> Tuple:
    """A lockset entry for a callee lock the caller cannot name.  It never
    matches another lock id, but its presence keeps the access marked as
    lock-protected rather than silently dropping the protection."""
    return ("opaque", callee) + tuple(lock)


# ---------------------------------------------------------------------------
# Canonical serialization and fingerprints (feeds the executor's cache)
# ---------------------------------------------------------------------------

def canonical(obj) -> str:
    """A deterministic textual form of analysis values.

    ``repr`` is *not* stable enough for content-addressed cache keys:
    set/frozenset iteration follows string hashing, which is randomised
    per process (``PYTHONHASHSEED``), and summary locksets are
    frozensets.  This walk sorts every unordered container and expands
    dataclasses field-by-field, so equal values — whether computed in
    this process, in a worker, or loaded from a previous run's cache —
    always canonicalise to the same bytes.
    """
    if isinstance(obj, (frozenset, set)):
        return "{" + ",".join(sorted(canonical(x) for x in obj)) + "}"
    if isinstance(obj, dict):
        return "{" + ",".join(sorted(
            canonical(k) + ":" + canonical(v) for k, v in obj.items())) + "}"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(canonical(x) for x in obj) + "]"
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if is_dataclass(obj) and not isinstance(obj, type):
        inner = ",".join(f"{f.name}={canonical(getattr(obj, f.name))}"
                         for f in fields(obj))
        return f"{type(obj).__name__}({inner})"
    return repr(obj)


def summary_fingerprint(summary: "FunctionSummary") -> str:
    """Content hash of a summary's *meaning* (order-insensitive).

    Two summaries with equal facts fingerprint identically even when
    their dicts were populated in different orders or their frozensets
    iterate differently — the property the executor's cache keys rely on
    for early cutoff (an edited callee whose summary did not change does
    not invalidate its callers).
    """
    return hashlib.sha256(canonical(summary).encode()).hexdigest()
