"""Per-analysis intern table for summary atoms.

Summary lattices are built from small immutable tuples — lock identities
``("static", name, proj, kind)``, access locations ``("arg", pos,
proj)``, access keys ``(loc, is_write, lockset)`` — that recur across
thousands of summaries: every function touching the same static lock
carries an equal-but-distinct copy of its id.  Interning maps every
equal atom to one canonical object, which

* collapses the duplicate tuples (memory: one object per distinct atom),
* makes the engine's per-iteration summary comparisons cheap — dict and
  frozenset equality shortcut on identical elements (``PyObject_RichCompare``
  hits the identity fast path), so the SCC worklist's "did anything
  change?" check stops re-hashing deep tuple trees,
* keeps cached hashes warm: one canonical object's hash is computed once
  and reused at every dict/frozenset membership test instead of being
  recomputed per copy.

One :class:`Interner` lives per :class:`~repro.analysis.engine.SummaryEngine`
(per-analysis, as the tentpole specifies) — tables are never shared
across programs, so an engine's lifetime bounds the table's.  Hit/miss
counts surface as ``analysis.intern.{hits,misses}`` gauges for the
micro-benchmark.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple


class Interner:
    """Canonicalising table: equal atoms in, one shared object out."""

    __slots__ = ("_table", "hits", "misses")

    def __init__(self) -> None:
        self._table: Dict[object, object] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._table)

    def intern(self, atom):
        """The canonical object equal to ``atom`` (``atom`` itself on
        first sight).  Atoms must be hashable."""
        table = self._table
        canonical = table.get(atom)
        if canonical is not None:
            self.hits += 1
            return canonical
        self.misses += 1
        table[atom] = atom
        return atom

    def intern_set(self, atoms) -> FrozenSet:
        """A canonical frozenset whose members are interned atoms.
        The set itself is interned too (locksets repeat heavily)."""
        return self.intern(frozenset(self.intern(a) for a in atoms))

    def intern_tuple(self, atoms) -> Tuple:
        """A canonical tuple of interned atoms."""
        return self.intern(tuple(self.intern(a) for a in atoms))
