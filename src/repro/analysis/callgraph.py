"""Call graph and inter-procedural lock summaries.

The paper's double-lock detector "covers the case where two lock
acquisitions are in different functions by performing inter-procedural
analysis" (§7.2).  The summary computed here maps every function to the
set of abstract locks it (transitively) acquires, expressed in terms the
caller can translate: argument positions and statics.

Thread-spawn edges are kept separately — a lock acquired inside a spawned
closure runs on another thread and must *not* be treated as a re-entrant
acquisition by the spawning code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.lifetime import LOCK_ACQUIRE_OPS, resolve_ref_chain
from repro.hir.builtins import BuiltinOp, FuncKind
from repro.lang.source import Span
from repro.lang.types import TyKind
from repro.mir.nodes import (
    Body, Program, RvalueKind, StatementKind, TerminatorKind,
)

# Abstract lock id, caller-translatable: ("arg", index, proj) | ("static", name)
LockId = Tuple


@dataclass
class CallSite:
    caller: str
    callee: str
    block: int
    span: Span
    is_spawn: bool = False
    #: For each callee argument position: the caller argument index that
    #: flows into it (via a direct reference chain), or None.
    arg_sources: List[Optional[int]] = field(default_factory=list)


@dataclass
class CallGraph:
    program: Program
    call_sites: List[CallSite] = field(default_factory=list)
    edges: Dict[str, Set[str]] = field(default_factory=dict)
    spawn_edges: Dict[str, Set[str]] = field(default_factory=dict)
    _lock_summaries: Optional[Dict[str, Set[LockId]]] = \
        field(default=None, repr=False)

    @property
    def lock_summaries(self) -> Dict[str, Set[LockId]]:
        """fn key → abstract locks it may acquire (transitively, same
        thread).  Computed lazily on first access: the
        :class:`repro.analysis.engine.SummaryEngine` subsumes these
        facts, so graph consumers that only need edges never pay for
        the whole-program fixpoint."""
        if self._lock_summaries is None:
            _compute_lock_summaries(self)
        return self._lock_summaries

    def callees(self, key: str) -> Set[str]:
        return self.edges.get(key, set())

    def sites_in(self, key: str) -> List[CallSite]:
        return [s for s in self.call_sites if s.caller == key]

    def transitive_callees(self, key: str,
                           include_spawned: bool = False) -> Set[str]:
        seen: Set[str] = set()
        stack = [key]
        while stack:
            node = stack.pop()
            nexts = set(self.edges.get(node, set()))
            if include_spawned:
                nexts |= self.spawn_edges.get(node, set())
            for nxt in nexts:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def reachable_from_spawn(self) -> Set[str]:
        """Functions that may run on a spawned thread."""
        roots: Set[str] = set()
        for spawned in self.spawn_edges.values():
            roots |= spawned
        result = set(roots)
        for root in roots:
            result |= self.transitive_callees(root, include_spawned=True)
        return result


def _closure_keys_in_args(body: Body, term) -> List[str]:
    keys = []
    for arg in term.args:
        if arg.place is None:
            continue
        ty = body.local_ty(arg.place.local)
        if ty.kind is TyKind.CLOSURE:
            keys.append(ty.name)
    return keys


def _arg_index_of_local(body: Body, local: int) -> Optional[int]:
    base, _proj = resolve_ref_chain(body, local)
    if 0 < base <= body.arg_count:
        return base - 1
    return None


def build_call_graph(program: Program) -> CallGraph:
    graph = CallGraph(program)

    for key, body in program.functions.items():
        graph.edges.setdefault(key, set())
        graph.spawn_edges.setdefault(key, set())
        for bb, term in body.iter_terminators():
            if term.kind is not TerminatorKind.CALL or term.func is None:
                continue
            func = term.func
            if func.builtin_op is BuiltinOp.THREAD_SPAWN:
                for closure_key in _closure_keys_in_args(body, term):
                    graph.spawn_edges[key].add(closure_key)
                    graph.call_sites.append(CallSite(
                        caller=key, callee=closure_key, block=bb,
                        span=term.span, is_spawn=True))
                continue
            callee_key: Optional[str] = None
            if func.kind is FuncKind.USER:
                callee_key = func.user_fn
            elif func.kind is FuncKind.CLOSURE:
                callee_key = func.user_fn
            elif func.builtin_op is BuiltinOp.ONCE_CALL_ONCE:
                # call_once(closure) executes the closure synchronously.
                for closure_key in _closure_keys_in_args(body, term):
                    callee_key = closure_key
            if callee_key is None or callee_key not in program.functions:
                continue
            graph.edges[key].add(callee_key)
            arg_sources = [_arg_index_of_local(body, a.place.local)
                           if a.place is not None else None
                           for a in term.args]
            graph.call_sites.append(CallSite(
                caller=key, callee=callee_key, block=bb, span=term.span,
                arg_sources=arg_sources))

    return graph


def scc_order(program: Program, graph: CallGraph) -> List[List[str]]:
    """Tarjan's SCC algorithm (iterative); emits components in reverse
    topological order — callees before callers.  This is the solve order
    of the :class:`~repro.analysis.engine.SummaryEngine` and the input of
    :func:`wave_partition`."""
    functions = program.functions
    keys = list(functions.keys())
    edges = {key: sorted(c for c in graph.edges.get(key, ())
                         if c in functions) for key in keys}
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = 0
    for root in keys:
        if root in index:
            continue
        work = [(root, iter(edges[root]))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(edges[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    popped = stack.pop()
                    on_stack.discard(popped)
                    component.append(popped)
                    if popped == node:
                        break
                components.append(component)
    return components


def component_callees(component: List[str], graph: CallGraph,
                      program: Program) -> Set[str]:
    """Functions outside ``component`` that its members call (same
    thread) — the summaries a solve of the component depends on."""
    members = set(component)
    out: Set[str] = set()
    for key in component:
        for callee in graph.edges.get(key, ()):
            if callee not in members and callee in program.functions:
                out.add(callee)
    return out


def wave_partition(components: List[List[str]], graph: CallGraph,
                   program: Program) -> List[List[int]]:
    """Group SCC indices into *waves* of mutually independent components.

    Wave ``k`` holds every component whose callees all live in waves
    ``< k`` (leaves are wave 0), i.e. the longest-path depth of the
    condensed call graph.  Components inside one wave share no edges, so
    they can be solved in parallel; solving waves in order preserves the
    bottom-up invariant that every external callee is already converged.
    Within a wave, the original (reverse-topological) component order is
    kept, which is what makes the executor's merge deterministic at any
    worker count.
    """
    comp_of: Dict[str, int] = {}
    for i, component in enumerate(components):
        for key in component:
            comp_of[key] = i
    depth: List[int] = [0] * len(components)
    # components are emitted callees-first, so one forward pass suffices.
    for i, component in enumerate(components):
        d = 0
        for key in component:
            for callee in graph.edges.get(key, ()):
                j = comp_of.get(callee)
                if j is not None and j != i:
                    d = max(d, depth[j] + 1)
        depth[i] = d
    waves: List[List[int]] = []
    for i in range(len(components)):
        while len(waves) <= depth[i]:
            waves.append([])
        waves[depth[i]].append(i)
    return waves


def direct_locks(body: Body) -> Set[LockId]:
    """Abstract locks directly acquired in ``body`` (caller-translatable
    ids only: args and statics).  Each entry is
    ``(kind_of_id, payload, projection, lock_kind)`` where ``lock_kind`` is
    "mutex" / "read" / "write" / ..."""
    from repro.analysis.scan import scan_of

    def compute() -> FrozenSet[LockId]:
        scan = scan_of(body)
        locks: Set[LockId] = set()
        for _bb, term in scan.calls:
            lock_kind = LOCK_ACQUIRE_OPS.get(term.func.builtin_op)
            if lock_kind is None:
                continue
            if not term.args or term.args[0].place is None:
                continue
            recv = term.args[0].place.local
            base, proj = scan.ref_chain(recv)
            proj_key = tuple((p.field_name or str(p.field_index))
                             for p in proj)
            name = body.locals[base].name or ""
            if name.startswith("static:"):
                locks.add(("static", name[7:], proj_key, lock_kind))
            elif 0 < base <= body.arg_count:
                locks.add(("arg", base - 1, proj_key, lock_kind))
        return frozenset(locks)

    return set(scan_of(body).memo("direct_locks", compute))


def _translate(lock: LockId, site: CallSite) -> Optional[LockId]:
    """Translate a callee lock id into the caller's frame."""
    if lock[0] == "static":
        return lock
    if lock[0] == "arg":
        index = lock[1]
        if index < len(site.arg_sources) and site.arg_sources[index] is not None:
            return ("arg", site.arg_sources[index], lock[2], lock[3])
    return None


def _compute_lock_summaries(graph: CallGraph) -> None:
    program = graph.program
    summaries: Dict[str, Set[LockId]] = {
        key: direct_locks(body) for key, body in program.functions.items()
    }
    changed = True
    while changed:
        changed = False
        for site in graph.call_sites:
            if site.is_spawn:
                continue
            callee_locks = summaries.get(site.callee, set())
            caller_locks = summaries.setdefault(site.caller, set())
            for lock in callee_locks:
                translated = _translate(lock, site)
                if translated is not None and translated not in caller_locks:
                    caller_locks.add(translated)
                    changed = True
    graph._lock_summaries = summaries
