"""Thread-escape analysis: which places can cross a thread boundary.

"Fearless Concurrency?" (Yu et al.) finds that real Rust races overwhelm-
ingly involve data handed to another thread through one of three doors:
a ``thread::spawn`` closure capture, an ``Arc``/``Rc`` clone chain ending
in such a capture, or a value sent over a channel.  This module walks
every body once and records those doors:

* **spawn sites** — each ``thread::spawn(closure)`` call, with the map
  from closure argument position (captures are lowered as trailing
  arguments after the closure's declared parameters) back to the local
  in the spawning frame that was captured;
* **escape roots** — locals whose value leaves the creating thread
  (captured by a spawned closure, or passed to ``send``);
* **shared targets** — the globally identifiable points-to targets
  (heap allocation sites and statics) reachable from an escape root.
  Heap site ids are program-unique (``"fnkey:bb"``), so a closure-side
  access and a spawner-side access to the same ``Arc`` payload meet on
  the same id once the capture map is applied;
* **thread-reachable functions** — everything that may run on a spawned
  thread (the call graph's ``reachable_from_spawn`` closure).

``Arc::clone`` chains need no special casing here: the points-to engine
treats the clone's result as aliasing the receiver's pointees, so any
capture of any handle resolves to the original allocation site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.points_to import PointsTo
from repro.hir.builtins import BuiltinOp
from repro.lang.source import Span
from repro.mir.nodes import (
    AggregateKind, Body, Program, RvalueKind, StatementKind, TerminatorKind,
)

#: Globally identifiable shared-data id: ``("heap", site)`` / ``("static",
#: name)``.
SharedTarget = Tuple


@dataclass
class SpawnSite:
    """One ``thread::spawn`` call and its capture environment."""

    spawner: str                 # key of the spawning function
    block: int
    closure: str                 # key of the spawned closure body
    span: Span
    #: closure argument position (0-based) → local in the spawner frame
    #: whose value was captured into that position.
    captures: Dict[int, int] = field(default_factory=dict)


@dataclass
class ThreadEscape:
    """Program-wide thread-escape facts."""

    program: Program
    spawn_sites: List[SpawnSite] = field(default_factory=list)
    #: Functions that may run on a spawned thread.
    thread_reachable: Set[str] = field(default_factory=set)
    #: fn key → locals whose value escapes to another thread.
    escape_roots: Dict[str, Set[int]] = field(default_factory=dict)
    #: (fn key, local) → how it escaped ("spawn-capture" | "channel-send").
    escape_reasons: Dict[Tuple[str, int], str] = field(default_factory=dict)
    #: Heap sites / statics reachable from any escape root.
    shared_targets: Set[SharedTarget] = field(default_factory=set)

    def sites_spawning(self, closure_key: str) -> List[SpawnSite]:
        return [s for s in self.spawn_sites if s.closure == closure_key]

    def escapes(self, fn_key: str, local: int) -> bool:
        return local in self.escape_roots.get(fn_key, set())

    def is_shared(self, target: SharedTarget) -> bool:
        return target in self.shared_targets


def _closure_params(body: Body) -> int:
    """Declared parameters of a closure body (captures are the trailing
    ``len(body.captures)`` arguments)."""
    return body.arg_count - len(body.captures)


def _follow_to_aggregate(body: Body, local: int, max_hops: int = 8):
    """Follow ``USE``/``CAST`` move chains from ``local`` back to the
    closure-aggregate rvalue that built it, if any."""
    assigns: Dict[int, object] = {}
    for _bb, _i, stmt in body.iter_statements():
        if stmt.kind is StatementKind.ASSIGN and stmt.place.is_local:
            assigns.setdefault(stmt.place.local, stmt.rvalue)
    current = local
    for _ in range(max_hops):
        rv = assigns.get(current)
        if rv is None:
            return None
        if rv.kind is RvalueKind.AGGREGATE \
                and rv.aggregate_kind is AggregateKind.CLOSURE:
            return rv
        if rv.kind in (RvalueKind.USE, RvalueKind.CAST) \
                and rv.operands and rv.operands[0].place is not None \
                and rv.operands[0].place.is_local \
                and not rv.operands[0].place.projection:
            current = rv.operands[0].place.local
            continue
        return None
    return None


def _global_targets(pt: PointsTo, local: int) -> Set[SharedTarget]:
    """Heap/static ids reachable from ``local``, following ``("local",
    l)`` alias hops — a handle returned by a helper (``fn dup(a) ->
    Arc<T>``) aliases the *local* that held the original, one hop away
    from the allocation id itself."""
    out: Set[SharedTarget] = set()
    seen: Set[int] = set()
    work = [local]
    while work:
        current = work.pop()
        if current in seen:
            continue
        seen.add(current)
        for t in pt.targets(current):
            if t[0] in ("heap", "static"):
                out.add((t[0], t[1]))
            elif t[0] == "local":
                work.append(t[1])
    return out


def compute_thread_escape(program: Program,
                          points_to: Callable[[Body], PointsTo],
                          graph: CallGraph) -> ThreadEscape:
    """Compute thread-escape facts for a whole program.

    ``points_to`` is a per-body points-to provider (normally the summary
    engine's fixpoint cache, so Arc-clone aliasing and return summaries
    are already applied).
    """
    te = ThreadEscape(program)
    te.thread_reachable = graph.reachable_from_spawn()

    for key, body in program.functions.items():
        pt: Optional[PointsTo] = None

        def mark(local: int, reason: str) -> None:
            te.escape_roots.setdefault(key, set()).add(local)
            te.escape_reasons.setdefault((key, local), reason)
            te.shared_targets |= _global_targets(pt, local)

        for bb, term in body.iter_terminators():
            if term.kind is not TerminatorKind.CALL or term.func is None:
                continue
            op = term.func.builtin_op
            if op is BuiltinOp.THREAD_SPAWN:
                pt = pt or points_to(body)
                for arg in term.args:
                    if arg.place is None:
                        continue
                    rv = _follow_to_aggregate(body, arg.place.local)
                    if rv is None:
                        continue
                    closure_key = rv.aggregate_name
                    closure = program.functions.get(closure_key)
                    if closure is None:
                        continue
                    site = SpawnSite(spawner=key, block=bb,
                                     closure=closure_key, span=term.span)
                    base = _closure_params(closure)
                    for i, operand in enumerate(rv.operands):
                        if operand.place is not None \
                                and operand.place.is_local:
                            captured = operand.place.local
                            site.captures[base + i] = captured
                            mark(captured, "spawn-capture")
                    te.spawn_sites.append(site)
            elif op is BuiltinOp.CHANNEL_SEND and len(term.args) >= 2:
                value = term.args[1]
                if value.place is not None and value.place.is_local:
                    pt = pt or points_to(body)
                    mark(value.place.local, "channel-send")
    return te


def translate_capture(site: SpawnSite, pt_spawner: PointsTo,
                      position: int, proj: Tuple) -> Set[Tuple]:
    """Map a closure-frame location id ``("arg", position, proj)`` to the
    spawner frame's global ids at this spawn site."""
    captured = site.captures.get(position)
    if captured is None:
        return set()
    return {(kind, payload, proj)
            for kind, payload in _global_targets(pt_spawner, captured)}


def capture_lock_ids(site: SpawnSite, pt_spawner: PointsTo,
                     lock: Tuple) -> Set[Tuple]:
    """Resolve a closure-frame summary lock id (the 4-tuple
    ``(kind_of_id, payload, projection, lock_kind)``) to the spawner
    frame's *global* lock identities at this spawn site.

    Statics and heap allocation sites are already program-global and pass
    through; an ``"arg"`` id names a capture, which resolves through the
    spawner's points-to to the Arc-cloned mutex / captured lock / channel
    endpoint it carries.  This is the node-identity rule of the
    cross-thread lock graph: two threads meet on a lock exactly when
    their resolved id sets intersect."""
    id_kind, payload, proj, lock_kind = lock
    if id_kind in ("static", "heap"):
        return {lock}
    if id_kind != "arg":
        return set()
    return {(kind, target, tuple(p), lock_kind)
            for kind, target, p in translate_capture(
                site, pt_spawner, payload, tuple(proj))}
