"""The summary engine: bottom-up interprocedural analysis over SCCs.

:class:`SummaryEngine` owns every interprocedural fact the detectors
consume.  It walks the call graph bottom-up — Tarjan's algorithm emits
strongly connected components in reverse topological order, so every
callee outside the current component is already summarised — and iterates
each component with a worklist until its members' summaries stop
changing.  All summary fields are may-sets (or monotone flags), so the
fixpoint is exact: recursion and mutual recursion converge without the
round bounds the legacy ``compute_return_summaries`` needed.

The engine also owns the per-body points-to cache.  Points-to facts and
function summaries are mutually dependent (a body's points-to needs its
callees' return summaries; the summary is extracted from the body's
points-to), which is why the old design recomputed points-to for every
function per round.  Here the solve works on a *live view* of the current
summaries and seeds the per-body cache with its final (fixpoint) result,
so the detector-facing :meth:`points_to` never recomputes what the solve
already produced — with the same ``analysis.points_to.hit``/``.miss``
obs counters the old ``AnalysisContext`` cache emitted (miss = first
request for a body's facts, hit = every repeat).

With ``interprocedural=False`` every summary is the bottom element and
points-to runs without return summaries — the ablation mode the
benchmarks use to measure what the interprocedural layer buys.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro import obs
from repro.analysis.callgraph import (
    CallGraph, build_call_graph, direct_locks, scc_order,
)
from repro.analysis.config import AnalysisConfig, coerce_config
from repro.analysis.escape import ThreadEscape, compute_thread_escape
from repro.analysis.intern import Interner
from repro.analysis.lifetime import (
    LOCK_ACQUIRE_OPS, caller_lock_ids, compute_guard_regions, lock_identity,
)
from repro.analysis.panic import compute_panic_effects, ensure_unwind_edges
from repro.analysis.points_to import (
    PointsTo, UNKNOWN_TARGET, compute_points_to, return_items,
)
from repro.analysis.scan import scan_of
from repro.analysis.summaries import (
    AccessKey, EffectHop, FunctionSummary, LockId, deref_access_sites,
    opaque_lock, owned_value_args, term_arg_sources, translate_access_loc,
    translate_lock, value_chain,
)
from repro.analysis.unsafe_prop import compute_unsafe_provenance
from repro.hir.builtins import BuiltinOp, FuncKind
from repro.lang.types import TyKind
from repro.mir.nodes import (
    Body, Program, RvalueKind, StatementKind, TerminatorKind,
)


class _ReturnView:
    """Live dict-view of the engine's current return facts.

    Handed to ``compute_points_to`` both *during* the solve (where it
    reflects the partially converged state of the current SCC iteration)
    and after it (where it is the fixpoint).  Always truthy so the
    user-call branch of the constraint builder stays enabled even while
    the map is still empty.
    """

    def __init__(self, engine: "SummaryEngine") -> None:
        self._engine = engine

    def get(self, key: str, default=None):
        summary = self._engine._summaries.get(key)
        if summary is None:
            return default
        return summary.returns or default

    def __bool__(self) -> bool:
        return True


class _BodyFacts:
    """Per-body facts the summariser re-reads on every worklist
    iteration but that only depend on the body text (and the program's
    key set): the same-thread call-site inventory, direct flags, the
    const-return skeleton, and the held-on-return preconditions.
    Cached on the body's scan so cyclic components stop re-deriving
    them per iteration."""

    __slots__ = ("user_sites", "direct_acquires", "direct_calls_unknown",
                 "drop_call_facts", "const_skeleton", "return_points",
                 "guard_return")


class SummaryEngine:
    """Computes and caches :class:`FunctionSummary` facts for a program."""

    def __init__(self, program: Program,
                 config: Optional[AnalysisConfig] = None, *,
                 interprocedural: Optional[bool] = None,
                 pool=None) -> None:
        self.config = coerce_config(config, interprocedural=interprocedural,
                                    _owner="SummaryEngine")
        self.program = program
        if self.config.unwind_edges:
            # Unwind lowering runs before anything scans, fingerprints or
            # ships a body: every downstream consumer (dataflow, workers,
            # the summary cache) sees one consistent CFG.  Idempotent, so
            # a second engine over the same program is a no-op.
            with obs.span("analysis.unwind_lowering"):
                for body in program.functions.values():
                    ensure_unwind_edges(body)
        self.interprocedural = self.config.interprocedural
        #: Optionally session-owned worker pool, shared across programs.
        self._executor_pool = pool
        self._summaries: Dict[str, FunctionSummary] = {}
        self._points_to: Dict[str, PointsTo] = {}
        self._call_graph: Optional[CallGraph] = None
        self._thread_escape: Optional[ThreadEscape] = None
        self._lock_graph = None
        self._view = _ReturnView(self)
        #: Per-analysis intern table for summary atoms (lock ids, access
        #: locations/keys, locksets) — one canonical object per distinct
        #: atom, so summary equality checks hit identity fast paths.
        self._intern = Interner()
        self._solved = False
        self._served: Set[str] = set()
        self._pt_served: Set[str] = set()

    # -- public API ---------------------------------------------------------

    @property
    def call_graph(self) -> CallGraph:
        if self._call_graph is None:
            obs.count("analysis.call_graph.miss")
            with obs.span("analysis.call_graph"):
                self._call_graph = build_call_graph(self.program)
        else:
            obs.count("analysis.call_graph.hit")
        return self._call_graph

    def points_to(self, body: Body) -> PointsTo:
        """The body's points-to facts at the interprocedural fixpoint.

        The solve seeds this cache: the last points-to computed for a
        function runs against its component's converged summaries, so it
        already *is* the fixpoint result.  ``miss`` counts the first
        request for a body (facts had to be produced for it), ``hit``
        every repeat — the same contract the per-body cache always had.
        """
        self._ensure_solved()
        if body.key in self._pt_served:
            obs.count("analysis.points_to.hit")
        else:
            self._pt_served.add(body.key)
            obs.count("analysis.points_to.miss")
        cached = self._points_to.get(body.key)
        if cached is not None:
            return cached
        with obs.span("analysis.points_to"):
            pt = compute_points_to(
                body, self._view if self.interprocedural else None)
        self._points_to[body.key] = pt
        return pt

    def summary(self, key: str) -> FunctionSummary:
        """The converged summary for ``key`` (bottom for unknown keys)."""
        self._ensure_solved()
        if key in self._served:
            obs.count("analysis.summary.hit")
        else:
            self._served.add(key)
            obs.count("analysis.summary.miss")
        summary = self._summaries.get(key)
        if summary is None:
            summary = FunctionSummary(key=key)
            self._summaries[key] = summary
        return summary

    def summaries_map(self) -> Dict[str, FunctionSummary]:
        """The converged summary map (for summary-aware guard regions)."""
        self._ensure_solved()
        return self._summaries

    def return_summaries(self) -> Dict[str, set]:
        """Legacy-shaped view: fn key → return items (non-empty only)."""
        self._ensure_solved()
        return {key: set(s.returns)
                for key, s in self._summaries.items() if s.returns}

    def lock_chain(self, key: str, lock: LockId) -> List[str]:
        """The call chain along which ``key`` reaches the acquisition of
        ``lock`` — ``[key]`` when the acquisition is direct."""
        self._ensure_solved()
        chain = [key]
        seen = {(key, lock)}
        current_key, current_lock = key, lock
        while True:
            summary = self._summaries.get(current_key)
            if summary is None:
                break
            hop = summary.locks.get(current_lock)
            if hop is None:
                break
            current_key, current_lock = hop
            if (current_key, current_lock) in seen:
                break
            seen.add((current_key, current_lock))
            chain.append(current_key)
        return chain

    def drop_chain(self, key: str, position: int) -> List[str]:
        """The call chain along which the value passed to ``key`` at
        argument ``position`` reaches its drop."""
        self._ensure_solved()
        chain = [key]
        seen = {(key, position)}
        current_key, current_pos = key, position
        while True:
            summary = self._summaries.get(current_key)
            if summary is None:
                break
            hop = summary.may_drop_args.get(current_pos)
            if hop is None or hop == (current_key, current_pos):
                break
            current_key, current_pos = hop
            if (current_key, current_pos) in seen:
                break
            seen.add((current_key, current_pos))
            chain.append(current_key)
        return chain

    def panic_chain(self, key: str) -> List[str]:
        """The call chain along which ``key`` reaches a panic source —
        ``[key]`` when a panic operation is in its own body."""
        self._ensure_solved()
        chain = [key]
        seen = {key}
        current = key
        while True:
            summary = self._summaries.get(current)
            if summary is None or summary.panic.hop is None:
                break
            current = summary.panic.hop
            if current in seen:
                break
            seen.add(current)
            chain.append(current)
        return chain

    def access_chain(self, key: str, access: Tuple) -> List[str]:
        """The call chain along which ``key`` reaches the shared access
        ``access`` (an :data:`AccessKey`) — ``[key]`` when direct."""
        self._ensure_solved()
        chain = [key]
        seen = {(key, access)}
        current_key, current_access = key, access
        while True:
            summary = self._summaries.get(current_key)
            if summary is None:
                break
            entry = summary.shared_accesses.get(current_access)
            if entry is None or entry[0] is None:
                break
            current_key, current_access = entry[0]
            if (current_key, current_access) in seen:
                break
            seen.add((current_key, current_access))
            chain.append(current_key)
        return chain

    def thread_escape(self) -> ThreadEscape:
        """Program-wide thread-escape facts (computed once, lazily)."""
        self._ensure_solved()
        if self._thread_escape is None:
            obs.count("analysis.thread_escape.miss")
            with obs.span("analysis.thread_escape"):
                self._thread_escape = compute_thread_escape(
                    self.program, self.points_to, self.call_graph)
        else:
            obs.count("analysis.thread_escape.hit")
        return self._thread_escape

    def lock_graph(self):
        """The cross-thread lock graph (computed once, lazily): global
        lock identities with per-thread-root acquisition-order edges —
        see :mod:`repro.analysis.lockgraph`."""
        from repro.analysis.lockgraph import build_lock_graph
        self._ensure_solved()
        if self._lock_graph is None:
            obs.count("analysis.lock_graph.miss")
            with obs.span("analysis.lock_graph"):
                self._lock_graph = build_lock_graph(self)
            obs.gauge("analysis.lock_graph.nodes",
                      len(self._lock_graph.nodes))
            obs.gauge("analysis.lock_graph.edges",
                      len(self._lock_graph.edges))
        else:
            obs.count("analysis.lock_graph.hit")
        return self._lock_graph

    # -- solve --------------------------------------------------------------

    def _ensure_solved(self) -> None:
        if self._solved:
            return
        self._solved = True
        if not self.interprocedural:
            # Ablation mode: every summary is the bottom element.
            for key in self.program.functions:
                self._summaries[key] = FunctionSummary(key=key)
            return
        with obs.span("analysis.summaries"):
            self._solve()
        obs.count("analysis.intern.hits", self._intern.hits)
        obs.count("analysis.intern.misses", self._intern.misses)
        obs.gauge("analysis.intern.size", len(self._intern))

    def _solve(self) -> None:
        # The executor owns scheduling: SCC waves, optional worker-process
        # fan-out, and the on-disk summary cache.  At jobs=1 with no cache
        # it degenerates to the classic serial bottom-up solve.
        from repro.analysis.executor import AnalysisExecutor
        AnalysisExecutor(self, self.config,
                         pool=self._executor_pool).solve()

    def solve_component(self, component: List[str]) -> int:
        """Run the worklist for one SCC against ``self._summaries``.

        Every callee outside ``component`` must already be converged in
        ``self._summaries`` (the bottom-up invariant).  Member summaries
        and their fixpoint points-to facts are written back in place;
        returns the number of worklist iterations taken.  This is the
        unit of work the executor fans out: it only touches the member
        bodies and callee summaries, so a worker process can run it
        against a skeleton program.

        Each solve records an ``analysis.scc`` span (head function,
        component size, wall time, iterations) — the per-unit cost
        attribution behind ``minirust stats --top`` and the flamegraph.
        """
        with obs.span("analysis.scc", head=component[0],
                      functions=len(component)) as scc_span:
            iterations = self._component_worklist(component)
            scc_span.set(iterations=iterations)
        return iterations

    def _component_worklist(self, component: List[str]) -> int:
        program = self.program
        # Cyclicity is decided from the member bodies alone (not the call
        # graph) so worker processes can solve against a skeleton program
        # that only carries the component's bodies.
        cyclic = len(component) > 1 or self._calls_self(
            program.functions[component[0]])
        in_progress = frozenset(component) if cyclic else frozenset()
        if not cyclic:
            # Every callee is outside the component and already
            # converged: one pass is the fixpoint.
            key = component[0]
            body = program.functions[key]
            pt = compute_points_to(body, self._view)
            obs.count("analysis.summaries.points_to_computes")
            self._points_to[key] = pt
            self._summaries[key] = self._summarize(body, pt, in_progress)
            return 1

        # Early-exit worklist for cyclic components: a member is only
        # re-summarised when one of its in-component callees changed in
        # the previous pass.  Its stored points-to / summary then always
        # reflects its callees' final facts (a later callee change would
        # have re-queued it), so the fixpoint is identical to the full
        # re-iteration — the passes just stop paying for unchanged
        # members.
        member_set = frozenset(component)
        deps = {
            key: frozenset(
                callee for _bb, _term, callee, _sources in
                self._body_facts(program.functions[key]).user_sites
            ) & member_set
            for key in component}
        iterations = 0
        queued = set(component)
        while queued:
            iterations += 1
            changed_now = set()
            for key in component:
                if key not in queued:
                    continue
                body = program.functions[key]
                pt = compute_points_to(body, self._view)
                obs.count("analysis.summaries.points_to_computes")
                # The last compute for a function runs against its
                # component's converged summaries — the fixpoint the
                # detector-facing cache serves.
                self._points_to[key] = pt
                new = self._summarize(body, pt, in_progress)
                if new != self._summaries.get(key):
                    self._summaries[key] = new
                    changed_now.add(key)
            queued = {key for key in component if deps[key] & changed_now}
        return iterations

    def adopt_summaries(self, summaries: Dict[str, FunctionSummary]) -> None:
        """Install externally computed (worker / cache) summaries."""
        self._summaries.update(summaries)

    def _scc_order(self, graph: CallGraph) -> List[List[str]]:
        return scc_order(self.program, graph)

    # -- per-body summarisation ---------------------------------------------

    def _calls_self(self, body: Body) -> bool:
        """Does ``body`` (same-thread) call itself?  Mirrors the call
        graph's self-edge test without needing the graph."""
        return scan_of(body).memo(
            "calls_self",
            lambda: any(self._callee_of(body, term) == body.key
                        for _bb, term in scan_of(body).calls))

    def _body_facts(self, body: Body) -> _BodyFacts:
        """The body's :class:`_BodyFacts`, built once per body."""
        scan = scan_of(body)
        facts = scan.cache.get("engine_facts")
        if facts is None:
            facts = scan.cache["engine_facts"] = \
                self._build_body_facts(body, scan)
        return facts

    def _build_body_facts(self, body: Body, scan) -> _BodyFacts:
        program = self.program
        facts = _BodyFacts()
        acquires = False
        calls_unknown = False
        user_sites: List[Tuple[int, object, str, Tuple]] = []
        drop_call_facts: List[Tuple] = []
        for bb, term in scan.calls:
            func = term.func
            if func.builtin_op in LOCK_ACQUIRE_OPS:
                acquires = True
            if func.kind is FuncKind.UNKNOWN \
                    or func.builtin_op is BuiltinOp.FFI:
                calls_unknown = True
            drop_call_facts.append(
                (func, tuple((j, arg.place.local, arg.is_move)
                             for j, arg in enumerate(term.args)
                             if arg.place is not None)))
            if func.builtin_op is BuiltinOp.THREAD_SPAWN:
                continue       # the spawned closure runs on another thread
            callee = self._callee_of(body, term)
            if callee is not None and callee in program.functions:
                user_sites.append((bb, term, callee,
                                   tuple(term_arg_sources(body, term))))
        facts.user_sites = tuple(user_sites)
        facts.direct_acquires = acquires
        facts.direct_calls_unknown = calls_unknown
        facts.drop_call_facts = tuple(drop_call_facts)

        # Const-return skeleton: the direct constant assignments to the
        # return place plus the callee keys whose const-ness must be
        # resolved against live summaries per iteration.
        values: List[int] = []
        unknown = False
        for _bb, _i, stmt in scan.statements:
            if stmt.kind is not StatementKind.ASSIGN \
                    or not stmt.place.is_local or stmt.place.local != 0:
                continue
            rv = stmt.rvalue
            if rv is not None and rv.kind is RvalueKind.USE \
                    and rv.operands[0].is_const \
                    and isinstance(rv.operands[0].constant.value, int) \
                    and not isinstance(rv.operands[0].constant.value, bool):
                values.append(rv.operands[0].constant.value)
            else:
                unknown = True
        zero_dest_calls: List[Optional[str]] = []
        for _bb, term in scan.calls:
            if term.destination is None or not term.destination.is_local \
                    or term.destination.local != 0:
                continue
            func = term.func
            zero_dest_calls.append(
                func.user_fn
                if func.kind in (FuncKind.USER, FuncKind.CLOSURE)
                else None)
        facts.const_skeleton = (tuple(values), unknown,
                                tuple(zero_dest_calls))

        ret_ty = body.local_ty(0)
        facts.guard_return = ret_ty.is_guard or any(
            a.is_guard for a in ret_ty.args)
        facts.return_points = frozenset(
            (block.index, len(block.statements))
            for block in body.blocks
            if block.terminator is not None
            and block.terminator.kind is TerminatorKind.RETURN)
        return facts

    def _callee_of(self, body: Body, term) -> Optional[str]:
        """Same-thread callee key of a call terminator, or None."""
        func = term.func
        if func.kind in (FuncKind.USER, FuncKind.CLOSURE):
            return func.user_fn
        if func.builtin_op is BuiltinOp.ONCE_CALL_ONCE:
            # call_once(closure) executes the closure synchronously.
            for arg in term.args:
                if arg.place is not None:
                    ty = body.local_ty(arg.place.local)
                    if ty.kind is TyKind.CLOSURE:
                        return ty.name
        return None

    def _summarize(self, body: Body, pt: PointsTo,
                   in_progress: FrozenSet[str]) -> FunctionSummary:
        key = body.key
        intern = self._intern.intern
        facts = self._body_facts(body)
        user_sites = facts.user_sites

        returns: Set = set(return_items(body, pt))
        for target in pt.targets(0):
            if target[0] == "heap":
                returns.add("heap")
            elif target == UNKNOWN_TARGET:
                returns.add("unknown")

        locks: Dict[LockId, Optional[Tuple[str, LockId]]] = {
            intern(lock): None for lock in direct_locks(body)}
        acquires = bool(locks) or facts.direct_acquires
        calls_unknown = facts.direct_calls_unknown
        may_drop: Dict[int, EffectHop] = {}
        escapes: Dict[int, EffectHop] = {}

        # Compose callee effects into this summary.
        for _bb, term, callee, sources in user_sites:
            callee_summary = self._summaries.get(callee)
            if callee_summary is None:
                continue
            if callee_summary.calls_unknown:
                calls_unknown = True
            if callee_summary.acquires_any_lock:
                acquires = True
            for lock in callee_summary.locks:
                translated = translate_lock(lock, sources)
                if translated is not None:
                    translated = intern(translated)
                    if translated not in locks:
                        locks[translated] = (callee, lock)
                elif lock[0] == "arg":
                    # Points-to route: an arg-relative lock whose operand
                    # is a local Arc resolves to its allocation site — the
                    # globally identifiable name the cross-thread lock
                    # graph and `lock_chain` provenance need.
                    for ident in sorted(caller_lock_ids(body, pt, term,
                                                        lock)):
                        if ident[0] != "heap" \
                                or len(ident[2]) > self._MAX_PROJ:
                            continue
                        heap_id = intern(("heap", ident[1],
                                          tuple(ident[2]), lock[3]))
                        if heap_id not in locks:
                            locks[heap_id] = (callee, lock)
            for position in callee_summary.arg_escapes:
                if position < len(sources) \
                        and sources[position] is not None:
                    escapes.setdefault(sources[position],
                                       (callee, position))

        # May-drop / escape facts for owned by-value arguments.
        int_returns = {item for item in returns if isinstance(item, int)}
        drop_locals = scan_of(body).drop_locals
        for position in owned_value_args(body):
            chain = value_chain(body, position + 1)
            forgotten = escaped = False
            explicit = any(local in chain for local in drop_locals)
            moved_hop: Optional[EffectHop] = None
            for func, arg_entries in facts.drop_call_facts:
                op = func.builtin_op
                if not any(local in chain for _j, local, _m in arg_entries):
                    continue
                if op is BuiltinOp.MEM_FORGET:
                    forgotten = True
                elif op is BuiltinOp.MEM_DROP:
                    explicit = True
                elif func.kind is FuncKind.UNKNOWN or op is BuiltinOp.FFI:
                    escaped = True
                elif func.kind in (FuncKind.USER, FuncKind.CLOSURE) \
                        and moved_hop is None:
                    callee_summary = self._summaries.get(func.user_fn)
                    if callee_summary is None:
                        continue
                    for j, local, is_move in arg_entries:
                        if is_move and local in chain \
                                and callee_summary.drops_arg(j):
                            moved_hop = (func.user_fn, j)
                            break
            if escaped:
                escapes.setdefault(position, (key, position))
            if forgotten or position in int_returns or 0 in chain:
                continue      # the value leaves this frame alive
            if explicit:
                may_drop[position] = (key, position)
            elif moved_hop is not None:
                may_drop[position] = moved_hop
            else:
                # Neither returned, forgotten, nor handed to a known
                # non-dropping callee: ownership dies with this frame.
                may_drop[position] = (key, position)

        # Guard-region computation is the expensive part of summarising;
        # both consumers below (held-on-return, shared-access locksets)
        # share one lazy compute.  ``include_try=True`` so locksets see
        # try-acquisitions too; held-on-return filters ``is_try`` itself.
        regions: Optional[List] = None

        def guard_regions() -> List:
            nonlocal regions
            if regions is None:
                regions = compute_guard_regions(
                    body, pt, include_try=True, summaries=self._summaries)
            return regions

        # Locks still held when the function returns (a returned guard).
        # Only runs when the return type can actually carry a guard out
        # of the frame AND a lock is acquired in the call tree.
        held: Set[LockId] = set()
        might_hold = facts.guard_return and (acquires or any(
            (callee_summary := self._summaries.get(callee)) is not None
            and callee_summary.locks_held_on_return
            for _bb, _term, callee, _sources in user_sites))
        if might_hold:
            return_points = facts.return_points
            for region in guard_regions():
                if region.is_try or not (region.points & return_points):
                    continue
                for ident in region.lock_ids:
                    if ident[0] in ("arg", "static"):
                        held.add(intern((ident[0], ident[1], ident[2],
                                         region.kind)))

        shared = self._shared_accesses(body, pt, user_sites, acquires,
                                       guard_regions)
        lock_orders = self._lock_orders(body, pt, user_sites, acquires,
                                        guard_regions)
        unsafe_prov = compute_unsafe_provenance(body, self._summaries,
                                                user_sites)

        return FunctionSummary(
            key=key, returns=frozenset(returns),
            const_return=self._const_return(body, in_progress),
            may_drop_args=may_drop, arg_escapes=escapes, locks=locks,
            locks_held_on_return=frozenset(held),
            acquires_any_lock=acquires, calls_unknown=calls_unknown,
            shared_accesses=shared, unsafe_provenance=unsafe_prov,
            lock_orders=lock_orders,
            panic=compute_panic_effects(body, self._summaries, user_sites))

    #: Translated access/lock projections longer than this are dropped —
    #: the bound that keeps recursive frames (whose translation prepends
    #: the caller's projection each hop) from growing summaries forever.
    _MAX_PROJ = 4

    def _shared_accesses(self, body: Body, pt: PointsTo, user_sites,
                         acquires: bool, guard_regions) -> Dict:
        """The "accesses-shared-under-locks" summary component: every
        deref access the call tree performs, keyed ``(location, is_write,
        lockset)``, with locations caller-translatable (``arg``) or global
        (``heap`` / ``static``) and locksets taken from the guard regions
        covering the access point.  Composed callee entries gain the locks
        this frame holds at the call site — protection routed through a
        helper function stays visible to the race detector."""
        might_lock = acquires or any(
            (cs := self._summaries.get(callee)) is not None
            and cs.acquires_any_lock
            for _bb, _term, callee, _sources in user_sites)

        intern = self._intern.intern
        intern_set = self._intern.intern_set

        def locks_at(point) -> FrozenSet:
            if not might_lock:
                return frozenset()
            out = set()
            for region in guard_regions():
                if region.covers(point):
                    for ident in region.lock_ids:
                        if ident[0] in ("arg", "static", "heap"):
                            out.add(ident + (region.kind,))
            return intern_set(out)

        shared: Dict[AccessKey, Tuple] = {}
        for point, base, proj, is_write, span in deref_access_sites(body):
            locs = set()
            if 0 < base <= body.arg_count:
                locs.add(("arg", base - 1, proj))
            base_name = body.locals[base].name or ""
            if base_name.startswith("static:"):
                locs.add(("static", base_name[7:], proj))
            for target in pt.targets(base):
                if target[0] == "heap":
                    locs.add(("heap", target[1], proj))
                elif target[0] == "static":
                    locs.add(("static", target[1], proj))
                elif target[0] == "argval":
                    locs.add(("arg", target[1], proj))
            if not locs:
                continue
            lockset = locks_at(point)
            for loc in sorted(locs):
                shared.setdefault(intern((intern(loc), is_write, lockset)),
                                  (None, span))

        for bb, term, callee, sources in user_sites:
            callee_summary = self._summaries.get(callee)
            if callee_summary is None or not callee_summary.shared_accesses:
                continue
            call_point = (bb, len(body.blocks[bb].statements))
            here = locks_at(call_point)
            for access in callee_summary.shared_accesses:
                loc, is_write, lockset = access
                locs = set()
                translated = translate_access_loc(loc, sources)
                if translated is not None:
                    locs.add(translated)
                if loc[0] == "arg" and loc[1] < len(term.args) \
                        and term.args[loc[1]].place is not None:
                    # Points-to route: the operand may name a heap site or
                    # static the argument-position route cannot see.
                    arg_local = term.args[loc[1]].place.local
                    for ident in lock_identity(body, pt, arg_local):
                        if ident[0] in ("arg", "static", "heap"):
                            locs.add((ident[0], ident[1],
                                      tuple(ident[2]) + tuple(loc[2])))
                locs = {l for l in locs if len(l[2]) <= self._MAX_PROJ}
                if not locs:
                    continue
                tlocks = set(here)
                for lk in lockset:
                    if lk[0] in ("heap", "static", "opaque"):
                        tlocks.add(lk)
                        continue
                    kept = set()
                    if lk[0] == "arg":
                        kept = {
                            ident + (lk[3],)
                            for ident in caller_lock_ids(body, pt, term, lk)
                            if ident[0] in ("arg", "static", "heap")
                            and len(ident[2]) <= self._MAX_PROJ}
                    if kept:
                        tlocks |= kept
                    else:
                        # Keep the access marked lock-protected even when
                        # the lock has no caller name (documented FP/FN
                        # trade: an opaque lock never matches another).
                        tlocks.add(opaque_lock(callee, lk))
                key_locks = intern_set(tlocks)
                for loc_t in sorted(locs):
                    shared.setdefault(
                        intern((intern(loc_t), is_write, key_locks)),
                        ((callee, access), term.span))
        return shared

    def _lock_orders(self, body: Body, pt: PointsTo, user_sites,
                     acquires: bool, guard_regions) -> Dict:
        """The caller-translatable lock-order component: ``(first,
        second) → span`` pairs (4-tuple lock ids) where the call tree may
        acquire ``second`` while holding ``first``.  Direct pairs come
        from this body's guard regions; composed pairs translate a
        callee's pairs through the call site — including through
        points-to, so ``helper(&A, &B)`` with a helper that locks both
        *arguments* yields the global ``(A, B)`` pair here."""
        might_lock = acquires or any(
            (cs := self._summaries.get(callee)) is not None
            and cs.acquires_any_lock
            for _bb, _term, callee, _sources in user_sites)
        if not might_lock:
            return {}

        orders: Dict[Tuple[LockId, LockId], object] = {}
        intern = self._intern.intern

        def add_pairs(firsts, seconds, span) -> None:
            for a in sorted(firsts):
                for b in sorted(seconds):
                    if a[:3] != b[:3] and len(a[2]) <= self._MAX_PROJ \
                            and len(b[2]) <= self._MAX_PROJ:
                        orders.setdefault(intern((intern(a), intern(b))),
                                          span)

        # Direct pairs: a later acquisition inside a held region.  Heap
        # allocation-site ids qualify alongside args and statics: they
        # are program-unique, so a pair over local Arc-allocated mutexes
        # stays meaningful in every caller's summary.
        calls = scan_of(body).calls
        for region in guard_regions():
            if region.is_try:
                continue
            firsts = {(ident[0], ident[1], tuple(ident[2]), region.kind)
                      for ident in region.lock_ids
                      if ident[0] in ("arg", "static", "heap")}
            if not firsts:
                continue
            for bb, term in calls:
                point = (bb, len(body.blocks[bb].statements))
                if not region.covers(point):
                    continue
                seconds = set()
                lock_kind = LOCK_ACQUIRE_OPS.get(term.func.builtin_op)
                if lock_kind is not None and term.args \
                        and term.args[0].place is not None:
                    for ident in lock_identity(body, pt,
                                               term.args[0].place.local):
                        if ident[0] in ("arg", "static", "heap"):
                            seconds.add((ident[0], ident[1],
                                         tuple(ident[2]), lock_kind))
                callee = self._callee_of(body, term)
                if callee is not None and callee in self.program.functions:
                    callee_summary = self._summaries.get(callee)
                    if callee_summary is not None:
                        sources = term_arg_sources(body, term)
                        for lock in callee_summary.locks:
                            seconds |= self._caller_order_ids(
                                body, pt, term, lock, sources)
                if seconds:
                    add_pairs(firsts, seconds, term.span)

        # Composed pairs from callee summaries.
        for _bb, term, callee, sources in user_sites:
            callee_summary = self._summaries.get(callee)
            if callee_summary is None or not callee_summary.lock_orders:
                continue
            for first, second in callee_summary.lock_orders:
                firsts = self._caller_order_ids(body, pt, term, first,
                                                sources)
                seconds = self._caller_order_ids(body, pt, term, second,
                                                 sources)
                if firsts and seconds:
                    add_pairs(firsts, seconds, term.span)
        return orders

    def _caller_order_ids(self, body: Body, pt: PointsTo, term,
                          lock: LockId, sources) -> Set[LockId]:
        """All caller-frame names of one callee lock id: the argument
        route (stays caller-translatable) plus the points-to route
        (resolves a lock passed by reference to the static or heap
        allocation site it names)."""
        out: Set[LockId] = set()
        translated = translate_lock(lock, sources)
        if translated is not None:
            out.add(translated)
        if lock[0] == "arg":
            for ident in caller_lock_ids(body, pt, term, lock):
                if ident[0] in ("static", "heap"):
                    out.add((ident[0], ident[1], tuple(ident[2]), lock[3]))
        return out

    def _const_return(self, body: Body,
                      in_progress: FrozenSet[str]) -> Optional[int]:
        """The single constant integer every return path yields, if any.

        Callees inside the SCC still being iterated count as unknown, so
        this field never oscillates during the worklist.
        """
        direct_values, unknown, zero_dest_calls = \
            self._body_facts(body).const_skeleton
        values: List[int] = list(direct_values)
        for user_fn in zero_dest_calls:
            resolved = False
            if user_fn is not None and user_fn not in in_progress:
                callee_summary = self._summaries.get(user_fn)
                if callee_summary is not None \
                        and callee_summary.const_return is not None:
                    values.append(callee_summary.const_return)
                    resolved = True
            if not resolved:
                unknown = True
        if unknown or not values or len(set(values)) != 1:
            return None
        return values[0]
