"""Backward live-variable analysis over MIR locals.

A local is *live* at a program point when some path from that point reads
it before (re)defining it.  Used by the borrow checker (NLL-style borrow
regions end at last use) and by detector heuristics.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set

from repro.analysis.dataflow import DataflowAnalysis, solve
from repro.mir.nodes import (
    Body, Operand, Place, Rvalue, RvalueKind, Statement, StatementKind,
    Terminator, TerminatorKind,
)


def place_reads(place: Place) -> Set[int]:
    """Locals read when *evaluating* a place (base + index locals)."""
    reads = {place.local}
    for proj in place.projection:
        if proj.kind == "index" and proj.index_local is not None:
            reads.add(proj.index_local)
    return reads


def operand_reads(operand: Operand) -> Set[int]:
    if operand.place is None:
        return set()
    return place_reads(operand.place)


def rvalue_reads(rvalue: Rvalue) -> Set[int]:
    reads: Set[int] = set()
    for op in rvalue.operands:
        reads |= operand_reads(op)
    if rvalue.place is not None:
        reads |= place_reads(rvalue.place)
    return reads


def statement_uses_defs(stmt: Statement) -> tuple:
    """``(uses, defs)`` locals of one statement."""
    uses: Set[int] = set()
    defs: Set[int] = set()
    if stmt.kind is StatementKind.ASSIGN:
        uses |= rvalue_reads(stmt.rvalue)
        if stmt.place.is_local:
            defs.add(stmt.place.local)
        else:
            # Writing through a projection also *reads* the base.
            uses |= place_reads(stmt.place)
    elif stmt.kind is StatementKind.DROP:
        uses |= place_reads(stmt.place)
    elif stmt.kind is StatementKind.STORAGE_DEAD:
        defs.add(stmt.local)
    elif stmt.kind is StatementKind.STORAGE_LIVE:
        defs.add(stmt.local)
    return uses, defs


def terminator_uses_defs(term: Terminator) -> tuple:
    uses: Set[int] = set()
    defs: Set[int] = set()
    if term.kind is TerminatorKind.SWITCH_INT and term.discr is not None:
        uses |= operand_reads(term.discr)
    elif term.kind is TerminatorKind.CALL:
        for arg in term.args:
            uses |= operand_reads(arg)
        if term.destination is not None:
            if term.destination.is_local:
                defs.add(term.destination.local)
            else:
                uses |= place_reads(term.destination)
    elif term.kind is TerminatorKind.ASSERT and term.cond is not None:
        uses |= operand_reads(term.cond)
    elif term.kind is TerminatorKind.RETURN:
        uses.add(0)
    return uses, defs


class LivenessAnalysis(DataflowAnalysis):
    FORWARD = False
    JOIN_UNION = True

    def transfer_statement(self, state, stmt, block, index):
        uses, defs = statement_uses_defs(stmt)
        return frozenset((set(state) - defs) | uses)

    def transfer_terminator(self, state, term, block):
        uses, defs = terminator_uses_defs(term)
        return frozenset((set(state) - defs) | uses)


def compute_liveness(body: Body) -> Dict[int, FrozenSet[int]]:
    """Block-exit liveness for each block of ``body``."""
    analysis = LivenessAnalysis(body)
    return solve(analysis)


def live_at_statement(body: Body,
                      exit_states: Dict[int, FrozenSet[int]],
                      block_index: int) -> list:
    """Liveness *before* each statement of a block, computed by replaying
    the block backwards from its exit state; the last element is the
    liveness before the terminator."""
    analysis = LivenessAnalysis(body)
    block = body.blocks[block_index]
    state = exit_states.get(block_index, frozenset())
    states_rev = []
    if block.terminator is not None:
        states_rev.append(state)
        state = analysis.transfer_terminator(state, block.terminator,
                                             block_index)
    for i in range(len(block.statements) - 1, -1, -1):
        states_rev.append(state)
        state = analysis.transfer_statement(state, block.statements[i],
                                            block_index, i)
    states_rev.reverse()
    return states_rev
