"""The cross-thread lock graph: global lock identities × thread roots.

The paper's blocking-bug study (§6.1) finds that most real-world Rust
deadlocks are *cross-thread* cycles — thread A holds M1 wanting M2 while
thread B holds M2 wanting M1 — a shape no same-call-chain analysis can
see.  This module composes three facts the engine already computes into
one whole-program structure:

* **Nodes** are *global* lock identities — 3-tuples ``(kind, payload,
  projection)`` with kind ``"static"`` or ``"heap"`` — resolved through
  the thread-escape analysis's globally identifiable targets:
  Arc-cloned mutexes and captured locks resolve to their allocation
  site, statics to their name, channel endpoints to the ``channel()``
  call's site (see :func:`repro.analysis.escape.capture_lock_ids`).
* **Edges** are summary-carried acquisition orders
  (``FunctionSummary.lock_orders``, solved in the SCC fixpoint),
  attributed per *thread root*: the main thread owns the pairs of every
  function that never runs on a spawned thread; each
  :class:`~repro.analysis.escape.SpawnSite` owns its closure's pairs,
  with arg-relative ids resolved through the capture environment.
* **Cycles** come from a bounded Johnson-style elementary-circuit
  enumeration; a cycle is a *deadlock* candidate only when its edges can
  be assigned pairwise-distinct thread roots (the same thread acquiring
  A→B then B→A merely re-orders, and stays the lock-order detector's
  business).

Every edge carries hold/want provenance chains (the call chain from the
thread root's function to each acquisition, via the engine's
``lock_chain``), which is what lets the deadlock detector print
per-thread "holds … wants … acquired along …" narratives.

The module also hosts :func:`global_site_ids` — interprocedural identity
resolution for condvar / channel-endpoint receivers (capture and caller
routes) — and :func:`live_functions`, the reachability filter that keeps
a notify inside a never-spawned closure from suppressing a
missed-signal report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.escape import capture_lock_ids, translate_capture
from repro.analysis.lifetime import lock_identity
from repro.lang.source import Span
from repro.mir.nodes import Body

#: A lock-graph node: ``(kind, payload, projection)`` with kind
#: ``"static"`` or ``"heap"`` — the program-global part of a lock id.
LockNode = Tuple

#: Default bound on elementary-circuit length (locks per cycle).  Real
#: deadlock reports overwhelmingly involve two or three locks; the bound
#: keeps the circuit search linear in practice on dense graphs.
DEFAULT_CYCLE_BOUND = 4


@dataclass(frozen=True, order=True)
class ThreadRoot:
    """One thread of execution the lock graph attributes edges to.

    The *main* root stands for everything that never runs on a spawned
    thread; every ``thread::spawn`` call site is its own root (the same
    closure spawned twice gives two roots — two live threads that can
    interleave against each other).
    """

    kind: str          # "main" | "spawn"
    spawner: str       # spawning function key ("" for the main root)
    block: int         # spawn-site block (-1 for the main root)
    key: str           # the root's entry function ("" for the main root)

    def label(self) -> str:
        if self.kind == "main":
            return "main thread"
        return f"thread spawned at `{self.spawner}` (block {self.block})"


MAIN_ROOT = ThreadRoot("main", "", -1, "")


@dataclass(frozen=True)
class OrderEdge:
    """One acquisition-order observation: ``root`` may acquire ``dst``
    while holding ``src``, observed in ``fn_key`` at ``span``."""

    src: LockNode
    dst: LockNode
    src_kind: str                  # "mutex" | "read" | "write" | ...
    dst_kind: str
    root: ThreadRoot
    fn_key: str                    # function whose summary carried the pair
    span: Span
    #: Call chains from ``fn_key`` to each acquisition ([fn_key] when
    #: the acquisition is direct or the chain is unknown).
    hold_chain: Tuple[str, ...]
    want_chain: Tuple[str, ...]


@dataclass
class LockGraph:
    """The built graph: sorted nodes, deterministic edge list, roots."""

    nodes: Tuple[LockNode, ...] = ()
    edges: Tuple[OrderEdge, ...] = ()
    roots: Tuple[ThreadRoot, ...] = ()
    _by_pair: Optional[Dict[Tuple[LockNode, LockNode],
                            List[OrderEdge]]] = field(default=None,
                                                      repr=False)

    def edges_between(self, src: LockNode,
                      dst: LockNode) -> List[OrderEdge]:
        if self._by_pair is None:
            by_pair: Dict[Tuple[LockNode, LockNode], List[OrderEdge]] = {}
            for edge in self.edges:
                by_pair.setdefault((edge.src, edge.dst), []).append(edge)
            self._by_pair = by_pair
        return self._by_pair.get((src, dst), [])

    def cycles(self, max_len: int = DEFAULT_CYCLE_BOUND) \
            -> List[Tuple[LockNode, ...]]:
        """Elementary circuits of length ``2..max_len``, each reported
        once, rotated so its smallest node comes first (the Johnson
        ordering: a DFS from each start node may only visit larger
        nodes, so no circuit is found twice)."""
        adjacency: Dict[LockNode, Set[LockNode]] = {}
        for edge in self.edges:
            adjacency.setdefault(edge.src, set()).add(edge.dst)
        found: List[Tuple[LockNode, ...]] = []
        for start in sorted(adjacency):
            path = [start]
            on_path = {start}

            def dfs(current: LockNode) -> None:
                for nxt in sorted(adjacency.get(current, ())):
                    if nxt == start:
                        if len(path) >= 2:
                            found.append(tuple(path))
                    elif nxt > start and nxt not in on_path \
                            and len(path) < max_len:
                        path.append(nxt)
                        on_path.add(nxt)
                        dfs(nxt)
                        path.pop()
                        on_path.discard(nxt)

            dfs(start)
        return found

    def deadlock_cycles(self, max_len: int = DEFAULT_CYCLE_BOUND) \
            -> List[Tuple[Tuple[LockNode, ...], List[OrderEdge]]]:
        """Cycles whose edges admit an assignment of pairwise-distinct
        thread roots — the cross-thread deadlock candidates.  Returns
        ``(cycle nodes, one witness edge per hop)`` pairs."""
        out = []
        for cycle in self.cycles(max_len):
            n = len(cycle)
            slots = [self.edges_between(cycle[i], cycle[(i + 1) % n])
                     for i in range(n)]
            witness = _assign_distinct_roots(slots)
            if witness is not None:
                out.append((cycle, witness))
        return out


def _assign_distinct_roots(
        slots: Sequence[Sequence[OrderEdge]]) -> Optional[List[OrderEdge]]:
    """Pick one edge per slot such that all roots differ (backtracking;
    slot count is bounded by the cycle bound)."""
    chosen: List[OrderEdge] = []
    used: Set[ThreadRoot] = set()

    def backtrack(i: int) -> bool:
        if i == len(slots):
            return True
        for edge in slots[i]:
            if edge.root in used:
                continue
            used.add(edge.root)
            chosen.append(edge)
            if backtrack(i + 1):
                return True
            chosen.pop()
            used.discard(edge.root)
        return False

    return list(chosen) if backtrack(0) else None


def build_lock_graph(engine) -> LockGraph:
    """Build the cross-thread lock graph from a solved
    :class:`~repro.analysis.engine.SummaryEngine`."""
    program = engine.program
    te = engine.thread_escape()
    edges: Dict[Tuple[LockNode, LockNode, ThreadRoot], OrderEdge] = {}

    def add_edge(first, second, root: ThreadRoot, fn_key: str, span: Span,
                 hold_key, want_key) -> None:
        src, dst = first[:3], second[:3]
        if src == dst:
            return
        edges.setdefault((src, dst, root), OrderEdge(
            src=src, dst=dst, src_kind=first[3], dst_kind=second[3],
            root=root, fn_key=fn_key, span=span,
            hold_chain=tuple(engine.lock_chain(fn_key, hold_key)),
            want_chain=tuple(engine.lock_chain(fn_key, want_key))))

    def sorted_orders(summary):
        return sorted(summary.lock_orders.items(),
                      key=lambda item: (str(item[0]), item[1].lo))

    # Main-root edges: every function that never runs on a spawned
    # thread contributes its summary pairs whose ids are already global.
    for key in sorted(program.functions):
        if key in te.thread_reachable:
            continue
        for (first, second), span in sorted_orders(engine.summary(key)):
            if first[0] in ("static", "heap") \
                    and second[0] in ("static", "heap"):
                add_edge(first, second, MAIN_ROOT, key, span, first, second)

    # Spawn-root edges: the spawned closure's pairs, with arg-relative
    # ids (captures) resolved through the spawner's points-to at the
    # spawn site.
    for site in sorted(te.spawn_sites,
                       key=lambda s: (s.spawner, s.block, s.closure)):
        closure = program.functions.get(site.closure)
        spawner = program.functions.get(site.spawner)
        if closure is None or spawner is None:
            continue
        root = ThreadRoot("spawn", site.spawner, site.block, site.closure)
        pt_spawner = engine.points_to(spawner)
        for (first, second), span in sorted_orders(
                engine.summary(site.closure)):
            firsts = sorted(capture_lock_ids(site, pt_spawner, first))
            seconds = sorted(capture_lock_ids(site, pt_spawner, second))
            for a in firsts:
                for b in seconds:
                    add_edge(a, b, root, site.closure, span, first, second)

    edge_list = tuple(edges[key] for key in sorted(
        edges, key=lambda k: (k[2], str(k[0]), str(k[1]))))
    nodes = tuple(sorted({e.src for e in edge_list}
                         | {e.dst for e in edge_list}))
    roots = tuple(sorted({e.root for e in edge_list}))
    return LockGraph(nodes=nodes, edges=edge_list, roots=roots)


# ---------------------------------------------------------------------------
# Shared identity / liveness helpers (condvar + channel blocking patterns)
# ---------------------------------------------------------------------------

def global_site_ids(engine, body: Body, local: int,
                    depth: int = 3,
                    _seen: Optional[FrozenSet[str]] = None) -> Set[Tuple]:
    """Global (static / heap) identities of a builtin-call receiver.

    Resolves the receiver through this body's points-to, then follows
    arg-relative ids outward: through every spawn site's capture
    environment when ``body`` is a spawned closure, and through every
    call site's operand when it is called (bounded at ``depth`` caller
    hops).  Two condvars / channel endpoints are "the same" exactly when
    their resolved id sets intersect."""
    seen = _seen or frozenset()
    pt = engine.points_to(body)
    ids = lock_identity(body, pt, local)
    out = {(i[0], i[1], tuple(i[2])) for i in ids
           if i[0] in ("static", "heap")}
    arg_ids = sorted((i[1], tuple(i[2])) for i in ids if i[0] == "arg")
    if not arg_ids or depth <= 0 or body.key in seen:
        return out
    seen = seen | {body.key}
    te = engine.thread_escape()
    program = engine.program

    # Capture route: a closure argument resolves through each spawn site.
    for site in te.spawn_sites:
        if site.closure != body.key:
            continue
        spawner = program.functions.get(site.spawner)
        if spawner is None:
            continue
        pt_spawner = engine.points_to(spawner)
        for position, proj in arg_ids:
            out |= {(k, payload, tuple(p)) for k, payload, p in
                    translate_capture(site, pt_spawner, position, proj)}

    # Caller route: a declared parameter resolves through each call site.
    for cs in engine.call_graph.call_sites:
        if cs.callee != body.key or cs.is_spawn:
            continue
        caller = program.functions.get(cs.caller)
        if caller is None:
            continue
        term = caller.blocks[cs.block].terminator
        if term is None or not getattr(term, "args", None):
            continue
        for position, proj in arg_ids:
            if position >= len(term.args) \
                    or term.args[position].place is None:
                continue
            sub = global_site_ids(engine, caller,
                                  term.args[position].place.local,
                                  depth - 1, seen)
            out |= {(k, payload, tuple(p) + proj) for k, payload, p in sub}
    return out


def live_functions(engine) -> Set[str]:
    """Functions that can actually run: every non-closure function is a
    potential entry point; closures only run when something spawns or
    calls them.  A notify / send inside a never-invoked closure must not
    count as reachable."""
    graph = engine.call_graph
    live: Set[str] = set()
    stack = [key for key, body in engine.program.functions.items()
             if not body.is_closure]
    live.update(stack)
    while stack:
        key = stack.pop()
        for nxt in graph.edges.get(key, set()) \
                | graph.spawn_edges.get(key, set()):
            if nxt not in live:
                live.add(nxt)
                stack.append(nxt)
    return live
