"""Parallel + incremental execution layer for the summary solve.

The :class:`~repro.analysis.engine.SummaryEngine` solves the condensed
call graph bottom-up; this module decides *how* that schedule runs:

* **Waves** — :func:`repro.analysis.callgraph.wave_partition` groups the
  SCCs into levels whose members share no edges, so every component in a
  wave can be solved independently once the previous waves converged.
* **Fan-out** — with ``config.jobs > 1``, a wave's unsolved components
  are chunked across a ``ProcessPoolExecutor``.  Workers are stateless:
  each task carries the member bodies, the program's key set (so callee
  resolution behaves exactly as in-process) and the already-converged
  callee summaries, and returns the component summaries.  Results are
  merged in the original reverse-topological component order, never in
  completion order, so findings are byte-identical at any worker count.
* **Incrementality** — a content-addressed on-disk cache
  (:class:`SummaryCache`).  A component's key hashes its members' MIR
  fingerprints plus the *summary* fingerprints of its external callees,
  which gives early cutoff for free: editing a function invalidates its
  own component, and its callers only when its summary actually changed.
  Corrupted or stale entries are dropped and recomputed, never trusted.

Obs surface: ``analysis.wave`` spans (one per wave) with the workers'
``analysis.scc`` solve spans folded back underneath (pid/tid-tagged, so
``--trace-out`` renders worker timelines side by side),
``analysis.cache.{hit,miss,store,evict,corrupt,stale}`` counters,
``analysis.executor.{solved,cached}_functions`` totals, per-task
``executor.pickle_{bytes,seconds}`` and per-entry
``cache.{read_bytes,deserialize_seconds}`` costs — the numbers the
incremental-rerun benchmarks, the regression observatory
(``minirust bench-diff``), and the tests assert on.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import warnings
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.analysis.callgraph import (
    component_callees, scc_order, wave_partition,
)
from repro.analysis.config import AnalysisConfig
from repro.analysis.summaries import (
    FunctionSummary, canonical, summary_fingerprint,
)
from repro.mir.nodes import Body, Program

#: On-disk *container* format.  Bump when the shard/index layout
#: changes: payloads from other formats are recognised as stale and
#: evicted rather than unpickled into the wrong shape.
#:
#: v2: one ``<key>.summary.pkl`` pickle per component,
#: ``{"format": 2, "summaries": {...}}``.
#: v3: per-wave shard files (``<hash>.shard.pkl``) holding every
#: component a wave stored, plus a content-addressed index mapping
#: component key → shard file.  v2 per-entry files are still *read*
#: (transparent migration: a hit from one is re-sharded and the old
#: file retired), never written.
CACHE_FORMAT = 3

#: Format v2 per-entry payloads carry; the migration reader accepts
#: exactly this (format-1 bare dicts stay stale).
LEGACY_CACHE_FORMAT = 2

#: Versions the *component key*, i.e. the summary solve semantics —
#: separate from the container format so the v3 layout can serve
#: entries keyed identically to v2 (that is what makes the migration
#: a cache hit rather than a re-solve storm).  Bump when
#: ``FunctionSummary`` fields or solve semantics change.
SUMMARY_KEY_VERSION = 2


def body_fingerprint(body: Body) -> str:
    """Content hash of one function's MIR (spans included — summaries
    carry spans, so a moved function must not serve stale locations).

    Memoised on the body under an underscore attribute: ``canonical()``
    walks only dataclass fields so the memo can never feed back into the
    hash, and ``Body.__getstate__`` strips it from pickles (worker
    payloads, cache entries) like every other piece of derived state.
    """
    fp = body.__dict__.get("_fingerprint")
    if fp is None:
        fp = hashlib.sha256(canonical(body).encode()).hexdigest()
        body.__dict__["_fingerprint"] = fp
    return fp


# ---------------------------------------------------------------------------
# On-disk caches (summary shards + whole-file reports)
# ---------------------------------------------------------------------------

_trash_seq = 0


def _safe_remove(path: str) -> None:
    """Rename first, then unlink.  A concurrent reader either opens the
    intact file before the rename or gets a clean ``FileNotFoundError``
    after it — never a torn entry — and an evictor racing a writer that
    just re-created ``path`` can no longer delete the *fresh* file: the
    rename moved exactly one inode out of the way."""
    global _trash_seq
    _trash_seq += 1
    trash = f"{path}.{os.getpid()}.{_trash_seq}.trash"
    try:
        os.rename(path, trash)
    except OSError:
        return
    try:
        os.remove(trash)
    except OSError:
        pass


def _atomic_write(root: str, path: str, payload: object) -> bool:
    try:
        fd, tmp = tempfile.mkstemp(dir=root, suffix=".tmp")
        with os.fdopen(fd, "wb") as f:
            pickle.dump(payload, f, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except OSError:
        return False      # a full or read-only cache disables itself
    return True


def _evict_over_limit(root: str, suffix: str, limit: int) -> List[str]:
    """Oldest-first eviction of ``*suffix`` files beyond ``limit``;
    returns the removed file names."""
    try:
        entries = [e for e in os.scandir(root) if e.name.endswith(suffix)]
    except OSError:
        return []
    excess = len(entries) - limit
    if excess <= 0:
        return []
    try:
        entries.sort(key=lambda e: (e.stat().st_mtime, e.name))
    except OSError:          # entry vanished under a concurrent evict
        return []
    removed = []
    for entry in entries[:excess]:
        _safe_remove(entry.path)
        obs.count("analysis.cache.evict")
        removed.append(entry.name)
    return removed


class SummaryCache:
    """Content-addressed store of per-component summary dicts, packed
    into per-wave shard files.

    Layout (v3): each ``put_wave`` writes one ``<hash>.shard.pkl``
    holding every component the wave stored — summaries *plus* their
    precomputed summary fingerprints, so a warm run neither re-opens a
    file per component nor re-hashes every served summary.  A
    ``shards.index.pkl`` maps component key → shard file; a warm run
    therefore costs one index read plus one shard read per wave.

    Writes are atomic (tempfile + rename) so concurrent workers and
    sessions sharing a cache directory only ever observe complete
    entries; removals rename-then-unlink (see :func:`_safe_remove`).
    Any failure to load — unreadable file, truncated pickle, wrong
    payload shape — counts as a miss: the entry is evicted and the
    component recomputed.  v2 per-entry ``<key>.summary.pkl`` files are
    still read (the component key never changed, see
    ``SUMMARY_KEY_VERSION``); hits from them are re-sharded by the
    caller and the old file retired.
    """

    INDEX_NAME = "shards.index.pkl"

    def __init__(self, root: str, limit: int) -> None:
        self.root = root
        self.limit = limit
        os.makedirs(root, exist_ok=True)
        self._index: Optional[Dict[str, str]] = None

    # -- paths ---------------------------------------------------------------

    def _index_path(self) -> str:
        return os.path.join(self.root, self.INDEX_NAME)

    def _shard_path(self, name: str) -> str:
        return os.path.join(self.root, name)

    def _legacy_path(self, key: str) -> str:
        return os.path.join(self.root, key + ".summary.pkl")

    # -- index ---------------------------------------------------------------

    def _load_index(self) -> Dict[str, str]:
        if self._index is not None:
            return self._index
        try:
            with open(self._index_path(), "rb") as f:
                payload = pickle.load(f)
            if isinstance(payload, dict) \
                    and payload.get("format") == CACHE_FORMAT \
                    and isinstance(payload.get("shards"), dict):
                self._index = dict(payload["shards"])
                return self._index
            _safe_remove(self._index_path())
        except FileNotFoundError:
            pass
        except Exception:
            obs.count("analysis.cache.corrupt")
            _safe_remove(self._index_path())
        # Missing or bad index: rebuild it from the shards themselves —
        # the index is an accelerator, never the source of truth.
        self._index = self._scan_shards()
        return self._index

    def _scan_shards(self) -> Dict[str, str]:
        index: Dict[str, str] = {}
        try:
            names = sorted(e.name for e in os.scandir(self.root)
                           if e.name.endswith(".shard.pkl"))
        except OSError:
            return index
        for name in names:
            entries = self._read_shard(name)
            if entries:
                for ckey in entries:
                    index[ckey] = name
        return index

    def _write_index(self) -> None:
        # Merge with the on-disk index first: a concurrent session may
        # have added mappings since we loaded ours.  Lost updates only
        # cost a future miss, never a wrong hit.
        merged: Dict[str, str] = {}
        try:
            with open(self._index_path(), "rb") as f:
                payload = pickle.load(f)
            if isinstance(payload, dict) \
                    and payload.get("format") == CACHE_FORMAT \
                    and isinstance(payload.get("shards"), dict):
                merged.update(payload["shards"])
        except Exception:
            pass
        merged.update(self._index or {})
        self._index = merged
        _atomic_write(self.root, self._index_path(),
                      {"format": CACHE_FORMAT, "shards": merged})

    # -- reads ---------------------------------------------------------------

    def _read_blob(self, path: str):
        """Read + unpickle one cache file, recording warm-serving cost;
        ``None`` on any failure (the file is evicted)."""
        try:
            started = perf_counter()
            with open(path, "rb") as f:
                blob = f.read()
            payload = pickle.loads(blob)
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated, corrupted, or unreadable: recompute instead of
            # crashing, and drop the bad entry so it cannot recur.
            obs.count("analysis.cache.corrupt")
            _safe_remove(path)
            return None
        elapsed = perf_counter() - started
        obs.count("cache.read_bytes", len(blob))
        obs.count("cache.deserialize_seconds", elapsed)
        obs.observe("cache.deserialize_seconds", elapsed)
        return payload

    def _read_shard(self, name: str):
        path = self._shard_path(name)
        payload = self._read_blob(path)
        if payload is None:
            return None
        obs.count("analysis.cache.shard_read")
        if not isinstance(payload, dict) \
                or not isinstance(payload.get("entries"), dict):
            obs.count("analysis.cache.corrupt")
            _safe_remove(path)
            return None
        if payload.get("format") != CACHE_FORMAT:
            obs.count("analysis.cache.stale")
            _safe_remove(path)
            return None
        return payload["entries"]

    @staticmethod
    def _valid_summaries(summaries) -> bool:
        return isinstance(summaries, dict) and all(
            isinstance(k, str) and isinstance(v, FunctionSummary)
            for k, v in summaries.items())

    def _get_legacy(self, key: str):
        """v2 migration path: one ``<key>.summary.pkl`` per component."""
        path = self._legacy_path(key)
        payload = self._read_blob(path)
        if payload is None:
            return None
        if not isinstance(payload, dict):
            obs.count("analysis.cache.corrupt")
            _safe_remove(path)
            return None
        if payload.get("format") != LEGACY_CACHE_FORMAT:
            # Format-1 bare dicts (and anything newer/unknown) would
            # serve summaries missing fields: stale, evict, recompute.
            obs.count("analysis.cache.stale")
            _safe_remove(path)
            return None
        summaries = payload.get("summaries")
        if not self._valid_summaries(summaries):
            obs.count("analysis.cache.corrupt")
            _safe_remove(path)
            return None
        obs.count("analysis.cache.migrated")
        return summaries

    def get_wave(self, ckeys):
        """Serve every cached component of one wave in bulk.

        Returns ``(found, fps, migrated)``: ``found`` maps component
        key → ``{fn: summary}``, ``fps`` maps component key →
        ``{fn: summary fingerprint}`` (only for shard entries — legacy
        entries predate stored fingerprints), and ``migrated`` is the
        set of keys served from v2 per-entry files, which the caller
        re-shards and retires.
        """
        index = self._load_index()
        found: Dict[str, Dict[str, FunctionSummary]] = {}
        fps: Dict[str, Dict[str, str]] = {}
        migrated = set()
        by_shard: Dict[str, List[str]] = {}
        for ckey in ckeys:
            shard = index.get(ckey)
            if shard is not None:
                by_shard.setdefault(shard, []).append(ckey)
        for shard, keys in sorted(by_shard.items()):
            entries = self._read_shard(shard)
            if entries is None:
                for ckey in keys:       # dead mapping: prune lazily
                    index.pop(ckey, None)
                continue
            for ckey in keys:
                entry = entries.get(ckey)
                if not isinstance(entry, dict) \
                        or not self._valid_summaries(
                            entry.get("summaries")):
                    obs.count("analysis.cache.corrupt")
                    continue
                found[ckey] = entry["summaries"]
                entry_fps = entry.get("summary_fps")
                if isinstance(entry_fps, dict):
                    fps[ckey] = entry_fps
        for ckey in ckeys:
            if ckey in found:
                continue
            legacy = self._get_legacy(ckey)
            if legacy is not None:
                found[ckey] = legacy
                migrated.add(ckey)
        return found, fps, migrated

    def get(self, key: str) -> Optional[Dict[str, FunctionSummary]]:
        """Single-component convenience over :meth:`get_wave`."""
        found, _fps, _migrated = self.get_wave([key])
        return found.get(key)

    # -- writes --------------------------------------------------------------

    def put_wave(self, entries, retire=()) -> Optional[str]:
        """Store one wave's components as a single shard file.

        ``entries`` maps component key → ``(summaries, summary_fps)``.
        The shard name is content-addressed from the component keys it
        holds, so re-storing the same wave replaces (atomically) rather
        than duplicates.  ``retire`` lists migrated v2 keys whose
        per-entry files are unlinked now that their contents live in a
        shard.  Returns the shard file name (``None`` if nothing was
        written).
        """
        if not entries:
            return None
        h = hashlib.sha256("\x00".join(sorted(entries)).encode())
        name = h.hexdigest()[:40] + ".shard.pkl"
        payload = {
            "format": CACHE_FORMAT,
            "entries": {ckey: {"summaries": summaries,
                               "summary_fps": summary_fps}
                        for ckey, (summaries, summary_fps)
                        in sorted(entries.items())},
        }
        if not _atomic_write(self.root, self._shard_path(name), payload):
            return None
        obs.count("analysis.cache.store", len(entries))
        index = self._load_index()
        for ckey in entries:
            index[ckey] = name
        self._write_index()
        for ckey in retire:
            _safe_remove(self._legacy_path(ckey))
        self._evict_over_limit()
        return name

    def put(self, key: str, summaries: Dict[str, FunctionSummary],
            summary_fps: Optional[Dict[str, str]] = None) -> None:
        """Single-component convenience over :meth:`put_wave`."""
        if summary_fps is None:
            summary_fps = {k: summary_fingerprint(v)
                           for k, v in summaries.items()}
        self.put_wave({key: (summaries, summary_fps)})

    def _evict_over_limit(self) -> None:
        removed = _evict_over_limit(self.root, ".shard.pkl", self.limit)
        if not removed:
            return
        dead = set(removed)
        index = self._load_index()
        for ckey in [k for k, shard in index.items() if shard in dead]:
            index.pop(ckey, None)
        _atomic_write(self.root, self._index_path(),
                      {"format": CACHE_FORMAT, "shards": index})


#: Bump when the report payload or detector semantics the report tier
#: cannot observe through its key change shape.
REPORT_CACHE_FORMAT = 1

#: Shard/report caps share one knob (``config.cache_limit``); reports
#: are small, so the report tier keeps a generous fixed multiple.
_REPORT_LIMIT_FACTOR = 4


class ReportCache:
    """Whole-file report tier above the summary cache.

    The summary cache saves the *solve*; it cannot save the compile or
    the detector walks, which dominate a warm corpus audit.  This tier
    keys the finished detector :class:`~repro.detectors.report.Report`
    on the source text plus every config knob that can change findings,
    so an unchanged file skips the front end entirely.  Same atomicity
    and corruption discipline as :class:`SummaryCache`.
    """

    def __init__(self, root: str,
                 limit: int = 65536 * _REPORT_LIMIT_FACTOR) -> None:
        self.root = root
        self.limit = limit
        os.makedirs(root, exist_ok=True)

    @staticmethod
    def key(name: str, text: str, config: AnalysisConfig) -> str:
        from repro.detectors.report import SCHEMA_VERSION
        h = hashlib.sha256()
        h.update(f"repro-report-cache-v{REPORT_CACHE_FORMAT}"
                 f":schema{SCHEMA_VERSION}\x00".encode())
        knobs = (config.interprocedural, config.detectors,
                 config.emit_bounds_checks, config.audit_unsafe)
        h.update(repr(knobs).encode())
        h.update(b"\x00")
        h.update(name.encode())
        h.update(b"\x00")
        h.update(text.encode())
        return h.hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key + ".report.pkl")

    def get(self, key: str):
        from repro.detectors.report import Report
        path = self._path(key)
        try:
            with open(path, "rb") as f:
                payload = pickle.load(f)
        except FileNotFoundError:
            return None
        except Exception:
            obs.count("analysis.report_cache.corrupt")
            _safe_remove(path)
            return None
        if not isinstance(payload, dict) \
                or payload.get("format") != REPORT_CACHE_FORMAT \
                or not isinstance(payload.get("report"), Report):
            obs.count("analysis.report_cache.corrupt")
            _safe_remove(path)
            return None
        return payload["report"]

    def put(self, key: str, report) -> None:
        payload = {"format": REPORT_CACHE_FORMAT, "report": report}
        if _atomic_write(self.root, self._path(key), payload):
            obs.count("analysis.report_cache.store")
            _evict_over_limit(self.root, ".report.pkl", self.limit)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

class _SkeletonFunctions(dict):
    """``program.functions`` stand-in for workers: full key membership,
    bodies only for the components being solved."""

    def __init__(self, all_keys, bodies) -> None:
        super().__init__(bodies)
        self._all_keys = all_keys

    def __contains__(self, key) -> bool:
        return key in self._all_keys or dict.__contains__(self, key)


def _solve_components(program: Program, comps, callee_summaries):
    """Solve independent components on a fresh engine; shared by every
    worker flavour.  Returns ``(results, iterations)`` with results
    mapping scc_id → {fn key: summary} in component order."""
    from repro.analysis.engine import SummaryEngine

    engine = SummaryEngine(program)
    engine.adopt_summaries(callee_summaries)
    results: Dict[int, Dict[str, FunctionSummary]] = {}
    iterations = 0
    for scc_id, component in comps:
        iterations += engine.solve_component(component)
        results[scc_id] = {key: engine._summaries[key]
                           for key in component}
    return results, iterations


def _solve_chunk(payload: bytes) -> bytes:
    """Solve a chunk of independent components in a worker process.

    The payload is explicitly pickled on both legs so the task stays a
    plain bytes → bytes function regardless of executor implementation.
    Returns ``(results, iterations, counters, histograms, spans)`` where
    results maps scc_id → {fn key: summary} in component order and
    ``spans`` is the worker collector's root-span forest (pid/tid-tagged
    ``analysis.scc`` trees the main process re-parents under the owning
    ``analysis.wave`` span).
    """
    comps, bodies, all_keys, callee_summaries = pickle.loads(payload)
    program = Program(functions=_SkeletonFunctions(all_keys, bodies))
    with obs.collecting("executor-worker") as collector:
        results, iterations = _solve_components(
            program, comps, callee_summaries)
    return pickle.dumps(
        (results, iterations, dict(collector.counters),
         dict(collector.histograms), list(collector.roots)),
        protocol=pickle.HIGHEST_PROTOCOL)


#: The persistent (fork-server) worker's compiled program, installed
#: once per worker by the pool initializer.  Tasks then carry only the
#: component lists and converged callee summaries — the MIR bodies that
#: dominate the per-task pickle bill under the stateless backend ship
#: exactly once per worker instead of once per chunk.
_PERSISTENT_PROGRAM: Optional[Program] = None


def _persistent_init(payload: bytes) -> None:
    global _PERSISTENT_PROGRAM
    bodies, all_keys = pickle.loads(payload)
    _PERSISTENT_PROGRAM = Program(
        functions=_SkeletonFunctions(all_keys, bodies))


def _solve_chunk_persistent(payload: bytes) -> bytes:
    """Persistent-worker task: like :func:`_solve_chunk`, but the
    program comes from the initializer-installed module global."""
    comps, callee_summaries = pickle.loads(payload)
    program = _PERSISTENT_PROGRAM
    if program is None:          # initializer failed: impossible to solve
        raise RuntimeError("persistent worker has no program installed")
    with obs.collecting("executor-worker") as collector:
        results, iterations = _solve_components(
            program, comps, callee_summaries)
    return pickle.dumps(
        (results, iterations, dict(collector.counters),
         dict(collector.histograms), list(collector.roots)),
        protocol=pickle.HIGHEST_PROTOCOL)


# ---------------------------------------------------------------------------
# Main-process executor
# ---------------------------------------------------------------------------

class AnalysisExecutor:
    """Schedules one engine's summary solve over waves of SCCs."""

    def __init__(self, engine, config: AnalysisConfig,
                 pool=None) -> None:
        self.engine = engine
        self.config = config
        if config.executor_backend == "persistent":
            # A persistent pool is program-specific (its initializer
            # ships this engine's MIR): a session-shared pool cannot be
            # reused, so the executor always owns one.
            pool = None
        self._pool = pool          # optionally session-owned, shared
        self._owns_pool = pool is None
        self._pool_broken = False

    # -- pool management ----------------------------------------------------

    def _ensure_pool(self):
        if self._pool is not None or self._pool_broken:
            return self._pool
        backend = self.config.executor_backend
        if backend == "persistent":
            program = self.engine.program
            started = perf_counter()
            payload = pickle.dumps(
                (dict(program.functions), frozenset(program.functions)),
                protocol=pickle.HIGHEST_PROTOCOL)
            _record_pickle_cost(len(payload), perf_counter() - started)
            self._pool = create_pool(self.config.jobs, backend="persistent",
                                     initializer=_persistent_init,
                                     initargs=(payload,))
        else:
            self._pool = create_pool(self.config.jobs, backend=backend)
        if self._pool is None:
            self._pool_broken = True
        return self._pool

    def _close_pool(self) -> None:
        if self._owns_pool and self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- cache keying --------------------------------------------------------

    def _component_key(self, component: List[str], graph,
                       body_fps: Dict[str, str],
                       summary_fps: Dict[str, str]) -> str:
        program = self.engine.program
        h = hashlib.sha256()
        h.update(f"repro-summary-cache-v{SUMMARY_KEY_VERSION}"
                 f":proj{self.engine._MAX_PROJ}\x00".encode())
        for key in sorted(component):
            fp = body_fps.get(key)
            if fp is None:
                fp = body_fps[key] = body_fingerprint(
                    program.functions[key])
            h.update(key.encode())
            h.update(b"\x00")
            h.update(fp.encode())
            h.update(b"\x01")
        h.update(b"\x02callees\x02")
        for callee in sorted(component_callees(component, graph, program)):
            h.update(callee.encode())
            h.update(b"\x00")
            h.update(summary_fps[callee].encode())
            h.update(b"\x01")
        return h.hexdigest()

    # -- solve ---------------------------------------------------------------

    def solve(self) -> None:
        engine = self.engine
        program = engine.program
        graph = engine.call_graph
        components = scc_order(program, graph)
        obs.gauge("analysis.summaries.sccs", len(components))
        waves = wave_partition(components, graph, program)
        obs.gauge("analysis.executor.waves", len(waves))

        cache: Optional[SummaryCache] = None
        if self.config.caching_enabled:
            cache = SummaryCache(self.config.cache_dir,
                                 self.config.cache_limit)
        body_fps: Dict[str, str] = {}
        summary_fps: Dict[str, str] = {}
        total_iterations = 0
        solved_functions = 0
        cached_functions = 0

        if cache is None and self.config.jobs == 1:
            # Serial, uncached: the classic bottom-up solve.  Waves add
            # nothing here (no fan-out to schedule, no cache keys to
            # batch), so skip the per-wave bookkeeping — measurably
            # faster on corpora of many small programs.
            for component in components:
                total_iterations += engine.solve_component(component)
                solved_functions += len(component)
            obs.count("analysis.summaries.iterations", total_iterations)
            obs.count("analysis.executor.solved_functions",
                      solved_functions)
            obs.count("analysis.executor.cached_functions", 0)
            return

        try:
            for wave_index, wave in enumerate(waves):
                with obs.span("analysis.wave", index=wave_index,
                              sccs=len(wave)):
                    pending: List[Tuple[int, List[str], Optional[str]]] = []
                    wave_entries: Dict[str, Tuple[Dict[str, FunctionSummary],
                                                  Dict[str, str]]] = {}
                    retire = set()
                    ckeys: Dict[int, str] = {}
                    found: Dict[str, Dict[str, FunctionSummary]] = {}
                    fps_map: Dict[str, Dict[str, str]] = {}
                    migrated = set()
                    if cache is not None:
                        for scc_id in wave:
                            ckeys[scc_id] = self._component_key(
                                components[scc_id], graph, body_fps,
                                summary_fps)
                        # One bulk lookup per wave: typically a single
                        # index consult + one shard read.
                        found, fps_map, migrated = cache.get_wave(
                            sorted(set(ckeys.values())))
                    for scc_id in wave:
                        component = components[scc_id]
                        ckey = ckeys.get(scc_id)
                        if cache is not None:
                            hit = found.get(ckey)
                            if hit is not None \
                                    and set(hit) == set(component):
                                obs.count("analysis.cache.hit")
                                cached_functions += len(component)
                                engine.adopt_summaries(hit)
                                entry_fps = fps_map.get(ckey)
                                if entry_fps is None or \
                                        set(entry_fps) != set(component):
                                    entry_fps = {
                                        key: summary_fingerprint(hit[key])
                                        for key in component}
                                summary_fps.update(entry_fps)
                                if ckey in migrated:
                                    # v2 entry: re-shard it so the next
                                    # warm run reads it with its wave.
                                    wave_entries[ckey] = (dict(hit),
                                                          dict(entry_fps))
                                    retire.add(ckey)
                                continue
                            obs.count("analysis.cache.miss")
                        pending.append((scc_id, component, ckey))

                    results, iterations = self._solve_pending(pending, graph)
                    total_iterations += iterations
                    # Merge strictly in reverse-topological component
                    # order — independent of worker completion order.
                    for scc_id, component, ckey in pending:
                        summaries = results[scc_id]
                        solved_functions += len(component)
                        engine.adopt_summaries(
                            {key: summaries[key] for key in component})
                        if cache is not None:
                            entry_fps = {
                                key: summary_fingerprint(summaries[key])
                                for key in component}
                            summary_fps.update(entry_fps)
                            wave_entries[ckey] = (
                                {key: summaries[key] for key in component},
                                entry_fps)
                    if cache is not None and wave_entries:
                        cache.put_wave(wave_entries, retire=retire)
        finally:
            self._close_pool()
        obs.count("analysis.summaries.iterations", total_iterations)
        obs.count("analysis.executor.solved_functions", solved_functions)
        obs.count("analysis.executor.cached_functions", cached_functions)

    def _solve_pending(self, pending, graph):
        """Solve a wave's unsatisfied components; returns
        ``({scc_id: {key: summary}}, iterations)``."""
        engine = self.engine
        results: Dict[int, Dict[str, FunctionSummary]] = {}
        iterations = 0
        pool = None
        if self.config.jobs > 1 and len(pending) > 1:
            pool = self._ensure_pool()
        if pool is None:
            for scc_id, component, _ckey in pending:
                iterations += engine.solve_component(component)
                results[scc_id] = {key: engine._summaries[key]
                                   for key in component}
            return results, iterations

        program = engine.program
        backend = self.config.executor_backend
        chunks = _chunk(pending, self.config.jobs)

        def chunk_inputs(chunk):
            comps = [(scc_id, component) for scc_id, component, _ in chunk]
            callees = set()
            for _, component, _ in chunk:
                callees |= component_callees(component, graph, program)
            callee_summaries = {key: engine._summaries[key]
                                for key in sorted(callees)
                                if key in engine._summaries}
            return comps, callee_summaries

        if backend == "thread":
            # Same address space: no payloads to pickle at all.  Each
            # task still solves on its own engine (mirroring process
            # isolation) and results merge in component order, so
            # findings stay byte-identical with every other backend.
            futures = []
            for chunk in chunks:
                comps, callee_summaries = chunk_inputs(chunk)
                obs.count("executor.tasks")
                futures.append(pool.submit(
                    _solve_components, program, comps, callee_summaries))
            for future in futures:
                chunk_results, chunk_iterations = future.result()
                results.update(chunk_results)
                iterations += chunk_iterations
            return results, iterations

        all_keys = frozenset(program.functions)
        futures = []
        for chunk in chunks:
            comps, callee_summaries = chunk_inputs(chunk)
            if backend == "persistent":
                # MIR already lives in the workers (pool initializer);
                # ship only the schedule and converged callee facts.
                task, args = _solve_chunk_persistent, \
                    (comps, callee_summaries)
            else:
                bodies = {key: program.functions[key]
                          for _, component, _ in chunk for key in component}
                task, args = _solve_chunk, \
                    (comps, bodies, all_keys, callee_summaries)
            started = perf_counter()
            payload = pickle.dumps(args, protocol=pickle.HIGHEST_PROTOCOL)
            _record_pickle_cost(len(payload), perf_counter() - started)
            obs.count("executor.tasks")
            futures.append(pool.submit(task, payload))
        for future in futures:
            blob = future.result()
            started = perf_counter()
            chunk_results, chunk_iterations, counters, histograms, \
                spans = pickle.loads(blob)
            _record_pickle_cost(len(blob), perf_counter() - started)
            results.update(chunk_results)
            iterations += chunk_iterations
            _merge_worker_obs(counters, histograms, spans)
        return results, iterations


def _chunk(items: List, jobs: int) -> List[List]:
    """Split ``items`` into at most ``2 * jobs`` contiguous chunks —
    enough slices for load balancing without drowning small waves in
    per-task pickling overhead."""
    if not items:
        return []
    target = max(1, min(len(items), 2 * jobs))
    size = (len(items) + target - 1) // target
    return [items[i:i + size] for i in range(0, len(items), size)]


def _merge_counters(counters: Dict[str, float]) -> None:
    """Fold a worker's obs counters into the installed collector (if
    any), so ``--profile`` stays truthful under fan-out."""
    for name, value in sorted(counters.items()):
        obs.count(name, value)


def _record_pickle_cost(nbytes: int, seconds: float) -> None:
    """Per-task serialisation overhead — the suspected culprit behind
    the fan-out regression (BENCH_parallel speedup < 1), now measured:
    totals as counters, per-task distribution as a histogram."""
    obs.count("executor.pickle_bytes", nbytes)
    obs.count("executor.pickle_seconds", seconds)
    obs.observe("executor.pickle_seconds", seconds)


def _merge_worker_obs(counters: Dict[str, float], histograms,
                      spans) -> None:
    """Fold one worker task's full obs payload — counters, histograms,
    and the pid/tid-tagged span forest — into the installed collector.

    Spans are re-parented under the currently open span (the owning
    ``analysis.wave``), so a trace shows every worker's solve timeline
    side by side inside the wave that scheduled it.
    """
    _merge_counters(counters)
    collector = obs.get_collector()
    if collector is None:
        return
    for name, histogram in sorted(histograms.items()):
        collector.merge_histogram(name, histogram)
    collector.adopt_spans(spans)


def create_pool(jobs: int, backend: str = "process",
                initializer=None, initargs=()):
    """A worker pool for ``backend``, or ``None`` when the platform
    cannot give us one (no fork support, locked-down semaphores, …) —
    callers degrade to in-process solving.

    * ``"process"`` — stateless ``ProcessPoolExecutor`` workers.
    * ``"persistent"`` — same pool class, but ``initializer`` runs once
      per worker (the fork-server shape: compiled MIR ships once).
    * ``"thread"`` — ``ThreadPoolExecutor``; always available.
    """
    if backend == "thread":
        from concurrent.futures import ThreadPoolExecutor
        return ThreadPoolExecutor(max_workers=jobs,
                                  thread_name_prefix="repro-exec")
    try:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:           # platform without fork
            context = multiprocessing.get_context()
        pool = ProcessPoolExecutor(max_workers=jobs, mp_context=context,
                                   initializer=initializer,
                                   initargs=initargs)
        # Fail fast (and fall back) when process start is forbidden.
        pool.submit(int, 0).result()
        return pool
    except Exception as exc:
        warnings.warn(f"{backend} pool unavailable ({exc!r}); "
                      f"running jobs=1 in-process", RuntimeWarning,
                      stacklevel=2)
        obs.count("analysis.executor.pool_unavailable")
        return None
