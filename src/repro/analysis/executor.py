"""Parallel + incremental execution layer for the summary solve.

The :class:`~repro.analysis.engine.SummaryEngine` solves the condensed
call graph bottom-up; this module decides *how* that schedule runs:

* **Waves** — :func:`repro.analysis.callgraph.wave_partition` groups the
  SCCs into levels whose members share no edges, so every component in a
  wave can be solved independently once the previous waves converged.
* **Fan-out** — with ``config.jobs > 1``, a wave's unsolved components
  are chunked across a ``ProcessPoolExecutor``.  Workers are stateless:
  each task carries the member bodies, the program's key set (so callee
  resolution behaves exactly as in-process) and the already-converged
  callee summaries, and returns the component summaries.  Results are
  merged in the original reverse-topological component order, never in
  completion order, so findings are byte-identical at any worker count.
* **Incrementality** — a content-addressed on-disk cache
  (:class:`SummaryCache`).  A component's key hashes its members' MIR
  fingerprints plus the *summary* fingerprints of its external callees,
  which gives early cutoff for free: editing a function invalidates its
  own component, and its callers only when its summary actually changed.
  Corrupted or stale entries are dropped and recomputed, never trusted.

Obs surface: ``analysis.wave`` spans (one per wave) with the workers'
``analysis.scc`` solve spans folded back underneath (pid/tid-tagged, so
``--trace-out`` renders worker timelines side by side),
``analysis.cache.{hit,miss,store,evict,corrupt,stale}`` counters,
``analysis.executor.{solved,cached}_functions`` totals, per-task
``executor.pickle_{bytes,seconds}`` and per-entry
``cache.{read_bytes,deserialize_seconds}`` costs — the numbers the
incremental-rerun benchmarks, the regression observatory
(``minirust bench-diff``), and the tests assert on.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import warnings
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.analysis.callgraph import (
    component_callees, scc_order, wave_partition,
)
from repro.analysis.config import AnalysisConfig
from repro.analysis.summaries import (
    FunctionSummary, canonical, summary_fingerprint,
)
from repro.mir.nodes import Body, Program

#: Bump when the summary format or solve semantics change: stale cache
#: entries from older formats must never be served.  The value feeds the
#: component key *and* is stored inside each payload, so entries written
#: before the payload was versioned (format 1 stored a bare summary
#: dict) are recognised as stale and evicted rather than unpickled into
#: a summary missing the newer fields.
#:
#: v2: ``FunctionSummary`` gained ``unsafe_provenance`` + ``lock_orders``
#: and payloads became ``{"format": N, "summaries": {...}}``.
CACHE_FORMAT = 2


def body_fingerprint(body: Body) -> str:
    """Content hash of one function's MIR (spans included — summaries
    carry spans, so a moved function must not serve stale locations)."""
    return hashlib.sha256(canonical(body).encode()).hexdigest()


# ---------------------------------------------------------------------------
# On-disk summary cache
# ---------------------------------------------------------------------------

class SummaryCache:
    """Content-addressed store of per-component summary dicts.

    One pickle file per key under ``root``.  Writes are atomic
    (tempfile + rename) so concurrent workers and sessions sharing a
    cache directory can only ever observe complete entries.  Any failure
    to load — unreadable file, truncated pickle, wrong payload shape —
    counts as a miss: the entry is evicted and the component recomputed.
    """

    def __init__(self, root: str, limit: int) -> None:
        self.root = root
        self.limit = limit
        os.makedirs(root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key + ".summary.pkl")

    def get(self, key: str) -> Optional[Dict[str, FunctionSummary]]:
        path = self._path(key)
        try:
            started = perf_counter()
            with open(path, "rb") as f:
                blob = f.read()
            payload = pickle.loads(blob)
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated, corrupted, or unreadable: recompute instead of
            # crashing, and drop the bad entry so it cannot recur.
            obs.count("analysis.cache.corrupt")
            self._remove(path)
            return None
        # Per-entry cost of serving warm: the numbers that decide
        # whether the cache profits (ROADMAP: warm is currently *slower*
        # than cold — these counters make that regression readable).
        elapsed = perf_counter() - started
        obs.count("cache.read_bytes", len(blob))
        obs.count("cache.deserialize_seconds", elapsed)
        obs.observe("cache.deserialize_seconds", elapsed)
        if not isinstance(payload, dict):
            obs.count("analysis.cache.corrupt")
            self._remove(path)
            return None
        if payload.get("format") != CACHE_FORMAT:
            # A pre-versioning bare summary dict, or an entry written by
            # a different format: structurally valid but semantically
            # stale.  Served summaries would silently lack newer fields.
            obs.count("analysis.cache.stale")
            self._remove(path)
            return None
        summaries = payload.get("summaries")
        if not isinstance(summaries, dict) or not all(
                isinstance(k, str) and isinstance(v, FunctionSummary)
                for k, v in summaries.items()):
            obs.count("analysis.cache.corrupt")
            self._remove(path)
            return None
        return summaries

    def put(self, key: str, summaries: Dict[str, FunctionSummary]) -> None:
        path = self._path(key)
        payload = {"format": CACHE_FORMAT, "summaries": summaries}
        try:
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            with os.fdopen(fd, "wb") as f:
                pickle.dump(payload, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            return        # a full or read-only cache disables itself
        obs.count("analysis.cache.store")
        self._evict_over_limit()

    def _remove(self, path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    def _evict_over_limit(self) -> None:
        try:
            entries = [e for e in os.scandir(self.root)
                       if e.name.endswith(".summary.pkl")]
        except OSError:
            return
        excess = len(entries) - self.limit
        if excess <= 0:
            return
        try:
            entries.sort(key=lambda e: (e.stat().st_mtime, e.name))
        except OSError:          # entry vanished under a concurrent evict
            return
        for entry in entries[:excess]:
            self._remove(entry.path)
            obs.count("analysis.cache.evict")


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

class _SkeletonFunctions(dict):
    """``program.functions`` stand-in for workers: full key membership,
    bodies only for the components being solved."""

    def __init__(self, all_keys, bodies) -> None:
        super().__init__(bodies)
        self._all_keys = all_keys

    def __contains__(self, key) -> bool:
        return key in self._all_keys or dict.__contains__(self, key)


def _solve_chunk(payload: bytes) -> bytes:
    """Solve a chunk of independent components in a worker process.

    The payload is explicitly pickled on both legs so the task stays a
    plain bytes → bytes function regardless of executor implementation.
    Returns ``(results, iterations, counters, histograms, spans)`` where
    results maps scc_id → {fn key: summary} in component order and
    ``spans`` is the worker collector's root-span forest (pid/tid-tagged
    ``analysis.scc`` trees the main process re-parents under the owning
    ``analysis.wave`` span).
    """
    from repro.analysis.engine import SummaryEngine

    comps, bodies, all_keys, callee_summaries = pickle.loads(payload)
    program = Program(functions=_SkeletonFunctions(all_keys, bodies))
    with obs.collecting("executor-worker") as collector:
        engine = SummaryEngine(program)
        engine.adopt_summaries(callee_summaries)
        results: Dict[int, Dict[str, FunctionSummary]] = {}
        iterations = 0
        for scc_id, component in comps:
            iterations += engine.solve_component(component)
            results[scc_id] = {key: engine._summaries[key]
                               for key in component}
    return pickle.dumps(
        (results, iterations, dict(collector.counters),
         dict(collector.histograms), list(collector.roots)),
        protocol=pickle.HIGHEST_PROTOCOL)


# ---------------------------------------------------------------------------
# Main-process executor
# ---------------------------------------------------------------------------

class AnalysisExecutor:
    """Schedules one engine's summary solve over waves of SCCs."""

    def __init__(self, engine, config: AnalysisConfig,
                 pool=None) -> None:
        self.engine = engine
        self.config = config
        self._pool = pool          # optionally session-owned, shared
        self._owns_pool = pool is None
        self._pool_broken = False

    # -- pool management ----------------------------------------------------

    def _ensure_pool(self):
        if self._pool is not None or self._pool_broken:
            return self._pool
        self._pool = create_pool(self.config.jobs)
        if self._pool is None:
            self._pool_broken = True
        return self._pool

    def _close_pool(self) -> None:
        if self._owns_pool and self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- cache keying --------------------------------------------------------

    def _component_key(self, component: List[str], graph,
                       body_fps: Dict[str, str],
                       summary_fps: Dict[str, str]) -> str:
        program = self.engine.program
        h = hashlib.sha256()
        h.update(f"repro-summary-cache-v{CACHE_FORMAT}"
                 f":proj{self.engine._MAX_PROJ}\x00".encode())
        for key in sorted(component):
            fp = body_fps.get(key)
            if fp is None:
                fp = body_fps[key] = body_fingerprint(
                    program.functions[key])
            h.update(key.encode())
            h.update(b"\x00")
            h.update(fp.encode())
            h.update(b"\x01")
        h.update(b"\x02callees\x02")
        for callee in sorted(component_callees(component, graph, program)):
            h.update(callee.encode())
            h.update(b"\x00")
            h.update(summary_fps[callee].encode())
            h.update(b"\x01")
        return h.hexdigest()

    # -- solve ---------------------------------------------------------------

    def solve(self) -> None:
        engine = self.engine
        program = engine.program
        graph = engine.call_graph
        components = scc_order(program, graph)
        obs.gauge("analysis.summaries.sccs", len(components))
        waves = wave_partition(components, graph, program)
        obs.gauge("analysis.executor.waves", len(waves))

        cache: Optional[SummaryCache] = None
        if self.config.caching_enabled:
            cache = SummaryCache(self.config.cache_dir,
                                 self.config.cache_limit)
        body_fps: Dict[str, str] = {}
        summary_fps: Dict[str, str] = {}
        total_iterations = 0
        solved_functions = 0
        cached_functions = 0

        try:
            for wave_index, wave in enumerate(waves):
                with obs.span("analysis.wave", index=wave_index,
                              sccs=len(wave)):
                    pending: List[Tuple[int, List[str], Optional[str]]] = []
                    for scc_id in wave:
                        component = components[scc_id]
                        ckey = None
                        if cache is not None:
                            ckey = self._component_key(
                                component, graph, body_fps, summary_fps)
                            hit = cache.get(ckey)
                            if hit is not None \
                                    and set(hit) == set(component):
                                obs.count("analysis.cache.hit")
                                cached_functions += len(component)
                                engine.adopt_summaries(hit)
                                for key in component:
                                    summary_fps[key] = \
                                        summary_fingerprint(hit[key])
                                continue
                            obs.count("analysis.cache.miss")
                        pending.append((scc_id, component, ckey))

                    results, iterations = self._solve_pending(pending, graph)
                    total_iterations += iterations
                    # Merge strictly in reverse-topological component
                    # order — independent of worker completion order.
                    for scc_id, component, ckey in pending:
                        summaries = results[scc_id]
                        solved_functions += len(component)
                        engine.adopt_summaries(
                            {key: summaries[key] for key in component})
                        if cache is not None:
                            cache.put(ckey, {key: summaries[key]
                                             for key in component})
                            for key in component:
                                summary_fps[key] = \
                                    summary_fingerprint(summaries[key])
        finally:
            self._close_pool()
        obs.count("analysis.summaries.iterations", total_iterations)
        obs.count("analysis.executor.solved_functions", solved_functions)
        obs.count("analysis.executor.cached_functions", cached_functions)

    def _solve_pending(self, pending, graph):
        """Solve a wave's unsatisfied components; returns
        ``({scc_id: {key: summary}}, iterations)``."""
        engine = self.engine
        results: Dict[int, Dict[str, FunctionSummary]] = {}
        iterations = 0
        pool = None
        if self.config.jobs > 1 and len(pending) > 1:
            pool = self._ensure_pool()
        if pool is None:
            for scc_id, component, _ckey in pending:
                iterations += engine.solve_component(component)
                results[scc_id] = {key: engine._summaries[key]
                                   for key in component}
            return results, iterations

        program = engine.program
        all_keys = frozenset(program.functions)
        chunks = _chunk(pending, self.config.jobs)
        futures = []
        for chunk in chunks:
            comps = [(scc_id, component) for scc_id, component, _ in chunk]
            bodies = {key: program.functions[key]
                      for _, component, _ in chunk for key in component}
            callees = set()
            for _, component, _ in chunk:
                callees |= component_callees(component, graph, program)
            callee_summaries = {key: engine._summaries[key]
                                for key in sorted(callees)
                                if key in engine._summaries}
            started = perf_counter()
            payload = pickle.dumps(
                (comps, bodies, all_keys, callee_summaries),
                protocol=pickle.HIGHEST_PROTOCOL)
            _record_pickle_cost(len(payload), perf_counter() - started)
            obs.count("executor.tasks")
            futures.append(pool.submit(_solve_chunk, payload))
        for future in futures:
            blob = future.result()
            started = perf_counter()
            chunk_results, chunk_iterations, counters, histograms, \
                spans = pickle.loads(blob)
            _record_pickle_cost(len(blob), perf_counter() - started)
            results.update(chunk_results)
            iterations += chunk_iterations
            _merge_worker_obs(counters, histograms, spans)
        return results, iterations


def _chunk(items: List, jobs: int) -> List[List]:
    """Split ``items`` into at most ``2 * jobs`` contiguous chunks —
    enough slices for load balancing without drowning small waves in
    per-task pickling overhead."""
    if not items:
        return []
    target = max(1, min(len(items), 2 * jobs))
    size = (len(items) + target - 1) // target
    return [items[i:i + size] for i in range(0, len(items), size)]


def _merge_counters(counters: Dict[str, float]) -> None:
    """Fold a worker's obs counters into the installed collector (if
    any), so ``--profile`` stays truthful under fan-out."""
    for name, value in sorted(counters.items()):
        obs.count(name, value)


def _record_pickle_cost(nbytes: int, seconds: float) -> None:
    """Per-task serialisation overhead — the suspected culprit behind
    the fan-out regression (BENCH_parallel speedup < 1), now measured:
    totals as counters, per-task distribution as a histogram."""
    obs.count("executor.pickle_bytes", nbytes)
    obs.count("executor.pickle_seconds", seconds)
    obs.observe("executor.pickle_seconds", seconds)


def _merge_worker_obs(counters: Dict[str, float], histograms,
                      spans) -> None:
    """Fold one worker task's full obs payload — counters, histograms,
    and the pid/tid-tagged span forest — into the installed collector.

    Spans are re-parented under the currently open span (the owning
    ``analysis.wave``), so a trace shows every worker's solve timeline
    side by side inside the wave that scheduled it.
    """
    _merge_counters(counters)
    collector = obs.get_collector()
    if collector is None:
        return
    for name, histogram in sorted(histograms.items()):
        collector.merge_histogram(name, histogram)
    collector.adopt_spans(spans)


def create_pool(jobs: int):
    """A ``ProcessPoolExecutor`` with ``jobs`` workers, or ``None`` when
    the platform cannot give us one (no fork support, locked-down
    semaphores, …) — callers degrade to in-process solving."""
    try:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:           # platform without fork
            context = multiprocessing.get_context()
        pool = ProcessPoolExecutor(max_workers=jobs, mp_context=context)
        # Fail fast (and fall back) when process start is forbidden.
        pool.submit(int, 0).result()
        return pool
    except Exception as exc:
        warnings.warn(f"process pool unavailable ({exc!r}); "
                      f"running jobs=1 in-process", RuntimeWarning,
                      stacklevel=2)
        obs.count("analysis.executor.pool_unavailable")
        return None
