"""Flow-insensitive, field-insensitive Andersen-style points-to analysis.

The paper's UAF detector "conduct[s] a 'points-to' analysis [that]
maintain[s] which variable [each pointer/reference] points to/references"
(§7.1).  This module is that analysis, over one MIR body.

Points-to targets:

* ``("local", l)`` — the storage of local ``l`` (refs created by ``&x``,
  ``&mut x``, ``&raw``-style casts, ``as_ptr()`` on a container local);
* ``("heap", site)`` — an allocation made at call-site id ``site``
  (``Box::new``, ``alloc``, ``Vec::new`` …);
* ``("static", name)`` — a global;
* ``("argval", i)`` — the value of the function's own argument ``i``
  (seeded on every argument local so return-value aliasing like
  ``f(x) = g(x)`` composes across call chains);
* ``("unknown",)`` — escape hatch for FFI / unresolved sources.

The solver is a straightforward transitive-closure iteration; bodies are
small, precision needs are modest (the detectors re-filter by type).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.analysis.scan import scan_of
from repro.hir.builtins import BuiltinOp, FuncKind
from repro.mir.nodes import (
    Body, Operand, Place, RvalueKind, StatementKind, TerminatorKind,
)

Target = Tuple
UNKNOWN_TARGET: Target = ("unknown",)
NULL_TARGET: Target = ("null",)

# Builtin calls whose result aliases the receiver's pointees.
# Arc::clone / Rc::clone produce a second handle to the *same* allocation,
# so the clone must inherit the receiver's pointees — that aliasing is what
# lets the thread-escape analysis connect a closure capture back to the
# allocation the spawner still holds.
_POINTER_TRANSFER_OPS = {
    BuiltinOp.PTR_OFFSET, BuiltinOp.PTR_ADD, BuiltinOp.CLONE,
    BuiltinOp.ARC_CLONE, BuiltinOp.RC_CLONE,
}

# Builtin calls that return a pointer *into* the receiver object.
_INTO_RECEIVER_OPS = {
    BuiltinOp.VEC_AS_PTR, BuiltinOp.VEC_AS_MUT_PTR,
    BuiltinOp.VEC_GET_UNCHECKED, BuiltinOp.VEC_GET_UNCHECKED_MUT,
    BuiltinOp.VEC_GET, BuiltinOp.VEC_GET_MUT, BuiltinOp.FIRST,
    BuiltinOp.LAST, BuiltinOp.UNSAFECELL_GET, BuiltinOp.AS_REF,
    BuiltinOp.AS_MUT,
}

# Builtin calls that allocate.  ``channel()`` counts as an allocation:
# the ``(Sender, Receiver)`` pair shares one underlying queue, so giving
# the tuple a heap site makes both endpoints resolve to the same global
# identity — the channel-endpoint node the cross-thread lock graph needs.
_ALLOC_OPS = {
    BuiltinOp.BOX_NEW, BuiltinOp.RC_NEW, BuiltinOp.ARC_NEW,
    BuiltinOp.VEC_NEW, BuiltinOp.VEC_WITH_CAPACITY, BuiltinOp.VEC_MACRO,
    BuiltinOp.ALLOC, BuiltinOp.STRING_NEW, BuiltinOp.HASHMAP_NEW,
    BuiltinOp.GETMNTENT, BuiltinOp.VEC_FROM_RAW_PARTS,
    BuiltinOp.CHANNEL_NEW, BuiltinOp.SYNC_CHANNEL_NEW,
    # A condvar's identity is its creation site (it guards no data, so
    # this never feeds lock/guard-region logic): wait and notify sites
    # on the same condvar meet on one id even without an Arc wrapper.
    BuiltinOp.CONDVAR_NEW,
}


@dataclass(slots=True)
class PointsTo:
    """Result: ``points_to[local]`` is a set of targets."""

    body: Body
    points_to: Dict[int, Set[Target]] = field(default_factory=dict)

    def targets(self, local: int) -> Set[Target]:
        return self.points_to.get(local, set())

    def local_targets(self, local: int) -> Set[int]:
        """Just the ``("local", l)`` targets, as local indices."""
        return {t[1] for t in self.targets(local) if t[0] == "local"}

    def may_point_to_local(self, pointer: int, target_local: int) -> bool:
        return ("local", target_local) in self.targets(pointer)

    def may_alias(self, a: int, b: int) -> bool:
        ta, tb = self.targets(a), self.targets(b)
        return bool(ta & tb)


class _PtSkeleton:
    """The return-summary-independent constraint system of one body,
    built once and cached on the body's scan.  ``compute_points_to``
    runs on every worklist iteration of the owning SCC; everything that
    does not depend on callee return summaries — seed targets, copy /
    load / store edges — is identical across those runs, so re-deriving
    it from the statement list each time was pure overhead."""

    __slots__ = ("seeds", "copies", "loads", "stores", "user_calls")

    def __init__(self, body: Body) -> None:
        seeds: list = []       # (local, target) ensured before the fixpoint
        copies: Set[Tuple[int, int]] = set()     # dst ⊇ src
        loads: Set[Tuple[int, int]] = set()      # dst ⊇ *src
        stores: Set[Tuple[int, int]] = set()     # *dst ⊇ src
        #: (dst, callee key, operand locals, heap site id) — the only
        #: constraints whose expansion needs the live return summaries.
        user_calls: list = []

        def operand_local(op: Operand) -> Optional[int]:
            if op.place is not None:
                return op.place.local
            return None

        scan = scan_of(body)
        for bb, idx, stmt in scan.statements:
            if stmt.kind is not StatementKind.ASSIGN or stmt.rvalue is None:
                continue
            dest = stmt.place
            rv = stmt.rvalue
            if dest.has_deref:
                # *p = src : store constraint
                if rv.kind is RvalueKind.USE:
                    src = operand_local(rv.operands[0])
                    if src is not None:
                        stores.add((dest.local, src))
                continue
            dst = dest.local
            if rv.kind in (RvalueKind.REF, RvalueKind.ADDRESS_OF):
                seeds.append((dst, ("local", rv.place.local)))
                base_name = body.locals[rv.place.local].name or ""
                if base_name.startswith("static:"):
                    seeds.append((dst, ("static", base_name[7:])))
            elif rv.kind is RvalueKind.USE:
                op = rv.operands[0]
                src = operand_local(op)
                if src is not None:
                    if op.place.has_deref:
                        loads.add((dst, src))
                    else:
                        copies.add((dst, src))
            elif rv.kind is RvalueKind.CAST:
                src = operand_local(rv.operands[0])
                if src is not None:
                    copies.add((dst, src))
            elif rv.kind is RvalueKind.AGGREGATE:
                # Field-insensitive: aggregate inherits pointees of
                # components.
                for op in rv.operands:
                    src = operand_local(op)
                    if src is not None:
                        copies.add((dst, src))

        for bb, term in scan.terminators:
            if term.kind is not TerminatorKind.CALL:
                continue
            if term.destination is None or not term.destination.is_local:
                continue
            dst = term.destination.local
            func = term.func
            if func is None:
                continue
            op = func.builtin_op
            if op in (BuiltinOp.PTR_NULL, BuiltinOp.PTR_NULL_MUT):
                seeds.append((dst, NULL_TARGET))
            elif op in _ALLOC_OPS:
                seeds.append((dst, ("heap", f"{body.key}:{bb}")))
            elif op in _INTO_RECEIVER_OPS and term.args:
                # Receiver is a ref temp → one deref gives the container
                # local.
                recv = operand_local(term.args[0])
                if recv is not None:
                    loads.add((dst, recv))
            elif op in _POINTER_TRANSFER_OPS and term.args:
                recv = operand_local(term.args[0])
                if recv is not None:
                    loads.add((dst, recv))
            elif op in (BuiltinOp.UNWRAP, BuiltinOp.EXPECT,
                        BuiltinOp.PTR_READ, BuiltinOp.MEM_REPLACE,
                        BuiltinOp.TAKE) and term.args:
                recv = operand_local(term.args[0])
                if recv is not None:
                    loads.add((dst, recv))
                    copies.add((dst, recv))
            elif func.kind in (FuncKind.USER, FuncKind.CLOSURE):
                user_calls.append(
                    (dst, func.user_fn,
                     tuple(operand_local(a) for a in term.args),
                     f"{body.key}:{bb}"))
            elif func.kind is FuncKind.UNKNOWN:
                seeds.append((dst, UNKNOWN_TARGET))

        self.seeds = tuple(seeds)
        self.copies = frozenset(copies)
        self.loads = tuple(loads)
        self.stores = tuple(stores)
        self.user_calls = tuple(user_calls)


def compute_points_to(body: Body,
                      return_summaries: Optional[Dict[str, Set[int]]] = None
                      ) -> PointsTo:
    """Compute points-to facts for one body.

    ``return_summaries`` optionally maps user-function keys to the set of
    argument positions their return value may point into — the light
    inter-procedural summary that lets ``p = b.as_ptr()`` alias ``b``
    across a call boundary (needed for the paper's Figure 7 bug).
    """
    skeleton = scan_of(body).memo("pt_skeleton",
                                  lambda: _PtSkeleton(body))
    result = PointsTo(body)
    pt = result.points_to

    def ensure(local: int) -> Set[Target]:
        return pt.setdefault(local, set())

    # Seed every argument local with its own-value marker so copies of an
    # argument (and values returned through callees that pass the argument
    # along) stay identifiable as "aliases caller argument i".
    for position in range(body.arg_count):
        ensure(position + 1).add(("argval", position))
    for local, target in skeleton.seeds:
        ensure(local).add(target)

    copies: Set[Tuple[int, int]] = set(skeleton.copies)
    loads = skeleton.loads
    stores = skeleton.stores
    if return_summaries:
        for dst, callee, arg_locals, heap_site in skeleton.user_calls:
            items = return_summaries.get(callee) or set()
            for item in items:
                if item == "null":
                    ensure(dst).add(NULL_TARGET)
                elif item == "heap":
                    # The callee returns a fresh allocation; model it as
                    # an allocation made at this call site.
                    ensure(dst).add(("heap", heap_site))
                elif item == "unknown":
                    ensure(dst).add(UNKNOWN_TARGET)
                elif isinstance(item, int) and item < len(arg_locals):
                    src = arg_locals[item]
                    if src is not None:
                        copies.add((dst, src))

    # Fixpoint.
    changed = True
    while changed:
        changed = False
        for dst, src in copies:
            before = len(ensure(dst))
            ensure(dst).update(ensure(src))
            if len(pt[dst]) != before:
                changed = True
        for dst, src in loads:
            before = len(ensure(dst))
            for target in list(ensure(src)):
                if target[0] == "local":
                    ensure(dst).update(ensure(target[1]))
                elif target[0] in ("heap", "static", "unknown", "null",
                                   "argval"):
                    # ``argval`` passes through so a pointer-transfer call
                    # on a reference argument (``Arc::clone(a)`` with
                    # ``a: &Arc<T>``) still summarises as "aliases caller
                    # argument i".
                    ensure(dst).add(target)
            if len(pt[dst]) != before:
                changed = True
        for dst, src in stores:
            for target in list(ensure(dst)):
                if target[0] == "local":
                    before = len(ensure(target[1]))
                    ensure(target[1]).update(ensure(src))
                    if len(pt[target[1]]) != before:
                        changed = True
    return result


def return_items(body: Body, pt: PointsTo) -> Set:
    """Extract the return-summary items for one body from its points-to
    result: argument positions the return value may point into or alias,
    plus ``"null"``."""
    items: Set = set()
    for target in pt.targets(0):
        if target[0] == "local" and 0 < target[1] <= body.arg_count:
            items.add(target[1] - 1)
        elif target[0] == "argval":
            items.add(target[1])
        elif target == NULL_TARGET:
            items.add("null")
    return items


def compute_return_summaries(program) -> Dict[str, Set[int]]:
    """Which argument positions can each function's return value point
    into?  Iterated to a true fixpoint so arbitrarily deep chains like
    ``f(x) = g(x) = h(x)`` propagate fully, whatever the definition
    order.  (A bounded 3-round loop used to lose precision on chains
    deeper than its bound.)

    This is the *legacy* whole-program recomputation: every round re-runs
    ``compute_points_to`` for every function.  The
    :class:`repro.analysis.engine.SummaryEngine` computes the same facts
    (and more) bottom-up over call-graph SCCs; this function remains as
    the reference implementation the benchmarks compare against.
    """
    summaries: Dict[str, Set[int]] = {}
    changed = True
    while changed:
        changed = False
        for key, body in program.functions.items():
            pt = compute_points_to(body, summaries)
            # The return place is local 0; look at what it may point to,
            # including values that flowed into it.
            items = return_items(body, pt)
            if items and not items <= summaries.get(key, set()):
                summaries[key] = set(summaries.get(key, set())) | items
                changed = True
    return summaries
