"""Storage live-ranges and lock-guard regions.

Two lifetime views feed the detectors:

* :func:`compute_storage_ranges` — for every local, the program points
  where its storage is live (between ``StorageLive`` and ``StorageDead``),
  the §7.1 "state of each variable (alive or dead)";
* :func:`compute_guard_regions` — for every lock-acquisition call site,
  the region of program points during which the returned guard is still
  held, following the guard value through ``unwrap``/moves until its drop
  — the §7.2 "lifetime of the variable returned by lock(), read(), or
  write()" analysis, including Rust's implicit unlock.

Program points are ``(block, index)`` pairs; ``index == len(statements)``
denotes the terminator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.points_to import PointsTo
from repro.analysis.scan import scan_of
from repro.hir.builtins import BuiltinOp, FuncKind
from repro.lang.source import Span
from repro.mir.cfg import Cfg
from repro.mir.nodes import (
    Body, Operand, Place, RvalueKind, StatementKind, TerminatorKind,
)

Point = Tuple[int, int]

# Lock-acquisition operations and what they lock.
LOCK_ACQUIRE_OPS = {
    BuiltinOp.MUTEX_LOCK: "mutex",
    BuiltinOp.RWLOCK_READ: "read",
    BuiltinOp.RWLOCK_WRITE: "write",
    BuiltinOp.REFCELL_BORROW: "borrow",
    BuiltinOp.REFCELL_BORROW_MUT: "borrow_mut",
}
# try_* variants acquire but cannot deadlock by blocking.
TRY_ACQUIRE_OPS = {
    BuiltinOp.MUTEX_TRY_LOCK: "mutex",
    BuiltinOp.RWLOCK_TRY_READ: "read",
    BuiltinOp.RWLOCK_TRY_WRITE: "write",
}
#: lock kind → the canonical acquisition op (for synthetic regions that
#: model a callee returning with the lock held).
KIND_TO_ACQUIRE_OP = {kind: op for op, kind in LOCK_ACQUIRE_OPS.items()}

# Ops that move a value out of their (by-ref) receiver.
_EXTRACT_OPS = {BuiltinOp.UNWRAP, BuiltinOp.EXPECT, BuiltinOp.OK_METHOD,
                BuiltinOp.TAKE, BuiltinOp.UNWRAP_OR}


@dataclass
class StorageRanges:
    """Per-local storage liveness."""

    body: Body
    live_points: Dict[int, Set[Point]] = field(default_factory=dict)
    live_at_entry: Dict[int, FrozenSet[int]] = field(default_factory=dict)

    def is_live_at(self, local: int, point: Point) -> bool:
        return point in self.live_points.get(local, set())


def compute_storage_ranges(body: Body) -> StorageRanges:
    """Forward reachability of storage-liveness per local."""
    cfg = scan_of(body).memo("cfg", lambda: Cfg(body))
    n = len(body.blocks)
    # Block-entry live sets (arguments are live from entry).
    args = frozenset(l.index for l in body.locals if l.is_arg or l.index == 0)
    entry: Dict[int, Set[int]] = {0: set(args)}
    worklist = deque([0])
    result = StorageRanges(body)

    def block_transfer(bb: int, record: bool) -> Set[int]:
        live = set(entry.get(bb, set()))
        block = body.blocks[bb]
        for i, stmt in enumerate(block.statements):
            if record:
                for l in live:
                    result.live_points.setdefault(l, set()).add((bb, i))
            if stmt.kind is StatementKind.STORAGE_LIVE:
                live.add(stmt.local)
            elif stmt.kind is StatementKind.STORAGE_DEAD:
                live.discard(stmt.local)
        if record:
            term_point = (bb, len(block.statements))
            for l in live:
                result.live_points.setdefault(l, set()).add(term_point)
        return live

    while worklist:
        bb = worklist.popleft()
        out = block_transfer(bb, record=False)
        for succ in cfg.successors[bb]:
            prev = entry.get(succ)
            if prev is None:
                entry[succ] = set(out)
                worklist.append(succ)
            elif not out <= prev:
                prev |= out
                worklist.append(succ)

    for bb in range(n):
        if bb in entry or bb == 0:
            block_transfer(bb, record=True)
    result.live_at_entry = {bb: frozenset(s) for bb, s in entry.items()}
    return result


# ---------------------------------------------------------------------------
# Lock identity
# ---------------------------------------------------------------------------

def resolve_ref_chain(body: Body, local: int,
                      max_hops: int = 8) -> Tuple[int, Tuple]:
    """Follow ``temp = &place`` / ``temp = copy other`` chains to the base
    local a reference temp ultimately refers to.

    Returns ``(base_local, projection_path)``.  Memoised on the body's
    scan: the assignment map is built once per body, and repeat queries
    for the same local (the common case — every deref site, lock
    receiver and call operand resolves through here) are dict hits.
    """
    return scan_of(body).ref_chain(local, max_hops)


def lock_identity(body: Body, pt: PointsTo, receiver_temp: int) -> FrozenSet:
    """A set of abstract ids for the lock object a lock-call receiver
    denotes.  Two acquisitions *may* target the same lock when their id
    sets intersect."""
    base, projection = resolve_ref_chain(body, receiver_temp)
    ids: Set[Tuple] = set()
    proj_key = tuple((p.field_name or str(p.field_index)) for p in projection)
    for target in pt.targets(base):
        if target[0] in ("heap", "static", "local"):
            ids.add((target[0], target[1], proj_key))
    name = body.locals[base].name or ""
    if name.startswith("static:"):
        ids.add(("static", name[7:], proj_key))
    if 0 < base <= body.arg_count:
        ids.add(("arg", base - 1, proj_key))
    # Always include the plain base-local id so aliases introduced by
    # points-to agree with direct uses of the same local.
    ids.add(("local", base, proj_key))
    return frozenset(ids)


def caller_lock_ids(body: Body, pt: PointsTo, term, lock) -> FrozenSet:
    """Translate a callee summary lock (4-tuple ``(kind_of_id, payload,
    proj, lock_kind)``) into the caller's lock-identity space at call
    terminator ``term``."""
    id_kind, payload, proj, _lock_kind = lock
    if id_kind == "static":
        return frozenset({("static", payload, proj)})
    if id_kind == "arg":
        index = payload
        if index >= len(term.args) or term.args[index].place is None:
            return frozenset()
        arg_local = term.args[index].place.local
        base_ids = lock_identity(body, pt, arg_local)
        if not proj:
            return base_ids
        out = set()
        for ident in base_ids:
            out.add((ident[0], ident[1], tuple(ident[2]) + tuple(proj)))
        return frozenset(out)
    return frozenset()


# ---------------------------------------------------------------------------
# Guard regions
# ---------------------------------------------------------------------------

@dataclass
class GuardRegion:
    """One lock acquisition and the region during which its guard lives."""

    body: Body
    acquire_block: int
    op: BuiltinOp
    kind: str                       # "mutex" | "read" | "write" | ...
    lock_ids: FrozenSet
    span: Span
    guard_chain: Set[int] = field(default_factory=set)
    points: Set[Point] = field(default_factory=set)
    release_points: Set[Point] = field(default_factory=set)
    is_try: bool = False
    #: Set when the region models a *callee* that returned with the lock
    #: held (from its summary's held-on-return set): the callee's key.
    via_call: Optional[str] = None

    def covers(self, point: Point) -> bool:
        return point in self.points

    @property
    def is_write_like(self) -> bool:
        return self.kind in ("mutex", "write", "borrow_mut")

    def conflicts_with(self, other_kind: str) -> bool:
        """Would acquiring ``other_kind`` on the same lock block / panic
        while this guard is held?"""
        if self.kind == "mutex" or other_kind == "mutex":
            return True
        if self.kind in ("read",) and other_kind in ("read",):
            return False           # RwLock allows concurrent reads
        if self.kind in ("borrow",) and other_kind in ("borrow",):
            return False
        return True


def _guardish_ty(ty) -> bool:
    """Can a value of this type hold (or contain) a lock guard?"""
    if ty.is_unknown:
        return True
    if ty.is_guard:
        return True
    from repro.lang.types import TyKind
    if ty.kind is TyKind.BUILTIN and ty.name in ("Result", "Option"):
        inner = ty.arg(0)
        return inner.is_guard or inner.is_unknown
    return False


def _guard_chain(body: Body, seed: int) -> Set[int]:
    """Locals through which the guard value may flow (unwrap / moves).
    Memoised per ``(body, seed)`` on the body's scan — the same guard
    chains are re-requested on every summarise iteration."""
    scan = scan_of(body)
    key = ("guard_chain", seed)
    cached = scan.cache.get(key)
    if cached is None:
        cached = scan.cache[key] = frozenset(_compute_guard_chain(scan, seed))
    return set(cached)


def _compute_guard_chain(scan, seed: int) -> Set[int]:
    body = scan.body
    ref_map = scan.ref_map
    chain = {seed}
    changed = True
    while changed:
        changed = False
        for _bb, _i, stmt in scan.statements:
            if stmt.kind is StatementKind.ASSIGN and stmt.place.is_local \
                    and stmt.rvalue is not None \
                    and stmt.rvalue.kind is RvalueKind.USE:
                op = stmt.rvalue.operands[0]
                # Whole-value moves and payload extraction by pattern
                # destructuring (`Ok(g) =>` binds `g = tmp.0`) both carry
                # the guard along — but only into guard-compatible
                # destinations (copying `*g` out as an i32 does not).
                if op.place is not None \
                        and op.place.local in chain \
                        and stmt.place.local not in chain \
                        and _guardish_ty(body.local_ty(stmt.place.local)):
                    chain.add(stmt.place.local)
                    changed = True
        for _bb, term in scan.calls:
            if term.func.builtin_op in _EXTRACT_OPS and term.args:
                arg = term.args[0]
                if arg.place is not None and arg.place.is_local:
                    src = arg.place.local
                    src = ref_map.get(src, src)
                    if src in chain and term.destination is not None \
                            and term.destination.is_local \
                            and term.destination.local not in chain:
                        chain.add(term.destination.local)
                        changed = True
    return chain


def compute_guard_regions(body: Body, pt: Optional[PointsTo] = None,
                          include_try: bool = False,
                          summaries=None) -> List[GuardRegion]:
    """Find every lock acquisition in ``body`` and compute its held region.

    ``summaries``, when given, is a mapping (``.get(fn_key)``) of function
    keys to :class:`~repro.analysis.summaries.FunctionSummary`; a call to
    a function whose summary holds locks on return (it returns the guard)
    then starts a *synthetic* region at the call site, so guards acquired
    behind a helper are tracked in the caller too.
    """
    from repro.analysis.points_to import compute_points_to
    if pt is None:
        pt = compute_points_to(body)
    scan = scan_of(body)
    cfg = scan.memo("cfg", lambda: Cfg(body))
    regions: List[GuardRegion] = []

    for bb, term in scan.calls:
        op = term.func.builtin_op
        is_try = op in TRY_ACQUIRE_OPS
        if op in LOCK_ACQUIRE_OPS or (include_try and is_try):
            if term.destination is None or not term.destination.is_local:
                continue
            kind = LOCK_ACQUIRE_OPS.get(op) or TRY_ACQUIRE_OPS.get(op)
            recv = term.args[0].place.local if term.args and \
                term.args[0].place is not None else None
            if recv is None:
                continue
            region = GuardRegion(
                body=body, acquire_block=bb, op=op, kind=kind,
                lock_ids=lock_identity(body, pt, recv), span=term.span,
                is_try=is_try)
            region.guard_chain = _guard_chain(body, term.destination.local)
            _propagate_region(body, cfg, region, term)
            regions.append(region)
            continue
        if summaries is None:
            continue
        if term.func.kind not in (FuncKind.USER, FuncKind.CLOSURE):
            continue
        summary = summaries.get(term.func.user_fn)
        if summary is None or not summary.locks_held_on_return:
            continue
        if term.destination is None or not term.destination.is_local:
            continue
        chain = _guard_chain(body, term.destination.local)
        for held in summary.locks_held_on_return:
            lock_ids = caller_lock_ids(body, pt, term, held)
            if not lock_ids:
                continue
            lock_kind = held[3]
            region = GuardRegion(
                body=body, acquire_block=bb,
                op=KIND_TO_ACQUIRE_OP.get(lock_kind, BuiltinOp.MUTEX_LOCK),
                kind=lock_kind, lock_ids=lock_ids, span=term.span,
                via_call=term.func.user_fn)
            region.guard_chain = set(chain)
            _propagate_region(body, cfg, region, term)
            regions.append(region)
    return regions


def _propagate_region(body: Body, cfg: Cfg, region: GuardRegion,
                      acquire_term) -> None:
    """Forward dataflow of the held-guard set from the acquisition."""
    chain = region.guard_chain
    start_block = acquire_term.target
    if start_block is None:
        return
    entry: Dict[int, Set[int]] = {start_block:
                                  {acquire_term.destination.local}}
    worklist = deque([start_block])
    ref_map = scan_of(body).ref_map

    visited_with: Dict[int, Set[int]] = {}
    while worklist:
        bb = worklist.popleft()
        held = set(entry.get(bb, set()))
        seen = visited_with.get(bb)
        if seen is not None and held <= seen:
            continue
        visited_with[bb] = set(held) | (seen or set())
        block = body.blocks[bb]
        for i, stmt in enumerate(block.statements):
            if not held:
                break
            region.points.add((bb, i))
            if stmt.kind is StatementKind.ASSIGN and stmt.rvalue is not None:
                ops = stmt.rvalue.operands
                moved = [o.place.local for o in ops
                         if o.is_move and o.place is not None
                         and o.place.local in held]
                copied_from_held = [o.place.local for o in ops
                                    if not o.is_move and o.place is not None
                                    and o.place.projection
                                    and o.place.local in held]
                for m in moved:
                    held.discard(m)
                if stmt.place.is_local and stmt.place.local in chain \
                        and (moved or copied_from_held):
                    held.add(stmt.place.local)
            elif stmt.kind is StatementKind.DROP:
                if stmt.place.is_local and stmt.place.local in held:
                    held.discard(stmt.place.local)
                    if not held:
                        region.release_points.add((bb, i))
            elif stmt.kind is StatementKind.STORAGE_DEAD:
                if stmt.local in held:
                    held.discard(stmt.local)
                    if not held:
                        region.release_points.add((bb, i))
        if not held:
            continue
        term = block.terminator
        term_point = (bb, len(block.statements))
        region.points.add(term_point)
        if term is not None and term.kind is TerminatorKind.CALL:
            func_op = term.func.builtin_op if term.func else None
            for arg in term.args:
                if arg.place is None or not arg.place.is_local:
                    continue
                src = arg.place.local
                deref_src = ref_map.get(src, src)
                if arg.is_move and src in held:
                    held.discard(src)
                    if term.destination is not None and \
                            term.destination.is_local and \
                            term.destination.local in chain:
                        held.add(term.destination.local)
                    elif func_op is BuiltinOp.MEM_DROP and not held:
                        region.release_points.add(term_point)
                elif func_op in _EXTRACT_OPS and deref_src in held:
                    held.discard(deref_src)
                    if term.destination is not None and \
                            term.destination.is_local and \
                            term.destination.local in chain:
                        held.add(term.destination.local)
            # Explicit unlock (Suggestion 7): guard.unlock() releases.
            if func_op is BuiltinOp.GUARD_UNLOCK:
                for arg in term.args[:1]:
                    if arg.place is not None and arg.place.is_local:
                        src = ref_map.get(arg.place.local, arg.place.local)
                        if src in held:
                            held.discard(src)
                            if not held:
                                region.release_points.add(term_point)
            # Condvar::wait releases the lock while blocked; treat the wait
            # call itself as ending the region (re-acquisition starts anew).
            if func_op is BuiltinOp.CONDVAR_WAIT:
                for arg in term.args[1:]:
                    if arg.place is not None and arg.place.is_local and \
                            arg.place.local in held:
                        held.discard(arg.place.local)
        if term is not None and held:
            for succ in term.successors():
                prev = entry.get(succ)
                if prev is None:
                    entry[succ] = set(held)
                    worklist.append(succ)
                elif not held <= prev:
                    prev |= held
                    worklist.append(succ)
