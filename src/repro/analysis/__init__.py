"""Static analyses over MIR.

These are the building blocks the paper's detectors are assembled from:

* :mod:`repro.analysis.dataflow` — generic worklist solver;
* :mod:`repro.analysis.liveness` — backward live-variable analysis;
* :mod:`repro.analysis.init` — forward maybe-initialised / moved-out state
  per local (the "state of each variable (alive or dead)" tracking of §7.1);
* :mod:`repro.analysis.points_to` — flow-insensitive points-to over locals
  ("for each pointer/reference, we conduct a points-to analysis", §7.1);
* :mod:`repro.analysis.lifetime` — storage live-ranges and lock-guard
  regions ("analyzing the lifetime of the return of lock()", §7.2);
* :mod:`repro.analysis.borrowck` — an approximate NLL borrow checker;
* :mod:`repro.analysis.callgraph` — call graph + inter-procedural summaries.
"""

from repro.analysis.dataflow import DataflowAnalysis, solve
from repro.analysis.liveness import LivenessAnalysis, compute_liveness
from repro.analysis.init import InitState, MaybeInitAnalysis, compute_init
from repro.analysis.points_to import PointsTo, compute_points_to
from repro.analysis.lifetime import GuardRegion, StorageRanges, compute_guard_regions, compute_storage_ranges
from repro.analysis.callgraph import CallGraph, build_call_graph

__all__ = [
    "DataflowAnalysis", "solve",
    "LivenessAnalysis", "compute_liveness",
    "InitState", "MaybeInitAnalysis", "compute_init",
    "PointsTo", "compute_points_to",
    "GuardRegion", "StorageRanges", "compute_guard_regions",
    "compute_storage_ranges",
    "CallGraph", "build_call_graph",
]
