"""Forward initialisation-state analysis.

Tracks, per local, whether it is *maybe initialised* and whether it is
*maybe moved-out* at each program point.  This replicates the drop-flag
reasoning rustc's drop elaboration performs and is what lets the detectors
distinguish a live owner from a hollowed-out one (paper §5.1's double-free
via ``ptr::read`` duplication, invalid-free via never-initialised struct).

State elements are tagged locals: ``("init", l)`` and ``("moved", l)``.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Tuple

from repro.analysis.dataflow import DataflowAnalysis, solve, statement_states
from repro.mir.nodes import (
    Body, Statement, StatementKind, Terminator, TerminatorKind,
)


class InitState(enum.Enum):
    UNINIT = "uninit"
    MAYBE_INIT = "maybe_init"
    INIT = "init"
    MOVED = "moved"


class MaybeInitAnalysis(DataflowAnalysis):
    """May-analysis over ``("init", local)`` / ``("moved", local)`` tags."""

    FORWARD = True
    JOIN_UNION = True

    def boundary_state(self):
        tags = set()
        for local in self.body.locals:
            if local.is_arg:
                tags.add(("init", local.index))
        return frozenset(tags)

    def transfer_statement(self, state, stmt: Statement, block, index):
        tags = set(state)
        if stmt.kind is StatementKind.ASSIGN:
            # Moves out of operand locals.
            if stmt.rvalue is not None:
                for op in stmt.rvalue.operands:
                    if op.is_move and op.place is not None and op.place.is_local:
                        tags.add(("moved", op.place.local))
                        tags.discard(("init", op.place.local))
            if stmt.place.is_local:
                tags.add(("init", stmt.place.local))
                tags.discard(("moved", stmt.place.local))
        elif stmt.kind is StatementKind.DROP:
            if stmt.place.is_local:
                tags.discard(("init", stmt.place.local))
        elif stmt.kind is StatementKind.STORAGE_LIVE:
            tags.discard(("init", stmt.local))
            tags.discard(("moved", stmt.local))
        elif stmt.kind is StatementKind.STORAGE_DEAD:
            tags.discard(("init", stmt.local))
            tags.discard(("moved", stmt.local))
        return frozenset(tags)

    def transfer_terminator(self, state, term: Terminator, block):
        tags = set(state)
        if term.kind is TerminatorKind.CALL:
            for op in term.args:
                if op.is_move and op.place is not None and op.place.is_local:
                    tags.add(("moved", op.place.local))
                    tags.discard(("init", op.place.local))
            if term.destination is not None and term.destination.is_local:
                tags.add(("init", term.destination.local))
                tags.discard(("moved", term.destination.local))
        return frozenset(tags)


def compute_init(body: Body) -> Dict[int, FrozenSet[Tuple[str, int]]]:
    """Block-entry init states for ``body``."""
    return solve(MaybeInitAnalysis(body))


def init_states_in_block(body: Body, entry_states, block_index: int):
    """Per-statement init states (before each statement, then before the
    terminator)."""
    return statement_states(MaybeInitAnalysis(body), entry_states,
                            block_index)
