"""Panic-effects lattice and unwind-aware CFG lowering.

The interpreter has always modelled panics (``RuntimePanic``, poisoned
locks, the ``panic`` outcome); the static side assumed straight-line
success.  Xu et al.'s CVE taxonomy ("Memory-Safety Challenge Considered
Solved?", PAPERS.md) shows that gap is where the largest undetected bug
classes live: unwinding between a ``ptr::read`` and the overwrite that
was supposed to restore the value leaves memory logically uninitialised
or doubly owned.  This module closes the gap in two pieces:

* :func:`ensure_unwind_edges` — CFG lowering.  Every terminator that can
  panic (bounds/overflow ``assert``, ``unwrap``/``expect``, explicit
  ``panic!``, ``RefCell`` borrows, opaque and user calls) gains an
  ``unwind`` successor pointing at a synthesised *landing pad*: a
  ``cleanup`` block that drops exactly the locals whose scope-exit drop
  obligations are still pending (maybe-initialised) at that point, then
  ends in ``RESUME``.  Dataflow, liveness and the CFG utilities see the
  panic paths through the ordinary ``Terminator.successors()`` contract;
  nothing downstream special-cases unwinding.
* :class:`PanicEffects` — the summary component.  A may-panic bit with
  its source vocabulary, the values moved-out-but-not-reinitialised at
  the body's panic points, the drop obligations live on unwind, and a
  hop for cross-function provenance (``panic_chain``).  Solved in the
  engine's SCC fixpoint next to the other components: every field is a
  may-set or a monotone flag, so convergence is exact.

The *drop-obligation* computation here is the single source of truth
shared with the interpreter (``mir/interp.py`` runs the same
:func:`unwind_drop_order` on unwind), fixing the drift where landing
pads and the dynamic side disagreed about what dies during a panic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.init import compute_init, init_states_in_block
from repro.analysis.scan import scan_of
from repro.analysis.unsafe_prop import restore_slots_state
from repro.hir.builtins import BuiltinOp, FuncKind
from repro.mir.nodes import (
    Body, Place, Statement, StatementKind, Terminator, TerminatorKind,
)

#: Builtin operations that can panic by themselves: the paper's §5/§6
#: panic vocabulary (failed ``unwrap``/``expect``, explicit ``panic!`` /
#: ``unreachable!`` / ``todo!``, ``assert!`` macros, and ``RefCell``
#: borrow-rule violations).
PANIC_BUILTIN_OPS = frozenset({
    BuiltinOp.UNWRAP, BuiltinOp.EXPECT, BuiltinOp.PANIC, BuiltinOp.ASSERT,
    BuiltinOp.UNIMPLEMENTED, BuiltinOp.REFCELL_BORROW,
    BuiltinOp.REFCELL_BORROW_MUT,
})

#: ``body.__dict__`` flag marking unwind lowering as done.  Underscore
#: attribute: ``Body.__getstate__`` strips it, but pickled bodies carry
#: their pads in ``blocks``, and :func:`ensure_unwind_edges` also treats
#: an existing cleanup block as proof of prior lowering.
_LOWERED_ATTR = "_unwind_lowered"


def terminator_panic_source(term: Terminator) -> Optional[str]:
    """The direct panic source of a terminator, or ``None``.

    ``assert`` covers the builder-emitted bounds/overflow checks and
    ``SWITCH``-free assertion lowering; builtin calls map to their op
    name (``unwrap``, ``panic``, ``RefCell::borrow_mut``, ...); calls
    into unresolved or foreign code are ``opaque-call`` (unknown code
    may panic).  User/closure calls return ``None`` — their panics are
    composed through summaries, not counted as direct sources.
    """
    if term.kind is TerminatorKind.ASSERT:
        return "assert"
    if term.kind is TerminatorKind.CALL and term.func is not None:
        func = term.func
        if func.builtin_op in PANIC_BUILTIN_OPS:
            return func.builtin_op.value
        if func.kind is FuncKind.UNKNOWN or func.builtin_op is BuiltinOp.FFI:
            return "opaque-call"
    return None


def may_unwind(term: Terminator) -> bool:
    """Can this terminator start unwinding?  Direct panic sources plus
    user/closure calls (whose callees may panic — rustc's shape, where
    every non-``nounwind`` call carries an unwind edge).  Known builtins
    outside :data:`PANIC_BUILTIN_OPS` are treated as nounwind."""
    if terminator_panic_source(term) is not None:
        return True
    return term.kind is TerminatorKind.CALL and term.func is not None \
        and term.func.kind in (FuncKind.USER, FuncKind.CLOSURE)


def unwind_drop_order(body: Body) -> Tuple[int, ...]:
    """The canonical drop order on unwind: every local with a pending
    scope-exit drop obligation (an explicit ``DROP`` statement — the
    builder's drop elaboration), innermost scope first (reverse local
    index, matching declaration nesting).

    This is the ONE obligation computation shared by the static landing
    pads and the interpreter's unwind path — the two sides agree by
    construction.  A pad drops the subset that is maybe-initialised at
    its panic point; the interpreter filters dynamically (skipping
    ``UNINIT``/``MOVED`` slots) to the same effect.
    """
    scan = scan_of(body)
    order = scan.cache.get("unwind_drop_order")
    if order is None:
        order = scan.cache["unwind_drop_order"] = tuple(
            sorted(set(scan.drop_locals), reverse=True))
    return order


def _states_before_unwind(body: Body, entry_states, block_index: int,
                          term: Terminator) -> set:
    """Init-state tags observable by the unwind path of ``term``: the
    state before the terminator, minus locals the terminator itself
    moves into a callee (the callee owns them mid-call; on unwind it
    drops them, not our landing pad)."""
    state = set(init_states_in_block(body, entry_states, block_index)[-1])
    if term.kind is TerminatorKind.CALL:
        for op in term.args:
            if op.is_move and op.place is not None and op.place.is_local:
                state.discard(("init", op.place.local))
    return state


def ensure_unwind_edges(body: Body) -> None:
    """Idempotently lower unwind edges and landing pads into ``body``.

    For every may-unwind terminator whose pending drop obligations are
    non-empty, synthesise (or reuse — pads are deduplicated by
    obligation tuple) a ``cleanup`` block of ``DROP`` statements in
    :func:`unwind_drop_order` ending in ``RESUME``, and point the
    terminator's ``unwind`` edge at it.  Terminators with nothing to
    drop keep ``unwind=None`` (an empty pad adds no information —
    rustc's SimplifyCfg folds those away too).

    Obligations are computed against the *pre-lowering* CFG.  The body's
    scan survives lowering (its flattened views skip cleanup blocks and
    share the mutated terminator objects, so they are pad-free either
    way); only other modules' derived facts are dropped, and the drop
    order plus direct panic facts computed here are re-seeded so the
    summary pass never re-runs this body's init dataflow.
    """
    if body.__dict__.get(_LOWERED_ATTR) \
            or any(block.cleanup for block in body.blocks):
        body.__dict__[_LOWERED_ATTR] = True
        return
    body.__dict__[_LOWERED_ATTR] = True
    sites = [(block.index, block.terminator) for block in body.blocks
             if block.terminator is not None
             and may_unwind(block.terminator)]
    if not sites:
        return
    order = unwind_drop_order(body)
    if not order:
        return
    entry_states = compute_init(body)
    pads: Dict[Tuple[int, ...], int] = {}
    sources: set = set()
    moved: set = set()
    drops: set = set()
    for block_index, term in sites:
        state = _states_before_unwind(body, entry_states, block_index, term)
        obligation = tuple(l for l in order if ("init", l) in state)
        source = terminator_panic_source(term)
        if source is not None:
            # Direct-site panic facts fall out of the same per-site init
            # states; stashing them below spares `_direct_panic_facts` a
            # second dataflow pass over this body.
            sources.add(source)
            init_tags = {l for tag, l in state if tag == "init"}
            moved |= {l for tag, l in state
                      if tag == "moved" and l not in init_tags}
            drops.update(obligation)
        if not obligation:
            continue
        pad_index = pads.get(obligation)
        if pad_index is None:
            pad = body.new_block()
            pad.cleanup = True
            for local in obligation:
                pad.statements.append(Statement(
                    StatementKind.DROP, span=term.span, place=Place(local)))
            pad.terminator = Terminator(TerminatorKind.RESUME, span=term.span)
            pads[obligation] = pad_index = pad.index
        term.unwind = pad_index
    # The scan's flattened views are pad-free by construction (cleanup
    # blocks are skipped, terminator objects are shared), so the scan
    # itself stays valid across lowering — re-walking every lowered body
    # was the single biggest cost of the engine solve.  Only other
    # modules' derived facts may bake in the pre-pad CFG: drop those and
    # re-seed the two facts this pass just computed.
    scan = scan_of(body)
    scan.cache.clear()
    scan.cache["unwind_drop_order"] = order
    scan.cache["panic_facts"] = (
        frozenset(sources), frozenset(moved), frozenset(drops))


# ---------------------------------------------------------------------------
# Panic-effects summary component
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class PanicEffects:
    """The panic component of a function summary.

    Every field is a may-set / monotone flag in the summary lattice:

    * ``may_panic`` — some operation in the call tree can panic.
    * ``sources`` — the panic vocabulary observed in the call tree
      (``assert``, ``unwrap``, ``panic``, ``RefCell::borrow_mut``,
      ``opaque-call``, ...), unioned through callees.
    * ``hop`` — the callee key the may-panic bit was composed through
      (``None`` when a panic source is in this very body); the link
      ``panic_chain`` follows for `minirust explain` provenance.
    * ``moved_at_panic`` — locals that are moved-out and **not**
      reinitialised at some direct panic point of this body: the
      logically-uninit window unwinding can observe.
    * ``unwind_drops`` — drop obligations live at some direct panic
      point: what the landing pads (and the interpreter's unwind) run.
    """

    may_panic: bool = False
    sources: FrozenSet[str] = frozenset()
    hop: Optional[str] = None
    moved_at_panic: FrozenSet[int] = frozenset()
    unwind_drops: FrozenSet[int] = frozenset()

    @property
    def is_bottom(self) -> bool:
        return not (self.may_panic or self.sources or self.moved_at_panic
                    or self.unwind_drops)

    def __setstate__(self, state):
        restore_slots_state(self, state)


#: Shared bottom element for the common case (no panic source anywhere
#: in the call tree) — nothing mutates a PanicEffects after
#: construction, so sharing keeps summary equality checks on the
#: identity fast path.
_BOTTOM_PANIC = PanicEffects()


def _direct_panic_facts(body: Body):
    """Body-local panic facts (independent of callee summaries, so
    cached on the scan): the direct source names, the moved-out window
    and the live drop obligations across this body's own panic points."""
    scan = scan_of(body)
    sites = []
    for bb, term in scan.terminators:
        source = terminator_panic_source(term)
        if source is not None:
            sites.append((bb, term, source))
    if not sites:
        return frozenset(), frozenset(), frozenset()
    order = unwind_drop_order(body)
    entry_states = compute_init(body)
    sources = set()
    moved = set()
    drops = set()
    for bb, term, source in sites:
        sources.add(source)
        state = _states_before_unwind(body, entry_states, bb, term)
        init_tags = {l for tag, l in state if tag == "init"}
        moved |= {l for tag, l in state
                  if tag == "moved" and l not in init_tags}
        drops |= {l for l in order if l in init_tags}
    return frozenset(sources), frozenset(moved), frozenset(drops)


def compute_panic_effects(body: Body, summaries, user_sites) -> PanicEffects:
    """The body's :class:`PanicEffects` against the live summary map.

    Direct facts come from the (cached) body scan; the may-panic bit and
    source vocabulary additionally compose through same-thread user
    calls.  ``hop`` records the first may-panic callee when no direct
    source exists — the provenance link, stable once the component
    converges.
    """
    sources, moved, drops = scan_of(body).memo(
        "panic_facts", lambda: _direct_panic_facts(body))
    hop: Optional[str] = None
    composed = set()
    for _bb, _term, callee, _sources in user_sites:
        callee_summary = summaries.get(callee)
        if callee_summary is None or not callee_summary.panic.may_panic:
            continue
        composed |= callee_summary.panic.sources
        if hop is None:
            hop = callee
    if not sources and not composed:
        return _BOTTOM_PANIC
    if sources:
        hop = None      # the panic is provable in this very body
    return PanicEffects(
        may_panic=True, sources=frozenset(sources) | frozenset(composed),
        hop=hop, moved_at_panic=moved, unwind_drops=drops)
