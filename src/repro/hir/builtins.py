"""Built-in function and method signatures, with semantic operation tags.

The detectors and the interpreter do not care about the full std library —
they care about a vocabulary of *semantically meaningful operations*: lock
acquisitions, channel operations, raw-pointer reads/writes, allocation,
spawning.  :class:`BuiltinOp` is that vocabulary; resolution maps a call
site to a :class:`FuncRef` carrying the tag plus the inferred result type.

This mirrors how the paper's detectors special-case ``lock()`` / ``read()``
/ ``write()`` call sites (§7.2) and ``ptr``/``mem`` intrinsics (§5.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.lang.types import (
    BOOL, BUILTIN_GENERICS, BUILTIN_UNITS, INT_TYPES, UNIT, UNKNOWN, USIZE,
    Ty, TyKind,
)


class BuiltinOp(enum.Enum):
    # Construction
    BOX_NEW = "Box::new"
    RC_NEW = "Rc::new"
    ARC_NEW = "Arc::new"
    VEC_NEW = "Vec::new"
    VEC_WITH_CAPACITY = "Vec::with_capacity"
    VEC_MACRO = "vec!"
    MUTEX_NEW = "Mutex::new"
    RWLOCK_NEW = "RwLock::new"
    REFCELL_NEW = "RefCell::new"
    CELL_NEW = "Cell::new"
    UNSAFECELL_NEW = "UnsafeCell::new"
    CONDVAR_NEW = "Condvar::new"
    ONCE_NEW = "Once::new"
    ATOMIC_NEW = "Atomic::new"
    STRING_NEW = "String::new"
    HASHMAP_NEW = "HashMap::new"
    CHANNEL_NEW = "mpsc::channel"
    SYNC_CHANNEL_NEW = "mpsc::sync_channel"
    SOME = "Some"
    NONE = "None"
    OK = "Ok"
    ERR = "Err"

    # Option / Result
    UNWRAP = "unwrap"
    EXPECT = "expect"
    IS_SOME = "is_some"
    IS_NONE = "is_none"
    IS_OK = "is_ok"
    IS_ERR = "is_err"
    MAP = "map"
    MAP_OR = "map_or"
    AND_THEN = "and_then"
    UNWRAP_OR = "unwrap_or"
    OK_METHOD = "ok"
    TAKE = "take"

    # Clone & conversion
    CLONE = "clone"
    ARC_CLONE = "Arc::clone"
    RC_CLONE = "Rc::clone"
    TO_STRING = "to_string"
    INTO = "into"
    AS_REF = "as_ref"
    AS_MUT = "as_mut"
    DEREF = "deref"
    DOWNGRADE = "downgrade"
    UPGRADE = "upgrade"

    # Vec / slice
    VEC_PUSH = "push"
    VEC_POP = "pop"
    VEC_LEN = "len"
    VEC_IS_EMPTY = "is_empty"
    VEC_GET = "get"
    VEC_GET_MUT = "get_mut"
    VEC_GET_UNCHECKED = "get_unchecked"
    VEC_GET_UNCHECKED_MUT = "get_unchecked_mut"
    VEC_INSERT = "insert"
    VEC_REMOVE = "remove"
    VEC_CLEAR = "clear"
    VEC_AS_PTR = "as_ptr"
    VEC_AS_MUT_PTR = "as_mut_ptr"
    VEC_SET_LEN = "set_len"
    VEC_FROM_RAW_PARTS = "Vec::from_raw_parts"
    VEC_ITER = "iter"
    VEC_CONTAINS = "contains"
    VEC_EXTEND = "extend"
    SLICE_COPY_FROM_SLICE = "copy_from_slice"
    VEC_CAPACITY = "capacity"
    VEC_RESERVE = "reserve"
    VEC_TRUNCATE = "truncate"
    FIRST = "first"
    LAST = "last"

    # HashMap
    MAP_INSERT = "map_insert"
    MAP_GET = "map_get"
    MAP_REMOVE = "map_remove"
    MAP_CONTAINS_KEY = "contains_key"
    MAP_ENTRY = "entry"

    # Locking (paper §6.1)
    MUTEX_LOCK = "Mutex::lock"
    MUTEX_TRY_LOCK = "Mutex::try_lock"
    RWLOCK_READ = "RwLock::read"
    RWLOCK_WRITE = "RwLock::write"
    RWLOCK_TRY_READ = "RwLock::try_read"
    RWLOCK_TRY_WRITE = "RwLock::try_write"
    REFCELL_BORROW = "RefCell::borrow"
    REFCELL_BORROW_MUT = "RefCell::borrow_mut"
    GUARD_UNLOCK = "drop_guard"

    # Condvar / Once (paper §6.1)
    CONDVAR_WAIT = "Condvar::wait"
    CONDVAR_NOTIFY_ONE = "Condvar::notify_one"
    CONDVAR_NOTIFY_ALL = "Condvar::notify_all"
    ONCE_CALL_ONCE = "Once::call_once"

    # Channels (paper §6.1)
    CHANNEL_SEND = "send"
    CHANNEL_RECV = "recv"
    CHANNEL_TRY_RECV = "try_recv"

    # Atomics (paper §6.2)
    ATOMIC_LOAD = "load"
    ATOMIC_STORE = "store"
    ATOMIC_CAS = "compare_and_swap"
    ATOMIC_CAE = "compare_exchange"
    ATOMIC_FETCH_ADD = "fetch_add"
    ATOMIC_FETCH_SUB = "fetch_sub"
    ATOMIC_SWAP = "swap"

    # Cell
    CELL_GET = "Cell::get"
    CELL_SET = "Cell::set"
    UNSAFECELL_GET = "UnsafeCell::get"

    # Threads
    THREAD_SPAWN = "thread::spawn"
    THREAD_JOIN = "join"
    THREAD_SLEEP = "thread::sleep"
    THREAD_YIELD = "thread::yield_now"

    # Raw memory (paper §5.1)
    PTR_READ = "ptr::read"
    PTR_WRITE = "ptr::write"
    PTR_COPY = "ptr::copy"
    PTR_COPY_NONOVERLAPPING = "ptr::copy_nonoverlapping"
    PTR_NULL = "ptr::null"
    PTR_NULL_MUT = "ptr::null_mut"
    PTR_OFFSET = "offset"
    PTR_ADD = "add"
    PTR_IS_NULL = "is_null"
    ALLOC = "alloc"
    DEALLOC = "dealloc"
    MEM_DROP = "mem::drop"
    MEM_FORGET = "mem::forget"
    MEM_REPLACE = "mem::replace"
    MEM_SWAP = "mem::swap"
    MEM_TRANSMUTE = "mem::transmute"
    MEM_UNINITIALIZED = "mem::uninitialized"
    MEM_ZEROED = "mem::zeroed"
    MEM_SIZE_OF = "mem::size_of"
    MAYBE_UNINIT = "MaybeUninit::uninit"
    MAYBE_UNINIT_ASSUME = "assume_init"

    # Iteration support
    ITER_NEXT = "Iterator::next"

    # I/O & misc
    PRINT = "print"
    PANIC = "panic"
    ASSERT = "assert"
    FORMAT = "format"
    STRING_FROM = "String::from"
    FROM_UTF8_UNCHECKED = "String::from_utf8_unchecked"
    UNIMPLEMENTED = "unimplemented"
    PROCESS_EXIT = "process::exit"
    GETMNTENT = "libc::getmntent"       # the paper's §6.2 OS-resource example
    FFI = "ffi_call"


class FuncKind(enum.Enum):
    USER = "user"
    BUILTIN = "builtin"
    CLOSURE = "closure"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class FuncRef:
    """Resolved callee of a MIR ``Call`` terminator."""

    kind: FuncKind
    name: str
    builtin_op: Optional[BuiltinOp] = None
    user_fn: Optional[str] = None       # key into Program.functions
    is_unsafe: bool = False             # unsafe fn (needs unsafe block)

    @staticmethod
    def builtin(op: BuiltinOp, name: str = "", is_unsafe: bool = False) -> "FuncRef":
        return FuncRef(FuncKind.BUILTIN, name or op.value, op,
                       is_unsafe=is_unsafe)

    @staticmethod
    def user(key: str, is_unsafe: bool = False) -> "FuncRef":
        return FuncRef(FuncKind.USER, key, user_fn=key, is_unsafe=is_unsafe)

    @staticmethod
    def closure(key: str) -> "FuncRef":
        return FuncRef(FuncKind.CLOSURE, key, user_fn=key)

    @staticmethod
    def unknown(name: str) -> "FuncRef":
        return FuncRef(FuncKind.UNKNOWN, name)

    def __str__(self) -> str:
        return self.name


# Methods considered unsafe to call (require an unsafe block in Rust).
_UNSAFE_BUILTIN_OPS = {
    BuiltinOp.VEC_GET_UNCHECKED, BuiltinOp.VEC_GET_UNCHECKED_MUT,
    BuiltinOp.VEC_SET_LEN, BuiltinOp.VEC_FROM_RAW_PARTS,
    BuiltinOp.PTR_READ, BuiltinOp.PTR_WRITE, BuiltinOp.PTR_COPY,
    BuiltinOp.PTR_COPY_NONOVERLAPPING, BuiltinOp.PTR_OFFSET, BuiltinOp.PTR_ADD,
    BuiltinOp.ALLOC, BuiltinOp.DEALLOC, BuiltinOp.MEM_TRANSMUTE,
    BuiltinOp.MEM_UNINITIALIZED, BuiltinOp.MEM_ZEROED,
    BuiltinOp.MAYBE_UNINIT_ASSUME, BuiltinOp.FROM_UTF8_UNCHECKED,
    BuiltinOp.UNSAFECELL_GET, BuiltinOp.GETMNTENT, BuiltinOp.FFI,
}


def _unsafe(op: BuiltinOp) -> bool:
    return op in _UNSAFE_BUILTIN_OPS


# ---------------------------------------------------------------------------
# Free-function (path-call) resolution
# ---------------------------------------------------------------------------

# Maps the *suffix* of a called path to (op, result-type builder).  The
# builder receives the generic args attached to the path (may be empty) and
# the argument types.
def _const_ty(ty: Ty):
    return lambda generics, args: ty

def _first_arg_wrapped(name: str):
    def build(generics, args: Sequence[Ty]) -> Ty:
        inner = args[0] if args else (generics[0] if generics else UNKNOWN)
        return Ty.builtin(name, (inner,))
    return build

def _generic_or_unknown(generics, args):
    return generics[0] if generics else UNKNOWN


_PATH_CALLS = {
    "Box::new": (BuiltinOp.BOX_NEW, _first_arg_wrapped("Box")),
    "Rc::new": (BuiltinOp.RC_NEW, _first_arg_wrapped("Rc")),
    "Arc::new": (BuiltinOp.ARC_NEW, _first_arg_wrapped("Arc")),
    "Mutex::new": (BuiltinOp.MUTEX_NEW, _first_arg_wrapped("Mutex")),
    "RwLock::new": (BuiltinOp.RWLOCK_NEW, _first_arg_wrapped("RwLock")),
    "RefCell::new": (BuiltinOp.REFCELL_NEW, _first_arg_wrapped("RefCell")),
    "Cell::new": (BuiltinOp.CELL_NEW, _first_arg_wrapped("Cell")),
    "UnsafeCell::new": (BuiltinOp.UNSAFECELL_NEW, _first_arg_wrapped("UnsafeCell")),
    "Condvar::new": (BuiltinOp.CONDVAR_NEW, _const_ty(Ty.builtin("Condvar"))),
    "Once::new": (BuiltinOp.ONCE_NEW, _const_ty(Ty.builtin("Once"))),
    "String::new": (BuiltinOp.STRING_NEW, _const_ty(Ty.string())),
    "String::from": (BuiltinOp.STRING_FROM, _const_ty(Ty.string())),
    "String::from_utf8_unchecked": (BuiltinOp.FROM_UTF8_UNCHECKED,
                                    _const_ty(Ty.string())),
    "HashMap::new": (BuiltinOp.HASHMAP_NEW,
                     lambda g, a: Ty.builtin("HashMap", tuple(g[:2]) or (UNKNOWN, UNKNOWN))),
    "Vec::new": (BuiltinOp.VEC_NEW,
                 lambda g, a: Ty.builtin("Vec", (g[0],) if g else (UNKNOWN,))),
    "VecDeque::new": (BuiltinOp.VEC_NEW,
                      lambda g, a: Ty.builtin("VecDeque",
                                              (g[0],) if g else (UNKNOWN,))),
    "Vec::with_capacity": (BuiltinOp.VEC_WITH_CAPACITY,
                           lambda g, a: Ty.builtin("Vec", (g[0],) if g else (UNKNOWN,))),
    "Vec::from_raw_parts": (BuiltinOp.VEC_FROM_RAW_PARTS,
                            lambda g, a: Ty.builtin(
                                "Vec",
                                (a[0].referent,) if a and a[0].is_raw_ptr else (UNKNOWN,))),
    "Arc::clone": (BuiltinOp.ARC_CLONE,
                   lambda g, a: a[0].peel_refs() if a else UNKNOWN),
    "Rc::clone": (BuiltinOp.RC_CLONE,
                  lambda g, a: a[0].peel_refs() if a else UNKNOWN),
    "Arc::downgrade": (BuiltinOp.DOWNGRADE,
                       lambda g, a: Ty.builtin("Weak", (UNKNOWN,))),
    "thread::spawn": (BuiltinOp.THREAD_SPAWN,
                      _const_ty(Ty.builtin("JoinHandle", (UNKNOWN,)))),
    "thread::sleep": (BuiltinOp.THREAD_SLEEP, _const_ty(UNIT)),
    "thread::yield_now": (BuiltinOp.THREAD_YIELD, _const_ty(UNIT)),
    "mpsc::channel": (BuiltinOp.CHANNEL_NEW,
                      lambda g, a: Ty.tuple_((
                          Ty.builtin("Sender", (g[0],) if g else (UNKNOWN,)),
                          Ty.builtin("Receiver", (g[0],) if g else (UNKNOWN,))))),
    "mpsc::sync_channel": (BuiltinOp.SYNC_CHANNEL_NEW,
                           lambda g, a: Ty.tuple_((
                               Ty.builtin("SyncSender", (g[0],) if g else (UNKNOWN,)),
                               Ty.builtin("Receiver", (g[0],) if g else (UNKNOWN,))))),
    "channel": (BuiltinOp.CHANNEL_NEW,
                lambda g, a: Ty.tuple_((
                    Ty.builtin("Sender", (g[0],) if g else (UNKNOWN,)),
                    Ty.builtin("Receiver", (g[0],) if g else (UNKNOWN,))))),
    "sync_channel": (BuiltinOp.SYNC_CHANNEL_NEW,
                     lambda g, a: Ty.tuple_((
                         Ty.builtin("SyncSender", (g[0],) if g else (UNKNOWN,)),
                         Ty.builtin("Receiver", (g[0],) if g else (UNKNOWN,))))),
    "ptr::read": (BuiltinOp.PTR_READ,
                  lambda g, a: a[0].referent if a else _generic_or_unknown(g, a)),
    "ptr::write": (BuiltinOp.PTR_WRITE, _const_ty(UNIT)),
    "ptr::copy": (BuiltinOp.PTR_COPY, _const_ty(UNIT)),
    "ptr::copy_nonoverlapping": (BuiltinOp.PTR_COPY_NONOVERLAPPING, _const_ty(UNIT)),
    "ptr::null": (BuiltinOp.PTR_NULL,
                  lambda g, a: Ty.raw_ptr(g[0] if g else UNKNOWN, False)),
    "ptr::null_mut": (BuiltinOp.PTR_NULL_MUT,
                      lambda g, a: Ty.raw_ptr(g[0] if g else UNKNOWN, True)),
    "mem::drop": (BuiltinOp.MEM_DROP, _const_ty(UNIT)),
    "drop": (BuiltinOp.MEM_DROP, _const_ty(UNIT)),
    "mem::forget": (BuiltinOp.MEM_FORGET, _const_ty(UNIT)),
    "mem::replace": (BuiltinOp.MEM_REPLACE,
                     lambda g, a: a[0].referent if a else UNKNOWN),
    "mem::swap": (BuiltinOp.MEM_SWAP, _const_ty(UNIT)),
    "mem::transmute": (BuiltinOp.MEM_TRANSMUTE, _generic_or_unknown),
    "mem::uninitialized": (BuiltinOp.MEM_UNINITIALIZED, _generic_or_unknown),
    "mem::zeroed": (BuiltinOp.MEM_ZEROED, _generic_or_unknown),
    "mem::size_of": (BuiltinOp.MEM_SIZE_OF, _const_ty(USIZE)),
    "MaybeUninit::uninit": (BuiltinOp.MAYBE_UNINIT,
                            lambda g, a: Ty.builtin("MaybeUninit",
                                                    (g[0],) if g else (UNKNOWN,))),
    "alloc": (BuiltinOp.ALLOC, _const_ty(Ty.raw_ptr(Ty.int("u8"), True))),
    "alloc::alloc": (BuiltinOp.ALLOC, _const_ty(Ty.raw_ptr(Ty.int("u8"), True))),
    "dealloc": (BuiltinOp.DEALLOC, _const_ty(UNIT)),
    "alloc::dealloc": (BuiltinOp.DEALLOC, _const_ty(UNIT)),
    "print": (BuiltinOp.PRINT, _const_ty(UNIT)),
    "process::exit": (BuiltinOp.PROCESS_EXIT, _const_ty(Ty.never())),
    "libc::getmntent": (BuiltinOp.GETMNTENT,
                        _const_ty(Ty.raw_ptr(UNKNOWN, True))),
    "Some": (BuiltinOp.SOME,
             lambda g, a: Ty.builtin("Option", (a[0],) if a else (UNKNOWN,))),
    "Ok": (BuiltinOp.OK,
           lambda g, a: Ty.builtin("Result", ((a[0],) if a else (UNKNOWN,)) + (UNKNOWN,))),
    "Err": (BuiltinOp.ERR,
            lambda g, a: Ty.builtin("Result", (UNKNOWN,) + ((a[0],) if a else (UNKNOWN,)))),
}

# Atomic constructors: AtomicBool::new etc.
for _atomic in ("AtomicBool", "AtomicUsize", "AtomicIsize", "AtomicI32",
                "AtomicU32", "AtomicI64", "AtomicU64", "AtomicPtr"):
    _PATH_CALLS[f"{_atomic}::new"] = (
        BuiltinOp.ATOMIC_NEW,
        (lambda name: lambda g, a: Ty.builtin(name))(_atomic))


def resolve_builtin_call(path_str: str, generics: Sequence[Ty],
                         arg_tys: Sequence[Ty]):
    """Resolve a free-function call path.

    Returns ``(FuncRef, result_ty)`` or ``None`` when the path is not a
    known builtin.  Matches on the longest path suffix so that
    ``std::sync::Mutex::new`` and ``Mutex::new`` both resolve.
    """
    parts = path_str.split("::")
    for start in range(len(parts)):
        suffix = "::".join(parts[start:])
        entry = _PATH_CALLS.get(suffix)
        if entry is not None:
            op, build = entry
            ref = FuncRef.builtin(op, suffix, is_unsafe=_unsafe(op))
            return ref, build(list(generics), list(arg_tys))
    return None


# ---------------------------------------------------------------------------
# Method resolution
# ---------------------------------------------------------------------------

def _elem_of(recv: Ty) -> Ty:
    base = recv.peel_refs()
    if base.kind in (TyKind.SLICE, TyKind.ARRAY) or \
            (base.kind is TyKind.BUILTIN and base.name in ("Vec", "VecDeque")):
        return base.arg()
    return UNKNOWN


def resolve_method(recv_ty: Ty, method: str, arg_tys: Sequence[Ty]):
    """Resolve a method call on a *builtin* receiver type.

    Returns ``(FuncRef, result_ty)`` or ``None`` when the receiver is a
    user ADT (handled by impl lookup) or the method is not recognised.
    """
    base = recv_ty.peel_borrows()
    name = base.name
    kind = base.kind

    # -- locking -----------------------------------------------------------
    if name == "Mutex":
        if method == "lock":
            guard = Ty.builtin("MutexGuard", base.args or (UNKNOWN,))
            return (FuncRef.builtin(BuiltinOp.MUTEX_LOCK),
                    Ty.builtin("Result", (guard, UNKNOWN)))
        if method == "try_lock":
            guard = Ty.builtin("MutexGuard", base.args or (UNKNOWN,))
            return (FuncRef.builtin(BuiltinOp.MUTEX_TRY_LOCK),
                    Ty.builtin("Result", (guard, UNKNOWN)))
    if name == "RwLock":
        guard_name = {"read": "RwLockReadGuard", "try_read": "RwLockReadGuard",
                      "write": "RwLockWriteGuard", "try_write": "RwLockWriteGuard"}
        ops = {"read": BuiltinOp.RWLOCK_READ, "try_read": BuiltinOp.RWLOCK_TRY_READ,
               "write": BuiltinOp.RWLOCK_WRITE, "try_write": BuiltinOp.RWLOCK_TRY_WRITE}
        if method in ops:
            guard = Ty.builtin(guard_name[method], base.args or (UNKNOWN,))
            return (FuncRef.builtin(ops[method]),
                    Ty.builtin("Result", (guard, UNKNOWN)))
    if name == "RefCell":
        if method == "borrow":
            return (FuncRef.builtin(BuiltinOp.REFCELL_BORROW),
                    Ty.builtin("Ref", base.args or (UNKNOWN,)))
        if method == "borrow_mut":
            return (FuncRef.builtin(BuiltinOp.REFCELL_BORROW_MUT),
                    Ty.builtin("RefMut", base.args or (UNKNOWN,)))
    if name == "Cell":
        if method == "get":
            return FuncRef.builtin(BuiltinOp.CELL_GET), base.arg()
        if method == "set":
            return FuncRef.builtin(BuiltinOp.CELL_SET), UNIT
    if name == "UnsafeCell" and method == "get":
        return (FuncRef.builtin(BuiltinOp.UNSAFECELL_GET),
                Ty.raw_ptr(base.arg(), True))

    # -- condvar / once ------------------------------------------------------
    if name == "Condvar":
        if method == "wait":
            return (FuncRef.builtin(BuiltinOp.CONDVAR_WAIT),
                    Ty.builtin("Result", (arg_tys[0] if arg_tys else UNKNOWN,
                                          UNKNOWN)))
        if method == "notify_one":
            return FuncRef.builtin(BuiltinOp.CONDVAR_NOTIFY_ONE), UNIT
        if method == "notify_all":
            return FuncRef.builtin(BuiltinOp.CONDVAR_NOTIFY_ALL), UNIT
    if name == "Once" and method == "call_once":
        return FuncRef.builtin(BuiltinOp.ONCE_CALL_ONCE), UNIT

    # -- channels -------------------------------------------------------------
    if name in ("Sender", "SyncSender") and method == "send":
        return (FuncRef.builtin(BuiltinOp.CHANNEL_SEND),
                Ty.builtin("Result", (UNIT, UNKNOWN)))
    if name == "Receiver":
        if method == "recv":
            return (FuncRef.builtin(BuiltinOp.CHANNEL_RECV),
                    Ty.builtin("Result", (base.arg(), UNKNOWN)))
        if method == "try_recv":
            return (FuncRef.builtin(BuiltinOp.CHANNEL_TRY_RECV),
                    Ty.builtin("Result", (base.arg(), UNKNOWN)))

    # -- atomics -----------------------------------------------------------------
    if base.is_atomic:
        value_ty = BOOL if name == "AtomicBool" else USIZE
        atomic_methods = {
            "load": (BuiltinOp.ATOMIC_LOAD, value_ty),
            "store": (BuiltinOp.ATOMIC_STORE, UNIT),
            "compare_and_swap": (BuiltinOp.ATOMIC_CAS, value_ty),
            "compare_exchange": (BuiltinOp.ATOMIC_CAE,
                                 Ty.builtin("Result", (value_ty, value_ty))),
            "fetch_add": (BuiltinOp.ATOMIC_FETCH_ADD, value_ty),
            "fetch_sub": (BuiltinOp.ATOMIC_FETCH_SUB, value_ty),
            "swap": (BuiltinOp.ATOMIC_SWAP, value_ty),
        }
        if method in atomic_methods:
            op, ret = atomic_methods[method]
            return FuncRef.builtin(op), ret

    # -- thread handle --------------------------------------------------------
    if name == "JoinHandle" and method == "join":
        return (FuncRef.builtin(BuiltinOp.THREAD_JOIN),
                Ty.builtin("Result", (base.arg(), UNKNOWN)))

    # -- Option / Result -------------------------------------------------------
    if name in ("Option", "Result"):
        payload = base.arg()
        simple = {
            "unwrap": (BuiltinOp.UNWRAP, payload),
            "expect": (BuiltinOp.EXPECT, payload),
            "is_some": (BuiltinOp.IS_SOME, BOOL),
            "is_none": (BuiltinOp.IS_NONE, BOOL),
            "is_ok": (BuiltinOp.IS_OK, BOOL),
            "is_err": (BuiltinOp.IS_ERR, BOOL),
            "unwrap_or": (BuiltinOp.UNWRAP_OR, payload),
            "ok": (BuiltinOp.OK_METHOD, Ty.builtin("Option", (payload,))),
            "take": (BuiltinOp.TAKE, base),
            "map": (BuiltinOp.MAP, Ty.builtin("Option", (UNKNOWN,))),
            "map_or": (BuiltinOp.MAP_OR, UNKNOWN),
            "and_then": (BuiltinOp.AND_THEN, Ty.builtin("Option", (UNKNOWN,))),
            "as_ref": (BuiltinOp.AS_REF,
                       Ty.builtin(name, (Ty.ref(payload),) + base.args[1:])),
            "as_mut": (BuiltinOp.AS_MUT,
                       Ty.builtin(name, (Ty.ref(payload, True),) + base.args[1:])),
        }
        if method in simple:
            op, ret = simple[method]
            return FuncRef.builtin(op), ret

    # -- Vec / slices ------------------------------------------------------------
    elem = _elem_of(recv_ty)
    if kind in (TyKind.SLICE, TyKind.ARRAY) or name in ("Vec", "VecDeque"):
        vec_methods = {
            "push": (BuiltinOp.VEC_PUSH, UNIT),
            "push_back": (BuiltinOp.VEC_PUSH, UNIT),
            "pop": (BuiltinOp.VEC_POP, Ty.builtin("Option", (elem,))),
            "pop_front": (BuiltinOp.VEC_POP, Ty.builtin("Option", (elem,))),
            "pop_back": (BuiltinOp.VEC_POP, Ty.builtin("Option", (elem,))),
            "len": (BuiltinOp.VEC_LEN, USIZE),
            "capacity": (BuiltinOp.VEC_CAPACITY, USIZE),
            "is_empty": (BuiltinOp.VEC_IS_EMPTY, BOOL),
            "get": (BuiltinOp.VEC_GET,
                    Ty.builtin("Option", (Ty.ref(elem),))),
            "get_mut": (BuiltinOp.VEC_GET_MUT,
                        Ty.builtin("Option", (Ty.ref(elem, True),))),
            "get_unchecked": (BuiltinOp.VEC_GET_UNCHECKED, Ty.ref(elem)),
            "get_unchecked_mut": (BuiltinOp.VEC_GET_UNCHECKED_MUT,
                                  Ty.ref(elem, True)),
            "first": (BuiltinOp.FIRST, Ty.builtin("Option", (Ty.ref(elem),))),
            "last": (BuiltinOp.LAST, Ty.builtin("Option", (Ty.ref(elem),))),
            "insert": (BuiltinOp.VEC_INSERT, UNIT),
            "remove": (BuiltinOp.VEC_REMOVE, elem),
            "clear": (BuiltinOp.VEC_CLEAR, UNIT),
            "truncate": (BuiltinOp.VEC_TRUNCATE, UNIT),
            "reserve": (BuiltinOp.VEC_RESERVE, UNIT),
            "as_ptr": (BuiltinOp.VEC_AS_PTR, Ty.raw_ptr(elem, False)),
            "as_mut_ptr": (BuiltinOp.VEC_AS_MUT_PTR, Ty.raw_ptr(elem, True)),
            "set_len": (BuiltinOp.VEC_SET_LEN, UNIT),
            "iter": (BuiltinOp.VEC_ITER, recv_ty),
            "iter_mut": (BuiltinOp.VEC_ITER, recv_ty),
            "contains": (BuiltinOp.VEC_CONTAINS, BOOL),
            "extend": (BuiltinOp.VEC_EXTEND, UNIT),
            "copy_from_slice": (BuiltinOp.SLICE_COPY_FROM_SLICE, UNIT),
        }
        if method in vec_methods:
            op, ret = vec_methods[method]
            return FuncRef.builtin(op, name=method,
                                   is_unsafe=_unsafe(op)), ret

    # -- HashMap / BTreeMap --------------------------------------------------------
    if name in ("HashMap", "BTreeMap"):
        key_ty = base.arg(0)
        val_ty = base.arg(1)
        map_methods = {
            "insert": (BuiltinOp.MAP_INSERT, Ty.builtin("Option", (val_ty,))),
            "get": (BuiltinOp.MAP_GET, Ty.builtin("Option", (Ty.ref(val_ty),))),
            "get_mut": (BuiltinOp.MAP_GET,
                        Ty.builtin("Option", (Ty.ref(val_ty, True),))),
            "remove": (BuiltinOp.MAP_REMOVE, Ty.builtin("Option", (val_ty,))),
            "contains_key": (BuiltinOp.MAP_CONTAINS_KEY, BOOL),
            "len": (BuiltinOp.VEC_LEN, USIZE),
            "is_empty": (BuiltinOp.VEC_IS_EMPTY, BOOL),
            "iter": (BuiltinOp.VEC_ITER, recv_ty),
            "clear": (BuiltinOp.VEC_CLEAR, UNIT),
        }
        if method in map_methods:
            op, ret = map_methods[method]
            return FuncRef.builtin(op), ret

    # -- raw pointers ---------------------------------------------------------------
    if base.is_raw_ptr:
        if method in ("offset", "add", "sub", "wrapping_add", "wrapping_offset"):
            op = BuiltinOp.PTR_OFFSET if method == "offset" else BuiltinOp.PTR_ADD
            return FuncRef.builtin(op, is_unsafe=_unsafe(op)), base
        if method == "is_null":
            return FuncRef.builtin(BuiltinOp.PTR_IS_NULL), BOOL
        if method == "read":
            return FuncRef.builtin(BuiltinOp.PTR_READ, is_unsafe=True), base.referent
        if method == "write":
            return FuncRef.builtin(BuiltinOp.PTR_WRITE, is_unsafe=True), UNIT
        if method == "as_ptr":
            return FuncRef.builtin(BuiltinOp.VEC_AS_PTR), base

    # -- MaybeUninit ----------------------------------------------------------------
    if name == "MaybeUninit":
        if method == "assume_init":
            return (FuncRef.builtin(BuiltinOp.MAYBE_UNINIT_ASSUME, is_unsafe=True),
                    base.arg())
        if method == "as_mut_ptr":
            return (FuncRef.builtin(BuiltinOp.VEC_AS_MUT_PTR),
                    Ty.raw_ptr(base.arg(), True))

    # -- Weak -------------------------------------------------------------------------
    if name == "Weak" and method == "upgrade":
        return (FuncRef.builtin(BuiltinOp.UPGRADE),
                Ty.builtin("Option", (Ty.builtin("Arc", base.args),)))

    # -- explicit unlock (the paper's Suggestion 7, implemented) ------------
    if base.is_guard and method == "unlock":
        return FuncRef.builtin(BuiltinOp.GUARD_UNLOCK), UNIT

    # -- universal methods ------------------------------------------------------------
    if method == "clone":
        return FuncRef.builtin(BuiltinOp.CLONE), base
    if method == "to_string":
        return FuncRef.builtin(BuiltinOp.TO_STRING), Ty.string()
    if method == "into":
        return FuncRef.builtin(BuiltinOp.INTO), UNKNOWN
    if method == "deref":
        return FuncRef.builtin(BuiltinOp.DEREF), Ty.ref(base.arg())
    if method == "next":
        return (FuncRef.builtin(BuiltinOp.ITER_NEXT),
                Ty.builtin("Option", (_elem_of(recv_ty),)))
    if name == "String":
        str_methods = {
            "len": (BuiltinOp.VEC_LEN, USIZE),
            "is_empty": (BuiltinOp.VEC_IS_EMPTY, BOOL),
            "push": (BuiltinOp.VEC_PUSH, UNIT),
            "as_ptr": (BuiltinOp.VEC_AS_PTR, Ty.raw_ptr(Ty.int("u8"), False)),
        }
        if method in str_methods:
            op, ret = str_methods[method]
            return FuncRef.builtin(op), ret
    return None


# Macro names lowered to builtin calls by the MIR builder.
MACRO_OPS = {
    "println": BuiltinOp.PRINT,
    "print": BuiltinOp.PRINT,
    "eprintln": BuiltinOp.PRINT,
    "eprint": BuiltinOp.PRINT,
    "panic": BuiltinOp.PANIC,
    "unreachable": BuiltinOp.PANIC,
    "unimplemented": BuiltinOp.UNIMPLEMENTED,
    "todo": BuiltinOp.UNIMPLEMENTED,
    "format": BuiltinOp.FORMAT,
    "vec": BuiltinOp.VEC_MACRO,
    "assert": BuiltinOp.ASSERT,
    "assert_eq": BuiltinOp.ASSERT,
    "assert_ne": BuiltinOp.ASSERT,
    "debug_assert": BuiltinOp.ASSERT,
    "write": BuiltinOp.FORMAT,
    "writeln": BuiltinOp.FORMAT,
}
