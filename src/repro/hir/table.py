"""Item table: name resolution for a MiniRust crate.

Collects structs, enums, functions (free and methods), traits, statics and
``unsafe`` provenance into one flat table, lowering syntactic types to
semantic :class:`~repro.lang.types.Ty` as it goes.  Method names are keyed
``Type::method``; trait methods implemented for a type are keyed the same
way (MiniRust resolves methods by receiver type, not by trait dispatch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lang import ast_nodes as ast
from repro.lang.diagnostics import DiagnosticSink
from repro.lang.source import Span
from repro.lang.types import (
    BUILTIN_GENERICS, BUILTIN_UNITS, INT_TYPES, UNKNOWN, EnumInfo,
    StructInfo, Ty,
)


@dataclass
class FnInfo:
    """A resolved function or method."""

    key: str                       # "foo" or "Type::method"
    name: str
    ast_fn: ast.FnDef = None
    params: List[Tuple[str, Ty, bool]] = field(default_factory=list)
    ret_ty: Ty = UNKNOWN
    is_unsafe: bool = False
    is_pub: bool = False
    is_method: bool = False
    self_ty: Optional[Ty] = None
    self_mode: Optional[str] = None    # "value" | "ref" | "ref_mut" | None
    impl_of: Optional[str] = None      # struct name for methods
    trait_name: Optional[str] = None   # trait being implemented, if any
    span: Span = Span.DUMMY
    generics: List[str] = field(default_factory=list)

    @property
    def is_constructor_like(self) -> bool:
        return self.name in ("new", "default", "with_capacity", "from")


@dataclass
class StaticInfo:
    name: str
    ty: Ty = UNKNOWN
    mutable: bool = False
    init: Optional[ast.Expr] = None
    span: Span = Span.DUMMY


@dataclass
class ItemTable:
    """All resolved items of one crate."""

    crate_name: str = "crate"
    structs: Dict[str, StructInfo] = field(default_factory=dict)
    enums: Dict[str, EnumInfo] = field(default_factory=dict)
    functions: Dict[str, FnInfo] = field(default_factory=dict)
    statics: Dict[str, StaticInfo] = field(default_factory=dict)
    consts: Dict[str, object] = field(default_factory=dict)
    traits: Dict[str, ast.TraitDef] = field(default_factory=dict)
    unsafe_traits: List[str] = field(default_factory=list)
    unsafe_impls: List[Tuple[str, str]] = field(default_factory=list)  # (trait, type)
    diagnostics: DiagnosticSink = field(default_factory=DiagnosticSink)

    # -- queries ------------------------------------------------------------

    def lookup_method(self, type_name: str, method: str) -> Optional[FnInfo]:
        return self.functions.get(f"{type_name}::{method}")

    def lookup_fn(self, name: str) -> Optional[FnInfo]:
        return self.functions.get(name)

    def methods_of(self, type_name: str) -> List[FnInfo]:
        prefix = type_name + "::"
        return [fn for key, fn in self.functions.items()
                if key.startswith(prefix)]

    def struct_implements(self, struct_name: str, trait: str) -> bool:
        info = self.structs.get(struct_name)
        return bool(info and info.traits.get(trait))

    # -- type lowering ---------------------------------------------------------

    def lower_ty(self, ty: Optional[ast.Ty],
                 self_ty: Optional[Ty] = None,
                 generics: Tuple[str, ...] = ()) -> Ty:
        """Lower a syntactic type to a semantic type."""
        if ty is None:
            return UNKNOWN
        if isinstance(ty, ast.TyUnit):
            return Ty.unit()
        if isinstance(ty, ast.TyInfer):
            return UNKNOWN
        if isinstance(ty, ast.TyRef):
            return Ty.ref(self.lower_ty(ty.referent, self_ty, generics),
                          ty.mutability.is_mut)
        if isinstance(ty, ast.TyRawPtr):
            return Ty.raw_ptr(self.lower_ty(ty.pointee, self_ty, generics),
                              ty.mutability.is_mut)
        if isinstance(ty, ast.TyTuple):
            return Ty.tuple_(tuple(self.lower_ty(e, self_ty, generics)
                                   for e in ty.elements))
        if isinstance(ty, ast.TySlice):
            return Ty.slice(self.lower_ty(ty.element, self_ty, generics))
        if isinstance(ty, ast.TyArray):
            return Ty.array(self.lower_ty(ty.element, self_ty, generics))
        if isinstance(ty, ast.TyFn):
            params = tuple(self.lower_ty(p, self_ty, generics)
                           for p in ty.params)
            ret = self.lower_ty(ty.ret, self_ty, generics) if ty.ret else Ty.unit()
            return Ty.fn(params, ret)
        if isinstance(ty, ast.TyImplTrait):
            return UNKNOWN
        if isinstance(ty, ast.TyPath):
            return self._lower_path_ty(ty.path, self_ty, generics)
        return UNKNOWN

    def _lower_path_ty(self, path: ast.Path, self_ty: Optional[Ty],
                       generics: Tuple[str, ...]) -> Ty:
        last = path.last
        name = last.name
        args = tuple(self.lower_ty(a, self_ty, generics)
                     for a in last.generic_args)
        if name == "Self":
            return self_ty or UNKNOWN
        if name in generics:
            return Ty.param(name)
        if name in INT_TYPES:
            return Ty.int(name)
        if name in ("f32", "f64"):
            return Ty.float(name)
        if name == "bool":
            return Ty.bool_()
        if name == "char":
            return Ty.char_()
        if name == "str":
            return Ty.str_()
        if name == "String":
            return Ty.string()
        if name in BUILTIN_GENERICS:
            if name == "Result" and len(args) < 2:
                args = args + (UNKNOWN,) * (2 - len(args))
            elif not args:
                args = (UNKNOWN,)
            return Ty.builtin(name, args)
        if name in BUILTIN_UNITS:
            return Ty.builtin(name)
        if name in self.structs or name in self.enums:
            return Ty.adt(name, args)
        # Unknown foreign type: model as an opaque ADT so field/method calls
        # degrade gracefully instead of erroring.
        return Ty.adt(name, args)


def build_item_table(crate: ast.Crate,
                     sink: Optional[DiagnosticSink] = None) -> ItemTable:
    """Resolve ``crate`` into an :class:`ItemTable` (two passes)."""
    table = ItemTable(crate_name=crate.name,
                      diagnostics=sink or DiagnosticSink())

    # Pass 1: collect type names so that type lowering can classify ADTs.
    for item in crate.walk_items():
        if isinstance(item, ast.StructDef):
            table.structs[item.name] = StructInfo(name=item.name,
                                                  is_tuple=item.is_tuple)
        elif isinstance(item, ast.EnumDef):
            table.enums[item.name] = EnumInfo(name=item.name)
        elif isinstance(item, ast.TraitDef):
            table.traits[item.name] = item
            if item.is_unsafe:
                table.unsafe_traits.append(item.name)

    # Pass 2: lower field types, signatures, impls, statics.
    for item in crate.walk_items():
        if isinstance(item, ast.StructDef):
            info = table.structs[item.name]
            gen = tuple(item.generics)
            info.fields = [(f.name, table.lower_ty(f.ty, None, gen))
                           for f in item.fields]
        elif isinstance(item, ast.EnumDef):
            info = table.enums[item.name]
            gen = tuple(item.generics)
            info.variants = [(v.name,
                              [table.lower_ty(t, None, gen) for t in v.fields])
                             for v in item.variants]
        elif isinstance(item, ast.FnDef):
            _register_fn(table, item, prefix=None, self_ty=None)
        elif isinstance(item, ast.ImplBlock):
            _register_impl(table, item)
        elif isinstance(item, ast.StaticDef):
            table.statics[item.name] = StaticInfo(
                name=item.name, ty=table.lower_ty(item.ty),
                mutable=item.mutability.is_mut, init=item.init, span=item.span)
        elif isinstance(item, ast.ConstDef):
            table.consts[item.name] = item
        elif isinstance(item, ast.TraitDef):
            for fn in item.items:
                if fn.body is not None:
                    _register_fn(table, fn, prefix=item.name, self_ty=None,
                                 trait_name=item.name)
    return table


def _register_impl(table: ItemTable, impl: ast.ImplBlock) -> None:
    self_ty = table.lower_ty(impl.self_ty, None, tuple(impl.generics))
    type_name = impl.name
    trait_name = impl.trait_path.last.name if impl.trait_path else None

    if trait_name is not None:
        struct = table.structs.get(type_name)
        if struct is not None:
            struct.traits[trait_name] = True
            if impl.is_unsafe:
                if trait_name == "Sync":
                    struct.unsafe_sync = True
                if trait_name == "Send":
                    struct.unsafe_send = True
        if impl.is_unsafe:
            table.unsafe_impls.append((trait_name, type_name))

    for fn in impl.items:
        _register_fn(table, fn, prefix=type_name, self_ty=self_ty,
                     trait_name=trait_name, generics=tuple(impl.generics))


def _register_fn(table: ItemTable, fn: ast.FnDef, prefix: Optional[str],
                 self_ty: Optional[Ty], trait_name: Optional[str] = None,
                 generics: Tuple[str, ...] = ()) -> None:
    key = f"{prefix}::{fn.name}" if prefix else fn.name
    gen = generics + tuple(fn.generics)
    params: List[Tuple[str, Ty, bool]] = []
    self_mode: Optional[str] = None
    for p in fn.params:
        if p.is_self:
            if p.self_ref is None:
                self_mode = "value"
                p_ty = self_ty or UNKNOWN
            elif p.self_ref.is_mut:
                self_mode = "ref_mut"
                p_ty = Ty.ref(self_ty or UNKNOWN, True)
            else:
                self_mode = "ref"
                p_ty = Ty.ref(self_ty or UNKNOWN, False)
            params.append(("self", p_ty, p.mutability.is_mut))
        else:
            params.append((p.name, table.lower_ty(p.ty, self_ty, gen),
                           p.mutability.is_mut))
    ret_ty = table.lower_ty(fn.ret_ty, self_ty, gen) if fn.ret_ty else Ty.unit()
    info = FnInfo(key=key, name=fn.name, ast_fn=fn, params=params,
                  ret_ty=ret_ty, is_unsafe=fn.is_unsafe, is_pub=fn.is_pub,
                  is_method=self_mode is not None, self_ty=self_ty,
                  self_mode=self_mode, impl_of=prefix if self_ty else None,
                  trait_name=trait_name, span=fn.span, generics=list(gen))
    if key in table.functions:
        # Duplicate (e.g. cfg'd twice); keep the one with a body.
        existing = table.functions[key]
        if existing.ast_fn.body is None and fn.body is not None:
            table.functions[key] = info
    else:
        table.functions[key] = info
