"""HIR: the resolved, typed view of a MiniRust crate.

Our HIR follows rustc's role for it loosely: after parsing, the crate is
resolved into an :class:`~repro.hir.table.ItemTable` mapping names to
structs / enums / functions / impls / traits / statics, with syntactic
types lowered to semantic :class:`~repro.lang.types.Ty` values and
``unsafe`` provenance recorded on every item.  MIR building consumes the
item table plus the (annotated) AST bodies.
"""

from repro.hir.table import FnInfo, ItemTable, StaticInfo, build_item_table
from repro.hir.builtins import BuiltinOp, FuncRef, resolve_builtin_call, resolve_method

__all__ = [
    "FnInfo",
    "ItemTable",
    "StaticInfo",
    "build_item_table",
    "BuiltinOp",
    "FuncRef",
    "resolve_builtin_call",
    "resolve_method",
]
