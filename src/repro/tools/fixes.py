"""Fix guidance derived from the paper's studied fix strategies.

§5.2 categorises how the 70 memory bugs were fixed (conditionally skip /
adjust lifetime / change unsafe operands / other) and §6.1 how the
blocking bugs were (adjust synchronisation, with guard-lifetime
adjustment the Rust-unique variant).  This module maps each detector
finding class to the strategy the paper observed fixing that class, with
the concrete edit the paper's own figures used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.detectors.report import Finding


@dataclass(frozen=True)
class FixSuggestion:
    strategy: str            # the §5.2 / §6.1 strategy name
    advice: str              # concrete edit
    paper_reference: str


_SUGGESTIONS: Dict[str, FixSuggestion] = {
    "use-after-free": FixSuggestion(
        strategy="adjust lifetime",
        advice="extend the pointee's lifetime past the last pointer use "
               "(bind the temporary to a named local, or move the drop "
               "after the use), as in the Figure 7 patch",
        paper_reference="§5.2, Figure 7"),
    "double-free": FixSuggestion(
        strategy="adjust lifetime",
        advice="keep a single owner: move the value (`t2 = t1`) instead "
               "of `ptr::read`, or `mem::forget` the duplicated owner",
        paper_reference="§5.1 double-free discussion"),
    "invalid-free": FixSuggestion(
        strategy="change unsafe operands",
        advice="initialise raw memory with `ptr::write(f, value)` instead "
               "of `*f = value`, so no garbage old value is dropped",
        paper_reference="§5.2, Figure 6"),
    "uninit-read": FixSuggestion(
        strategy="change unsafe operands",
        advice="write (or zero-fill) the allocation before the first read",
        paper_reference="§5.2 'Other' fixes"),
    "buffer-overflow": FixSuggestion(
        strategy="conditionally skip code",
        advice="guard the unchecked access with an index-vs-len check and "
               "skip (or fall back) when out of range",
        paper_reference="§5.2 'Conditionally skip code' (25/30 skip "
                        "unsafe code)"),
    "unguarded-unchecked": FixSuggestion(
        strategy="conditionally skip code",
        advice="dominate the `get_unchecked` call with `if index < "
               "container.len()`",
        paper_reference="§5.2"),
    "double-lock": FixSuggestion(
        strategy="adjust lock-guard lifetime",
        advice="end the first guard's lifetime before re-acquiring: save "
               "the scrutinee into a local before the match (Figure 8's "
               "patch), call the explicit `guard.unlock()` this dialect "
               "provides (Suggestion 7), or `drop(guard)`",
        paper_reference="§6.1, Figure 8; Suggestions 6-7"),
    "conflicting-lock-order": FixSuggestion(
        strategy="adjust synchronisation operations",
        advice="impose one global acquisition order on every code path "
               "(sort the locks, or merge them into one)",
        paper_reference="§6.1 'acquiring locks in conflicting orders'"),
    "condvar-no-notify": FixSuggestion(
        strategy="adjust synchronisation operations",
        advice="add the missing `notify_one`/`notify_all` on every path "
               "that changes the awaited condition",
        paper_reference="§6.1 Condvar (8/10 bugs lack the notify)"),
    "recv-no-sender": FixSuggestion(
        strategy="adjust synchronisation operations",
        advice="keep a live Sender for as long as receivers may block, or "
               "handle the disconnect Err instead of unwrapping",
        paper_reference="§6.1 Channel"),
    "recv-holding-lock": FixSuggestion(
        strategy="adjust lock-guard lifetime",
        advice="drop the lock guard before blocking on `recv()`",
        paper_reference="§6.1 Channel (lock-holding receiver)"),
    "once-recursion": FixSuggestion(
        strategy="adjust synchronisation operations",
        advice="hoist the inner initialisation out of the `call_once` "
               "closure",
        paper_reference="§6.1 Once"),
    "atomic-check-then-act": FixSuggestion(
        strategy="enforce atomic accesses",
        advice="replace the load+branch+store with a single "
               "`compare_and_swap`/`compare_exchange` (Figure 9's patch)",
        paper_reference="§6.2, Figure 9"),
    "unsync-interior-mutation": FixSuggestion(
        strategy="enforce atomic accesses",
        advice="protect the interior mutation with a Mutex/atomic, or take "
               "`&mut self` so the compiler enforces exclusive access "
               "(Insight 10)",
        paper_reference="§6.2, Figure 4, Suggestion 8"),
}


def suggest_fixes(findings: List[Finding]) -> List[str]:
    """One actionable suggestion line per finding, in finding order."""
    lines: List[str] = []
    for finding in findings:
        suggestion = _SUGGESTIONS.get(finding.kind)
        if suggestion is None:
            lines.append(f"{finding.kind}: no catalogued strategy")
            continue
        lines.append(f"{finding.kind} in `{finding.fn_key}` — "
                     f"[{suggestion.strategy}] {suggestion.advice} "
                     f"({suggestion.paper_reference})")
    return lines
