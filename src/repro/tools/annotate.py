"""Source annotation: the paper's proposed IDE visualisations, as text.

* :func:`annotate_lifetimes` — §7.1: "Being able to visualize objects'
  lifetime and owner(s) during programming time could largely help Rust
  programmers avoid memory bugs."  For each user variable of a function
  we report the source lines its storage spans and where its drop runs.
* :func:`annotate_critical_sections` — Suggestion 6: "Future IDEs should
  add plug-ins to highlight the location of Rust's implicit unlock."
  For each lock acquisition we report the acquisition line, the lines the
  guard is held across, and the implicit-unlock (release) line(s).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.detectors.base import AnalysisContext
from repro.lang.source import SourceFile
from repro.mir.nodes import Body, StatementKind
from repro.driver import CompiledProgram


@dataclass
class VarLifetime:
    name: str
    local: int
    ty: str
    first_line: Optional[int] = None
    last_line: Optional[int] = None
    drop_lines: List[int] = field(default_factory=list)


@dataclass
class CriticalSection:
    kind: str
    acquire_line: Optional[int]
    held_lines: List[int]
    release_lines: List[int]
    #: Set when the guard came back from a callee (summary engine's
    #: held-on-return fact): the callee's function key.
    via: Optional[str] = None


@dataclass
class AnnotatedSource:
    fn_key: str
    source: SourceFile
    lifetimes: List[VarLifetime] = field(default_factory=list)
    critical_sections: List[CriticalSection] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"fn {self.fn_key}:"]
        for var in self.lifetimes:
            drops = (", dropped at line " +
                     "/".join(str(l) for l in sorted(set(var.drop_lines)))
                     ) if var.drop_lines else ""
            lines.append(f"  let {var.name}: {var.ty} — storage lines "
                         f"{var.first_line}..{var.last_line}{drops}")
        for cs in self.critical_sections:
            held = sorted(set(cs.held_lines))
            span = f"{held[0]}..{held[-1]}" if held else "-"
            releases = "/".join(str(l) for l in sorted(set(cs.release_lines))) \
                or "end of scope"
            via = f" (guard returned by `{cs.via}`)" if cs.via else ""
            lines.append(f"  [{cs.kind} critical section] acquired line "
                         f"{cs.acquire_line}{via}, held over lines {span}, "
                         f"implicit unlock at line {releases}")
        return "\n".join(lines)


def _line(source: SourceFile, span) -> Optional[int]:
    if span is None or span.is_dummy:
        return None
    return source.line_col(span.lo)[0]


def annotate_lifetimes(compiled: CompiledProgram,
                       fn_key: str) -> AnnotatedSource:
    """Lifetime/ownership annotations for every named variable of one
    function."""
    body = compiled.program.functions[fn_key]
    source = compiled.source
    out = AnnotatedSource(fn_key=fn_key, source=source)
    named = {l.index: l for l in body.locals
             if l.name and not l.name.startswith("static:") and not l.is_temp}

    spans: Dict[int, List[int]] = {}
    drops: Dict[int, List[int]] = {}
    for _bb, _i, stmt in body.iter_statements():
        line = _line(source, stmt.span)
        if line is None:
            continue
        if stmt.kind in (StatementKind.STORAGE_LIVE,
                         StatementKind.STORAGE_DEAD) \
                and stmt.local in named:
            spans.setdefault(stmt.local, []).append(line)
        elif stmt.kind is StatementKind.ASSIGN:
            locals_touched = {stmt.place.local} | {
                op.place.local for op in stmt.rvalue.operands
                if op.place is not None}
            for local in locals_touched & set(named):
                spans.setdefault(local, []).append(line)
        elif stmt.kind is StatementKind.DROP and stmt.place.local in named:
            # Scope-exit drops carry the enclosing block's span; its *end*
            # line is where the drop actually runs.
            end_line = source.line_col(stmt.span.hi)[0] \
                if not stmt.span.is_dummy else line
            drops.setdefault(stmt.place.local, []).append(end_line)

    for local, info in sorted(named.items()):
        lines = spans.get(local, [])
        out.lifetimes.append(VarLifetime(
            name=info.name, local=local, ty=str(info.ty),
            first_line=min(lines) if lines else None,
            last_line=max(lines) if lines else None,
            drop_lines=drops.get(local, [])))
    return out


def annotate_critical_sections(compiled: CompiledProgram,
                               fn_key: str,
                               ctx: Optional[AnalysisContext] = None
                               ) -> AnnotatedSource:
    """Critical-section annotations: where each lock is taken, held, and
    implicitly released.  Guard regions come from the shared
    :class:`AnalysisContext`, so sections opened by a callee that returns
    its guard are annotated too (with the callee named)."""
    body = compiled.program.functions[fn_key]
    source = compiled.source
    out = AnnotatedSource(fn_key=fn_key, source=source)
    if ctx is None:
        ctx = AnalysisContext(compiled.program)

    for region in ctx.guard_regions(body):
        held_lines: List[int] = []
        for bb, i in sorted(region.points):
            block = body.blocks[bb]
            if i < len(block.statements):
                line = _line(source, block.statements[i].span)
            elif block.terminator is not None:
                line = _line(source, block.terminator.span)
            else:
                line = None
            if line is not None:
                held_lines.append(line)
        release_lines: List[int] = []
        for bb, i in sorted(region.release_points):
            block = body.blocks[bb]
            if i < len(block.statements):
                line = _line(source, block.statements[i].span)
            elif block.terminator is not None:
                line = _line(source, block.terminator.span)
            else:
                line = None
            if line is not None:
                release_lines.append(line)
        out.critical_sections.append(CriticalSection(
            kind=region.kind,
            acquire_line=_line(source, region.span),
            held_lines=held_lines,
            release_lines=release_lines,
            via=region.via_call))
    return out
