"""Programmer-facing tools built on the analyses.

The paper's §7 proposes two tool directions besides detectors: IDE
plug-ins that *visualise* lifetimes, critical sections and implicit
unlocks (Suggestions 6 and the §7.1 "IDE tools" paragraphs), and fix
guidance derived from the studied fix strategies (§5.2, §6.1).  This
package implements both as library functions producing annotated text.
"""

from repro.tools.annotate import (
    AnnotatedSource, annotate_critical_sections, annotate_lifetimes,
)
from repro.tools.fixes import suggest_fixes

__all__ = [
    "AnnotatedSource",
    "annotate_critical_sections",
    "annotate_lifetimes",
    "suggest_fixes",
]
