"""AST node definitions for MiniRust.

The AST mirrors rustc's pre-expansion AST, restricted to the MiniRust
subset.  All nodes are plain dataclasses; every node carries a ``span``.

Naming convention: type-position nodes are prefixed ``Ty`` (``TyPath``,
``TyRef``, ...), pattern nodes ``Pat``, expression nodes plain names.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.lang.source import Span


# ---------------------------------------------------------------------------
# Shared pieces
# ---------------------------------------------------------------------------

class Mutability(enum.Enum):
    NOT = "not"
    MUT = "mut"

    @property
    def is_mut(self) -> bool:
        return self is Mutability.MUT


class UnsafeSource(enum.Enum):
    """Why a region of code is unsafe — used by the §4 unsafe scanner."""

    SAFE = "safe"
    UNSAFE_BLOCK = "unsafe_block"
    UNSAFE_FN = "unsafe_fn"
    UNSAFE_TRAIT = "unsafe_trait"
    UNSAFE_IMPL = "unsafe_impl"


@dataclass
class Node:
    span: Span


@dataclass
class PathSegment:
    name: str
    generic_args: List["Ty"] = field(default_factory=list)


@dataclass
class Path(Node):
    """A (possibly qualified) path such as ``std::ptr::read`` or ``Vec::<i32>::new``."""

    segments: List[PathSegment] = field(default_factory=list)

    @property
    def names(self) -> List[str]:
        return [seg.name for seg in self.segments]

    def as_str(self) -> str:
        return "::".join(self.names)

    @property
    def last(self) -> PathSegment:
        return self.segments[-1]


# ---------------------------------------------------------------------------
# Types (syntactic)
# ---------------------------------------------------------------------------

@dataclass
class Ty(Node):
    pass


@dataclass
class TyPath(Ty):
    path: Path = None


@dataclass
class TyRef(Ty):
    referent: Ty = None
    mutability: Mutability = Mutability.NOT
    lifetime: Optional[str] = None


@dataclass
class TyRawPtr(Ty):
    pointee: Ty = None
    mutability: Mutability = Mutability.NOT


@dataclass
class TyTuple(Ty):
    elements: List[Ty] = field(default_factory=list)


@dataclass
class TySlice(Ty):
    element: Ty = None


@dataclass
class TyArray(Ty):
    element: Ty = None
    length: Optional["Expr"] = None


@dataclass
class TyFn(Ty):
    params: List[Ty] = field(default_factory=list)
    ret: Optional[Ty] = None


@dataclass
class TyUnit(Ty):
    pass


@dataclass
class TyInfer(Ty):
    """The ``_`` type."""


@dataclass
class TyImplTrait(Ty):
    """``impl Trait`` / ``dyn Trait`` — carried opaquely."""

    trait_path: Path = None
    is_dyn: bool = False


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------

@dataclass
class Pat(Node):
    pass


@dataclass
class PatWild(Pat):
    pass


@dataclass
class PatIdent(Pat):
    name: str = ""
    mutability: Mutability = Mutability.NOT
    by_ref: bool = False
    subpattern: Optional[Pat] = None   # x @ pat


@dataclass
class PatLiteral(Pat):
    value: object = None


@dataclass
class PatRange(Pat):
    lo: object = None
    hi: object = None
    inclusive: bool = True


@dataclass
class PatTuple(Pat):
    elements: List[Pat] = field(default_factory=list)


@dataclass
class PatPath(Pat):
    """A unit variant pattern like ``None`` or ``Ordering::Less``."""

    path: Path = None


@dataclass
class PatTupleStruct(Pat):
    """``Some(x)``, ``Ok(v)``, ``Err(e)``, user tuple-variants."""

    path: Path = None
    elements: List[Pat] = field(default_factory=list)


@dataclass
class PatStruct(Pat):
    """``Point { x, y }`` patterns."""

    path: Path = None
    fields: List[Tuple[str, Pat]] = field(default_factory=list)
    has_rest: bool = False


@dataclass
class PatRef(Pat):
    inner: Pat = None
    mutability: Mutability = Mutability.NOT


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class BinOp(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    REM = "%"
    AND = "&&"
    OR = "||"
    BIT_AND = "&"
    BIT_OR = "|"
    BIT_XOR = "^"
    SHL = "<<"
    SHR = ">>"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


class UnOp(enum.Enum):
    NEG = "-"
    NOT = "!"
    DEREF = "*"


@dataclass
class Expr(Node):
    pass


@dataclass
class Literal(Expr):
    value: object = None
    suffix: Optional[str] = None


@dataclass
class PathExpr(Expr):
    path: Path = None


@dataclass
class Unary(Expr):
    op: UnOp = None
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: BinOp = None
    left: Expr = None
    right: Expr = None


@dataclass
class Assign(Expr):
    target: Expr = None
    value: Expr = None


@dataclass
class CompoundAssign(Expr):
    op: BinOp = None
    target: Expr = None
    value: Expr = None


@dataclass
class Call(Expr):
    callee: Expr = None
    args: List[Expr] = field(default_factory=list)


@dataclass
class MethodCall(Expr):
    receiver: Expr = None
    method: str = ""
    args: List[Expr] = field(default_factory=list)
    generic_args: List[Ty] = field(default_factory=list)


@dataclass
class FieldAccess(Expr):
    base: Expr = None
    field_name: str = ""


@dataclass
class TupleIndex(Expr):
    base: Expr = None
    index: int = 0


@dataclass
class Index(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class Reference(Expr):
    """``&x`` / ``&mut x`` / ``&raw const x`` approximated by Ref."""

    operand: Expr = None
    mutability: Mutability = Mutability.NOT


@dataclass
class Cast(Expr):
    operand: Expr = None
    target_ty: Ty = None


@dataclass
class StructLiteral(Expr):
    path: Path = None
    fields: List[Tuple[str, Expr]] = field(default_factory=list)
    base: Optional[Expr] = None       # ..rest


@dataclass
class TupleLiteral(Expr):
    elements: List[Expr] = field(default_factory=list)


@dataclass
class ArrayLiteral(Expr):
    elements: List[Expr] = field(default_factory=list)
    repeat: Optional[Tuple[Expr, Expr]] = None   # [elem; count]


@dataclass
class Range(Expr):
    lo: Optional[Expr] = None
    hi: Optional[Expr] = None
    inclusive: bool = False


@dataclass
class Block(Expr):
    statements: List["Stmt"] = field(default_factory=list)
    tail: Optional[Expr] = None
    is_unsafe: bool = False


@dataclass
class If(Expr):
    condition: Expr = None
    then_block: Block = None
    else_branch: Optional[Expr] = None   # Block or If


@dataclass
class IfLet(Expr):
    pattern: Pat = None
    scrutinee: Expr = None
    then_block: Block = None
    else_branch: Optional[Expr] = None


@dataclass
class MatchArm(Node):
    pattern: Pat = None
    guard: Optional[Expr] = None
    body: Expr = None


@dataclass
class Match(Expr):
    scrutinee: Expr = None
    arms: List[MatchArm] = field(default_factory=list)


@dataclass
class While(Expr):
    condition: Expr = None
    body: Block = None


@dataclass
class WhileLet(Expr):
    pattern: Pat = None
    scrutinee: Expr = None
    body: Block = None


@dataclass
class Loop(Expr):
    body: Block = None


@dataclass
class For(Expr):
    pattern: Pat = None
    iterable: Expr = None
    body: Block = None


@dataclass
class Break(Expr):
    value: Optional[Expr] = None


@dataclass
class Continue(Expr):
    pass


@dataclass
class Return(Expr):
    value: Optional[Expr] = None


@dataclass
class Closure(Expr):
    params: List[Tuple[str, Optional[Ty]]] = field(default_factory=list)
    body: Expr = None
    is_move: bool = False


@dataclass
class MacroCall(Expr):
    """``vec![..]``, ``println!(..)``, ``panic!(..)``, ... with parsed args."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)
    format_string: Optional[str] = None
    repeat: Optional[Tuple[Expr, Expr]] = None   # vec![elem; count]


@dataclass
class Try(Expr):
    """The ``?`` operator."""

    operand: Expr = None


@dataclass
class AwaitStub(Expr):
    """Parsed-but-opaque ``.await`` (kept so real-world snippets lex)."""

    operand: Expr = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class LetStmt(Stmt):
    pattern: Pat = None
    ty: Optional[Ty] = None
    init: Optional[Expr] = None
    else_block: Optional[Block] = None   # let-else


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None
    has_semi: bool = True


@dataclass
class ItemStmt(Stmt):
    item: "Item" = None


@dataclass
class EmptyStmt(Stmt):
    pass


# ---------------------------------------------------------------------------
# Items
# ---------------------------------------------------------------------------

@dataclass
class Item(Node):
    name: str = ""
    is_pub: bool = False


@dataclass
class Param(Node):
    name: str = ""
    ty: Optional[Ty] = None
    mutability: Mutability = Mutability.NOT
    is_self: bool = False
    self_ref: Optional[Mutability] = None   # None = by value; NOT = &self; MUT = &mut self


@dataclass
class FnDef(Item):
    params: List[Param] = field(default_factory=list)
    ret_ty: Optional[Ty] = None
    body: Optional[Block] = None
    is_unsafe: bool = False
    generics: List[str] = field(default_factory=list)
    lifetimes: List[str] = field(default_factory=list)
    attrs: List[str] = field(default_factory=list)


@dataclass
class StructField(Node):
    name: str = ""
    ty: Ty = None
    is_pub: bool = False


@dataclass
class StructDef(Item):
    fields: List[StructField] = field(default_factory=list)
    generics: List[str] = field(default_factory=list)
    is_tuple: bool = False
    attrs: List[str] = field(default_factory=list)


@dataclass
class EnumVariant(Node):
    name: str = ""
    fields: List[Ty] = field(default_factory=list)     # tuple-variant payload
    discriminant: Optional[int] = None


@dataclass
class EnumDef(Item):
    variants: List[EnumVariant] = field(default_factory=list)
    generics: List[str] = field(default_factory=list)
    attrs: List[str] = field(default_factory=list)


@dataclass
class ImplBlock(Item):
    self_ty: Ty = None
    trait_path: Optional[Path] = None
    items: List[FnDef] = field(default_factory=list)
    is_unsafe: bool = False
    generics: List[str] = field(default_factory=list)


@dataclass
class TraitDef(Item):
    items: List[FnDef] = field(default_factory=list)
    is_unsafe: bool = False
    generics: List[str] = field(default_factory=list)


@dataclass
class StaticDef(Item):
    ty: Ty = None
    init: Optional[Expr] = None
    mutability: Mutability = Mutability.NOT


@dataclass
class ConstDef(Item):
    ty: Ty = None
    init: Optional[Expr] = None


@dataclass
class UseDecl(Item):
    path: Path = None


@dataclass
class ModDecl(Item):
    items: List[Item] = field(default_factory=list)


@dataclass
class Crate(Node):
    """The root of a parsed compilation unit."""

    items: List[Item] = field(default_factory=list)
    name: str = "crate"

    def walk_items(self):
        """Yield every item, flattening modules."""
        stack = list(self.items)
        while stack:
            item = stack.pop(0)
            yield item
            if isinstance(item, ModDecl):
                stack = list(item.items) + stack
