"""Recursive-descent parser for MiniRust with a Pratt expression parser.

Design notes
------------
* Struct literals are forbidden in "condition position" (``if``/``while``/
  ``match`` heads and ``for`` iterables), matching Rust's grammar, via the
  ``no_struct`` restriction flag.
* ``>>`` is split into two ``>`` tokens when closing nested generic
  argument lists (``Vec<Vec<i32>>``).
* Macro calls (``vec![..]``, ``println!(..)``, ...) are parsed into
  :class:`~repro.lang.ast_nodes.MacroCall` with their arguments parsed as
  ordinary expressions, which is all the detectors and interpreter need.
* Attributes ``#[...]`` are collected as raw strings on items (used by the
  corpus generator to tag injected bugs) and otherwise ignored.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lang import ast_nodes as ast
from repro.lang.ast_nodes import BinOp, Mutability, UnOp
from repro.lang.diagnostics import CompileError
from repro.lang.lexer import Lexer
from repro.lang.source import SourceFile, Span
from repro.lang.tokens import Token, TokenKind as T

# Binding powers for the Pratt parser (higher binds tighter).
_BINARY_POWER = {
    T.PIPEPIPE: (4, 5),
    T.AMPAMP: (6, 7),
    T.EQEQ: (10, 11), T.NE: (10, 11),
    T.LT: (10, 11), T.LE: (10, 11), T.GT: (10, 11), T.GE: (10, 11),
    T.PIPE: (14, 15),
    T.CARET: (16, 17),
    T.AMP: (18, 19),
    T.SHL: (20, 21), T.SHR: (20, 21),
    T.PLUS: (22, 23), T.MINUS: (22, 23),
    T.STAR: (24, 25), T.SLASH: (24, 25), T.PERCENT: (24, 25),
}

_BINOP_FOR_TOKEN = {
    T.PLUS: BinOp.ADD, T.MINUS: BinOp.SUB, T.STAR: BinOp.MUL,
    T.SLASH: BinOp.DIV, T.PERCENT: BinOp.REM,
    T.AMPAMP: BinOp.AND, T.PIPEPIPE: BinOp.OR,
    T.AMP: BinOp.BIT_AND, T.PIPE: BinOp.BIT_OR, T.CARET: BinOp.BIT_XOR,
    T.SHL: BinOp.SHL, T.SHR: BinOp.SHR,
    T.EQEQ: BinOp.EQ, T.NE: BinOp.NE,
    T.LT: BinOp.LT, T.LE: BinOp.LE, T.GT: BinOp.GT, T.GE: BinOp.GE,
}

_COMPOUND_ASSIGN = {
    T.PLUSEQ: BinOp.ADD, T.MINUSEQ: BinOp.SUB, T.STAREQ: BinOp.MUL,
    T.SLASHEQ: BinOp.DIV, T.PERCENTEQ: BinOp.REM,
    T.AMPEQ: BinOp.BIT_AND, T.PIPEEQ: BinOp.BIT_OR, T.CARETEQ: BinOp.BIT_XOR,
    T.SHLEQ: BinOp.SHL, T.SHREQ: BinOp.SHR,
}

# Tokens that may legitimately start an expression.
_EXPR_START = {
    T.IDENT, T.INT, T.FLOAT, T.STRING, T.CHAR, T.KW_TRUE, T.KW_FALSE,
    T.LPAREN, T.LBRACKET, T.LBRACE, T.MINUS, T.BANG, T.STAR, T.AMP,
    T.KW_IF, T.KW_MATCH, T.KW_WHILE, T.KW_LOOP, T.KW_FOR, T.KW_RETURN,
    T.KW_BREAK, T.KW_CONTINUE, T.KW_MOVE, T.KW_UNSAFE, T.KW_SELF,
    T.KW_SELF_TYPE, T.PIPE, T.PIPEPIPE, T.DOTDOT, T.KW_CRATE, T.KW_SUPER,
    T.UNDERSCORE,
}


class Parser:
    """Parses one :class:`SourceFile` into a :class:`~repro.lang.ast_nodes.Crate`."""

    def __init__(self, source: SourceFile,
                 tokens: Optional[List[Token]] = None) -> None:
        self.source = source
        self.tokens = tokens if tokens is not None else \
            Lexer(source).tokenize()
        self.pos = 0
        self.no_struct_depth = 0   # >0 → struct literals disallowed

    # -- token helpers -----------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def at(self, kind: T) -> bool:
        return self.tok.kind is kind

    def eat(self, kind: T) -> Optional[Token]:
        if self.at(kind):
            tok = self.tok
            self.pos += 1
            return tok
        return None

    def expect(self, kind: T, what: str = "") -> Token:
        tok = self.eat(kind)
        if tok is None:
            expected = what or kind.value
            raise CompileError(
                f"expected {expected!r}, found {self.tok.text or self.tok.kind.value!r}",
                self.tok.span, self.source)
        return tok

    def eat_gt(self) -> bool:
        """Consume a ``>``, splitting ``>>``/``>=``/``>>=`` when needed."""
        if self.eat(T.GT):
            return True
        split = {T.SHR: T.GT, T.GE: T.EQ, T.SHREQ: T.GE}
        if self.tok.kind in split:
            rest_kind = split[self.tok.kind]
            span = self.tok.span
            rest = Token(rest_kind, rest_kind.value,
                         Span(span.lo + 1, span.hi, span.file_name))
            self.tokens[self.pos] = rest
            return True
        return False

    def error(self, message: str, span: Optional[Span] = None) -> CompileError:
        return CompileError(message, span or self.tok.span, self.source)

    # -- entry points --------------------------------------------------------

    def parse_crate(self, name: str = "crate") -> ast.Crate:
        lo = self.tok.span
        items: List[ast.Item] = []
        while not self.at(T.EOF):
            items.append(self.parse_item())
        return ast.Crate(span=lo.merge(self.tok.span), items=items, name=name)

    # -- items ---------------------------------------------------------------

    def parse_attrs(self) -> List[str]:
        attrs: List[str] = []
        while self.at(T.POUND):
            lo = self.tok.span
            self.expect(T.POUND)
            self.eat(T.BANG)
            self.expect(T.LBRACKET)
            depth = 1
            while depth > 0:
                if self.at(T.EOF):
                    raise self.error("unterminated attribute")
                if self.at(T.LBRACKET):
                    depth += 1
                elif self.at(T.RBRACKET):
                    depth -= 1
                    if depth == 0:
                        hi = self.tok.span
                        self.pos += 1
                        attrs.append(self.source.text[lo.lo : hi.hi])
                        break
                self.pos += 1
        return attrs

    def parse_item(self) -> ast.Item:
        attrs = self.parse_attrs()
        is_pub = False
        if self.eat(T.KW_PUB):
            is_pub = True
            if self.eat(T.LPAREN):   # pub(crate) etc.
                depth = 1
                while depth > 0:
                    if self.eat(T.LPAREN):
                        depth += 1
                    elif self.eat(T.RPAREN):
                        depth -= 1
                    else:
                        self.pos += 1

        if self.at(T.KW_UNSAFE):
            nxt = self.peek().kind
            if nxt is T.KW_FN:
                self.expect(T.KW_UNSAFE)
                return self.parse_fn(is_pub=is_pub, is_unsafe=True, attrs=attrs)
            if nxt is T.KW_IMPL:
                self.expect(T.KW_UNSAFE)
                return self.parse_impl(is_unsafe=True)
            if nxt is T.KW_TRAIT:
                self.expect(T.KW_UNSAFE)
                return self.parse_trait(is_pub=is_pub, is_unsafe=True)

        if self.at(T.KW_FN):
            return self.parse_fn(is_pub=is_pub, attrs=attrs)
        if self.at(T.KW_STRUCT):
            return self.parse_struct(is_pub=is_pub, attrs=attrs)
        if self.at(T.KW_ENUM):
            return self.parse_enum(is_pub=is_pub, attrs=attrs)
        if self.at(T.KW_IMPL):
            return self.parse_impl()
        if self.at(T.KW_TRAIT):
            return self.parse_trait(is_pub=is_pub)
        if self.at(T.KW_STATIC):
            return self.parse_static(is_pub=is_pub)
        if self.at(T.KW_CONST):
            return self.parse_const(is_pub=is_pub)
        if self.at(T.KW_USE):
            return self.parse_use(is_pub=is_pub)
        if self.at(T.KW_MOD):
            return self.parse_mod(is_pub=is_pub)
        if self.at(T.KW_EXTERN):
            return self.parse_extern_block(is_pub=is_pub)
        if self.at(T.KW_TYPE):
            return self.parse_type_alias(is_pub=is_pub)
        raise self.error(f"expected item, found {self.tok.text!r}")

    def parse_generics(self) -> Tuple[List[str], List[str]]:
        """Parse ``<'a, T: Bound, U>`` → (type params, lifetimes)."""
        type_params: List[str] = []
        lifetimes: List[str] = []
        if not self.eat(T.LT):
            return type_params, lifetimes
        while not self.eat_gt():
            if self.at(T.LIFETIME):
                lifetimes.append(self.tok.text)
                self.pos += 1
            elif self.at(T.IDENT):
                type_params.append(self.tok.text)
                self.pos += 1
                if self.eat(T.COLON):   # skip bounds
                    self._skip_bounds()
            elif self.at(T.KW_CONST):
                self.pos += 1           # const generics: const N: usize
                type_params.append(self.expect(T.IDENT).text)
                self.expect(T.COLON)
                self.parse_type()
            else:
                raise self.error("expected generic parameter")
            if not self.eat(T.COMMA):
                if not self.eat_gt():
                    raise self.error("expected `,` or `>` in generics")
                break
        return type_params, lifetimes

    def _skip_bounds(self) -> None:
        """Skip trait bounds: ``T: Clone + Send + 'a``."""
        while True:
            if self.at(T.LIFETIME):
                self.pos += 1
            elif self.at(T.QUESTION):
                self.pos += 1
            elif self.at(T.IDENT) or self.at(T.KW_FN):
                self.parse_type()
            else:
                break
            if not self.eat(T.PLUS):
                break

    def _skip_where_clause(self) -> None:
        if not self.eat(T.KW_WHERE):
            return
        while not (self.at(T.LBRACE) or self.at(T.SEMI) or self.at(T.EOF)):
            self.pos += 1

    def parse_fn(self, is_pub: bool = False, is_unsafe: bool = False,
                 attrs: Optional[List[str]] = None) -> ast.FnDef:
        lo = self.expect(T.KW_FN).span
        name = self.expect(T.IDENT, "function name").text
        generics, lifetimes = self.parse_generics()
        self.expect(T.LPAREN)
        params: List[ast.Param] = []
        while not self.at(T.RPAREN):
            params.append(self.parse_param())
            if not self.eat(T.COMMA):
                break
        self.expect(T.RPAREN)
        ret_ty = None
        if self.eat(T.ARROW):
            ret_ty = self.parse_type()
        self._skip_where_clause()
        body = None
        if self.at(T.LBRACE):
            body = self.parse_block()
        else:
            self.expect(T.SEMI)
        return ast.FnDef(span=lo.merge(self.tokens[self.pos - 1].span),
                         name=name, is_pub=is_pub, params=params, ret_ty=ret_ty,
                         body=body, is_unsafe=is_unsafe, generics=generics,
                         lifetimes=lifetimes, attrs=list(attrs or []))

    def parse_param(self) -> ast.Param:
        lo = self.tok.span
        # self / &self / &mut self / mut self
        if self.at(T.AMP):
            save = self.pos
            self.pos += 1
            if self.at(T.LIFETIME):
                self.pos += 1
            mut = Mutability.MUT if self.eat(T.KW_MUT) else Mutability.NOT
            if self.eat(T.KW_SELF):
                return ast.Param(span=lo, name="self", is_self=True, self_ref=mut)
            self.pos = save
        if self.at(T.KW_MUT) and self.peek().kind is T.KW_SELF:
            self.pos += 2
            return ast.Param(span=lo, name="self", is_self=True,
                             mutability=Mutability.MUT, self_ref=None)
        if self.eat(T.KW_SELF):
            return ast.Param(span=lo, name="self", is_self=True, self_ref=None)
        mut = Mutability.MUT if self.eat(T.KW_MUT) else Mutability.NOT
        if self.at(T.UNDERSCORE):
            name = "_"
            self.pos += 1
        else:
            name = self.expect(T.IDENT, "parameter name").text
        self.expect(T.COLON)
        ty = self.parse_type()
        return ast.Param(span=lo, name=name, ty=ty, mutability=mut)

    def parse_struct(self, is_pub: bool = False,
                     attrs: Optional[List[str]] = None) -> ast.StructDef:
        lo = self.expect(T.KW_STRUCT).span
        name = self.expect(T.IDENT, "struct name").text
        generics, _ = self.parse_generics()
        self._skip_where_clause()
        fields: List[ast.StructField] = []
        is_tuple = False
        if self.eat(T.SEMI):
            pass                                  # unit struct
        elif self.eat(T.LPAREN):                  # tuple struct
            is_tuple = True
            index = 0
            while not self.at(T.RPAREN):
                f_pub = bool(self.eat(T.KW_PUB))
                ty = self.parse_type()
                fields.append(ast.StructField(span=ty.span, name=str(index),
                                              ty=ty, is_pub=f_pub))
                index += 1
                if not self.eat(T.COMMA):
                    break
            self.expect(T.RPAREN)
            self.expect(T.SEMI)
        else:
            self.expect(T.LBRACE)
            while not self.at(T.RBRACE):
                self.parse_attrs()
                f_pub = bool(self.eat(T.KW_PUB))
                f_lo = self.tok.span
                f_name = self.expect(T.IDENT, "field name").text
                self.expect(T.COLON)
                f_ty = self.parse_type()
                fields.append(ast.StructField(span=f_lo.merge(f_ty.span),
                                              name=f_name, ty=f_ty, is_pub=f_pub))
                if not self.eat(T.COMMA):
                    break
            self.expect(T.RBRACE)
        return ast.StructDef(span=lo.merge(self.tokens[self.pos - 1].span),
                             name=name, is_pub=is_pub, fields=fields,
                             generics=generics, is_tuple=is_tuple,
                             attrs=list(attrs or []))

    def parse_enum(self, is_pub: bool = False,
                   attrs: Optional[List[str]] = None) -> ast.EnumDef:
        lo = self.expect(T.KW_ENUM).span
        name = self.expect(T.IDENT, "enum name").text
        generics, _ = self.parse_generics()
        self._skip_where_clause()
        self.expect(T.LBRACE)
        variants: List[ast.EnumVariant] = []
        while not self.at(T.RBRACE):
            self.parse_attrs()
            v_lo = self.tok.span
            v_name = self.expect(T.IDENT, "variant name").text
            v_fields: List[ast.Ty] = []
            discriminant = None
            if self.eat(T.LPAREN):
                while not self.at(T.RPAREN):
                    v_fields.append(self.parse_type())
                    if not self.eat(T.COMMA):
                        break
                self.expect(T.RPAREN)
            elif self.eat(T.LBRACE):     # struct variants: keep field types only
                while not self.at(T.RBRACE):
                    self.eat(T.KW_PUB)
                    self.expect(T.IDENT)
                    self.expect(T.COLON)
                    v_fields.append(self.parse_type())
                    if not self.eat(T.COMMA):
                        break
                self.expect(T.RBRACE)
            elif self.eat(T.EQ):
                tok = self.expect(T.INT, "discriminant")
                discriminant = tok.value
            variants.append(ast.EnumVariant(span=v_lo, name=v_name,
                                            fields=v_fields,
                                            discriminant=discriminant))
            if not self.eat(T.COMMA):
                break
        self.expect(T.RBRACE)
        return ast.EnumDef(span=lo.merge(self.tokens[self.pos - 1].span),
                           name=name, is_pub=is_pub, variants=variants,
                           generics=generics, attrs=list(attrs or []))

    def parse_impl(self, is_unsafe: bool = False) -> ast.ImplBlock:
        lo = self.expect(T.KW_IMPL).span
        generics, _ = self.parse_generics()
        first_ty = self.parse_type()
        trait_path = None
        if self.eat(T.KW_FOR):
            if not isinstance(first_ty, ast.TyPath):
                raise self.error("trait in `impl Trait for Type` must be a path")
            trait_path = first_ty.path
            self_ty = self.parse_type()
        else:
            self_ty = first_ty
        self._skip_where_clause()
        self.expect(T.LBRACE)
        items: List[ast.FnDef] = []
        while not self.at(T.RBRACE):
            attrs = self.parse_attrs()
            f_pub = bool(self.eat(T.KW_PUB))
            f_unsafe = False
            if self.at(T.KW_UNSAFE) and self.peek().kind is T.KW_FN:
                self.pos += 1
                f_unsafe = True
            if self.at(T.KW_CONST) and self.peek().kind is T.KW_FN:
                self.pos += 1
            if self.at(T.KW_FN):
                items.append(self.parse_fn(is_pub=f_pub, is_unsafe=f_unsafe,
                                           attrs=attrs))
            elif self.at(T.KW_TYPE):
                self.parse_type_alias(is_pub=f_pub)
            elif self.at(T.KW_CONST):
                self.parse_const(is_pub=f_pub)
            else:
                raise self.error("expected function in impl block")
        self.expect(T.RBRACE)
        name = self._type_name(self_ty)
        return ast.ImplBlock(span=lo.merge(self.tokens[self.pos - 1].span),
                             name=name, self_ty=self_ty, trait_path=trait_path,
                             items=items, is_unsafe=is_unsafe, generics=generics)

    @staticmethod
    def _type_name(ty: ast.Ty) -> str:
        if isinstance(ty, ast.TyPath):
            return ty.path.last.name
        return "<ty>"

    def parse_trait(self, is_pub: bool = False,
                    is_unsafe: bool = False) -> ast.TraitDef:
        lo = self.expect(T.KW_TRAIT).span
        name = self.expect(T.IDENT, "trait name").text
        generics, _ = self.parse_generics()
        if self.eat(T.COLON):
            self._skip_bounds()
        self._skip_where_clause()
        self.expect(T.LBRACE)
        items: List[ast.FnDef] = []
        while not self.at(T.RBRACE):
            self.parse_attrs()
            f_unsafe = False
            if self.at(T.KW_UNSAFE) and self.peek().kind is T.KW_FN:
                self.pos += 1
                f_unsafe = True
            if self.at(T.KW_FN):
                items.append(self.parse_fn(is_unsafe=f_unsafe))
            elif self.at(T.KW_TYPE):
                self.parse_type_alias()
            else:
                raise self.error("expected function in trait")
        self.expect(T.RBRACE)
        return ast.TraitDef(span=lo.merge(self.tokens[self.pos - 1].span),
                            name=name, is_pub=is_pub, items=items,
                            is_unsafe=is_unsafe, generics=generics)

    def parse_static(self, is_pub: bool = False) -> ast.StaticDef:
        lo = self.expect(T.KW_STATIC).span
        mut = Mutability.MUT if self.eat(T.KW_MUT) else Mutability.NOT
        name = self.expect(T.IDENT, "static name").text
        self.expect(T.COLON)
        ty = self.parse_type()
        init = None
        if self.eat(T.EQ):
            init = self.parse_expr()
        self.expect(T.SEMI)
        return ast.StaticDef(span=lo.merge(self.tokens[self.pos - 1].span),
                             name=name, is_pub=is_pub, ty=ty, init=init,
                             mutability=mut)

    def parse_const(self, is_pub: bool = False) -> ast.ConstDef:
        lo = self.expect(T.KW_CONST).span
        name = self.expect(T.IDENT, "const name").text
        self.expect(T.COLON)
        ty = self.parse_type()
        init = None
        if self.eat(T.EQ):
            init = self.parse_expr()
        self.expect(T.SEMI)
        return ast.ConstDef(span=lo.merge(self.tokens[self.pos - 1].span),
                            name=name, is_pub=is_pub, ty=ty, init=init)

    def parse_use(self, is_pub: bool = False) -> ast.UseDecl:
        lo = self.expect(T.KW_USE).span
        # Consume everything to the semicolon; `use` trees don't affect our
        # single-namespace resolution model.
        segments: List[ast.PathSegment] = []
        while not self.at(T.SEMI):
            if self.at(T.IDENT) or self.tok.is_keyword():
                segments.append(ast.PathSegment(self.tok.text))
            self.pos += 1
            if self.at(T.EOF):
                raise self.error("unterminated use declaration")
        self.expect(T.SEMI)
        path = ast.Path(span=lo, segments=segments or [ast.PathSegment("")])
        name = segments[-1].name if segments else ""
        return ast.UseDecl(span=lo, name=name, is_pub=is_pub, path=path)

    def parse_mod(self, is_pub: bool = False) -> ast.ModDecl:
        lo = self.expect(T.KW_MOD).span
        name = self.expect(T.IDENT, "module name").text
        items: List[ast.Item] = []
        if self.eat(T.LBRACE):
            while not self.at(T.RBRACE):
                items.append(self.parse_item())
            self.expect(T.RBRACE)
        else:
            self.expect(T.SEMI)
        return ast.ModDecl(span=lo.merge(self.tokens[self.pos - 1].span),
                           name=name, is_pub=is_pub, items=items)

    def parse_extern_block(self, is_pub: bool = False) -> ast.ModDecl:
        lo = self.expect(T.KW_EXTERN).span
        self.eat(T.STRING)       # ABI string
        items: List[ast.Item] = []
        self.expect(T.LBRACE)
        while not self.at(T.RBRACE):
            self.parse_attrs()
            self.eat(T.KW_PUB)
            fn = self.parse_fn()
            fn.is_unsafe = True   # extern fns are unsafe to call
            items.append(fn)
        self.expect(T.RBRACE)
        return ast.ModDecl(span=lo.merge(self.tokens[self.pos - 1].span),
                           name="extern", is_pub=is_pub, items=items)

    def parse_type_alias(self, is_pub: bool = False) -> ast.ConstDef:
        lo = self.expect(T.KW_TYPE).span
        name = self.expect(T.IDENT, "type alias name").text
        self.parse_generics()
        if self.eat(T.EQ):
            self.parse_type()
        self.expect(T.SEMI)
        # Represented as a degenerate const item; aliases are resolved by name.
        return ast.ConstDef(span=lo, name=name, is_pub=is_pub, ty=None, init=None)

    # -- types ---------------------------------------------------------------

    def parse_type(self) -> ast.Ty:
        lo = self.tok.span
        if self.eat(T.AMP):
            lifetime = None
            if self.at(T.LIFETIME):
                lifetime = self.tok.text
                self.pos += 1
            mut = Mutability.MUT if self.eat(T.KW_MUT) else Mutability.NOT
            referent = self.parse_type()
            return ast.TyRef(span=lo.merge(referent.span), referent=referent,
                             mutability=mut, lifetime=lifetime)
        if self.eat(T.STAR):
            if self.eat(T.KW_CONST):
                mut = Mutability.NOT
            elif self.eat(T.KW_MUT):
                mut = Mutability.MUT
            else:
                raise self.error("expected `const` or `mut` after `*`")
            pointee = self.parse_type()
            return ast.TyRawPtr(span=lo.merge(pointee.span), pointee=pointee,
                                mutability=mut)
        if self.eat(T.LPAREN):
            if self.eat(T.RPAREN):
                return ast.TyUnit(span=lo)
            elements = [self.parse_type()]
            is_tuple = False
            while self.eat(T.COMMA):
                is_tuple = True
                if self.at(T.RPAREN):
                    break
                elements.append(self.parse_type())
            self.expect(T.RPAREN)
            if is_tuple:
                return ast.TyTuple(span=lo, elements=elements)
            return elements[0]
        if self.eat(T.LBRACKET):
            element = self.parse_type()
            if self.eat(T.SEMI):
                length = self.parse_expr()
                self.expect(T.RBRACKET)
                return ast.TyArray(span=lo, element=element, length=length)
            self.expect(T.RBRACKET)
            return ast.TySlice(span=lo, element=element)
        if self.eat(T.KW_FN):
            self.expect(T.LPAREN)
            params: List[ast.Ty] = []
            while not self.at(T.RPAREN):
                params.append(self.parse_type())
                if not self.eat(T.COMMA):
                    break
            self.expect(T.RPAREN)
            ret = self.parse_type() if self.eat(T.ARROW) else None
            return ast.TyFn(span=lo, params=params, ret=ret)
        if self.eat(T.KW_DYN):
            path = self.parse_path(in_type=True)
            self._maybe_skip_plus_bounds()
            return ast.TyImplTrait(span=lo, trait_path=path, is_dyn=True)
        if self.eat(T.KW_IMPL):
            path = self.parse_path(in_type=True)
            self._maybe_skip_plus_bounds()
            return ast.TyImplTrait(span=lo, trait_path=path, is_dyn=False)
        if self.at(T.UNDERSCORE):
            self.pos += 1
            return ast.TyInfer(span=lo)
        if self.at(T.KW_SELF_TYPE):
            self.pos += 1
            path = ast.Path(span=lo, segments=[ast.PathSegment("Self")])
            return ast.TyPath(span=lo, path=path)
        if self.at(T.IDENT) or self.at(T.KW_CRATE) or self.at(T.KW_SUPER):
            path = self.parse_path(in_type=True)
            return ast.TyPath(span=lo.merge(self.tokens[self.pos - 1].span), path=path)
        raise self.error(f"expected type, found {self.tok.text!r}")

    def _maybe_skip_plus_bounds(self) -> None:
        while self.eat(T.PLUS):
            if self.at(T.LIFETIME):
                self.pos += 1
            else:
                self.parse_path(in_type=True)

    def parse_path(self, in_type: bool = False) -> ast.Path:
        lo = self.tok.span
        segments: List[ast.PathSegment] = []
        while True:
            if self.at(T.IDENT) or self.at(T.KW_CRATE) or self.at(T.KW_SUPER) \
                    or self.at(T.KW_SELF) or self.at(T.KW_SELF_TYPE):
                name = self.tok.text
                self.pos += 1
            else:
                raise self.error("expected path segment")
            generic_args: List[ast.Ty] = []
            if in_type and self.at(T.LT):
                generic_args = self._parse_generic_args()
            elif self.at(T.COLONCOLON) and self.peek().kind is T.LT:
                self.pos += 1          # turbofish ::<...>
                generic_args = self._parse_generic_args()
            segments.append(ast.PathSegment(name, generic_args))
            if self.at(T.COLONCOLON) and self.peek().kind is not T.LT:
                self.pos += 1
                continue
            break
        return ast.Path(span=lo.merge(self.tokens[self.pos - 1].span),
                        segments=segments)

    def _parse_generic_args(self) -> List[ast.Ty]:
        self.expect(T.LT)
        args: List[ast.Ty] = []
        while True:
            if self.eat_gt():
                break
            if self.at(T.LIFETIME):
                self.pos += 1
            elif self.at(T.INT):
                self.pos += 1          # const generic argument
            else:
                args.append(self.parse_type())
            if not self.eat(T.COMMA):
                if not self.eat_gt():
                    raise self.error("expected `,` or `>` in generic arguments")
                break
        return args

    # -- patterns --------------------------------------------------------------

    def parse_pattern(self) -> ast.Pat:
        lo = self.tok.span
        if self.at(T.UNDERSCORE):
            self.pos += 1
            return ast.PatWild(span=lo)
        if self.eat(T.AMP):
            mut = Mutability.MUT if self.eat(T.KW_MUT) else Mutability.NOT
            inner = self.parse_pattern()
            return ast.PatRef(span=lo.merge(inner.span), inner=inner, mutability=mut)
        if self.at(T.INT) or self.at(T.STRING) or self.at(T.CHAR) \
                or self.at(T.KW_TRUE) or self.at(T.KW_FALSE) or self.at(T.MINUS):
            neg = bool(self.eat(T.MINUS))
            tok = self.tok
            self.pos += 1
            value = tok.value
            if tok.kind is T.KW_TRUE:
                value = True
            elif tok.kind is T.KW_FALSE:
                value = False
            if neg:
                value = -value
            if self.at(T.DOTDOTEQ) or self.at(T.DOTDOT):
                inclusive = self.at(T.DOTDOTEQ)
                self.pos += 1
                hi_neg = bool(self.eat(T.MINUS))
                hi_tok = self.tok
                self.pos += 1
                hi_value = -hi_tok.value if hi_neg else hi_tok.value
                return ast.PatRange(span=lo, lo=value, hi=hi_value,
                                    inclusive=inclusive)
            return ast.PatLiteral(span=lo, value=value)
        if self.eat(T.LPAREN):
            elements: List[ast.Pat] = []
            while not self.at(T.RPAREN):
                elements.append(self.parse_pattern())
                if not self.eat(T.COMMA):
                    break
            self.expect(T.RPAREN)
            if len(elements) == 1:
                return elements[0]
            return ast.PatTuple(span=lo, elements=elements)

        by_ref = bool(self.eat(T.KW_REF))
        mut = Mutability.MUT if self.eat(T.KW_MUT) else Mutability.NOT
        if not (self.at(T.IDENT) or self.at(T.KW_SELF_TYPE)):
            raise self.error(f"expected pattern, found {self.tok.text!r}")

        # Single lowercase identifier with no path/struct/tuple suffix → binding.
        is_plain = (self.peek().kind not in (T.COLONCOLON, T.LBRACE, T.LPAREN))
        name = self.tok.text
        if is_plain and (name[0].islower() or name[0] == "_"):
            self.pos += 1
            sub = None
            if self.eat(T.AT):
                sub = self.parse_pattern()
            return ast.PatIdent(span=lo, name=name, mutability=mut,
                                by_ref=by_ref, subpattern=sub)

        path = self.parse_path()
        if self.eat(T.LPAREN):
            elements = []
            while not self.at(T.RPAREN):
                elements.append(self.parse_pattern())
                if not self.eat(T.COMMA):
                    break
            self.expect(T.RPAREN)
            return ast.PatTupleStruct(span=lo, path=path, elements=elements)
        if not self.no_struct_depth and self.eat(T.LBRACE):
            fields: List[Tuple[str, ast.Pat]] = []
            has_rest = False
            while not self.at(T.RBRACE):
                if self.eat(T.DOTDOT):
                    has_rest = True
                    break
                f_name = self.expect(T.IDENT, "field name").text
                if self.eat(T.COLON):
                    f_pat = self.parse_pattern()
                else:
                    f_pat = ast.PatIdent(span=lo, name=f_name)
                fields.append((f_name, f_pat))
                if not self.eat(T.COMMA):
                    break
            self.expect(T.RBRACE)
            return ast.PatStruct(span=lo, path=path, fields=fields,
                                 has_rest=has_rest)
        if is_plain and name[0].isupper() and len(path.segments) == 1:
            return ast.PatPath(span=lo, path=path)
        return ast.PatPath(span=lo, path=path)

    # -- statements & blocks -----------------------------------------------------

    def parse_block(self, is_unsafe: bool = False) -> ast.Block:
        lo = self.expect(T.LBRACE).span
        statements: List[ast.Stmt] = []
        tail: Optional[ast.Expr] = None
        while not self.at(T.RBRACE):
            if self.eat(T.SEMI):
                continue
            stmt_or_expr = self.parse_stmt()
            if isinstance(stmt_or_expr, ast.ExprStmt) and not stmt_or_expr.has_semi:
                if self.at(T.RBRACE):
                    tail = stmt_or_expr.expr
                    break
                # Block-like expression used as a statement.
                statements.append(stmt_or_expr)
            else:
                statements.append(stmt_or_expr)
        hi = self.expect(T.RBRACE).span
        return ast.Block(span=lo.merge(hi), statements=statements, tail=tail,
                         is_unsafe=is_unsafe)

    def parse_stmt(self) -> ast.Stmt:
        lo = self.tok.span
        if self.at(T.KW_LET):
            return self.parse_let()
        if self.tok.kind in (T.KW_FN, T.KW_STRUCT, T.KW_ENUM, T.KW_IMPL,
                             T.KW_TRAIT, T.KW_USE, T.KW_MOD, T.KW_STATIC,
                             T.KW_CONST) and not (
                self.at(T.KW_CONST) and self.peek().kind is T.LBRACE):
            item = self.parse_item()
            return ast.ItemStmt(span=item.span, item=item)
        if self.at(T.KW_UNSAFE) and self.peek().kind is T.KW_FN:
            item = self.parse_item()
            return ast.ItemStmt(span=item.span, item=item)
        expr = self.parse_expr()
        has_semi = bool(self.eat(T.SEMI))
        return ast.ExprStmt(span=lo.merge(expr.span), expr=expr, has_semi=has_semi)

    def parse_let(self) -> ast.LetStmt:
        lo = self.expect(T.KW_LET).span
        pattern = self.parse_pattern()
        ty = None
        if self.eat(T.COLON):
            ty = self.parse_type()
        init = None
        else_block = None
        if self.eat(T.EQ):
            init = self.parse_expr()
            if self.eat(T.KW_ELSE):
                else_block = self.parse_block()
        self.expect(T.SEMI)
        return ast.LetStmt(span=lo.merge(self.tokens[self.pos - 1].span),
                           pattern=pattern, ty=ty, init=init,
                           else_block=else_block)

    # -- expressions ----------------------------------------------------------

    def parse_expr(self, min_power: int = 0, no_struct: bool = False) -> ast.Expr:
        if no_struct:
            self.no_struct_depth += 1
        try:
            return self._parse_expr_inner(min_power)
        finally:
            if no_struct:
                self.no_struct_depth -= 1

    def _parse_expr_inner(self, min_power: int) -> ast.Expr:
        lhs = self._parse_prefix()
        while True:
            kind = self.tok.kind
            # Assignment (right-associative, lowest precedence).
            if kind is T.EQ and min_power <= 1:
                self.pos += 1
                value = self._parse_expr_inner(1)
                lhs = ast.Assign(span=lhs.span.merge(value.span), target=lhs,
                                 value=value)
                continue
            if kind in _COMPOUND_ASSIGN and min_power <= 1:
                op = _COMPOUND_ASSIGN[kind]
                self.pos += 1
                value = self._parse_expr_inner(1)
                lhs = ast.CompoundAssign(span=lhs.span.merge(value.span), op=op,
                                         target=lhs, value=value)
                continue
            # Ranges.
            if kind in (T.DOTDOT, T.DOTDOTEQ) and min_power <= 2:
                inclusive = kind is T.DOTDOTEQ
                self.pos += 1
                hi = None
                if self.tok.kind in _EXPR_START:
                    hi = self._parse_expr_inner(3)
                lhs = ast.Range(span=lhs.span, lo=lhs, hi=hi, inclusive=inclusive)
                continue
            # `as` casts bind tighter than binary operators.
            if kind is T.KW_AS:
                self.pos += 1
                ty = self.parse_type()
                lhs = ast.Cast(span=lhs.span.merge(ty.span), operand=lhs,
                               target_ty=ty)
                continue
            if kind in _BINARY_POWER:
                left_power, right_power = _BINARY_POWER[kind]
                if left_power < min_power:
                    break
                op = _BINOP_FOR_TOKEN[kind]
                self.pos += 1
                rhs = self._parse_expr_inner(right_power)
                lhs = ast.Binary(span=lhs.span.merge(rhs.span), op=op,
                                 left=lhs, right=rhs)
                continue
            break
        return lhs

    def _parse_prefix(self) -> ast.Expr:
        lo = self.tok.span
        kind = self.tok.kind
        if kind is T.MINUS:
            self.pos += 1
            operand = self._parse_prefix()
            return ast.Unary(span=lo.merge(operand.span), op=UnOp.NEG,
                             operand=operand)
        if kind is T.BANG:
            self.pos += 1
            operand = self._parse_prefix()
            return ast.Unary(span=lo.merge(operand.span), op=UnOp.NOT,
                             operand=operand)
        if kind is T.STAR:
            self.pos += 1
            operand = self._parse_prefix()
            return ast.Unary(span=lo.merge(operand.span), op=UnOp.DEREF,
                             operand=operand)
        if kind is T.AMP:
            self.pos += 1
            mut = Mutability.MUT if self.eat(T.KW_MUT) else Mutability.NOT
            operand = self._parse_prefix()
            return ast.Reference(span=lo.merge(operand.span), operand=operand,
                                 mutability=mut)
        if kind is T.DOTDOT:       # prefix range ..hi
            self.pos += 1
            hi = None
            if self.tok.kind in _EXPR_START:
                hi = self._parse_expr_inner(3)
            return ast.Range(span=lo, lo=None, hi=hi, inclusive=False)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self.at(T.DOT):
                nxt = self.peek()
                if nxt.kind is T.INT:
                    self.pos += 2
                    expr = ast.TupleIndex(span=expr.span.merge(nxt.span),
                                          base=expr, index=nxt.value)
                    continue
                if nxt.kind is T.IDENT and nxt.text == "await":
                    self.pos += 2
                    expr = ast.AwaitStub(span=expr.span, operand=expr)
                    continue
                if nxt.kind is T.IDENT or nxt.is_keyword():
                    self.pos += 2
                    method = nxt.text
                    generic_args: List[ast.Ty] = []
                    if self.at(T.COLONCOLON) and self.peek().kind is T.LT:
                        self.pos += 1
                        generic_args = self._parse_generic_args()
                    if self.eat(T.LPAREN):
                        args = self._parse_call_args()
                        expr = ast.MethodCall(
                            span=expr.span.merge(self.tokens[self.pos - 1].span),
                            receiver=expr, method=method, args=args,
                            generic_args=generic_args)
                    else:
                        expr = ast.FieldAccess(span=expr.span.merge(nxt.span),
                                               base=expr, field_name=method)
                    continue
                raise self.error("expected field or method name after `.`")
            if self.eat(T.LPAREN):
                args = self._parse_call_args()
                expr = ast.Call(span=expr.span.merge(self.tokens[self.pos - 1].span),
                                callee=expr, args=args)
                continue
            if self.eat(T.LBRACKET):
                index = self.parse_expr()
                hi = self.expect(T.RBRACKET).span
                expr = ast.Index(span=expr.span.merge(hi), base=expr, index=index)
                continue
            if self.eat(T.QUESTION):
                expr = ast.Try(span=expr.span, operand=expr)
                continue
            break
        return expr

    def _parse_call_args(self) -> List[ast.Expr]:
        args: List[ast.Expr] = []
        saved = self.no_struct_depth
        self.no_struct_depth = 0    # parens re-allow struct literals
        try:
            while not self.at(T.RPAREN):
                args.append(self.parse_expr())
                if not self.eat(T.COMMA):
                    break
            self.expect(T.RPAREN)
        finally:
            self.no_struct_depth = saved
        return args

    def _parse_primary(self) -> ast.Expr:
        lo = self.tok.span
        kind = self.tok.kind

        if kind is T.INT or kind is T.FLOAT:
            tok = self.tok
            self.pos += 1
            suffix = "".join(ch for ch in tok.text if ch.isalpha()) or None
            if suffix in ("x", "o", "b"):   # base marker, not a suffix
                suffix = None
            return ast.Literal(span=lo, value=tok.value, suffix=suffix)
        if kind is T.STRING or kind is T.CHAR:
            tok = self.tok
            self.pos += 1
            return ast.Literal(span=lo, value=tok.value)
        if kind is T.KW_TRUE:
            self.pos += 1
            return ast.Literal(span=lo, value=True)
        if kind is T.KW_FALSE:
            self.pos += 1
            return ast.Literal(span=lo, value=False)

        if kind is T.KW_IF:
            return self._parse_if()
        if kind is T.KW_MATCH:
            return self._parse_match()
        if kind is T.KW_WHILE:
            return self._parse_while()
        if kind is T.KW_LOOP:
            self.pos += 1
            body = self.parse_block()
            return ast.Loop(span=lo.merge(body.span), body=body)
        if kind is T.KW_FOR:
            return self._parse_for()
        if kind is T.KW_RETURN:
            self.pos += 1
            value = None
            if self.tok.kind in _EXPR_START:
                value = self.parse_expr()
            return ast.Return(span=lo, value=value)
        if kind is T.KW_BREAK:
            self.pos += 1
            value = None
            if self.tok.kind in _EXPR_START and not self.at(T.LBRACE):
                value = self.parse_expr()
            return ast.Break(span=lo, value=value)
        if kind is T.KW_CONTINUE:
            self.pos += 1
            return ast.Continue(span=lo)
        if kind is T.KW_UNSAFE:
            self.pos += 1
            block = self.parse_block(is_unsafe=True)
            return block
        if kind is T.LBRACE:
            return self.parse_block()
        if kind is T.KW_MOVE or kind is T.PIPE or kind is T.PIPEPIPE:
            return self._parse_closure()

        if kind is T.LPAREN:
            self.pos += 1
            saved = self.no_struct_depth
            self.no_struct_depth = 0
            try:
                if self.eat(T.RPAREN):
                    return ast.TupleLiteral(span=lo, elements=[])
                first = self.parse_expr()
                if self.at(T.COMMA):
                    elements = [first]
                    while self.eat(T.COMMA):
                        if self.at(T.RPAREN):
                            break
                        elements.append(self.parse_expr())
                    self.expect(T.RPAREN)
                    return ast.TupleLiteral(span=lo, elements=elements)
                self.expect(T.RPAREN)
                return first
            finally:
                self.no_struct_depth = saved

        if kind is T.LBRACKET:
            self.pos += 1
            saved = self.no_struct_depth
            self.no_struct_depth = 0
            try:
                if self.eat(T.RBRACKET):
                    return ast.ArrayLiteral(span=lo, elements=[])
                first = self.parse_expr()
                if self.eat(T.SEMI):
                    count = self.parse_expr()
                    self.expect(T.RBRACKET)
                    return ast.ArrayLiteral(span=lo, elements=[],
                                            repeat=(first, count))
                elements = [first]
                while self.eat(T.COMMA):
                    if self.at(T.RBRACKET):
                        break
                    elements.append(self.parse_expr())
                self.expect(T.RBRACKET)
                return ast.ArrayLiteral(span=lo, elements=elements)
            finally:
                self.no_struct_depth = saved

        if kind in (T.IDENT, T.KW_SELF, T.KW_SELF_TYPE, T.KW_CRATE, T.KW_SUPER):
            # Macro call?
            if kind is T.IDENT and self.peek().kind is T.BANG:
                return self._parse_macro_call()
            path = self.parse_path()
            if self.at(T.LBRACE) and not self.no_struct_depth \
                    and self._path_can_be_struct(path):
                return self._parse_struct_literal(path)
            return ast.PathExpr(span=lo.merge(self.tokens[self.pos - 1].span),
                                path=path)
        raise self.error(f"expected expression, found "
                         f"{self.tok.text or self.tok.kind.value!r}")

    @staticmethod
    def _path_can_be_struct(path: ast.Path) -> bool:
        last = path.last.name
        return bool(last) and (last[0].isupper() or last == "Self")

    def _parse_struct_literal(self, path: ast.Path) -> ast.Expr:
        lo = self.expect(T.LBRACE).span
        fields: List[Tuple[str, ast.Expr]] = []
        base = None
        saved = self.no_struct_depth
        self.no_struct_depth = 0
        try:
            while not self.at(T.RBRACE):
                if self.eat(T.DOTDOT):
                    base = self.parse_expr()
                    break
                name = self.expect(T.IDENT, "field name").text
                if self.eat(T.COLON):
                    value = self.parse_expr()
                else:
                    seg = ast.Path(span=self.tokens[self.pos - 1].span,
                                   segments=[ast.PathSegment(name)])
                    value = ast.PathExpr(span=seg.span, path=seg)
                fields.append((name, value))
                if not self.eat(T.COMMA):
                    break
            hi = self.expect(T.RBRACE).span
        finally:
            self.no_struct_depth = saved
        return ast.StructLiteral(span=path.span.merge(hi), path=path,
                                 fields=fields, base=base)

    def _parse_macro_call(self) -> ast.Expr:
        lo = self.tok.span
        name = self.expect(T.IDENT).text
        self.expect(T.BANG)
        if self.at(T.LPAREN):
            open_kind, close_kind = T.LPAREN, T.RPAREN
        elif self.at(T.LBRACKET):
            open_kind, close_kind = T.LBRACKET, T.RBRACKET
        elif self.at(T.LBRACE):
            open_kind, close_kind = T.LBRACE, T.RBRACE
        else:
            raise self.error("expected macro delimiter")
        self.expect(open_kind)
        args: List[ast.Expr] = []
        format_string: Optional[str] = None
        repeat = None
        saved = self.no_struct_depth
        self.no_struct_depth = 0
        try:
            first = True
            while not self.at(close_kind):
                expr = self.parse_expr()
                if first and isinstance(expr, ast.Literal) \
                        and isinstance(expr.value, str):
                    format_string = expr.value
                first = False
                if self.eat(T.SEMI):   # vec![elem; count]
                    count = self.parse_expr()
                    repeat = (expr, count)
                    break
                args.append(expr)
                if not self.eat(T.COMMA):
                    break
            hi = self.expect(close_kind).span
        finally:
            self.no_struct_depth = saved
        return ast.MacroCall(span=lo.merge(hi), name=name, args=args,
                             format_string=format_string, repeat=repeat)

    def _parse_closure(self) -> ast.Expr:
        lo = self.tok.span
        is_move = bool(self.eat(T.KW_MOVE))
        params: List[Tuple[str, Optional[ast.Ty]]] = []
        if not self.eat(T.PIPEPIPE):
            self.expect(T.PIPE)
            while not self.at(T.PIPE):
                self.eat(T.KW_MUT)
                if self.at(T.UNDERSCORE):
                    p_name = "_"
                    self.pos += 1
                else:
                    p_name = self.expect(T.IDENT, "closure parameter").text
                p_ty = None
                if self.eat(T.COLON):
                    p_ty = self.parse_type()
                params.append((p_name, p_ty))
                if not self.eat(T.COMMA):
                    break
            self.expect(T.PIPE)
        if self.eat(T.ARROW):
            self.parse_type()
            body: ast.Expr = self.parse_block()
        else:
            body = self.parse_expr()
        return ast.Closure(span=lo.merge(body.span), params=params, body=body,
                           is_move=is_move)

    def _parse_if(self) -> ast.Expr:
        lo = self.expect(T.KW_IF).span
        if self.eat(T.KW_LET):
            pattern = self.parse_pattern()
            self.expect(T.EQ)
            scrutinee = self.parse_expr(no_struct=True)
            then_block = self.parse_block()
            else_branch = self._parse_else()
            return ast.IfLet(span=lo.merge(then_block.span), pattern=pattern,
                             scrutinee=scrutinee, then_block=then_block,
                             else_branch=else_branch)
        condition = self.parse_expr(no_struct=True)
        then_block = self.parse_block()
        else_branch = self._parse_else()
        return ast.If(span=lo.merge(then_block.span), condition=condition,
                      then_block=then_block, else_branch=else_branch)

    def _parse_else(self) -> Optional[ast.Expr]:
        if not self.eat(T.KW_ELSE):
            return None
        if self.at(T.KW_IF):
            return self._parse_if()
        return self.parse_block()

    def _parse_match(self) -> ast.Expr:
        lo = self.expect(T.KW_MATCH).span
        scrutinee = self.parse_expr(no_struct=True)
        self.expect(T.LBRACE)
        arms: List[ast.MatchArm] = []
        while not self.at(T.RBRACE):
            a_lo = self.tok.span
            pattern = self.parse_pattern()
            while self.eat(T.PIPE):        # or-patterns: keep first alternative
                self.parse_pattern()
            guard = None
            if self.eat(T.KW_IF):
                guard = self.parse_expr()
            self.expect(T.FATARROW)
            body = self.parse_expr()
            arms.append(ast.MatchArm(span=a_lo.merge(body.span), pattern=pattern,
                                     guard=guard, body=body))
            self.eat(T.COMMA)
        hi = self.expect(T.RBRACE).span
        return ast.Match(span=lo.merge(hi), scrutinee=scrutinee, arms=arms)

    def _parse_while(self) -> ast.Expr:
        lo = self.expect(T.KW_WHILE).span
        if self.eat(T.KW_LET):
            pattern = self.parse_pattern()
            self.expect(T.EQ)
            scrutinee = self.parse_expr(no_struct=True)
            body = self.parse_block()
            return ast.WhileLet(span=lo.merge(body.span), pattern=pattern,
                                scrutinee=scrutinee, body=body)
        condition = self.parse_expr(no_struct=True)
        body = self.parse_block()
        return ast.While(span=lo.merge(body.span), condition=condition, body=body)

    def _parse_for(self) -> ast.Expr:
        lo = self.expect(T.KW_FOR).span
        pattern = self.parse_pattern()
        self.expect(T.KW_IN)
        iterable = self.parse_expr(no_struct=True)
        body = self.parse_block()
        return ast.For(span=lo.merge(body.span), pattern=pattern,
                       iterable=iterable, body=body)


def parse_source(text: str, name: str = "<input>") -> ast.Crate:
    """Parse MiniRust source ``text`` into a :class:`~repro.lang.ast_nodes.Crate`."""
    return Parser(SourceFile(name, text)).parse_crate(name=name)
