"""Source files and spans.

Every token, AST node, HIR node, and MIR statement carries a :class:`Span`
so that detector findings point back at concrete source locations, exactly
the way rustc diagnostics and the paper's bug reports do.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import ClassVar


@dataclass(frozen=True)
class Span:
    """A half-open byte range ``[lo, hi)`` in one source file."""

    lo: int
    hi: int
    file_name: str = "<input>"

    DUMMY: "ClassVar[Span]" = None  # assigned below

    def merge(self, other: "Span") -> "Span":
        """Smallest span covering both ``self`` and ``other``."""
        if other is None or other is Span.DUMMY:
            return self
        if self is Span.DUMMY:
            return other
        return Span(min(self.lo, other.lo), max(self.hi, other.hi), self.file_name)

    @property
    def is_dummy(self) -> bool:
        return self.lo == 0 and self.hi == 0 and self.file_name == "<dummy>"

    def __repr__(self) -> str:
        return f"Span({self.lo}..{self.hi})"


# Sentinel used for compiler-generated constructs with no source location.
Span.DUMMY = Span(0, 0, "<dummy>")


@dataclass
class SourceFile:
    """A named source file with line-offset indexing for diagnostics."""

    name: str
    text: str
    _line_starts: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self._line_starts = [0]
        for i, ch in enumerate(self.text):
            if ch == "\n":
                self._line_starts.append(i + 1)

    def line_col(self, offset: int) -> tuple:
        """1-based ``(line, column)`` for a byte offset."""
        offset = max(0, min(offset, len(self.text)))
        line = bisect.bisect_right(self._line_starts, offset) - 1
        col = offset - self._line_starts[line]
        return line + 1, col + 1

    def line_text(self, line: int) -> str:
        """The text of a 1-based line number, without the newline."""
        if line < 1 or line > len(self._line_starts):
            return ""
        start = self._line_starts[line - 1]
        end = self.text.find("\n", start)
        if end == -1:
            end = len(self.text)
        return self.text[start:end]

    def snippet(self, span: Span) -> str:
        """The raw text covered by ``span``."""
        return self.text[span.lo : span.hi]

    def describe(self, span: Span) -> str:
        """Human-readable ``file:line:col`` for the start of ``span``."""
        line, col = self.line_col(span.lo)
        return f"{self.name}:{line}:{col}"
