"""Hand-written lexer for MiniRust.

Supports the full token vocabulary the parser needs: identifiers and
keywords, lifetimes (``'a``), integer literals with type suffixes and
``_`` separators (decimal / hex / octal / binary), float literals, string
and char literals with escapes, line comments, and nested block comments.
"""

from __future__ import annotations

from typing import List

from repro.lang.diagnostics import CompileError
from repro.lang.source import SourceFile, Span
from repro.lang.tokens import KEYWORDS, Token, TokenKind

_INT_SUFFIXES = (
    "i8", "i16", "i32", "i64", "i128", "isize",
    "u8", "u16", "u32", "u64", "u128", "usize",
)
_FLOAT_SUFFIXES = ("f32", "f64")

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    ("<<=", TokenKind.SHLEQ),
    (">>=", TokenKind.SHREQ),
    ("..=", TokenKind.DOTDOTEQ),
    ("::", TokenKind.COLONCOLON),
    ("->", TokenKind.ARROW),
    ("=>", TokenKind.FATARROW),
    ("==", TokenKind.EQEQ),
    ("!=", TokenKind.NE),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("&&", TokenKind.AMPAMP),
    ("||", TokenKind.PIPEPIPE),
    ("<<", TokenKind.SHL),
    (">>", TokenKind.SHR),
    ("+=", TokenKind.PLUSEQ),
    ("-=", TokenKind.MINUSEQ),
    ("*=", TokenKind.STAREQ),
    ("/=", TokenKind.SLASHEQ),
    ("%=", TokenKind.PERCENTEQ),
    ("&=", TokenKind.AMPEQ),
    ("|=", TokenKind.PIPEEQ),
    ("^=", TokenKind.CARETEQ),
    ("..", TokenKind.DOTDOT),
    ("(", TokenKind.LPAREN),
    (")", TokenKind.RPAREN),
    ("{", TokenKind.LBRACE),
    ("}", TokenKind.RBRACE),
    ("[", TokenKind.LBRACKET),
    ("]", TokenKind.RBRACKET),
    (",", TokenKind.COMMA),
    (";", TokenKind.SEMI),
    (":", TokenKind.COLON),
    (".", TokenKind.DOT),
    ("=", TokenKind.EQ),
    ("<", TokenKind.LT),
    (">", TokenKind.GT),
    ("+", TokenKind.PLUS),
    ("-", TokenKind.MINUS),
    ("*", TokenKind.STAR),
    ("/", TokenKind.SLASH),
    ("%", TokenKind.PERCENT),
    ("!", TokenKind.BANG),
    ("&", TokenKind.AMP),
    ("|", TokenKind.PIPE),
    ("^", TokenKind.CARET),
    ("?", TokenKind.QUESTION),
    ("#", TokenKind.POUND),
    ("@", TokenKind.AT),
]

_ESCAPES = {
    "n": "\n", "r": "\r", "t": "\t", "\\": "\\",
    "'": "'", '"': '"', "0": "\0",
}


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_continue(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


class Lexer:
    """Converts a :class:`SourceFile` into a list of :class:`Token`."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.text = source.text
        self.pos = 0

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.text):
                break
            tokens.append(self._next_token())
        tokens.append(Token(TokenKind.EOF, "", self._span(self.pos)))
        return tokens

    # -- internals ---------------------------------------------------------

    def _span(self, lo: int, hi: int = None) -> Span:
        return Span(lo, self.pos if hi is None else hi, self.source.name)

    def _error(self, message: str, lo: int) -> CompileError:
        return CompileError(message, self._span(lo), self.source)

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.text[i] if i < len(self.text) else ""

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch in " \t\r\n":
                self.pos += 1
            elif ch == "/" and self._peek(1) == "/":
                end = self.text.find("\n", self.pos)
                self.pos = len(self.text) if end == -1 else end + 1
            elif ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            else:
                return

    def _skip_block_comment(self) -> None:
        lo = self.pos
        self.pos += 2
        depth = 1
        while depth > 0:
            if self.pos >= len(self.text):
                raise self._error("unterminated block comment", lo)
            two = self.text[self.pos : self.pos + 2]
            if two == "/*":
                depth += 1
                self.pos += 2
            elif two == "*/":
                depth -= 1
                self.pos += 2
            else:
                self.pos += 1

    def _next_token(self) -> Token:
        ch = self.text[self.pos]
        if _is_ident_start(ch):
            return self._lex_ident()
        if ch.isdigit():
            return self._lex_number()
        if ch == '"':
            return self._lex_string()
        if ch == "'":
            return self._lex_lifetime_or_char()
        for text, kind in _OPERATORS:
            if self.text.startswith(text, self.pos):
                lo = self.pos
                self.pos += len(text)
                return Token(kind, text, self._span(lo))
        raise self._error(f"unexpected character {ch!r}", self.pos)

    def _lex_ident(self) -> Token:
        lo = self.pos
        while self.pos < len(self.text) and _is_ident_continue(self.text[self.pos]):
            self.pos += 1
        text = self.text[lo : self.pos]
        if text == "_":
            return Token(TokenKind.UNDERSCORE, text, self._span(lo))
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, self._span(lo))

    def _lex_number(self) -> Token:
        lo = self.pos
        base = 10
        if self._peek() == "0" and self._peek(1) != "" \
                and self._peek(1) in "xXoObB":
            marker = self._peek(1).lower()
            base = {"x": 16, "o": 8, "b": 2}[marker]
            self.pos += 2
        digits_lo = self.pos
        allowed = "0123456789abcdefABCDEF_" if base == 16 else "0123456789_"
        while self.pos < len(self.text) and self.text[self.pos] in allowed:
            self.pos += 1
        digits = self.text[digits_lo : self.pos].replace("_", "")
        is_float = False
        # A '.' followed by a digit makes this a float (but `1..2` is a range,
        # and `x.method()` must not swallow the dot).
        if (base == 10 and self._peek() == "." and self._peek(1).isdigit()):
            is_float = True
            self.pos += 1
            while self.pos < len(self.text) and (self.text[self.pos].isdigit() or self.text[self.pos] == "_"):
                self.pos += 1
        suffix = ""
        for candidate in _INT_SUFFIXES + _FLOAT_SUFFIXES:
            if self.text.startswith(candidate, self.pos):
                nxt = self.pos + len(candidate)
                if nxt >= len(self.text) or not _is_ident_continue(self.text[nxt]):
                    suffix = candidate
                    self.pos += len(candidate)
                    break
        text = self.text[lo : self.pos]
        if is_float or suffix in _FLOAT_SUFFIXES:
            value = float(self.text[lo : self.pos - len(suffix)] if suffix else text)
            return Token(TokenKind.FLOAT, text, self._span(lo), value)
        if not digits:
            raise self._error("integer literal with no digits", lo)
        try:
            value = int(digits, base)
        except ValueError:
            raise self._error(f"invalid integer literal {text!r}", lo) from None
        return Token(TokenKind.INT, text, self._span(lo), value)

    def _lex_string(self) -> Token:
        lo = self.pos
        self.pos += 1
        chars: List[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self._error("unterminated string literal", lo)
            ch = self.text[self.pos]
            if ch == '"':
                self.pos += 1
                break
            if ch == "\\":
                self.pos += 1
                esc = self._peek()
                if esc not in _ESCAPES:
                    raise self._error(f"unknown escape \\{esc}", self.pos)
                chars.append(_ESCAPES[esc])
                self.pos += 1
            else:
                chars.append(ch)
                self.pos += 1
        return Token(TokenKind.STRING, self.text[lo : self.pos], self._span(lo), "".join(chars))

    def _lex_lifetime_or_char(self) -> Token:
        lo = self.pos
        # 'a  → lifetime; 'a' → char literal; '\n' → char literal.
        if _is_ident_start(self._peek(1)) and self._peek(2) != "'":
            self.pos += 1
            while self.pos < len(self.text) and _is_ident_continue(self.text[self.pos]):
                self.pos += 1
            return Token(TokenKind.LIFETIME, self.text[lo : self.pos], self._span(lo))
        self.pos += 1
        if self._peek() == "\\":
            self.pos += 1
            esc = self._peek()
            if esc not in _ESCAPES:
                raise self._error(f"unknown escape \\{esc}", self.pos)
            value = _ESCAPES[esc]
            self.pos += 1
        else:
            value = self._peek()
            self.pos += 1
        if self._peek() != "'":
            raise self._error("unterminated char literal", lo)
        self.pos += 1
        return Token(TokenKind.CHAR, self.text[lo : self.pos], self._span(lo), value)


def tokenize(text: str, name: str = "<input>") -> List[Token]:
    """Tokenise ``text`` and return the token list (ending with EOF)."""
    return Lexer(SourceFile(name, text)).tokenize()
