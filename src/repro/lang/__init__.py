"""MiniRust language front-end: source handling, lexer, parser, AST, types.

MiniRust is the Rust subset this reproduction analyses.  It covers the
features the paper's buggy patterns require: functions, structs, impls,
traits (``unsafe impl Sync``), ownership moves, borrows (``&``/``&mut``),
raw pointers and casts, ``unsafe`` blocks and functions, the standard
containers (``Box``/``Rc``/``Arc``/``Vec``/``Option``/``Result``), the
synchronisation vocabulary (``Mutex``/``RwLock``/``Condvar``/``Once``/
channels/atomics), closures and ``thread::spawn``, ``match``/``if let``,
and macro-call expressions (``vec!``, ``println!``, ...).
"""

from repro.lang.source import SourceFile, Span
from repro.lang.diagnostics import Diagnostic, DiagnosticLevel, CompileError
from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import Parser, parse_source

__all__ = [
    "SourceFile",
    "Span",
    "Diagnostic",
    "DiagnosticLevel",
    "CompileError",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_source",
]
