"""Semantic types for MiniRust.

The type system is deliberately *gradual*: anything the checker cannot
resolve becomes :data:`UNKNOWN` and flows through silently.  The paper's
detectors are approximate MIR analyses; they need reliable answers to
questions like "is this local a ``MutexGuard``?", "is this a raw pointer,
and to what?", "does this type own heap memory (needs drop)?" — not full
Hindley-Milner inference.

Types are interned-by-construction immutable dataclasses; equality is
structural.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class TyKind(enum.Enum):
    INT = "int"
    FLOAT = "float"
    BOOL = "bool"
    CHAR = "char"
    STR = "str"
    STRING = "String"
    UNIT = "unit"
    NEVER = "never"
    REF = "ref"
    RAW_PTR = "raw_ptr"
    ADT = "adt"              # user-defined struct/enum
    BUILTIN = "builtin"      # std container / sync primitive
    TUPLE = "tuple"
    SLICE = "slice"
    ARRAY = "array"
    FN = "fn"
    CLOSURE = "closure"
    TYPE_PARAM = "param"
    UNKNOWN = "unknown"


# Built-in generic container / sync names recognised by the checker.  These
# are the types the paper's bug patterns revolve around (§2.3, §6).
BUILTIN_GENERICS = {
    "Box", "Rc", "Arc", "Vec", "VecDeque", "Option", "Result", "Cell",
    "RefCell", "UnsafeCell", "Mutex", "RwLock", "MutexGuard",
    "RwLockReadGuard", "RwLockWriteGuard", "Ref", "RefMut", "Sender",
    "Receiver", "SyncSender", "JoinHandle", "Weak", "HashMap", "BTreeMap",
    "HashSet", "ManuallyDrop", "MaybeUninit", "NonNull",
}

# Non-generic built-ins.
BUILTIN_UNITS = {
    "Condvar", "Once", "Barrier", "AtomicBool", "AtomicUsize", "AtomicIsize",
    "AtomicI32", "AtomicU32", "AtomicI64", "AtomicU64", "AtomicPtr",
    "Thread", "Duration", "Instant", "Ordering", "String", "PoisonError",
}

INT_TYPES = {
    "i8", "i16", "i32", "i64", "i128", "isize",
    "u8", "u16", "u32", "u64", "u128", "usize",
}

# Built-ins that own heap storage and therefore run drop glue.
_OWNING_BUILTINS = {
    "Box", "Rc", "Arc", "Vec", "VecDeque", "String", "Mutex", "RwLock",
    "RefCell", "Cell", "UnsafeCell", "Sender", "Receiver", "SyncSender",
    "HashMap", "BTreeMap", "HashSet", "Option", "Result", "JoinHandle",
    "Weak",
}

# Lock-guard types: their death releases a lock (the paper's §6.1 focus).
GUARD_BUILTINS = {"MutexGuard", "RwLockReadGuard", "RwLockWriteGuard",
                  "Ref", "RefMut"}

# Builtins providing interior mutability (paper §2.3).
INTERIOR_MUTABLE_BUILTINS = {"Cell", "RefCell", "UnsafeCell", "Mutex",
                             "RwLock", "AtomicBool", "AtomicUsize",
                             "AtomicIsize", "AtomicI32", "AtomicU32",
                             "AtomicI64", "AtomicU64", "AtomicPtr"}


@dataclass(frozen=True)
class Ty:
    """A semantic type.  ``args`` carries generic parameters for ADTs and
    builtins, the referent for refs/pointers, element types, etc."""

    kind: TyKind
    name: str = ""
    args: Tuple["Ty", ...] = ()
    mutable: bool = False          # for REF / RAW_PTR

    # -- constructors -------------------------------------------------------

    @staticmethod
    def int(name: str = "i32") -> "Ty":
        return Ty(TyKind.INT, name)

    @staticmethod
    def float(name: str = "f64") -> "Ty":
        return Ty(TyKind.FLOAT, name)

    @staticmethod
    def bool_() -> "Ty":
        return Ty(TyKind.BOOL, "bool")

    @staticmethod
    def unit() -> "Ty":
        return Ty(TyKind.UNIT, "()")

    @staticmethod
    def never() -> "Ty":
        return Ty(TyKind.NEVER, "!")

    @staticmethod
    def str_() -> "Ty":
        return Ty(TyKind.STR, "str")

    @staticmethod
    def string() -> "Ty":
        return Ty(TyKind.STRING, "String")

    @staticmethod
    def char_() -> "Ty":
        return Ty(TyKind.CHAR, "char")

    @staticmethod
    def ref(referent: "Ty", mutable: bool = False) -> "Ty":
        return Ty(TyKind.REF, "&mut" if mutable else "&", (referent,), mutable)

    @staticmethod
    def raw_ptr(pointee: "Ty", mutable: bool = False) -> "Ty":
        return Ty(TyKind.RAW_PTR, "*mut" if mutable else "*const",
                  (pointee,), mutable)

    @staticmethod
    def adt(name: str, args: Tuple["Ty", ...] = ()) -> "Ty":
        return Ty(TyKind.ADT, name, tuple(args))

    @staticmethod
    def builtin(name: str, args: Tuple["Ty", ...] = ()) -> "Ty":
        return Ty(TyKind.BUILTIN, name, tuple(args))

    @staticmethod
    def tuple_(elements: Tuple["Ty", ...]) -> "Ty":
        return Ty(TyKind.TUPLE, "tuple", tuple(elements))

    @staticmethod
    def slice(element: "Ty") -> "Ty":
        return Ty(TyKind.SLICE, "slice", (element,))

    @staticmethod
    def array(element: "Ty") -> "Ty":
        return Ty(TyKind.ARRAY, "array", (element,))

    @staticmethod
    def fn(params: Tuple["Ty", ...], ret: "Ty") -> "Ty":
        return Ty(TyKind.FN, "fn", tuple(params) + (ret,))

    @staticmethod
    def closure(name: str = "<closure>") -> "Ty":
        return Ty(TyKind.CLOSURE, name)

    @staticmethod
    def param(name: str) -> "Ty":
        return Ty(TyKind.TYPE_PARAM, name)

    # -- queries --------------------------------------------------------------

    @property
    def is_unknown(self) -> bool:
        return self.kind is TyKind.UNKNOWN

    @property
    def is_ref(self) -> bool:
        return self.kind is TyKind.REF

    @property
    def is_raw_ptr(self) -> bool:
        return self.kind is TyKind.RAW_PTR

    @property
    def is_pointer_like(self) -> bool:
        return self.kind in (TyKind.REF, TyKind.RAW_PTR)

    @property
    def referent(self) -> "Ty":
        """Target type of a ref / raw pointer (UNKNOWN otherwise)."""
        if self.is_pointer_like and self.args:
            return self.args[0]
        return UNKNOWN

    @property
    def is_scalar(self) -> bool:
        return self.kind in (TyKind.INT, TyKind.FLOAT, TyKind.BOOL,
                             TyKind.CHAR)

    @property
    def is_copy(self) -> bool:
        """Approximates Rust's ``Copy``: scalars, shared refs, raw pointers,
        tuples of Copy."""
        if self.is_scalar or self.kind is TyKind.UNIT:
            return True
        if self.kind is TyKind.RAW_PTR:
            return True
        if self.kind is TyKind.REF:
            return not self.mutable
        if self.kind is TyKind.TUPLE:
            return all(e.is_copy for e in self.args)
        return False

    @property
    def needs_drop(self) -> bool:
        """Does dropping a value of this type run meaningful drop glue?"""
        if self.kind is TyKind.STRING:
            return True
        if self.kind is TyKind.BUILTIN:
            return self.name in _OWNING_BUILTINS or self.is_guard
        if self.kind is TyKind.ADT:
            return True        # conservative: user ADTs may own memory
        if self.kind in (TyKind.TUPLE, TyKind.ARRAY, TyKind.SLICE):
            return any(a.needs_drop for a in self.args)
        return False

    @property
    def is_guard(self) -> bool:
        """Is this a lock guard whose drop releases a lock / borrow flag?"""
        return self.kind is TyKind.BUILTIN and self.name in GUARD_BUILTINS

    @property
    def is_lock(self) -> bool:
        return self.kind is TyKind.BUILTIN and self.name in ("Mutex", "RwLock")

    @property
    def is_interior_mutable(self) -> bool:
        if self.kind is TyKind.BUILTIN:
            return self.name in INTERIOR_MUTABLE_BUILTINS
        return False

    @property
    def is_atomic(self) -> bool:
        return self.kind is TyKind.BUILTIN and self.name.startswith("Atomic")

    @property
    def is_send_sync_container(self) -> bool:
        """Arc-like: shares ownership across threads."""
        return self.kind is TyKind.BUILTIN and self.name == "Arc"

    def peel_refs(self) -> "Ty":
        """Strip all layers of & / &mut / raw pointers."""
        ty = self
        while ty.is_pointer_like:
            ty = ty.referent
        return ty

    def peel_borrows(self) -> "Ty":
        """Strip & / &mut layers only (raw pointers are kept — method
        resolution on `*const T` must still see the pointer)."""
        ty = self
        while ty.kind is TyKind.REF:
            ty = ty.referent
        return ty

    def peel_wrappers(self, wrappers: Tuple[str, ...] = ("Arc", "Rc", "Box")) -> "Ty":
        """Strip smart-pointer wrappers: ``Arc<Mutex<T>>`` → ``Mutex<T>``."""
        ty = self
        while (ty.kind is TyKind.BUILTIN and ty.name in wrappers and ty.args):
            ty = ty.args[0]
        return ty

    def arg(self, index: int = 0) -> "Ty":
        if index < len(self.args):
            return self.args[index]
        return UNKNOWN

    def __str__(self) -> str:
        if self.kind is TyKind.REF:
            return ("&mut " if self.mutable else "&") + str(self.referent)
        if self.kind is TyKind.RAW_PTR:
            return ("*mut " if self.mutable else "*const ") + str(self.referent)
        if self.kind is TyKind.TUPLE:
            return "(" + ", ".join(str(a) for a in self.args) + ")"
        if self.kind is TyKind.SLICE:
            return "[" + str(self.arg()) + "]"
        if self.kind is TyKind.ARRAY:
            return "[" + str(self.arg()) + "; _]"
        if self.kind is TyKind.FN:
            params = ", ".join(str(a) for a in self.args[:-1])
            return f"fn({params}) -> {self.args[-1]}"
        if self.args:
            return self.name + "<" + ", ".join(str(a) for a in self.args) + ">"
        return self.name or self.kind.value


UNKNOWN = Ty(TyKind.UNKNOWN, "?")
UNIT = Ty.unit()
BOOL = Ty.bool_()
I32 = Ty.int("i32")
USIZE = Ty.int("usize")
NEVER = Ty.never()


@dataclass
class StructInfo:
    """Resolved layout of a user struct: field name → (index, type)."""

    name: str
    fields: List[Tuple[str, Ty]] = field(default_factory=list)
    is_tuple: bool = False
    # Trait implementations seen for this struct (Sync, Send, Drop, ...).
    traits: Dict[str, bool] = field(default_factory=dict)
    # True when `unsafe impl Sync/Send` appeared (paper §4 / §6.2).
    unsafe_sync: bool = False
    unsafe_send: bool = False

    def field_ty(self, name: str) -> Ty:
        for f_name, f_ty in self.fields:
            if f_name == name:
                return f_ty
        return UNKNOWN

    def field_index(self, name: str) -> Optional[int]:
        for i, (f_name, _) in enumerate(self.fields):
            if f_name == name:
                return i
        return None

    @property
    def implements_sync(self) -> bool:
        return self.traits.get("Sync", False)


@dataclass
class EnumInfo:
    """Resolved layout of a user enum."""

    name: str
    variants: List[Tuple[str, List[Ty]]] = field(default_factory=list)

    def variant_index(self, name: str) -> Optional[int]:
        for i, (v_name, _) in enumerate(self.variants):
            if v_name == name:
                return i
        return None

    def variant_payload(self, name: str) -> List[Ty]:
        for v_name, payload in self.variants:
            if v_name == name:
                return payload
        return []
