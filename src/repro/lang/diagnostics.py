"""Diagnostics: errors and warnings emitted by every compiler stage.

The front-end collects :class:`Diagnostic` values into a
:class:`DiagnosticSink`; hard failures raise :class:`CompileError`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.lang.source import SourceFile, Span


class DiagnosticLevel(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"


@dataclass
class Diagnostic:
    """One compiler message, rustc-style."""

    level: DiagnosticLevel
    message: str
    span: Span = Span.DUMMY
    notes: List[str] = field(default_factory=list)

    def render(self, source: Optional[SourceFile] = None) -> str:
        parts = [f"{self.level.value}: {self.message}"]
        if source is not None and not self.span.is_dummy:
            line, col = source.line_col(self.span.lo)
            parts.append(f"  --> {source.name}:{line}:{col}")
            text = source.line_text(line)
            if text:
                parts.append(f"   | {text}")
                width = max(1, min(self.span.hi, len(source.text)) - self.span.lo)
                parts.append("   | " + " " * (col - 1) + "^" * min(width, max(1, len(text) - col + 1)))
        for note in self.notes:
            parts.append(f"  note: {note}")
        return "\n".join(parts)


class CompileError(Exception):
    """Raised when a stage cannot proceed (syntax error, unresolved name...)."""

    def __init__(self, message: str, span: Span = Span.DUMMY,
                 source: Optional[SourceFile] = None) -> None:
        self.diagnostic = Diagnostic(DiagnosticLevel.ERROR, message, span)
        self.source = source
        rendered = self.diagnostic.render(source)
        super().__init__(rendered)

    @property
    def span(self) -> Span:
        return self.diagnostic.span

    @property
    def message(self) -> str:
        return self.diagnostic.message


class DiagnosticSink:
    """Accumulates diagnostics across compilation stages."""

    def __init__(self, source: Optional[SourceFile] = None) -> None:
        self.source = source
        self.diagnostics: List[Diagnostic] = []

    def error(self, message: str, span: Span = Span.DUMMY, **kw) -> Diagnostic:
        return self._emit(DiagnosticLevel.ERROR, message, span, **kw)

    def warning(self, message: str, span: Span = Span.DUMMY, **kw) -> Diagnostic:
        return self._emit(DiagnosticLevel.WARNING, message, span, **kw)

    def note(self, message: str, span: Span = Span.DUMMY, **kw) -> Diagnostic:
        return self._emit(DiagnosticLevel.NOTE, message, span, **kw)

    def _emit(self, level: DiagnosticLevel, message: str, span: Span,
              notes: Optional[List[str]] = None) -> Diagnostic:
        diag = Diagnostic(level, message, span, list(notes or []))
        self.diagnostics.append(diag)
        return diag

    @property
    def has_errors(self) -> bool:
        return any(d.level is DiagnosticLevel.ERROR for d in self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.level is DiagnosticLevel.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.level is DiagnosticLevel.WARNING]

    def render_all(self) -> str:
        return "\n".join(d.render(self.source) for d in self.diagnostics)
