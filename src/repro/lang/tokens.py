"""Token definitions for the MiniRust lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.lang.source import Span


class TokenKind(enum.Enum):
    # Literals and names
    IDENT = "ident"
    LIFETIME = "lifetime"          # 'a
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    CHAR = "char"

    # Keywords
    KW_AS = "as"
    KW_BREAK = "break"
    KW_CONST = "const"
    KW_CONTINUE = "continue"
    KW_CRATE = "crate"
    KW_DYN = "dyn"
    KW_ELSE = "else"
    KW_ENUM = "enum"
    KW_EXTERN = "extern"
    KW_FALSE = "false"
    KW_FN = "fn"
    KW_FOR = "for"
    KW_IF = "if"
    KW_IMPL = "impl"
    KW_IN = "in"
    KW_LET = "let"
    KW_LOOP = "loop"
    KW_MATCH = "match"
    KW_MOD = "mod"
    KW_MOVE = "move"
    KW_MUT = "mut"
    KW_PUB = "pub"
    KW_REF = "ref"
    KW_RETURN = "return"
    KW_SELF = "self"
    KW_SELF_TYPE = "Self"
    KW_STATIC = "static"
    KW_STRUCT = "struct"
    KW_SUPER = "super"
    KW_TRAIT = "trait"
    KW_TRUE = "true"
    KW_TYPE = "type"
    KW_UNSAFE = "unsafe"
    KW_USE = "use"
    KW_WHERE = "where"
    KW_WHILE = "while"

    # Punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMI = ";"
    COLON = ":"
    COLONCOLON = "::"
    ARROW = "->"
    FATARROW = "=>"
    DOT = "."
    DOTDOT = ".."
    DOTDOTEQ = "..="
    EQ = "="
    EQEQ = "=="
    NE = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    BANG = "!"
    AMPAMP = "&&"
    PIPEPIPE = "||"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    SHL = "<<"
    SHR = ">>"
    PLUSEQ = "+="
    MINUSEQ = "-="
    STAREQ = "*="
    SLASHEQ = "/="
    PERCENTEQ = "%="
    AMPEQ = "&="
    PIPEEQ = "|="
    CARETEQ = "^="
    SHLEQ = "<<="
    SHREQ = ">>="
    QUESTION = "?"
    POUND = "#"
    AT = "@"
    UNDERSCORE = "_"

    EOF = "<eof>"


KEYWORDS = {
    "as": TokenKind.KW_AS,
    "break": TokenKind.KW_BREAK,
    "const": TokenKind.KW_CONST,
    "continue": TokenKind.KW_CONTINUE,
    "crate": TokenKind.KW_CRATE,
    "dyn": TokenKind.KW_DYN,
    "else": TokenKind.KW_ELSE,
    "enum": TokenKind.KW_ENUM,
    "extern": TokenKind.KW_EXTERN,
    "false": TokenKind.KW_FALSE,
    "fn": TokenKind.KW_FN,
    "for": TokenKind.KW_FOR,
    "if": TokenKind.KW_IF,
    "impl": TokenKind.KW_IMPL,
    "in": TokenKind.KW_IN,
    "let": TokenKind.KW_LET,
    "loop": TokenKind.KW_LOOP,
    "match": TokenKind.KW_MATCH,
    "mod": TokenKind.KW_MOD,
    "move": TokenKind.KW_MOVE,
    "mut": TokenKind.KW_MUT,
    "pub": TokenKind.KW_PUB,
    "ref": TokenKind.KW_REF,
    "return": TokenKind.KW_RETURN,
    "self": TokenKind.KW_SELF,
    "Self": TokenKind.KW_SELF_TYPE,
    "static": TokenKind.KW_STATIC,
    "struct": TokenKind.KW_STRUCT,
    "super": TokenKind.KW_SUPER,
    "trait": TokenKind.KW_TRAIT,
    "true": TokenKind.KW_TRUE,
    "type": TokenKind.KW_TYPE,
    "unsafe": TokenKind.KW_UNSAFE,
    "use": TokenKind.KW_USE,
    "where": TokenKind.KW_WHERE,
    "while": TokenKind.KW_WHILE,
}


@dataclass(frozen=True)
class Token:
    """One lexed token with its source span and (for literals) its value."""

    kind: TokenKind
    text: str
    span: Span
    value: Optional[object] = None

    def is_keyword(self) -> bool:
        return self.kind.name.startswith("KW_")

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r})"
