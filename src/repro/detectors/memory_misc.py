"""Memory-safety detectors beyond use-after-free.

These realise the §7.1 suggestion that "it is feasible to build static
checkers to detect invalid-free, use-after-free, double-free memory bugs
by analyzing object lifetime and ownership relationships":

* :class:`DoubleFreeDetector` — ownership duplicated by ``ptr::read``
  (the paper's §5.1 ``t2 = ptr::read::<T>(&t1)`` pattern): two owners of
  one value both reach a drop.
* :class:`InvalidFreeDetector` — the Figure 6 pattern: assigning a
  droppable value through a raw pointer into *uninitialised* memory runs
  drop glue on garbage (``*f = FILE {...}`` instead of ``ptr::write``).
* :class:`UninitReadDetector` — reading from an allocation that was never
  initialised (``alloc`` / ``MaybeUninit`` / ``mem::uninitialized``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.lifetime import resolve_ref_chain
from repro.analysis.summaries import value_chain
from repro.detectors.base import AnalysisContext, Detector
from repro.detectors.report import Finding, Severity
from repro.hir.builtins import BuiltinOp, FuncKind
from repro.mir.cfg import Cfg
from repro.mir.nodes import (
    Body, RvalueKind, StatementKind, TerminatorKind,
)

# Allocation ops that yield *uninitialised* memory.
_RAW_ALLOC_OPS = {BuiltinOp.ALLOC, BuiltinOp.MEM_UNINITIALIZED,
                  BuiltinOp.MAYBE_UNINIT}
_WRITE_OPS = {BuiltinOp.PTR_WRITE, BuiltinOp.PTR_COPY,
              BuiltinOp.PTR_COPY_NONOVERLAPPING, BuiltinOp.MEM_ZEROED}


class DoubleFreeDetector(Detector):
    name = "double-free"
    description = ("Ownership duplicated via ptr::read so the same value "
                   "is dropped twice")
    paper_section = "5.1"

    def check_body(self, ctx: AnalysisContext, body: Body) -> List[Finding]:
        findings: List[Finding] = []
        # Find `dup = ptr::read(&orig)` call sites.
        for bb, term in body.iter_terminators():
            if term.kind is not TerminatorKind.CALL or term.func is None:
                continue
            if term.func.builtin_op is not BuiltinOp.PTR_READ:
                continue
            if term.destination is None or not term.destination.is_local:
                continue
            if not term.args or term.args[0].place is None:
                continue
            src_base, _proj = resolve_ref_chain(body, term.args[0].place.local)
            src_ty = body.local_ty(src_base)
            dup = term.destination.local
            dup_ty = body.local_ty(dup)
            if not (src_ty.needs_drop or dup_ty.needs_drop):
                continue
            # Both the original and the duplicate reach a drop?
            orig_chain = value_chain(body, src_base)
            dup_chain = value_chain(body, dup)
            orig_dropped = self._chain_dropped(ctx, body, orig_chain)
            dup_dropped = self._chain_dropped(ctx, body, dup_chain)
            forgotten = self._chain_forgotten(body, orig_chain | dup_chain)
            if orig_dropped and dup_dropped and not forgotten:
                src_name = body.locals[src_base].name or f"_{src_base}"
                findings.append(Finding(
                    detector=self.name, kind="double-free",
                    message=(f"`ptr::read` duplicates ownership of "
                             f"`{src_name}`; both copies are dropped, "
                             f"freeing the same resource twice (move the "
                             f"value or `mem::forget` one owner)"),
                    fn_key=body.key, span=term.span,
                    metadata={"source": src_base, "duplicate": dup}))
        return findings

    @staticmethod
    def _chain_dropped(ctx: AnalysisContext, body: Body,
                       chain: Set[int]) -> bool:
        for _bb, _i, stmt in body.iter_statements():
            if stmt.kind is StatementKind.DROP and stmt.place.is_local \
                    and stmt.place.local in chain:
                return True
        for _bb, term in body.iter_terminators():
            if term.kind is not TerminatorKind.CALL or term.func is None:
                continue
            if term.func.builtin_op is BuiltinOp.MEM_DROP:
                for arg in term.args:
                    if arg.place is not None and arg.place.local in chain:
                        return True
            elif term.func.kind in (FuncKind.USER, FuncKind.CLOSURE) \
                    and term.func.builtin_op is not BuiltinOp.THREAD_SPAWN:
                # Moved into a callee whose summary drops that argument:
                # the value dies inside the call tree.
                summary = ctx.summary(term.func.user_fn)
                for j, arg in enumerate(term.args):
                    if arg.place is not None and arg.is_move \
                            and arg.place.local in chain \
                            and summary.drops_arg(j):
                        return True
        return False

    @staticmethod
    def _chain_forgotten(body: Body, chain: Set[int]) -> bool:
        for _bb, term in body.iter_terminators():
            if term.kind is TerminatorKind.CALL and term.func is not None \
                    and term.func.builtin_op is BuiltinOp.MEM_FORGET:
                for arg in term.args:
                    if arg.place is not None and arg.place.local in chain:
                        return True
        return False


class InvalidFreeDetector(Detector):
    name = "invalid-free"
    description = ("Assignment through a raw pointer into uninitialised "
                   "memory drops a garbage value (Figure 6 pattern)")
    paper_section = "5.1"

    def check_body(self, ctx: AnalysisContext, body: Body) -> List[Finding]:
        findings: List[Finding] = []
        pt = ctx.points_to(body)
        uninit_sites = self._uninit_sites(body)
        if not uninit_sites:
            return findings
        written = self._sites_written_before(body, pt, uninit_sites)
        for bb, i, stmt in body.iter_statements():
            if stmt.kind is not StatementKind.ASSIGN or not stmt.place.has_deref:
                continue
            base_ty = body.local_ty(stmt.place.local)
            if not base_ty.is_raw_ptr:
                continue
            value_ty = base_ty.referent
            if not value_ty.needs_drop:
                continue
            for target in pt.targets(stmt.place.local):
                if target[0] == "heap" and target[1] in uninit_sites \
                        and (bb, i) not in written.get(target[1], set()):
                    ptr_name = body.locals[stmt.place.local].name or \
                        f"_{stmt.place.local}"
                    findings.append(Finding(
                        detector=self.name, kind="invalid-free",
                        message=(f"`*{ptr_name} = ...` assigns into "
                                 f"uninitialised memory: the assignment "
                                 f"drops the old (garbage) value; use "
                                 f"`ptr::write` instead"),
                        fn_key=body.key, span=stmt.span,
                        metadata={"pointer": stmt.place.local,
                                  "site": target[1]}))
                    break
        return findings

    def _uninit_sites(self, body: Body) -> Set[str]:
        sites = set()
        for bb, term in body.iter_terminators():
            if term.kind is TerminatorKind.CALL and term.func is not None \
                    and term.func.builtin_op in _RAW_ALLOC_OPS:
                sites.add(f"{body.key}:{bb}")
        return sites

    def _sites_written_before(self, body: Body, pt, sites: Set[str]) -> Dict:
        """For each site: the set of points at which it has definitely been
        written (a ptr::write dominates).  Approximation: once a
        ``ptr::write``/copy targets the site, every point in blocks
        dominated by the write block counts as written."""
        cfg = Cfg(body)
        written: Dict[str, Set[Tuple[int, int]]] = {s: set() for s in sites}
        write_blocks: Dict[str, List[int]] = {s: [] for s in sites}
        for bb, term in body.iter_terminators():
            if term.kind is not TerminatorKind.CALL or term.func is None:
                continue
            if term.func.builtin_op not in _WRITE_OPS:
                continue
            for arg in term.args[:1]:
                if arg.place is None:
                    continue
                for target in pt.targets(arg.place.local):
                    if target[0] == "heap" and target[1] in sites:
                        write_blocks[target[1]].append(bb)
        for site, blocks in write_blocks.items():
            for wb in blocks:
                for block in body.blocks:
                    if cfg.dominates(wb, block.index) and block.index != wb:
                        for i in range(len(block.statements) + 1):
                            written[site].add((block.index, i))
        return written


class UninitReadDetector(Detector):
    name = "uninit-read"
    description = ("Read of memory that was allocated but never "
                   "initialised")
    paper_section = "5.1"

    def check_body(self, ctx: AnalysisContext, body: Body) -> List[Finding]:
        findings: List[Finding] = []
        pt = ctx.points_to(body)
        uninit_sites: Set[str] = set()
        for bb, term in body.iter_terminators():
            if term.kind is TerminatorKind.CALL and term.func is not None \
                    and term.func.builtin_op in _RAW_ALLOC_OPS:
                uninit_sites.add(f"{body.key}:{bb}")
        if not uninit_sites:
            return findings

        # A site is "ever written" if any write op or deref-assignment
        # targets it anywhere in the body (coarse; flow handled by the
        # invalid-free detector's dominance check).
        written: Set[str] = set()
        for bb, term in body.iter_terminators():
            if term.kind is TerminatorKind.CALL and term.func is not None \
                    and term.func.builtin_op in _WRITE_OPS and term.args:
                arg = term.args[0]
                if arg.place is not None:
                    for target in pt.targets(arg.place.local):
                        if target[0] == "heap":
                            written.add(target[1])
        for _bb, _i, stmt in body.iter_statements():
            if stmt.kind is StatementKind.ASSIGN and stmt.place.has_deref:
                for target in pt.targets(stmt.place.local):
                    if target[0] == "heap":
                        written.add(target[1])

        # Reads: deref in an rvalue, or ptr::read.
        def report(pointer: int, site: str, span) -> None:
            ptr_name = body.locals[pointer].name or f"_{pointer}"
            findings.append(Finding(
                detector=self.name, kind="uninit-read",
                message=(f"`{ptr_name}` reads memory that is never "
                         f"initialised (allocated with an uninitialised "
                         f"constructor and never written)"),
                fn_key=body.key, span=span,
                metadata={"pointer": pointer, "site": site}))

        reported = set()
        for _bb, _i, stmt in body.iter_statements():
            if stmt.kind is not StatementKind.ASSIGN or stmt.rvalue is None:
                continue
            for op in stmt.rvalue.operands:
                if op.place is None or not op.place.has_deref:
                    continue
                if not body.local_ty(op.place.local).is_raw_ptr:
                    continue
                for target in pt.targets(op.place.local):
                    if target[0] == "heap" and target[1] in uninit_sites \
                            and target[1] not in written \
                            and (op.place.local, target[1]) not in reported:
                        reported.add((op.place.local, target[1]))
                        report(op.place.local, target[1], stmt.span)
        for bb, term in body.iter_terminators():
            if term.kind is not TerminatorKind.CALL or term.func is None:
                continue
            if term.func.builtin_op is not BuiltinOp.PTR_READ:
                continue
            for arg in term.args[:1]:
                if arg.place is None:
                    continue
                base, _ = resolve_ref_chain(body, arg.place.local)
                for local in (arg.place.local, base):
                    for target in pt.targets(local):
                        if target[0] == "heap" and target[1] in uninit_sites \
                                and target[1] not in written \
                                and (local, target[1]) not in reported:
                            reported.add((local, target[1]))
                            report(local, target[1], term.span)
        return findings


class NullDerefDetector(Detector):
    """Null-pointer dereference detector.

    Table 2's largest pure-unsafe category (12 of 70 memory bugs) is
    "dereferencing a null pointer in unsafe code", typically a
    ``ptr::null_mut()`` placeholder flowing into a deref without an
    ``is_null`` guard.  Reports:

    * **definite** — the pointer can *only* be null at the deref;
    * **possible** (warning) — null is one of several targets and no
      ``is_null`` check guards the access.
    """

    name = "null-deref"
    description = "Dereference of a (possibly) null raw pointer"
    paper_section = "5.1"

    def check_body(self, ctx: AnalysisContext, body: Body) -> List[Finding]:
        findings: List[Finding] = []
        pt = ctx.points_to(body)
        guarded = self._null_checked_locals(body)

        def inspect(place, span) -> None:
            if place is None or not place.has_deref:
                return
            base_ty = body.local_ty(place.local)
            if not base_ty.is_raw_ptr:
                return
            base, _ = resolve_ref_chain(body, place.local)
            targets = pt.targets(place.local) | pt.targets(base)
            if not targets or ("null",) not in targets:
                return
            if place.local in guarded or base in guarded:
                return
            only_null = all(t == ("null",) for t in targets)
            name = body.locals[place.local].name or f"_{place.local}"
            findings.append(Finding(
                detector=self.name, kind="null-deref",
                message=(f"pointer `{name}` is "
                         f"{'always' if only_null else 'possibly'} null at "
                         f"this dereference and no `is_null` check guards "
                         f"it"),
                fn_key=body.key, span=span,
                severity=Severity.ERROR if only_null else Severity.WARNING,
                metadata={"definite": only_null}))

        for _bb, _i, stmt in body.iter_statements():
            if stmt.kind is not StatementKind.ASSIGN or stmt.rvalue is None:
                continue
            inspect(stmt.place, stmt.span)
            for op in stmt.rvalue.operands:
                inspect(op.place, stmt.span)
        for _bb, term in body.iter_terminators():
            if term.kind is not TerminatorKind.CALL or term.func is None:
                continue
            if term.func.builtin_op in (BuiltinOp.PTR_READ,
                                        BuiltinOp.PTR_WRITE):
                arg = term.args[0] if term.args else None
                if arg is not None and arg.place is not None:
                    pointer = arg.place.local
                    base, _ = resolve_ref_chain(body, pointer)
                    targets = pt.targets(pointer) | pt.targets(base)
                    if ("null",) in targets and pointer not in self._null_checked_locals(body):
                        only_null = all(t == ("null",) for t in targets)
                        name = body.locals[pointer].name or f"_{pointer}"
                        findings.append(Finding(
                            detector=self.name, kind="null-deref",
                            message=(f"`ptr::read`/`ptr::write` on "
                                     f"{'always' if only_null else 'possibly'}"
                                     f"-null pointer `{name}`"),
                            fn_key=body.key, span=term.span,
                            severity=Severity.ERROR if only_null
                            else Severity.WARNING,
                            metadata={"definite": only_null}))
        # One finding per (local, kind) is enough.
        unique = {}
        for finding in findings:
            key = (finding.fn_key, finding.message)
            unique.setdefault(key, finding)
        return list(unique.values())

    @staticmethod
    def _null_checked_locals(body: Body) -> Set[int]:
        """Locals that flow through an `is_null()` call (any guard counts;
        flow-sensitivity is deliberately coarse to avoid FPs)."""
        checked: Set[int] = set()
        for _bb, term in body.iter_terminators():
            if term.kind is TerminatorKind.CALL and term.func is not None \
                    and term.func.builtin_op is BuiltinOp.PTR_IS_NULL:
                for arg in term.args[:1]:
                    if arg.place is not None:
                        checked.add(arg.place.local)
                        base, _ = resolve_ref_chain(body, arg.place.local)
                        checked.add(base)
        return checked
