"""Use-after-free detector (the paper's first detector, §7.1).

Mirrors the paper's construction: "Our detector maintains the state of
each variable (alive or dead) by monitoring when MIR calls StorageLive or
StorageDead on the variable.  For each pointer/reference, we conduct a
'points-to' analysis [...].  When a pointer/reference is dereferenced, our
tool checks if the object it points to is dead and reports a bug if so."

Three ways a pointee can be dead at a deref:

* **stack storage dead** — the pointed-to local's storage range has ended
  (pointer outlived a scoped value, e.g. the Figure 7 temporary);
* **value dropped** — an explicit ``drop``/``Drop`` ran on the owner while
  the raw pointer still aliases its heap allocation;
* **heap freed** — the allocation's owner chain was dropped or the memory
  was ``dealloc``-ated.

Pointers that *escape* into calls (FFI or user functions) while dangling
are reported too — that is exactly the Figure 7 ``CMS_sign(p)`` shape.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.dataflow import statement_states
from repro.analysis.init import MaybeInitAnalysis
from repro.analysis.summaries import value_chain
from repro.detectors.base import AnalysisContext, Detector
from repro.detectors.report import Finding, Severity
from repro.hir.builtins import BuiltinOp, FuncKind
from repro.mir.cfg import Cfg
from repro.mir.nodes import (
    Body, Operand, Place, RvalueKind, StatementKind, TerminatorKind,
)

__all__ = ["UseAfterFreeDetector", "DanglingReturnDetector", "value_chain"]

_ALLOC_OPS = {
    BuiltinOp.BOX_NEW, BuiltinOp.RC_NEW, BuiltinOp.ARC_NEW,
    BuiltinOp.VEC_NEW, BuiltinOp.VEC_WITH_CAPACITY, BuiltinOp.VEC_MACRO,
    BuiltinOp.ALLOC, BuiltinOp.STRING_NEW, BuiltinOp.HASHMAP_NEW,
    BuiltinOp.VEC_FROM_RAW_PARTS,
}
_PTR_USE_OPS = {BuiltinOp.PTR_READ, BuiltinOp.PTR_WRITE, BuiltinOp.PTR_COPY,
                BuiltinOp.PTR_COPY_NONOVERLAPPING}


class UseAfterFreeDetector(Detector):
    name = "use-after-free"
    description = ("Deref or escape of a raw pointer whose pointee's "
                   "storage has died, been dropped, or been freed")
    paper_section = "7.1"

    def check_body(self, ctx: AnalysisContext, body: Body) -> List[Finding]:
        findings: List[Finding] = []
        pt = ctx.points_to(body)
        ranges = ctx.storage_ranges(body)
        init_entry = ctx.init_states(body)
        init_analysis = MaybeInitAnalysis(body)

        # Heap allocation sites and their owner chains.
        site_chains: Dict[str, Set[int]] = {}
        for bb, term in body.iter_terminators():
            if term.kind is TerminatorKind.CALL and term.func is not None \
                    and term.func.builtin_op in _ALLOC_OPS \
                    and term.destination is not None \
                    and term.destination.is_local:
                site = f"{body.key}:{bb}"
                site_chains[site] = value_chain(body, term.destination.local)

        freed, drop_reasons = self._compute_freed(
            ctx, body, pt, site_chains, init_entry, init_analysis)

        # Scan every deref / pointer-escaping use.
        for block in body.blocks:
            bb = block.index
            for i, stmt in enumerate(block.statements):
                point = (bb, i)
                state = freed.get(point, frozenset())
                if stmt.kind is StatementKind.ASSIGN and stmt.rvalue is not None:
                    for place in self._rvalue_deref_places(body, stmt.rvalue):
                        findings.extend(self._check_deref(
                            ctx, body, pt, ranges, state, place, point,
                            stmt.span, drop_reasons))
                    if stmt.place.has_deref:
                        findings.extend(self._check_deref(
                            ctx, body, pt, ranges, state, stmt.place, point,
                            stmt.span, drop_reasons))
            term = block.terminator
            if term is None or term.kind is not TerminatorKind.CALL:
                continue
            point = (bb, len(block.statements))
            state = freed.get(point, frozenset())
            func = term.func
            for arg in term.args:
                if arg.place is None:
                    continue
                base_ty = body.local_ty(arg.place.local)
                if arg.place.has_deref:
                    findings.extend(self._check_deref(
                        ctx, body, pt, ranges, state, arg.place, point,
                        term.span, drop_reasons))
                    continue
                if not base_ty.is_raw_ptr:
                    continue
                is_ptr_use = func is not None and \
                    func.builtin_op in _PTR_USE_OPS
                escapes = func is not None and (
                    func.kind in (FuncKind.USER, FuncKind.UNKNOWN)
                    or func.builtin_op is BuiltinOp.FFI)
                if is_ptr_use or escapes:
                    findings.extend(self._check_pointer(
                        ctx, body, pt, ranges, state, arg.place.local, point,
                        term.span,
                        reason="dereferenced" if is_ptr_use else
                        f"passed to `{func.name}`",
                        drop_reasons=drop_reasons))
        return findings

    # -- freed-state dataflow ------------------------------------------------

    def _compute_freed(self, ctx, body: Body, pt, site_chains, init_entry,
                       init_analysis):
        """Forward may-freed facts per program point.

        Facts: ``("heap", site)`` and ``("dropped", local)``.  Returns
        ``(point_states, drop_reasons)`` where ``drop_reasons`` maps a
        fact to the ``(callee, arg position)`` whose summary freed it —
        present only for frees that happen inside a callee.
        """
        drop_reasons: Dict[Tuple, Tuple[str, int]] = {}
        chain_of: Dict[int, List[str]] = {}
        for site, chain in site_chains.items():
            for local in chain:
                chain_of.setdefault(local, []).append(site)

        cfg = Cfg(body)
        entry: Dict[int, Set] = {0: set()}
        point_states: Dict[Tuple[int, int], FrozenSet] = {}
        worklist = deque([0])
        visited: Dict[int, Set] = {}

        while worklist:
            bb = worklist.popleft()
            state = set(entry.get(bb, set()))
            prev = visited.get(bb)
            if prev is not None and state <= prev:
                continue
            visited[bb] = set(state) | (prev or set())
            block = body.blocks[bb]
            init_states = None
            if bb in init_entry:
                init_states = statement_states(init_analysis, init_entry, bb)
            for i, stmt in enumerate(block.statements):
                point_states[(bb, i)] = frozenset(
                    point_states.get((bb, i), frozenset()) | state)
                if stmt.kind is StatementKind.DROP and stmt.place.is_local:
                    local = stmt.place.local
                    definitely_moved = False
                    if init_states is not None:
                        st = init_states[i]
                        definitely_moved = ("moved", local) in st and \
                            ("init", local) not in st
                    if not definitely_moved:
                        state.add(("dropped", local))
                        for site in chain_of.get(local, []):
                            state.add(("heap", site))
                elif stmt.kind is StatementKind.ASSIGN and stmt.place.is_local:
                    state.discard(("dropped", stmt.place.local))
            term = block.terminator
            term_point = (bb, len(block.statements))
            point_states[term_point] = frozenset(
                point_states.get(term_point, frozenset()) | state)
            if term is not None and term.kind is TerminatorKind.CALL \
                    and term.func is not None:
                op = term.func.builtin_op
                if op is BuiltinOp.MEM_DROP:
                    for arg in term.args:
                        if arg.place is not None and arg.place.is_local:
                            local = arg.place.local
                            state.add(("dropped", local))
                            for site in chain_of.get(local, []):
                                state.add(("heap", site))
                elif op is BuiltinOp.DEALLOC:
                    for arg in term.args:
                        if arg.place is None:
                            continue
                        for target in pt.targets(arg.place.local):
                            if target[0] == "heap":
                                state.add(("heap", target[1]))
                elif op is BuiltinOp.MEM_FORGET:
                    # forget suppresses the drop: un-free nothing, but the
                    # owner no longer frees at scope end — nothing to do in
                    # a may-analysis.
                    pass
                elif term.func.kind in (FuncKind.USER, FuncKind.CLOSURE) \
                        and op is not BuiltinOp.THREAD_SPAWN:
                    # The callee's summary says it drops an argument we
                    # moved into it: the value is freed when it returns.
                    callee = term.func.user_fn
                    summary = ctx.summary(callee)
                    for j, arg in enumerate(term.args):
                        if arg.place is None or not arg.place.is_local \
                                or not arg.is_move \
                                or not summary.drops_arg(j):
                            continue
                        local = arg.place.local
                        state.add(("dropped", local))
                        drop_reasons[("dropped", local)] = (callee, j)
                        for site in chain_of.get(local, []):
                            state.add(("heap", site))
                            drop_reasons[("heap", site)] = (callee, j)
                if term.destination is not None and term.destination.is_local:
                    state.discard(("dropped", term.destination.local))
            if term is not None:
                for succ in term.successors():
                    prev_in = entry.get(succ)
                    if prev_in is None:
                        entry[succ] = set(state)
                        worklist.append(succ)
                    elif not state <= prev_in:
                        prev_in |= state
                        worklist.append(succ)
        return point_states, drop_reasons

    # -- deref checks -----------------------------------------------------------

    def _rvalue_deref_places(self, body: Body, rvalue) -> List[Place]:
        places = []
        for op in rvalue.operands:
            if op.place is not None and op.place.has_deref:
                places.append(op.place)
        if rvalue.place is not None and rvalue.place.has_deref:
            places.append(rvalue.place)
        return places

    def _check_deref(self, ctx, body, pt, ranges, freed_state, place: Place,
                     point, span, drop_reasons=None) -> List[Finding]:
        base_ty = body.local_ty(place.local)
        if not base_ty.is_raw_ptr:
            return []
        return self._check_pointer(ctx, body, pt, ranges, freed_state,
                                   place.local, point, span,
                                   reason="dereferenced",
                                   drop_reasons=drop_reasons)

    def _check_pointer(self, ctx, body, pt, ranges, freed_state,
                       pointer: int, point, span, reason: str,
                       drop_reasons=None) -> List[Finding]:
        from repro.obs.provenance import fact
        findings: List[Finding] = []
        pointer_name = body.locals[pointer].name or f"_{pointer}"

        def chain_fact(freed_fact):
            """A summary-chain provenance fact when the free happened
            inside a callee (appended after the core facts)."""
            hop = (drop_reasons or {}).get(freed_fact)
            if hop is None:
                return None
            callee, position = hop
            chain = [body.key] + ctx.drop_chain(callee, position)
            return fact("summary-chain",
                        f"summary engine: `{callee}` may drop its "
                        f"argument {position}; the value is freed along "
                        f"{' → '.join(chain)}",
                        chain=chain, callee=callee, position=position)

        def use_fact():
            return fact("pointer-use",
                        f"`{pointer_name}` {reason} at block {point[0]}, "
                        f"statement {point[1]}",
                        fn=body.key, point=point)

        for target in pt.targets(pointer):
            target_desc = " ".join(str(part) for part in target)
            edge = fact("points-to",
                        f"points-to analysis: `{pointer_name}` may point "
                        f"to {target_desc}",
                        pointer=pointer_name, target=target)
            if target[0] == "local":
                local = target[1]
                if body.locals[local].is_arg:
                    continue
                if not ranges.is_live_at(local, point):
                    target_name = body.locals[local].name or f"_{local}"
                    findings.append(Finding(
                        detector=self.name, kind="use-after-free",
                        message=(f"pointer `{pointer_name}` {reason} after "
                                 f"its pointee `{target_name}`'s storage is "
                                 f"dead (pointer outlived the value)"),
                        fn_key=body.key, span=span,
                        metadata={"pointer": pointer, "target": local,
                                  "mode": "storage-dead"},
                        provenance=[
                            edge,
                            fact("storage-dead",
                                 f"storage-range analysis: `{target_name}`'s "
                                 f"StorageDead precedes this point",
                                 local=target_name, point=point),
                            use_fact()]))
                elif ("dropped", local) in freed_state:
                    target_name = body.locals[local].name or f"_{local}"
                    provenance = [
                        edge,
                        fact("freed-state",
                             f"may-freed dataflow: `{target_name}` was "
                             f"dropped on a path reaching this point",
                             state="dropped", local=target_name),
                        use_fact()]
                    extra = chain_fact(("dropped", local))
                    if extra is not None:
                        provenance.append(extra)
                    findings.append(Finding(
                        detector=self.name, kind="use-after-free",
                        message=(f"pointer `{pointer_name}` {reason} after "
                                 f"`{target_name}` was dropped"),
                        fn_key=body.key, span=span,
                        metadata={"pointer": pointer, "target": local,
                                  "mode": "dropped"},
                        provenance=provenance))
            elif target[0] == "heap":
                if ("heap", target[1]) in freed_state:
                    provenance = [
                        edge,
                        fact("freed-state",
                             f"may-freed dataflow: allocation site "
                             f"{target[1]} is freed on a path reaching "
                             f"this point",
                             state="heap-freed", site=target[1]),
                        use_fact()]
                    extra = chain_fact(("heap", target[1]))
                    if extra is not None:
                        provenance.append(extra)
                    findings.append(Finding(
                        detector=self.name, kind="use-after-free",
                        message=(f"pointer `{pointer_name}` {reason} after "
                                 f"its heap allocation was freed"),
                        fn_key=body.key, span=span,
                        metadata={"pointer": pointer, "site": target[1],
                                  "mode": "heap-freed"},
                        provenance=provenance))
        return findings


class DanglingReturnDetector(Detector):
    """Returning a pointer into the function's own dead frame.

    The complementary inter-procedural shape to Figure 7: instead of a
    caller outliving a callee temporary, the callee itself hands out
    ``&local as *const T``.  Rust's borrow checker rejects the reference
    form; the raw-pointer form compiles and is UB to use.
    """

    name = "dangling-return"
    description = ("Function returns a raw pointer into its own stack "
                   "frame")
    paper_section = "7.1"

    def check_body(self, ctx: AnalysisContext, body: Body) -> List[Finding]:
        if not body.ret_ty.is_raw_ptr:
            return []
        pt = ctx.points_to(body)
        findings: List[Finding] = []
        for target in pt.targets(0):
            if target[0] != "local":
                continue
            local = target[1]
            info = body.locals[local]
            if info.is_arg or local == 0:
                continue
            if (info.name or "").startswith("static:"):
                continue
            name = info.name or f"_{local}"
            from repro.obs.provenance import fact
            findings.append(Finding(
                detector=self.name, kind="dangling-return",
                message=(f"returns a raw pointer into local `{name}`, "
                         f"whose stack storage dies when the function "
                         f"returns"),
                fn_key=body.key, span=body.span,
                metadata={"local": local},
                provenance=[
                    fact("points-to",
                         f"points-to analysis: the return place may point "
                         f"to local `{name}`",
                         pointer="_0", target=("local", local)),
                    fact("frame-death",
                         f"`{name}` lives in `{body.key}`'s own stack "
                         f"frame, which dies at return",
                         fn=body.key, local=name)]))
            break
        return findings
