"""CVE-class detectors over the unwind-aware CFG (§5.1 / §7.1).

The advisory classes that motivated RUSTSEC's memory-safety taxonomy are
exception-safety bugs: code that is correct on the straight-line path
but leaves memory in a corrupt state when a panic unwinds through it.
These three detectors consume the panic model built by
:mod:`repro.analysis.panic` (unwind successor edges, landing pads, the
``panic`` component of every function summary):

* :class:`PanicSafetyDetector` — an unsafe region duplicates ownership
  (``ptr::read``) and a may-panic operation runs before the window is
  closed (write-back / ``mem::forget``): the landing pad drops the
  original while the duplicate also owns the value.
* :class:`BadDropDetector` — a ``Drop`` impl that double-drops a field
  (``ptr::read`` of ``self.field`` whose duplicate is dropped, on top of
  the compiler's own drop glue) or drops a value it constructed
  uninitialised.
* :class:`UninitExposureDetector` — a public safe function returns a
  pointer to memory it allocated uninitialised and never wrote:
  uninitialised bytes escape the API boundary (CVE-2018-1000810 shape).

``panic-safety`` is the only panic-*path* detector of the three and goes
quiet under the ``--no-unwind-edges`` ablation; the other two reason
about drop glue and escapes that exist with or without unwinding.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.lifetime import resolve_ref_chain
from repro.analysis.panic import terminator_panic_source
from repro.analysis.summaries import value_chain
from repro.detectors.base import AnalysisContext, Detector
from repro.detectors.memory_misc import _RAW_ALLOC_OPS, _WRITE_OPS
from repro.detectors.report import Finding, Severity
from repro.hir.builtins import BuiltinOp, FuncKind
from repro.mir.nodes import (
    Body, StatementKind, Terminator, TerminatorKind,
)
from repro.obs.provenance import fact

#: Uninit constructors whose result has drop glue when dropped as a
#: value (``alloc`` returns a raw pointer — no glue — so it is excluded
#: from the drop-uninit pattern but kept for the exposure pattern).
_UNINIT_VALUE_OPS = {BuiltinOp.MEM_UNINITIALIZED, BuiltinOp.MAYBE_UNINIT}


def _call_op(term: Terminator) -> Optional[BuiltinOp]:
    if term.kind is not TerminatorKind.CALL or term.func is None:
        return None
    return term.func.builtin_op


def _arg_base(body: Body, term: Terminator, index: int = 0) -> Optional[int]:
    """The base local an argument's reference/pointer chain resolves to."""
    if index >= len(term.args) or term.args[index].place is None:
        return None
    base, _proj = resolve_ref_chain(body, term.args[index].place.local)
    return base


class PanicSafetyDetector(Detector):
    """A may-panic operation inside an open ownership-duplication window.

    ``ptr::read`` leaves the original bitwise intact, so between the
    read and the compensating write-back (or ``mem::forget``) *two*
    owners of one value exist.  Straight-line code closes the window
    before anything can observe it — but a panic doesn't: the landing
    pad drops the original by its scope obligation while the duplicate
    is dropped by its own, freeing the same resource twice.  The walk
    follows the *success* CFG from the read; the first may-panic
    terminator met before a closing event is the report site.  Callee
    panics come from the summary fixpoint's ``panic`` component, so the
    fallible operation may be arbitrarily many calls deep.
    """

    name = "panic-safety"
    description = ("May-panic operation while `ptr::read` has duplicated "
                   "ownership: the unwind path drops the value twice")
    paper_section = "5.1"

    def check_body(self, ctx: AnalysisContext, body: Body) -> List[Finding]:
        if not ctx.config.unwind_edges:
            return []
        findings: List[Finding] = []
        for bb, term in body.iter_terminators():
            if _call_op(term) is not BuiltinOp.PTR_READ:
                continue
            if not term.in_unsafe:
                continue
            if term.destination is None or not term.destination.is_local:
                continue
            src_base = _arg_base(body, term)
            if src_base is None:
                continue
            dup = term.destination.local
            if not (body.local_ty(src_base).needs_drop
                    or body.local_ty(dup).needs_drop):
                continue
            hit = self._first_panic_in_window(ctx, body, term, src_base, dup)
            if hit is None:
                continue
            panic_term, source, chain = hit
            src_name = body.locals[src_base].name or f"_{src_base}"
            desc = source if chain is None else \
                f"call into `{chain[0]}` (panics in `{chain[-1]}`)"
            provenance = [
                fact("ownership-dup",
                     f"`ptr::read` duplicates ownership of `{src_name}` "
                     f"inside an unsafe region: original and duplicate "
                     f"both own the value until a write-back or "
                     f"`mem::forget`",
                     local=src_base, duplicate=dup),
                fact("may-panic",
                     f"`{desc}` can panic while the duplication window "
                     f"is still open",
                     source=source, callee_chain=chain),
                fact("unwind-drops",
                     f"the landing pad for this panic drops `{src_name}` "
                     f"by its scope obligation while the duplicate still "
                     f"owns the same resource",
                     obligations=self._pad_drops(body, panic_term)),
            ]
            findings.append(Finding(
                detector=self.name, kind="panic-safety",
                message=(f"`{desc}` can panic between `ptr::read` of "
                         f"`{src_name}` and its write-back; unwinding "
                         f"drops both owners of the same value "
                         f"(double free on the panic path)"),
                fn_key=body.key, span=panic_term.span,
                metadata={"source": src_base, "duplicate": dup,
                          "panic_source": source},
                provenance=provenance))
        return findings

    def _first_panic_in_window(
            self, ctx: AnalysisContext, body: Body, read_term: Terminator,
            src_base: int, dup: int
    ) -> Optional[Tuple[Terminator, str, Optional[List[str]]]]:
        """BFS the success CFG from the read; stop each path at a closing
        event, report the first may-panic terminator met while open."""
        if read_term.target is None:
            return None
        worklist = [read_term.target]
        visited: Set[int] = set()
        while worklist:
            index = worklist.pop(0)
            if index in visited:
                continue
            visited.add(index)
            block = body.blocks[index]
            if block.cleanup:
                continue
            if any(stmt.kind is StatementKind.ASSIGN
                   and stmt.place.is_local and stmt.place.local == src_base
                   for stmt in block.statements):
                continue  # whole reassignment: window closed on this path
            term = block.terminator
            if term is None:
                continue
            hit = self._panic_source(ctx, term)
            if hit is not None:
                return (term, hit[0], hit[1])
            if self._closes_window(body, term, src_base, dup):
                continue
            for succ in term.successors():
                if succ != term.unwind:
                    worklist.append(succ)
        return None

    @staticmethod
    def _panic_source(ctx: AnalysisContext, term: Terminator
                      ) -> Optional[Tuple[str, Optional[List[str]]]]:
        source = terminator_panic_source(term)
        if source is not None:
            return (source, None)
        if term.kind is TerminatorKind.CALL and term.func is not None \
                and term.func.kind in (FuncKind.USER, FuncKind.CLOSURE) \
                and term.func.user_fn:
            summary = ctx.summary(term.func.user_fn)
            if summary.panic.may_panic:
                chain = ctx.panic_chain(term.func.user_fn)
                sources = sorted(summary.panic.sources)
                return (sources[0] if sources else "panic", chain)
        return None

    @staticmethod
    def _closes_window(body: Body, term: Terminator, src_base: int,
                       dup: int) -> bool:
        op = _call_op(term)
        if op is BuiltinOp.PTR_WRITE:
            return _arg_base(body, term) == src_base
        if op is BuiltinOp.MEM_FORGET:
            for arg in term.args:
                if arg.place is not None and \
                        resolve_ref_chain(body, arg.place.local)[0] \
                        in (src_base, dup):
                    return True
            return False
        if term.kind is TerminatorKind.CALL:
            # The original moved into a callee: the pad no longer owns it.
            for arg in term.args:
                if arg.is_move and arg.place is not None \
                        and arg.place.is_local \
                        and arg.place.local == src_base:
                    return True
        return False

    @staticmethod
    def _pad_drops(body: Body, term: Terminator) -> List[int]:
        if term.unwind is None:
            return []
        return [stmt.place.local
                for stmt in body.blocks[term.unwind].statements
                if stmt.kind is StatementKind.DROP and stmt.place.is_local]


class BadDropDetector(Detector):
    """Destructors that corrupt their own struct's drop glue.

    After a user ``fn drop`` returns, the compiler drops every field
    again — glue the impl cannot opt out of.  Two bad shapes:

    * **double-drop-field** — the impl ``ptr::read``\\ s a field and lets
      the duplicate drop (explicitly or at scope exit) without
      ``mem::forget`` or a write-back: the glue then frees the same
      value a second time.
    * **drop-uninit** — the impl constructs a value via
      ``mem::uninitialized``/``MaybeUninit``, never writes it, and drops
      it: drop glue runs over garbage bytes.
    """

    name = "bad-drop"
    description = ("Drop impl double-drops a field or drops a value it "
                   "never initialised")
    paper_section = "5.1"

    _SELF = 1  # `&mut self` is always local 1 in a drop impl

    def check_body(self, ctx: AnalysisContext, body: Body) -> List[Finding]:
        if not body.key.endswith("::drop") or body.arg_count < 1:
            return []
        findings: List[Finding] = []
        findings.extend(self._double_drop_fields(ctx, body))
        findings.extend(self._drop_uninit(body))
        return findings

    def _double_drop_fields(self, ctx: AnalysisContext,
                            body: Body) -> List[Finding]:
        findings: List[Finding] = []
        for bb, term in body.iter_terminators():
            if _call_op(term) is not BuiltinOp.PTR_READ:
                continue
            if term.destination is None or not term.destination.is_local:
                continue
            if not term.args or term.args[0].place is None:
                continue
            base, proj = resolve_ref_chain(body, term.args[0].place.local)
            if base != self._SELF or not proj:
                continue
            dup = term.destination.local
            if not body.local_ty(dup).needs_drop:
                continue
            chain = value_chain(body, dup)
            if not self._chain_dropped(body, chain):
                continue
            if self._chain_forgotten(body, chain) \
                    or self._field_restored(body):
                continue
            field_name = proj[-1].field_name or f"field {proj[-1].field_index}"
            findings.append(Finding(
                detector=self.name, kind="double-drop-field",
                message=(f"`ptr::read` of `self.{field_name}` inside "
                         f"`fn drop`: the duplicate is dropped here and "
                         f"the compiler's drop glue drops the field again "
                         f"when `drop` returns (use `ManuallyDrop` or "
                         f"`mem::forget`)"),
                fn_key=body.key, span=term.span,
                metadata={"field": field_name, "duplicate": dup},
                provenance=[
                    fact("ownership-dup",
                         f"`ptr::read` duplicates `self.{field_name}` "
                         f"while the struct still owns it",
                         field=field_name, duplicate=dup),
                    fact("drop-glue",
                         f"after `fn drop` returns, drop glue runs over "
                         f"every field of `self` — including "
                         f"`{field_name}`, whose value the duplicate "
                         f"already freed",
                         fn_key=body.key),
                ]))
        return findings

    def _drop_uninit(self, body: Body) -> List[Finding]:
        findings: List[Finding] = []
        for bb, term in body.iter_terminators():
            if _call_op(term) not in _UNINIT_VALUE_OPS:
                continue
            if term.destination is None or not term.destination.is_local:
                continue
            origin = term.destination.local
            chain = value_chain(body, origin)
            if self._chain_written(body, chain):
                continue
            if not self._chain_dropped(body, chain):
                continue
            name = body.locals[origin].name or f"_{origin}"
            findings.append(Finding(
                detector=self.name, kind="drop-uninit",
                message=(f"`{name}` is constructed uninitialised inside "
                         f"`fn drop`, never written, and dropped: drop "
                         f"glue runs over garbage bytes"),
                fn_key=body.key, span=term.span,
                metadata={"origin": origin},
                provenance=[
                    fact("uninit-origin",
                         f"`{name}` comes from an uninitialised "
                         f"constructor and is never written",
                         local=origin),
                    fact("drop-glue",
                         "dropping it runs the payload type's drop glue "
                         "over uninitialised memory", fn_key=body.key),
                ]))
        return findings

    @staticmethod
    def _chain_dropped(body: Body, chain: Set[int]) -> bool:
        for _bb, _i, stmt in body.iter_statements():
            if stmt.kind is StatementKind.DROP and stmt.place.is_local \
                    and stmt.place.local in chain:
                return True
        for _bb, term in body.iter_terminators():
            if _call_op(term) is BuiltinOp.MEM_DROP:
                for arg in term.args:
                    if arg.place is not None and arg.place.local in chain:
                        return True
        return False

    @staticmethod
    def _chain_forgotten(body: Body, chain: Set[int]) -> bool:
        for _bb, term in body.iter_terminators():
            if _call_op(term) is BuiltinOp.MEM_FORGET:
                for arg in term.args:
                    if arg.place is not None and arg.place.local in chain:
                        return True
        return False

    def _field_restored(self, body: Body) -> bool:
        """A `ptr::write` back into any `self` field counts as a restore:
        the impl replaced what it read out."""
        for _bb, term in body.iter_terminators():
            if _call_op(term) is BuiltinOp.PTR_WRITE \
                    and _arg_base(body, term) == self._SELF:
                return True
        return False

    @staticmethod
    def _chain_written(body: Body, chain: Set[int]) -> bool:
        for _bb, term in body.iter_terminators():
            if _call_op(term) in _WRITE_OPS or \
                    _call_op(term) is BuiltinOp.MAYBE_UNINIT_ASSUME:
                for arg in term.args[:1]:
                    if arg.place is not None and \
                            resolve_ref_chain(body, arg.place.local)[0] \
                            in chain:
                        return True
        for _bb, _i, stmt in body.iter_statements():
            if stmt.kind is StatementKind.ASSIGN and stmt.place.is_local \
                    and stmt.place.local in chain and stmt.rvalue is not None:
                operands = [op.place.local for op in stmt.rvalue.operands
                            if op.place is not None and op.place.is_local]
                if not any(local in chain for local in operands):
                    return True
        return False


class UninitExposureDetector(Detector):
    """Uninitialised memory escaping a public safe API.

    A ``pub`` (non-``unsafe``) function that returns a pointer into an
    allocation it created with an uninitialised constructor and never
    wrote hands its callers garbage bytes — the CVE-2018-1000810 /
    uninitialised-buffer advisory shape.  Reuses the unsafe-propagation
    taint (the pointer provably originates in an unsafe region) and the
    uninit-read detectors' allocation-site bookkeeping; the subsumption
    pass retires the weaker ``unsafe-leak`` escape report on the same
    function.
    """

    name = "uninit-exposure"
    description = ("Public safe function returns a pointer to memory it "
                   "allocated uninitialised and never wrote")
    paper_section = "5.3"

    def check_body(self, ctx: AnalysisContext, body: Body) -> List[Finding]:
        if not body.is_pub or body.is_unsafe_fn:
            return []
        if not body.local_ty(0).is_raw_ptr:
            return []
        uninit_sites: Dict[str, Terminator] = {}
        for bb, term in body.iter_terminators():
            if _call_op(term) in _RAW_ALLOC_OPS:
                uninit_sites[f"{body.key}:{bb}"] = term
        if not uninit_sites:
            return []
        pt = ctx.points_to(body)
        written = self._written_sites(body, pt)
        prov = ctx.summary(body.key).unsafe_provenance
        findings: List[Finding] = []
        for target in sorted(pt.targets(0), key=repr):
            if target[0] != "heap" or target[1] not in uninit_sites \
                    or target[1] in written:
                continue
            alloc_term = uninit_sites[target[1]]
            findings.append(Finding(
                detector=self.name, kind="uninit-exposure",
                message=(f"public safe function returns a pointer to "
                         f"memory allocated uninitialised at this call "
                         f"and never written: callers read garbage bytes "
                         f"through a safe API"),
                fn_key=body.key, span=alloc_term.span,
                metadata={"site": target[1]},
                provenance=[
                    fact("uninit-alloc",
                         "the allocation yields uninitialised bytes",
                         site=target[1]),
                    fact("never-written",
                         "no `ptr::write`/`copy`/zeroing targets the "
                         "allocation anywhere in this function",
                         site=target[1]),
                    fact("pub-escape",
                         "the pointer is returned from a `pub` safe "
                         "function, so the uninitialised window escapes "
                         "the API boundary",
                         returns_unsafe_ptr=prov.returns_unsafe_ptr),
                ]))
        return findings

    @staticmethod
    def _written_sites(body: Body, pt) -> Set[str]:
        written: Set[str] = set()
        for _bb, term in body.iter_terminators():
            if _call_op(term) in _WRITE_OPS and term.args:
                arg = term.args[0]
                if arg.place is not None:
                    for target in pt.targets(arg.place.local):
                        if target[0] == "heap":
                            written.add(target[1])
        for _bb, _i, stmt in body.iter_statements():
            if stmt.kind is StatementKind.ASSIGN and stmt.place.has_deref:
                for target in pt.targets(stmt.place.local):
                    if target[0] == "heap":
                        written.add(target[1])
        return written
