"""Buffer-overflow detector for unchecked accesses.

The paper found that 17/21 buffer-overflow bugs compute a size or index in
safe code and then perform the out-of-bounds access in unsafe code
(`get_unchecked`, raw-pointer offset) — the checks that would have caught
it are exactly the ones `unsafe` bypasses (§5.1).

Two rules:

* **definite overflow** — a constant index into a container whose length
  is a known constant (``vec![x; N]``, array literals) with ``index >= N``;
* **unguarded unchecked access** — ``get_unchecked`` / pointer-offset
  dereference whose index is not dominated by any comparison of that index
  against the container's length.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.lifetime import resolve_ref_chain
from repro.detectors.base import AnalysisContext, Detector
from repro.detectors.report import Finding, Severity
from repro.hir.builtins import BuiltinOp
from repro.mir.cfg import Cfg
from repro.mir.nodes import (
    Body, BinOpKind, RvalueKind, StatementKind, TerminatorKind,
)

_UNCHECKED_OPS = {BuiltinOp.VEC_GET_UNCHECKED,
                  BuiltinOp.VEC_GET_UNCHECKED_MUT}
_CMP_OPS = {BinOpKind.LT, BinOpKind.LE, BinOpKind.GT, BinOpKind.GE,
            BinOpKind.EQ, BinOpKind.NE}


class BufferOverflowDetector(Detector):
    name = "buffer-overflow"
    description = ("Out-of-bounds or unguarded unchecked container access")
    paper_section = "5.1"

    def check_body(self, ctx: AnalysisContext, body: Body) -> List[Finding]:
        findings: List[Finding] = []
        cfg = Cfg(body)
        lengths = self._known_lengths(body)
        consts = self._const_locals(ctx, body)
        guarded = self._guarded_blocks(body, cfg)

        for bb, term in body.iter_terminators():
            if term.kind is not TerminatorKind.CALL or term.func is None:
                continue
            if term.func.builtin_op not in _UNCHECKED_OPS:
                continue
            if len(term.args) < 2 or term.args[0].place is None:
                continue
            recv_base, _ = resolve_ref_chain(body, term.args[0].place.local)
            index_op = term.args[1]
            index_value: Optional[int] = None
            index_local: Optional[int] = None
            if index_op.is_const and isinstance(index_op.constant.value, int):
                index_value = index_op.constant.value
            elif index_op.place is not None and index_op.place.is_local:
                index_local = index_op.place.local
                index_value = consts.get(index_local)

            length = lengths.get(recv_base)
            recv_name = body.locals[recv_base].name or f"_{recv_base}"
            if index_value is not None and length is not None:
                if index_value >= length:
                    findings.append(Finding(
                        detector=self.name, kind="buffer-overflow",
                        message=(f"`get_unchecked({index_value})` on "
                                 f"`{recv_name}` of length {length} reads "
                                 f"out of bounds"),
                        fn_key=body.key, span=term.span,
                        metadata={"index": index_value, "length": length,
                                  "definite": True}))
                continue
            if index_local is not None:
                if not self._index_guarded(body, cfg, guarded, bb,
                                           index_local):
                    findings.append(Finding(
                        detector=self.name, kind="unguarded-unchecked",
                        message=(f"`get_unchecked` on `{recv_name}` with an "
                                 f"index that is never compared against the "
                                 f"container length (no bounds guard "
                                 f"dominates the access)"),
                        fn_key=body.key, span=term.span,
                        severity=Severity.WARNING,
                        metadata={"index_local": index_local,
                                  "definite": False}))
        return findings

    def _known_lengths(self, body: Body) -> Dict[int, int]:
        """Container local → constant length, where derivable."""
        lengths: Dict[int, int] = {}
        for bb, term in body.iter_terminators():
            if term.kind is not TerminatorKind.CALL or term.func is None:
                continue
            if term.func.builtin_op is BuiltinOp.VEC_MACRO \
                    and term.destination is not None \
                    and term.destination.is_local:
                if len(term.args) == 2 and term.args[1].is_const \
                        and isinstance(term.args[1].constant.value, int):
                    lengths[term.destination.local] = \
                        term.args[1].constant.value
                elif all(a.is_const or a.place is not None
                         for a in term.args) and len(term.args) != 2:
                    lengths[term.destination.local] = len(term.args)
        for _bb, _i, stmt in body.iter_statements():
            if stmt.kind is StatementKind.ASSIGN and stmt.rvalue is not None \
                    and stmt.place.is_local:
                rv = stmt.rvalue
                if rv.kind is RvalueKind.AGGREGATE and \
                        rv.aggregate_kind is not None and \
                        rv.aggregate_kind.value == "array":
                    lengths[stmt.place.local] = len(rv.operands)
                elif rv.kind is RvalueKind.REPEAT and len(rv.operands) == 2 \
                        and rv.operands[1].is_const \
                        and isinstance(rv.operands[1].constant.value, int):
                    lengths[stmt.place.local] = rv.operands[1].constant.value
                elif rv.kind is RvalueKind.USE:
                    op = rv.operands[0]
                    if op.place is not None and op.place.is_local \
                            and op.place.local in lengths:
                        lengths[stmt.place.local] = lengths[op.place.local]
        return lengths

    def _const_locals(self, ctx: AnalysisContext,
                      body: Body) -> Dict[int, int]:
        """Locals assigned a constant integer exactly once.  A call to a
        function whose summary has a ``const_return`` counts as a constant
        assignment, so indices computed by helpers propagate."""
        consts: Dict[int, Optional[int]] = {}

        def record(local: int, value: Optional[int]) -> None:
            if local in consts:
                consts[local] = None      # multiple assignments: unknown
            else:
                consts[local] = value

        for _bb, _i, stmt in body.iter_statements():
            if stmt.kind is StatementKind.ASSIGN and stmt.place.is_local:
                rv = stmt.rvalue
                value: Optional[int] = None
                if rv is not None and rv.kind is RvalueKind.USE \
                        and rv.operands[0].is_const \
                        and isinstance(rv.operands[0].constant.value, int):
                    value = rv.operands[0].constant.value
                record(stmt.place.local, value)
        from repro.hir.builtins import FuncKind
        for _bb, term in body.iter_terminators():
            if term.kind is not TerminatorKind.CALL or term.func is None \
                    or term.destination is None \
                    or not term.destination.is_local:
                continue
            value = None
            if term.func.kind in (FuncKind.USER, FuncKind.CLOSURE):
                value = ctx.summary(term.func.user_fn).const_return
            record(term.destination.local, value)
        return {l: v for l, v in consts.items() if v is not None}

    def _guarded_blocks(self, body: Body, cfg: Cfg) -> Dict[int, Set[int]]:
        """index-local → blocks where a comparison involving it controls
        entry (i.e. blocks dominated by a comparison's switch)."""
        cmp_blocks: Dict[int, List[int]] = {}
        cmp_locals: Dict[int, Set[int]] = {}
        for bb, i, stmt in body.iter_statements():
            if stmt.kind is StatementKind.ASSIGN and stmt.rvalue is not None \
                    and stmt.rvalue.kind is RvalueKind.BINARY \
                    and stmt.rvalue.bin_op in _CMP_OPS \
                    and stmt.place.is_local:
                involved = {op.place.local for op in stmt.rvalue.operands
                            if op.place is not None}
                cmp_locals.setdefault(stmt.place.local, set()).update(involved)
        guard: Dict[int, Set[int]] = {}
        for bb, term in body.iter_terminators():
            if term.kind is not TerminatorKind.SWITCH_INT or term.discr is None:
                continue
            if term.discr.place is None:
                continue
            involved = cmp_locals.get(term.discr.place.local)
            if not involved:
                continue
            for index_local in involved:
                blocks = guard.setdefault(index_local, set())
                for succ in term.successors():
                    for candidate in range(len(body.blocks)):
                        if cfg.dominates(succ, candidate):
                            blocks.add(candidate)
        # Assert-based guards (safe indexing emits these).
        for bb, term in body.iter_terminators():
            if term.kind is not TerminatorKind.ASSERT or term.cond is None \
                    or term.cond.place is None:
                continue
            involved = cmp_locals.get(term.cond.place.local)
            if not involved:
                continue
            for index_local in involved:
                blocks = guard.setdefault(index_local, set())
                if term.target is not None:
                    for candidate in range(len(body.blocks)):
                        if cfg.dominates(term.target, candidate):
                            blocks.add(candidate)
                    blocks.add(term.target)
        return guard

    def _index_guarded(self, body: Body, cfg: Cfg, guarded, access_block: int,
                       index_local: int) -> bool:
        blocks = guarded.get(index_local, set())
        if access_block in blocks:
            return True
        # Follow one copy backwards: idx temp copied from a named local.
        for _bb, _i, stmt in body.iter_statements():
            if stmt.kind is StatementKind.ASSIGN and stmt.place.is_local \
                    and stmt.place.local == index_local \
                    and stmt.rvalue is not None \
                    and stmt.rvalue.kind is RvalueKind.USE:
                op = stmt.rvalue.operands[0]
                if op.place is not None and op.place.is_local:
                    src_blocks = guarded.get(op.place.local, set())
                    if access_block in src_blocks:
                        return True
        return False
