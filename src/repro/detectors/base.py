"""Detector framework: shared analysis context and the Detector protocol."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.init import compute_init
from repro.analysis.lifetime import (
    GuardRegion, StorageRanges, compute_guard_regions, compute_storage_ranges,
)
from repro.analysis.points_to import (
    PointsTo, compute_points_to, compute_return_summaries,
)
from repro.detectors.report import Finding
from repro.mir.nodes import Body, Program


class AnalysisContext:
    """Caches per-body and per-program analyses so detectors share work."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._points_to: Dict[str, PointsTo] = {}
        self._guard_regions: Dict[str, List[GuardRegion]] = {}
        self._storage_ranges: Dict[str, StorageRanges] = {}
        self._init_states: Dict[str, dict] = {}
        self._call_graph: Optional[CallGraph] = None
        self._return_summaries: Optional[Dict[str, set]] = None

    @property
    def return_summaries(self) -> Dict[str, set]:
        if self._return_summaries is None:
            self._return_summaries = compute_return_summaries(self.program)
        return self._return_summaries

    def points_to(self, body: Body) -> PointsTo:
        if body.key not in self._points_to:
            self._points_to[body.key] = compute_points_to(
                body, self.return_summaries)
        return self._points_to[body.key]

    def guard_regions(self, body: Body,
                      include_try: bool = False) -> List[GuardRegion]:
        cache_key = body.key + ("#try" if include_try else "")
        if cache_key not in self._guard_regions:
            self._guard_regions[cache_key] = compute_guard_regions(
                body, self.points_to(body), include_try=include_try)
        return self._guard_regions[cache_key]

    def storage_ranges(self, body: Body) -> StorageRanges:
        if body.key not in self._storage_ranges:
            self._storage_ranges[body.key] = compute_storage_ranges(body)
        return self._storage_ranges[body.key]

    def init_states(self, body: Body) -> dict:
        if body.key not in self._init_states:
            self._init_states[body.key] = compute_init(body)
        return self._init_states[body.key]

    @property
    def call_graph(self) -> CallGraph:
        if self._call_graph is None:
            self._call_graph = build_call_graph(self.program)
        return self._call_graph


class Detector:
    """Base class for all detectors.

    Subclasses set ``name`` / ``description`` and implement either
    :meth:`check_body` (called per function) or :meth:`check_program`
    (called once), or both.
    """

    name = "detector"
    description = ""
    #: Which paper section motivated this detector.
    paper_section = ""

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        findings: List[Finding] = []
        findings.extend(self.check_program(ctx))
        for body in ctx.program.bodies():
            findings.extend(self.check_body(ctx, body))
        return findings

    def check_program(self, ctx: AnalysisContext) -> List[Finding]:
        return []

    def check_body(self, ctx: AnalysisContext, body: Body) -> List[Finding]:
        return []
