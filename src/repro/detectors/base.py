"""Detector framework: shared analysis context and the Detector protocol."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.analysis.callgraph import CallGraph
from repro.analysis.config import AnalysisConfig, coerce_config
from repro.analysis.engine import SummaryEngine
from repro.analysis.init import compute_init
from repro.analysis.lifetime import (
    GuardRegion, StorageRanges, compute_guard_regions, compute_storage_ranges,
)
from repro.analysis.points_to import PointsTo
from repro.analysis.summaries import FunctionSummary
from repro.detectors.report import Finding
from repro.mir.nodes import Body, Program


class AnalysisContext:
    """Caches per-body and per-program analyses so detectors share work.

    Interprocedural facts (points-to with return summaries, function
    summaries, the call graph) are owned by one
    :class:`~repro.analysis.engine.SummaryEngine` instance; the context
    keeps the purely intraprocedural caches (guard regions, storage
    ranges, init states) itself.

    Every pass records an obs cache hit/miss counter and runs its compute
    under an ``analysis.<pass>`` span, so ``--profile`` shows where the
    static-analysis time goes and how well the cache amortises it.

    Cache keys are tuples (``(body.key, include_try)`` for guard
    regions), never concatenated strings — a body literally named
    ``foo#try`` must not collide with the cached try-variant of ``foo``.

    All knobs arrive in one :class:`~repro.analysis.config.AnalysisConfig`
    (``AnalysisConfig(interprocedural=False)`` is the ablation switch:
    every function summary collapses to the bottom element and points-to
    runs without return summaries, which is what the benchmarks use to
    measure the interprocedural layer's contribution).  The legacy
    ``interprocedural=`` keyword still works for one release and warns.
    """

    def __init__(self, program: Program,
                 config: Optional[AnalysisConfig] = None, *,
                 interprocedural: Optional[bool] = None,
                 pool=None) -> None:
        self.config = coerce_config(config, interprocedural=interprocedural,
                                    _owner="AnalysisContext")
        self.program = program
        self.engine = SummaryEngine(program, self.config, pool=pool)
        self._guard_regions: Dict[Tuple[str, bool], List[GuardRegion]] = {}
        self._storage_ranges: Dict[str, StorageRanges] = {}
        self._init_states: Dict[str, dict] = {}

    def _lookup(self, cache: Dict, key, pass_name: str, compute):
        hit = cache.get(key)
        if hit is not None:
            obs.count(f"analysis.{pass_name}.hit")
            return hit
        obs.count(f"analysis.{pass_name}.miss")
        with obs.span(f"analysis.{pass_name}"):
            value = compute()
        cache[key] = value
        return value

    @property
    def return_summaries(self) -> Dict[str, set]:
        return self.engine.return_summaries()

    def points_to(self, body: Body) -> PointsTo:
        return self.engine.points_to(body)

    def summary(self, key: str) -> FunctionSummary:
        """The engine's converged summary for one function key."""
        return self.engine.summary(key)

    def lock_chain(self, key: str, lock) -> List[str]:
        return self.engine.lock_chain(key, lock)

    def drop_chain(self, key: str, position: int) -> List[str]:
        return self.engine.drop_chain(key, position)

    def access_chain(self, key: str, access) -> List[str]:
        return self.engine.access_chain(key, access)

    def panic_chain(self, key: str) -> List[str]:
        return self.engine.panic_chain(key)

    def thread_escape(self):
        """Program-wide thread-escape facts (engine-owned, lazy)."""
        return self.engine.thread_escape()

    def lock_graph(self):
        """The cross-thread lock graph (engine-owned, lazy)."""
        return self.engine.lock_graph()

    def guard_regions(self, body: Body,
                      include_try: bool = False) -> List[GuardRegion]:
        return self._lookup(
            self._guard_regions, (body.key, include_try), "guard_regions",
            lambda: compute_guard_regions(
                body, self.points_to(body), include_try=include_try,
                summaries=self.engine.summaries_map()))

    def storage_ranges(self, body: Body) -> StorageRanges:
        return self._lookup(
            self._storage_ranges, body.key, "storage_ranges",
            lambda: compute_storage_ranges(body))

    def init_states(self, body: Body) -> dict:
        return self._lookup(
            self._init_states, body.key, "init_states",
            lambda: compute_init(body))

    @property
    def call_graph(self) -> CallGraph:
        return self.engine.call_graph


class Detector:
    """Base class for all detectors.

    Subclasses set ``name`` / ``description`` and implement either
    :meth:`check_body` (called per function) or :meth:`check_program`
    (called once), or both.
    """

    name = "detector"
    description = ""
    #: Which paper section motivated this detector.
    paper_section = ""

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        findings: List[Finding] = []
        findings.extend(self.check_program(ctx))
        for body in ctx.program.bodies():
            findings.extend(self.check_body(ctx, body))
        return findings

    def check_program(self, ctx: AnalysisContext) -> List[Finding]:
        return []

    def check_body(self, ctx: AnalysisContext, body: Body) -> List[Finding]:
        return []
