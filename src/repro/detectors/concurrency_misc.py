"""Blocking-bug detectors beyond double-lock: condvar, channel, Once.

These cover the remaining §6.1 blocking-bug categories:

* :class:`CondvarDetector` — a ``Condvar::wait`` with no matching
  ``notify_one``/``notify_all`` anywhere in the program (8 of the paper's
  10 condvar bugs have this shape);
* :class:`ChannelDetector` — a blocking ``recv`` in a program with no
  ``send`` that can feed it, and ``recv`` while holding a lock the sender
  side needs;
* :class:`OnceRecursionDetector` — ``call_once`` whose closure
  (transitively) calls ``call_once`` on the same ``Once`` (self-deadlock).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.lifetime import lock_identity, resolve_ref_chain
from repro.detectors.base import AnalysisContext, Detector
from repro.detectors.report import Finding, Severity
from repro.hir.builtins import BuiltinOp
from repro.lang.types import TyKind
from repro.mir.nodes import Body, TerminatorKind

_NOTIFY_OPS = {BuiltinOp.CONDVAR_NOTIFY_ONE, BuiltinOp.CONDVAR_NOTIFY_ALL}


def _receiver_identity(ctx: AnalysisContext, body: Body, term) -> FrozenSet:
    if not term.args or term.args[0].place is None:
        return frozenset()
    return lock_identity(body, ctx.points_to(body),
                         term.args[0].place.local)


def _sites_with_op(program, ops) -> List[Tuple[Body, int, object]]:
    sites = []
    for body in program.bodies():
        for bb, term in body.iter_terminators():
            if term.kind is TerminatorKind.CALL and term.func is not None \
                    and term.func.builtin_op in ops:
                sites.append((body, bb, term))
    return sites


class CondvarDetector(Detector):
    name = "condvar"
    description = ("Condvar::wait with no reachable notify on the same "
                   "condvar (missed-signal deadlock)")
    paper_section = "6.1"

    def check_program(self, ctx: AnalysisContext) -> List[Finding]:
        from repro.analysis.lockgraph import global_site_ids, live_functions
        program = ctx.program
        waits = _sites_with_op(program, {BuiltinOp.CONDVAR_WAIT})
        findings: List[Finding] = []
        if not waits:
            return findings
        # Only a notify that can actually run counts: its function must be
        # an entry point or reachable (called / spawned) from one.  A
        # notify inside a closure nothing ever invokes wakes nobody.
        live = live_functions(ctx.engine)
        notifies = [(body, bb, term) for body, bb, term
                    in _sites_with_op(program, _NOTIFY_OPS)
                    if body.key in live]
        # Identity comparison is only meaningful for global ids — but
        # ``global_site_ids`` resolves receiver locals interprocedurally
        # (through spawn captures and call sites), so a condvar handed to
        # a spawned closure still meets its waiter on the allocation site.
        notify_global: Set = set()
        unresolved_notify = False
        for nbody, _bb, nterm in notifies:
            if not nterm.args or nterm.args[0].place is None:
                unresolved_notify = True
                continue
            ids = global_site_ids(ctx.engine, nbody,
                                  nterm.args[0].place.local)
            if ids:
                notify_global |= ids
            else:
                unresolved_notify = True
        for body, bb, term in waits:
            if term.args and term.args[0].place is not None:
                wait_global = global_site_ids(ctx.engine, body,
                                              term.args[0].place.local)
            else:
                wait_global = set()
            if not notifies:
                matched = False
            elif not wait_global or unresolved_notify:
                matched = True     # cannot distinguish: assume matched
            else:
                matched = bool(wait_global & notify_global)
            if not matched:
                findings.append(Finding(
                    detector=self.name, kind="condvar-no-notify",
                    message=("`Condvar::wait` but no thread ever calls "
                             "`notify_one`/`notify_all` on this condvar; "
                             "the waiter blocks forever"),
                    fn_key=body.key, span=term.span,
                    metadata={"block": bb}))
        return findings


class ChannelDetector(Detector):
    name = "channel"
    description = ("Blocking recv with no sender, and recv while holding "
                   "a lock the sender needs")
    paper_section = "6.1"

    def check_program(self, ctx: AnalysisContext) -> List[Finding]:
        program = ctx.program
        recvs = _sites_with_op(program, {BuiltinOp.CHANNEL_RECV})
        sends = _sites_with_op(program, {BuiltinOp.CHANNEL_SEND})
        findings: List[Finding] = []
        if recvs and not sends:
            for body, bb, term in recvs:
                findings.append(Finding(
                    detector=self.name, kind="recv-no-sender",
                    message=("`recv()` but the program contains no `send` "
                             "on any channel; the receiver blocks forever"),
                    fn_key=body.key, span=term.span))
            return findings

        # recv while holding a lock that some sender-side function locks:
        # the classic "receiver holds the lock the producer needs" shape.
        graph = ctx.call_graph
        sender_fns = {body.key for body, _bb, _t in sends}
        for body, bb, term in recvs:
            regions = ctx.guard_regions(body)
            point = (bb, len(body.blocks[bb].statements))
            for region in regions:
                if not region.covers(point):
                    continue
                held_global = {i for i in region.lock_ids
                               if i[0] in ("static", "heap")}
                if not held_global:
                    continue
                for sender_fn in sender_fns:
                    if sender_fn == body.key:
                        continue
                    sender_body = program.functions.get(sender_fn)
                    if sender_body is None:
                        continue
                    # Statics the sender's summary says it (transitively)
                    # locks: these count even when the acquisition sits in
                    # a helper the sender calls.
                    summary_static = {
                        ("static", lock[1], lock[2])
                        for lock in ctx.summary(sender_fn).locks
                        if lock[0] == "static"}
                    for sregion in ctx.guard_regions(sender_body):
                        sender_global = {i for i in sregion.lock_ids
                                         if i[0] in ("static", "heap")}
                        sender_global |= summary_static
                        if held_global & sender_global:
                            findings.append(Finding(
                                detector=self.name,
                                kind="recv-holding-lock",
                                message=(f"`recv()` while holding a lock "
                                         f"that the sending side "
                                         f"(`{sender_fn}`) also acquires; "
                                         f"if the sender blocks on the "
                                         f"lock, neither side progresses"),
                                fn_key=body.key, span=term.span,
                                severity=Severity.WARNING))
                            break
        return findings


class OnceRecursionDetector(Detector):
    name = "once-recursion"
    description = ("Once::call_once whose initialiser re-enters call_once "
                   "on the same Once")
    paper_section = "6.1"

    def check_program(self, ctx: AnalysisContext) -> List[Finding]:
        program = ctx.program
        graph = ctx.call_graph
        findings: List[Finding] = []
        sites = _sites_with_op(program, {BuiltinOp.ONCE_CALL_ONCE})

        # Map: fn key → once identities it calls call_once on directly.
        direct: Dict[str, Set] = {}
        for body, _bb, term in sites:
            ids = _receiver_identity(ctx, body, term)
            global_ids = {i for i in ids if i[0] in ("static", "heap")}
            direct.setdefault(body.key, set()).update(global_ids or ids)

        for body, bb, term in sites:
            once_ids = _receiver_identity(ctx, body, term)
            once_global = {i for i in once_ids if i[0] in ("static", "heap")}
            closure_keys = []
            for arg in term.args[1:]:
                if arg.place is not None:
                    ty = body.local_ty(arg.place.local)
                    if ty.kind is TyKind.CLOSURE:
                        closure_keys.append(ty.name)
            for closure_key in closure_keys:
                reachable = {closure_key} | graph.transitive_callees(
                    closure_key)
                for fn in reachable:
                    inner = direct.get(fn, set())
                    inner_cmp = inner if once_global else inner
                    compare = once_global or once_ids
                    if inner & compare:
                        findings.append(Finding(
                            detector=self.name, kind="once-recursion",
                            message=(f"`call_once` initialiser "
                                     f"(via `{fn}`) recursively calls "
                                     f"`call_once` on the same `Once`; "
                                     f"this self-deadlocks"),
                            fn_key=body.key, span=term.span))
                        break
        return findings
