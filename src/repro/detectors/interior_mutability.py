"""Interior-mutability misuse detectors (non-blocking bugs, §6.2).

Two patterns from the paper:

* :class:`SyncUnsyncWriteDetector` — a struct shared across threads
  (``unsafe impl Sync`` or wrapped in ``Arc``) whose ``&self`` method
  mutates state through a raw-pointer cast of a field with no lock held —
  the Figure 4 ``TestCell::set`` shape.  Suggestion 8: "internal mutual
  exclusion must be carefully reviewed for interior mutability functions
  in structs implementing the Sync trait."
* :class:`AtomicityViolationDetector` — the Figure 9 ``generate_seal``
  shape: an atomic ``load`` of a field controls a branch that performs an
  atomic ``store`` to the same field (check-then-act instead of
  compare-and-swap).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.lifetime import resolve_ref_chain
from repro.detectors.base import AnalysisContext, Detector
from repro.detectors.report import Finding, Severity
from repro.hir.builtins import BuiltinOp
from repro.lang.types import TyKind
from repro.mir.cfg import Cfg
from repro.mir.nodes import (
    Body, RvalueKind, StatementKind, TerminatorKind,
)


def _is_self_method(body: Body) -> bool:
    return body.self_mode == "ref" and body.arg_count >= 1


def _struct_is_shared(ctx: AnalysisContext, struct_name: str) -> bool:
    table = ctx.program.item_table
    info = table.structs.get(struct_name)
    if info is None:
        return False
    if info.unsafe_sync or info.traits.get("Sync") or info.traits.get("Send"):
        return True
    # Shared via Arc<StructName> anywhere in the program?
    for body in ctx.program.bodies():
        for local in body.locals:
            ty = local.ty
            if ty.kind is TyKind.BUILTIN and ty.name == "Arc" and ty.args:
                inner = ty.args[0].peel_wrappers()
                if inner.name == struct_name:
                    return True
    return False


def _may_synchronise(ctx: AnalysisContext, body: Body) -> bool:
    """Does this method (or anything it calls, transitively) acquire a
    lock?  The function summary's ``acquires_any_lock`` covers helpers
    like ``self.lock_then_write()``; ``calls_unknown`` is the soundness
    fallback — unresolved code might synchronise, so do not report."""
    summary = ctx.summary(body.key)
    return summary.acquires_any_lock or summary.calls_unknown


class SyncUnsyncWriteDetector(Detector):
    name = "sync-unsync-write"
    description = ("&self method of a thread-shared struct mutates state "
                   "through a raw pointer without synchronisation")
    paper_section = "6.2"

    def check_body(self, ctx: AnalysisContext, body: Body) -> List[Finding]:
        findings: List[Finding] = []
        if not _is_self_method(body) or body.self_ty is None:
            return findings
        struct_name = body.self_ty.name
        if not _struct_is_shared(ctx, struct_name):
            return findings
        if _may_synchronise(ctx, body):
            return findings

        pt = ctx.points_to(body)
        # self is argument local 1; writes through raw pointers whose
        # points-to includes self's storage are unsynchronised mutations.
        for bb, i, stmt in body.iter_statements():
            if stmt.kind is not StatementKind.ASSIGN or not stmt.place.has_deref:
                continue
            base_ty = body.local_ty(stmt.place.local)
            if not base_ty.is_raw_ptr:
                continue
            base, _proj = resolve_ref_chain(body, stmt.place.local)
            targets = pt.local_targets(stmt.place.local) | {base}
            if 1 in targets:
                findings.append(Finding(
                    detector=self.name, kind="unsync-interior-mutation",
                    message=(f"`{body.key}` takes `&self` on thread-shared "
                             f"`{struct_name}` but mutates it through a raw "
                             f"pointer with no lock held; concurrent callers "
                             f"race"),
                    fn_key=body.key, span=stmt.span,
                    severity=Severity.WARNING,
                    metadata={"struct": struct_name}))
                break
        return findings


class AtomicityViolationDetector(Detector):
    name = "atomicity-violation"
    description = ("Atomic load feeding a branch that atomically stores to "
                   "the same location (check-then-act; needs CAS)")
    paper_section = "6.2"

    def check_body(self, ctx: AnalysisContext, body: Body) -> List[Finding]:
        findings: List[Finding] = []
        cfg = Cfg(body)
        pt = ctx.points_to(body)

        loads: List[Tuple[int, int, frozenset]] = []   # (block, dest, field-id)
        stores: List[Tuple[int, frozenset, object]] = []  # (block, field-id, term)
        for bb, term in body.iter_terminators():
            if term.kind is not TerminatorKind.CALL or term.func is None:
                continue
            op = term.func.builtin_op
            if op not in (BuiltinOp.ATOMIC_LOAD, BuiltinOp.ATOMIC_STORE):
                continue
            if not term.args or term.args[0].place is None:
                continue
            base, proj = resolve_ref_chain(body, term.args[0].place.local)
            proj_key = tuple((p.field_name or str(p.field_index))
                             for p in proj)
            ident = frozenset({(t, proj_key) for t in pt.targets(base)} |
                              {(("local", base), proj_key)})
            if op is BuiltinOp.ATOMIC_LOAD and term.destination is not None \
                    and term.destination.is_local:
                loads.append((bb, term.destination.local, ident))
            elif op is BuiltinOp.ATOMIC_STORE:
                stores.append((bb, ident, term))

        if not loads or not stores:
            return findings

        # A load "controls" a branch when its dest (or a comparison of it)
        # is some SwitchInt discriminant; the store must sit in a block
        # dominated by one of the branch targets.
        influenced: Dict[int, Set[int]] = {}   # load dest → derived locals
        for bb, i, stmt in body.iter_statements():
            if stmt.kind is StatementKind.ASSIGN and stmt.rvalue is not None \
                    and stmt.place.is_local:
                srcs = {op.place.local for op in stmt.rvalue.operands
                        if op.place is not None}
                for load_bb, dest, ident in loads:
                    derived = influenced.setdefault(dest, {dest})
                    if srcs & derived:
                        derived.add(stmt.place.local)

        reported = set()
        for load_bb, dest, load_ident in loads:
            derived = influenced.get(dest, {dest})
            for bb, term in body.iter_terminators():
                if term.kind is not TerminatorKind.SWITCH_INT \
                        or term.discr is None or term.discr.place is None:
                    continue
                if term.discr.place.local not in derived:
                    continue
                for store_bb, store_ident, store_term in stores:
                    same_field = bool(
                        {i for i in load_ident} & {i for i in store_ident})
                    if not same_field:
                        continue
                    dominated = any(
                        succ is not None and cfg.dominates(succ, store_bb)
                        for succ in term.successors())
                    if dominated and (load_bb, store_bb) not in reported:
                        reported.add((load_bb, store_bb))
                        findings.append(Finding(
                            detector=self.name, kind="atomic-check-then-act",
                            message=("atomic `load` guards a branch that "
                                     "`store`s to the same atomic; two "
                                     "threads can both pass the check "
                                     "before either stores — use "
                                     "`compare_and_swap`/`compare_exchange`"),
                            fn_key=body.key, span=store_term.span,
                            severity=Severity.WARNING))
        return findings
