"""Findings and reports produced by the bug detectors."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.lang.source import SourceFile, Span

#: Version of the JSON report schema emitted by :meth:`Finding.to_dict`
#: and :meth:`Report.to_dict` (and therefore ``minirust check --json``).
#: Downstream consumers pin against this; the stable field set is
#: documented in DESIGN.md ("Report JSON schema").  Bump the minor for
#: additive changes, the major for anything that renames or removes a
#: field.
SCHEMA_VERSION = "1.0"


class Severity(enum.Enum):
    ERROR = "error"        # definite bug pattern
    WARNING = "warning"    # likely bug, may be a false positive
    NOTE = "note"          # informational (e.g. risky-but-common pattern)


@dataclass
class Finding:
    """One detector hit."""

    detector: str              # e.g. "use-after-free"
    kind: str                  # short machine-readable bug class
    message: str
    fn_key: str
    span: Span = Span.DUMMY
    severity: Severity = Severity.ERROR
    metadata: Dict[str, object] = field(default_factory=dict)
    #: Ordered analysis facts justifying the report (see
    #: :mod:`repro.obs.provenance`); empty when a detector predates the
    #: provenance machinery.
    provenance: List[Dict[str, object]] = field(default_factory=list)

    def render(self, source: Optional[SourceFile] = None) -> str:
        loc = ""
        if source is not None and not self.span.is_dummy:
            line, col = source.line_col(self.span.lo)
            loc = f" at {source.name}:{line}:{col}"
        return (f"[{self.detector}] {self.severity.value}: {self.message} "
                f"(in `{self.fn_key}`{loc})")

    def explain(self, source: Optional[SourceFile] = None) -> str:
        """The finding plus its provenance trail, one fact per line."""
        from repro.obs.provenance import render_facts
        lines = [self.render(source)]
        if self.provenance:
            lines.append("  because:")
            lines.extend(render_facts(self.provenance, indent="    "))
        else:
            lines.append("  (no provenance recorded)")
        return "\n".join(lines)

    def dedup_key(self) -> tuple:
        return (self.detector, self.kind, self.fn_key, self.span.lo,
                self.span.hi)

    def to_dict(self, source: Optional[SourceFile] = None) -> Dict[str, object]:
        from repro.obs.provenance import jsonable
        out: Dict[str, object] = {
            "schema_version": SCHEMA_VERSION,
            "detector": self.detector,
            "kind": self.kind,
            "severity": self.severity.value,
            "message": self.message,
            "fn": self.fn_key,
            "metadata": jsonable(self.metadata),
            "provenance": jsonable(self.provenance),
        }
        if not self.span.is_dummy:
            out["span"] = {"lo": self.span.lo, "hi": self.span.hi}
            if source is not None:
                line, col = source.line_col(self.span.lo)
                out["location"] = {"file": source.name, "line": line,
                                   "col": col}
        return out


@dataclass
class Report:
    """All findings for one program, with convenience accessors."""

    findings: List[Finding] = field(default_factory=list)
    source: Optional[SourceFile] = None

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: List[Finding]) -> None:
        self.findings.extend(findings)

    def dedup(self) -> "Report":
        seen = set()
        unique: List[Finding] = []
        for finding in self.findings:
            key = finding.dedup_key()
            if key not in seen:
                seen.add(key)
                unique.append(finding)
        return Report(findings=unique, source=self.source)

    def by_detector(self, detector: str) -> List[Finding]:
        return [f for f in self.findings if f.detector == detector]

    def by_kind(self, kind: str) -> List[Finding]:
        return [f for f in self.findings if f.kind == kind]

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.detector] = out.get(finding.detector, 0) + 1
        return out

    def render(self) -> str:
        if not self.findings:
            return "no findings"
        return "\n".join(f.render(self.source) for f in self.findings)

    def explain(self) -> str:
        if not self.findings:
            return "no findings"
        return "\n".join(f.explain(self.source) for f in self.findings)

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable report, shared by ``--json`` and the obs
        exporters."""
        return {
            "schema_version": SCHEMA_VERSION,
            "source": self.source.name if self.source is not None else None,
            "findings": [f.to_dict(self.source) for f in self.findings],
            "counts": self.counts(),
            "errors": len(self.errors),
            "warnings": len(self.warnings),
        }

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)
