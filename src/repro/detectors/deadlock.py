"""Cross-thread deadlock detector: the unified blocking-bug engine.

Three §6.1 blocking-bug shapes, all answered from the same cross-thread
lock graph (:mod:`repro.analysis.lockgraph`):

* **deadlock-cycle** — a cycle among global lock identities whose edges
  can be assigned pairwise-distinct thread roots: thread A holds M1
  wanting M2 while thread B holds M2 wanting M1.  Each report carries
  per-thread hold → want provenance chains (the call chain from the
  thread's root function to each acquisition).  Same-thread ABBA
  re-orderings stay with the ``lock-order`` detector; when both engines
  see the same lock set, the registry's subsumption pass keeps only the
  deadlock finding.
* **condvar-hold-lock** — ``Condvar::wait`` releases *its* guard but
  keeps every other lock held; if all reachable notifiers of the same
  condvar must take one of those locks first, nobody can ever signal.
* **recv-deadlock** — a blocking ``recv`` while holding a lock that
  every live sender on the same channel must acquire before sending:
  the receiver waits for a message only a blocked thread can produce.

Condvar and channel-endpoint identities resolve interprocedurally
through :func:`repro.analysis.lockgraph.global_site_ids` (capture and
caller routes); notify / send sites only count when their function is
reachable from a live thread root (:func:`~repro.analysis.lockgraph.
live_functions`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.escape import translate_capture
from repro.analysis.lifetime import resolve_ref_chain
from repro.analysis.lockgraph import (
    LockGraph, OrderEdge, global_site_ids, live_functions,
)
from repro.detectors.base import AnalysisContext, Detector
from repro.detectors.concurrency_misc import _NOTIFY_OPS, _sites_with_op
from repro.detectors.report import Finding
from repro.hir.builtins import BuiltinOp
from repro.mir.nodes import Body
from repro.obs.provenance import fact


def _pretty(node: Tuple) -> str:
    kind, payload = node[0], node[1]
    proj = node[2] if len(node) > 2 else ()
    suffix = ("." + ".".join(proj)) if proj else ""
    if kind == "static":
        return f"static `{payload}`{suffix}"
    return f"lock@{payload}{suffix}"


def _chain_text(chain: Tuple[str, ...]) -> str:
    return " -> ".join(f"`{fn}`" for fn in chain)


class DeadlockDetector(Detector):
    name = "deadlock"
    description = ("Cross-thread deadlocks over the global lock graph: "
                   "lock cycles between threads, condvar wait holding a "
                   "lock the notifier needs, recv holding a lock the "
                   "sender needs")
    paper_section = "6.1"

    def check_program(self, ctx: AnalysisContext) -> List[Finding]:
        findings = self._cycle_findings(ctx)
        findings.extend(self._condvar_findings(ctx))
        findings.extend(self._channel_findings(ctx))
        return findings

    # -- cross-thread lock cycles -------------------------------------------

    def _cycle_findings(self, ctx: AnalysisContext) -> List[Finding]:
        graph: LockGraph = ctx.lock_graph()
        bound = ctx.config.deadlock_cycle_bound
        findings: List[Finding] = []
        seen: Set[FrozenSet] = set()
        for cycle, witness in graph.deadlock_cycles(bound):
            key = frozenset(cycle)
            if key in seen:
                continue
            seen.add(key)
            findings.append(self._cycle_finding(cycle, witness))
        return findings

    def _cycle_finding(self, cycle: Tuple,
                       witness: List[OrderEdge]) -> Finding:
        # Report at a main-thread edge when one exists (the spawning side
        # is where the user looks first), else at the first hop.
        rep = next((e for e in witness if e.root.kind == "main"),
                   witness[0])
        lines = []
        facts = [fact(
            "lock-graph",
            f"cycle of {len(cycle)} locks across "
            f"{len({e.root for e in witness})} threads",
            locks=[_pretty(node) for node in cycle])]
        for edge in witness:
            lines.append(
                f"{edge.root.label()} holds {_pretty(edge.src)} and wants "
                f"{_pretty(edge.dst)} (in `{edge.fn_key}`)")
            facts.append(fact(
                "hold-want",
                f"{edge.root.label()}: holds {_pretty(edge.src)} along "
                f"{_chain_text(edge.hold_chain)}; wants "
                f"{_pretty(edge.dst)} along {_chain_text(edge.want_chain)}",
                thread=edge.root.label(), fn=edge.fn_key,
                holds=_pretty(edge.src), wants=_pretty(edge.dst),
                hold_chain=list(edge.hold_chain),
                want_chain=list(edge.want_chain)))
        return Finding(
            detector=self.name, kind="deadlock-cycle",
            message=("cross-thread deadlock: " + "; ".join(lines) +
                     "; each thread waits on a lock another holds"),
            fn_key=rep.fn_key, span=rep.span,
            metadata={
                "cycle": [str(node) for node in cycle],
                "threads": [edge.root.label() for edge in witness],
            },
            provenance=facts)

    # -- condvar wait while holding an unrelated lock -----------------------

    def _condvar_findings(self, ctx: AnalysisContext) -> List[Finding]:
        program = ctx.program
        waits = _sites_with_op(program, {BuiltinOp.CONDVAR_WAIT})
        if not waits:
            return []
        notifies = _sites_with_op(program, _NOTIFY_OPS)
        if not notifies:
            return []          # missed-signal outright: CondvarDetector's
        live = live_functions(ctx.engine)
        findings: List[Finding] = []
        for body, bb, term in waits:
            if term.args[0].place is None:
                continue
            cv_ids = global_site_ids(ctx.engine, body,
                                     term.args[0].place.local)
            if not cv_ids:
                continue
            # The wait releases its own guard; every *other* region still
            # covering the wait point stays held while blocked.
            exclude = set()
            for arg in term.args[1:]:
                if arg.place is not None and arg.place.is_local:
                    exclude.add(arg.place.local)
                    exclude.add(resolve_ref_chain(body,
                                                  arg.place.local)[0])
            point = (bb, len(body.blocks[bb].statements))
            held = self._held_lock_nodes(ctx, body, point,
                                         exclude_guard_locals=exclude)
            if not held:
                continue
            notify_sites = []
            for nbody, nbb, nterm in notifies:
                if nbody.key not in live or nterm.args[0].place is None:
                    continue
                n_ids = global_site_ids(ctx.engine, nbody,
                                        nterm.args[0].place.local)
                if cv_ids & n_ids:
                    npoint = (nbb, len(nbody.blocks[nbb].statements))
                    notify_sites.append(
                        (nbody, nterm,
                         self._held_lock_nodes(ctx, nbody, npoint)))
            if not notify_sites:
                continue       # no live same-identity notify: missed-signal
            # A lock the waiter keeps held that *every* notifier must
            # also take: no notify can ever run while the waiter blocks.
            blocking = [
                lock for lock in sorted(held)
                if all(lock in nheld for _b, _t, nheld in notify_sites)]
            if not blocking:
                continue
            lock = blocking[0]
            notifier_names = sorted({nb.key for nb, _t, _h in notify_sites})
            findings.append(Finding(
                detector=self.name, kind="condvar-hold-lock",
                message=(f"`Condvar::wait` while still holding "
                         f"{_pretty(lock)}; every reachable notifier "
                         f"({', '.join(f'`{n}`' for n in notifier_names)}) "
                         f"must acquire that lock before signalling, so "
                         f"the wakeup can never happen"),
                fn_key=body.key, span=term.span,
                metadata={"held": _pretty(lock),
                          "notifiers": notifier_names},
                provenance=[
                    fact("lockset",
                         f"waiter holds {_pretty(lock)} across the wait "
                         f"(the wait only releases its own guard)",
                         held=[_pretty(l) for l in sorted(held)]),
                    fact("condvar-identity",
                         "wait and notify resolve to the same condvar",
                         ids=[_pretty(i) for i in sorted(cv_ids)]),
                    fact("notify-blocked",
                         f"all notify sites acquire {_pretty(lock)} "
                         f"first", notifiers=notifier_names),
                ]))
        return findings

    # -- blocking recv while holding the sender's lock ----------------------

    def _channel_findings(self, ctx: AnalysisContext) -> List[Finding]:
        program = ctx.program
        recvs = _sites_with_op(program, {BuiltinOp.CHANNEL_RECV})
        if not recvs:
            return []
        sends = _sites_with_op(program, {BuiltinOp.CHANNEL_SEND})
        if not sends:
            return []          # no sender at all: ChannelDetector's case
        te = ctx.thread_escape()
        live = live_functions(ctx.engine)
        findings: List[Finding] = []
        for body, bb, term in recvs:
            if not term.args or term.args[0].place is None:
                continue
            chan_ids = global_site_ids(ctx.engine, body,
                                       term.args[0].place.local)
            if not chan_ids:
                continue
            point = (bb, len(body.blocks[bb].statements))
            held = self._held_lock_nodes(ctx, body, point)
            if not held:
                continue
            recv_spawned = body.key in te.thread_reachable
            send_sites = []
            cross_thread = False
            for sbody, sbb, sterm in sends:
                if sbody.key not in live or not sterm.args \
                        or sterm.args[0].place is None:
                    continue
                s_ids = global_site_ids(ctx.engine, sbody,
                                        sterm.args[0].place.local)
                if not (chan_ids & s_ids):
                    continue
                spoint = (sbb, len(sbody.blocks[sbb].statements))
                send_sites.append(
                    (sbody, sterm,
                     self._held_lock_nodes(ctx, sbody, spoint)))
                if (sbody.key in te.thread_reachable) != recv_spawned:
                    cross_thread = True
            if not send_sites or not cross_thread:
                continue
            # Deadlock only when *every* sender that could feed this
            # channel must first take a lock the receiver holds.
            blocked = all(set(held) & set(sheld)
                          for _b, _t, sheld in send_sites)
            if not blocked:
                continue
            sender_names = sorted({sb.key for sb, _t, _h in send_sites})
            locks = sorted(set(held) & set.union(
                *[set(sheld) for _b, _t, sheld in send_sites]))
            findings.append(Finding(
                detector=self.name, kind="recv-deadlock",
                message=(f"blocking `recv()` while holding "
                         f"{_pretty(locks[0])}; every sender on this "
                         f"channel ({', '.join(f'`{n}`' for n in sender_names)}) "
                         f"runs on another thread and must acquire that "
                         f"lock before sending — the receiver waits for "
                         f"a message only a blocked thread can produce"),
                fn_key=body.key, span=term.span,
                metadata={"held": [_pretty(l) for l in locks],
                          "senders": sender_names},
                provenance=[
                    fact("lockset",
                         f"receiver holds {_pretty(locks[0])} across the "
                         f"blocking recv",
                         held=[_pretty(l) for l in sorted(held)]),
                    fact("channel-identity",
                         "recv and send resolve to the same channel "
                         "endpoints",
                         ids=[_pretty(i) for i in sorted(chan_ids)]),
                    fact("sender-blocked",
                         "every live sender acquires the held lock "
                         "before sending", senders=sender_names),
                ]))
        return findings

    # -- shared lockset helper ----------------------------------------------

    @staticmethod
    def _held_lock_nodes(ctx: AnalysisContext, body: Body, point,
                         exclude_guard_locals: Optional[Set[int]] = None
                         ) -> Dict[Tuple, str]:
        """Global lock nodes held at ``point``: the guard regions
        covering it, with arg-relative ids (closure captures) resolved
        through every spawn site of this closure.  ``exclude_guard_locals``
        drops regions whose guard flows through one of those locals (the
        guard a ``Condvar::wait`` releases)."""
        exclude = exclude_guard_locals or set()
        te = ctx.thread_escape()
        spawn_sites = [s for s in te.spawn_sites
                       if s.closure == body.key] if body.is_closure else []
        out: Dict[Tuple, str] = {}
        for region in ctx.guard_regions(body):
            if region.is_try or not region.covers(point):
                continue
            if region.guard_chain & exclude:
                continue
            for ident in region.lock_ids:
                if ident[0] in ("static", "heap"):
                    out.setdefault(
                        (ident[0], ident[1], tuple(ident[2])), region.kind)
                elif ident[0] == "arg":
                    for site in spawn_sites:
                        spawner = ctx.program.functions.get(site.spawner)
                        if spawner is None:
                            continue
                        for node in translate_capture(
                                site, ctx.points_to(spawner),
                                ident[1], tuple(ident[2])):
                            out.setdefault(node, region.kind)
        return out
